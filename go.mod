module github.com/swingframework/swing

go 1.23
