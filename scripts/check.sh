#!/usr/bin/env sh
# Repo-wide static checks plus race-checked tests. gofmt is enforced (any
# unformatted file fails the build), then vet, then the full test tree
# under the race detector.
set -eu
cd "$(dirname "$0")/.."

fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go test -race ./...
# Dataplane allocation budgets are pinned by regression tests
# (TestWriteFrameAllocs, TestReadFrameBufAllocs, TestReadFrameEmptyAllocs,
# TestUnmarshalSharedAllocs, TestMarshalAllocs); the race run above covers
# them, and this smoke run proves every dataplane benchmark still compiles
# and completes one iteration.
go test -run=NONE -bench=. -benchtime=1x ./internal/wire ./internal/tuple ./internal/runtime
# Many-worker throughput smoke under the race detector, scaled down (64
# workers, 4 submitters, 200 tuples) so the sharded hot state — in-flight
# shards, RCU routing snapshot, segmented journal — is exercised under
# real concurrency on every check run without benchmark-scale cost.
SWING_BENCH_WORKERS=64 SWING_BENCH_SUBMITTERS=4 \
    go test -race -run=NONE -bench=ManyWorkerThroughput -benchtime=200x ./internal/runtime
# Same smoke with batched submitters: SubmitBatch packing, per-shard
# group tracking, group journal commits, and the worker's chained batch
# decode, all under the race detector.
SWING_BENCH_WORKERS=64 SWING_BENCH_SUBMITTERS=4 SWING_BENCH_SUBMIT_BATCH=16 \
    go test -race -run=NONE -bench=ManyWorkerThroughput -benchtime=200x ./internal/runtime
# The live runtime's fault-tolerance and liveness paths (retransmit,
# reconnect, heartbeat eviction, breakers, fault injection) are
# timing-sensitive; run them a second time under the race detector.
go test -race -count=1 ./internal/runtime/... ./internal/transport/...
# Shaped-transport + observability smoke: frame-granular link shaping,
# scenario-pack parsing, and the /statusz endpoint's ledger invariant,
# re-run explicitly under the race detector.
go test -race -count=1 -run 'TestShaped|TestStatusEndpoint|TestParseScenario' \
    ./internal/transport/ ./internal/runtime/
# Failover smoke under the race detector: hot-standby replication,
# epoch-fenced promotion with eight re-adopting workers, both halves of
# the zombie fence, and the reconnect-budget policy.
go test -race -count=1 \
    -run 'TestStandbyReplicationStream|TestStandbyFailoverPromotion|TestZombiePrimaryFenced|TestWorkerReconnectBudget' \
    ./internal/runtime/
# Failure-containment smoke under the race detector: operator panic
# isolation, the per-tuple deadline watchdog, poison quarantine vs
# breaker semantics, hedged retransmits, and the seeded chaos nemesis
# (deterministic schedule + a short composed run with invariant polling).
go test -race -count=1 \
    -run 'TestOperatorPanicContained|TestOpDeadlineAbandonsHungTuple|TestPoisonQuarantineSparesHealthyBreakers|TestSickWorkerStillTripsBreaker|TestHedgedRetransmitStragglers' \
    ./internal/runtime/
go test -race -count=1 -run 'TestScheduleDeterministic|TestNemesisSmoke' ./internal/chaos/
# Batched-dataplane smoke under the race detector: downstream frame
# coalescing with exact tuple accounting, the ledger invariant under
# concurrent SubmitBatch, whole-batch loss recovery through the
# hedge/retransmit path, and per-tuple drop semantics inside a batch.
go test -race -count=1 \
    -run 'TestBatchedDispatchReducesDownstreamFrames|TestLedgerConsistentUnderConcurrentSubmitBatch|TestSubmitBatchShapedLossRecovery|TestSubmitBatchProcessorDrops|TestShapedBatch|TestFaultyTupleCounters' \
    ./internal/runtime/ ./internal/transport/
# Live /statusz curl smoke: boot a real swingd master with a status
# endpoint and a shaped transport, fetch the JSON from the URL the
# process announces, and check the ledger reports balanced. Falls back
# to wget when curl is absent.
smoketmp="$(mktemp -d)"
trap 'rm -rf "$smoketmp"' EXIT
go build -o "$smoketmp/swingd" ./cmd/swingd
"$smoketmp/swingd" -role master -app facerec -listen 127.0.0.1:0 \
    -status-addr 127.0.0.1:0 -shape wifi-degrade:300ms \
    -fps 30 -duration 3s >"$smoketmp/swingd.log" 2>&1 &
smokepid=$!
url=""
i=0
while [ "$i" -lt 50 ]; do
    url="$(sed -n 's#^status endpoint on \(http://[^ ]*\)$#\1#p' "$smoketmp/swingd.log")"
    [ -n "$url" ] && break
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "swingd never announced its status endpoint" >&2
    cat "$smoketmp/swingd.log" >&2
    exit 1
fi
if command -v curl >/dev/null 2>&1; then
    curl -fsS "$url?format=json" >"$smoketmp/status.json"
else
    wget -qO "$smoketmp/status.json" "$url?format=json"
fi
grep -q '"balanced": true' "$smoketmp/status.json"
wait "$smokepid"
grep -q '^shaping report: ' "$smoketmp/swingd.log"
echo "statusz smoke: ok ($url)"
# Short fuzz smoke over the on-disk/on-wire codecs: the frame codec that
# fronts every connection, the journal record codec that recovery replays
# from whatever a crash left behind, and the replication payload codecs a
# standby decodes from a live (possibly hostile) stream. The checked-in
# seed corpus always runs; FUZZ_SECONDS (default 5) of coverage-guided
# input rides on top. One -fuzz target per invocation is a `go test`
# restriction.
FUZZ_SECONDS="${FUZZ_SECONDS:-5}"
go test -run '^$' -fuzz 'FuzzFrameCodec' -fuzztime "${FUZZ_SECONDS}s" ./internal/wire/
go test -run '^$' -fuzz 'FuzzRepCodec' -fuzztime "${FUZZ_SECONDS}s" ./internal/wire/
go test -run '^$' -fuzz 'FuzzJournalRecord' -fuzztime "${FUZZ_SECONDS}s" ./internal/runtime/
