#!/usr/bin/env sh
# Repo-wide static checks plus race-checked tests for the packages that run
# concurrent code (the experiment executor and everything it fans out over).
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/experiments ./internal/sim ./internal/routing
