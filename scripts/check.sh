#!/usr/bin/env sh
# Repo-wide static checks plus race-checked tests. gofmt is enforced (any
# unformatted file fails the build), then vet, then the full test tree
# under the race detector.
set -eu
cd "$(dirname "$0")/.."

fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go test -race ./...
# Dataplane allocation budgets are pinned by regression tests
# (TestWriteFrameAllocs, TestReadFrameBufAllocs, TestReadFrameEmptyAllocs,
# TestUnmarshalSharedAllocs, TestMarshalAllocs); the race run above covers
# them, and this smoke run proves every dataplane benchmark still compiles
# and completes one iteration.
go test -run=NONE -bench=. -benchtime=1x ./internal/wire ./internal/tuple ./internal/runtime
# Many-worker throughput smoke under the race detector, scaled down (64
# workers, 4 submitters, 200 tuples) so the sharded hot state — in-flight
# shards, RCU routing snapshot, segmented journal — is exercised under
# real concurrency on every check run without benchmark-scale cost.
SWING_BENCH_WORKERS=64 SWING_BENCH_SUBMITTERS=4 \
    go test -race -run=NONE -bench=ManyWorkerThroughput -benchtime=200x ./internal/runtime
# The live runtime's fault-tolerance and liveness paths (retransmit,
# reconnect, heartbeat eviction, breakers, fault injection) are
# timing-sensitive; run them a second time under the race detector.
go test -race -count=1 ./internal/runtime/... ./internal/transport/...
# Short fuzz smoke over the two on-disk/on-wire codecs: the frame codec
# that fronts every connection and the journal record codec that recovery
# replays from whatever a crash left behind. The checked-in seed corpus
# always runs; FUZZ_SECONDS (default 5) of coverage-guided input rides on
# top. One -fuzz target per invocation is a `go test` restriction.
FUZZ_SECONDS="${FUZZ_SECONDS:-5}"
go test -run '^$' -fuzz 'FuzzFrameCodec' -fuzztime "${FUZZ_SECONDS}s" ./internal/wire/
go test -run '^$' -fuzz 'FuzzJournalRecord' -fuzztime "${FUZZ_SECONDS}s" ./internal/runtime/
