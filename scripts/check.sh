#!/usr/bin/env sh
# Repo-wide static checks plus race-checked tests for the packages that run
# concurrent code (the experiment executor and everything it fans out over).
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/experiments ./internal/sim ./internal/routing
# The live runtime's fault-tolerance paths (retransmit, reconnect, fault
# injection) are timing-sensitive; run them twice under the race detector.
go test -race -count=2 ./internal/runtime/... ./internal/transport/...
