#!/usr/bin/env sh
# Repo-wide static checks plus race-checked tests. gofmt is enforced (any
# unformatted file fails the build), then vet, then the full test tree
# under the race detector.
set -eu
cd "$(dirname "$0")/.."

fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go test -race ./...
# The live runtime's fault-tolerance and liveness paths (retransmit,
# reconnect, heartbeat eviction, breakers, fault injection) are
# timing-sensitive; run them a second time under the race detector.
go test -race -count=1 ./internal/runtime/... ./internal/transport/...
