#!/usr/bin/env sh
# Seeded chaos soak: three fault-injected workers (frame drops, per-frame
# delays, periodic link breaks with reconnection) under the full liveness
# layer — heartbeats, eviction, breakers, admission control — for
# SOAK_SECONDS (default 60). The test asserts the fault-tolerance ledger
# invariant (Acked + Shed + InFlight == Submitted) at quiescence and that
# every goroutine drains after shutdown (no leaks). All faults are driven
# by fixed seeds, so a failure replays identically.
set -eu
cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-60}"
SWING_SOAK=1 SWING_SOAK_SECONDS="$SOAK_SECONDS" \
    go test -race -run TestChaosSoak -v -timeout "$((SOAK_SECONDS + 120))s" ./internal/runtime/
