#!/usr/bin/env sh
# Seeded chaos soaks, each SOAK_SECONDS long (default 60):
#
#   1. TestChaosSoak — three fault-injected workers (frame drops,
#      per-frame delays, periodic link breaks with reconnection) under the
#      full liveness layer: heartbeats, eviction, breakers, admission
#      control.
#   2. TestMasterKillSoak — the master is repeatedly crashed at seeded
#      intervals and restarted from its write-ahead journal and periodic
#      checkpoints while reconnecting workers stream on; every incarnation
#      must re-adopt the swarm and drain the recovered backlog.
#
# Both assert the fault-tolerance ledger invariant
# (Acked + Shed + InFlight == Submitted) at quiescence — cumulative across
# master incarnations in the kill soak — plus at-most-once delivery per
# tuple and that every goroutine drains after shutdown (no leaks). All
# faults and kill times are driven by fixed seeds, so a failure replays
# identically.
set -eu
cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-60}"
SWING_SOAK=1 SWING_SOAK_SECONDS="$SOAK_SECONDS" \
    go test -race -run 'TestChaosSoak|TestMasterKillSoak' -v \
    -timeout "$((2 * SOAK_SECONDS + 240))s" ./internal/runtime/
