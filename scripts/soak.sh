#!/usr/bin/env sh
# Seeded chaos soaks, each SOAK_SECONDS long (default 60):
#
#   1. TestChaosSoak — three fault-injected workers (frame drops,
#      per-frame delays, periodic link breaks with reconnection) under the
#      full liveness layer: heartbeats, eviction, breakers, admission
#      control.
#   2. TestMasterKillSoak — the master is repeatedly crashed at seeded
#      intervals and restarted from its write-ahead journal and periodic
#      checkpoints while reconnecting workers stream on; every incarnation
#      must re-adopt the swarm and drain the recovered backlog.
#   3. TestFailoverSoak — a chain of hot-standby failovers: each primary
#      is killed mid-load and its standby promotes under a bumped epoch,
#      with eight reconnecting workers re-adopting every hop; the ledger
#      must balance and the sink stay at-most-once across the chain.
#   4. TestShapedSoak — the wifi-degradation scenario pack shapes one
#      worker's link on the real transport while the status endpoint is
#      polled throughout; LRS must shift probability mass off the degraded
#      link, and the endpoint's final JSON is archived next to the soak
#      log (SOAK_OUT, default /tmp/swing-soak).
#   5. TestNemesisComposedSoak — the seeded chaos nemesis composes worker
#      churn, link shaping, one primary crash with hot-standby takeover,
#      and poison/hang tuple injection into a single deterministic
#      schedule (override the seed with SWING_NEMESIS_SEED), polling the
#      ledger invariant throughout; every poison tuple must quarantine
#      within its distinct-worker budget and no healthy worker may be
#      evicted.
#
# All assert the fault-tolerance ledger invariant
# (Acked + Shed + InFlight == Submitted) at quiescence — cumulative across
# master incarnations in the kill soak — plus at-most-once delivery per
# tuple and that every goroutine drains after shutdown (no leaks). All
# faults and kill times are driven by fixed seeds, so a failure replays
# identically.
set -eu
cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-60}"
SOAK_OUT="${SOAK_OUT:-/tmp/swing-soak}"
mkdir -p "$SOAK_OUT"
SWING_SOAK=1 SWING_SOAK_SECONDS="$SOAK_SECONDS" \
    go test -race -run 'TestChaosSoak|TestMasterKillSoak|TestFailoverSoak' -v \
    -timeout "$((2 * SOAK_SECONDS + 240))s" ./internal/runtime/
# No pipefail in POSIX sh: capture the log first, then fail explicitly,
# so a broken soak is never masked by tee.
shaped_ok=1
SWING_SOAK=1 SWING_SOAK_SECONDS="$SOAK_SECONDS" \
    SWING_SOAK_STATUS="$SOAK_OUT/shaped-status.json" \
    go test -race -run 'TestShapedSoak' -v \
    -timeout "$((2 * SOAK_SECONDS + 240))s" ./internal/runtime/ \
    >"$SOAK_OUT/shaped-soak.log" 2>&1 || shaped_ok=0
cat "$SOAK_OUT/shaped-soak.log"
[ "$shaped_ok" -eq 1 ]
echo "shaped soak: log at $SOAK_OUT/shaped-soak.log," \
    "final status JSON at $SOAK_OUT/shaped-status.json"
SWING_SOAK=1 SWING_SOAK_SECONDS="$SOAK_SECONDS" \
    go test -race -run 'TestNemesisComposedSoak' -v \
    -timeout "$((2 * SOAK_SECONDS + 240))s" ./internal/chaos/
