package swing_test

import (
	"testing"
	"time"

	swing "github.com/swingframework/swing"
)

func TestFacadeComposeApp(t *testing.T) {
	g, err := swing.NewApp("custom").
		Source("sensor").
		Operator("analyze", swing.WithWork(0.5), swing.WithOutputScale(0.1)).
		Sink("out").
		Chain("sensor", "analyze", "out").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Name() != "custom" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestFacadeTuples(t *testing.T) {
	tp := swing.NewTuple(1, 2)
	tp.Set("payload", swing.Bytes([]byte{1, 2, 3}))
	tp.Set("label", swing.String("x"))
	b, err := tp.MustBytes("payload")
	if err != nil || len(b) != 3 {
		t.Fatalf("payload: %v %v", b, err)
	}
}

func TestFacadePolicies(t *testing.T) {
	if len(swing.Policies()) != 5 {
		t.Fatalf("%d policies", len(swing.Policies()))
	}
	p, err := swing.ParsePolicy("lrs")
	if err != nil || p != swing.LRS {
		t.Fatalf("ParsePolicy: %v %v", p, err)
	}
	rc := swing.DefaultRoutingConfig(swing.LRS)
	if err := rc.Validate(); err != nil {
		t.Fatalf("default routing config: %v", err)
	}
}

func TestFacadeSimulation(t *testing.T) {
	app, err := swing.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	res, err := swing.RunSim(swing.TestbedConfig(app, swing.LRS, 42, 30*time.Second))
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if !res.MeetsTarget(24, 0.1) {
		t.Fatalf("LRS throughput %v", res.ThroughputFPS)
	}
}

func TestFacadeTestbedProfiles(t *testing.T) {
	profiles := swing.TestbedProfiles()
	if len(profiles) != 9 {
		t.Fatalf("%d profiles", len(profiles))
	}
	if len(swing.WorkerIDs()) != 8 {
		t.Fatal("worker ids")
	}
}

func TestFacadeExperimentDispatch(t *testing.T) {
	names := swing.Experiments()
	if len(names) < 10 {
		t.Fatalf("%d experiments, want at least the paper's 10", len(names))
	}
	rep, err := swing.RunExperiment("table1", swing.ExperimentOptions{Seed: 1, Duration: 20 * time.Second})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if rep.ID != "Table I" {
		t.Fatalf("ID = %q", rep.ID)
	}
}

func TestFacadeMobility(t *testing.T) {
	walk, err := swing.NewWalk([]swing.MobilityEpoch{
		{Until: time.Minute, RSSI: swing.RSSIGood},
		{Until: 2 * time.Minute, RSSI: swing.RSSIBad},
	})
	if err != nil {
		t.Fatal(err)
	}
	if walk.RSSIAt(90*time.Second) != swing.RSSIBad {
		t.Fatal("walk wrong")
	}
	var s swing.Mobility = swing.StaticSignal(swing.RSSIFair)
	if s.RSSIAt(0) != swing.RSSIFair {
		t.Fatal("static wrong")
	}
}
