// Command swing-bench regenerates every table and figure of the paper's
// evaluation in one pass and writes a combined report (and optionally
// per-experiment CSV files). Independent simulation runs fan out across a
// worker pool; -parallel 1 restores the serial path, which produces a
// byte-identical report.
//
// Usage:
//
//	swing-bench [-seed 42] [-out report.txt] [-csvdir results/]
//	            [-parallel 0] [-cpuprofile bench.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swing-bench:", err)
		os.Exit(1)
	}
}

// benchOpts holds the parsed command line.
type benchOpts struct {
	seed       int64
	out        string
	csvdir     string
	parallel   int
	cpuprofile string
}

// parseArgs parses the command line into benchOpts.
func parseArgs(args []string) (benchOpts, error) {
	fs := flag.NewFlagSet("swing-bench", flag.ContinueOnError)
	var o benchOpts
	fs.Int64Var(&o.seed, "seed", 42, "simulation seed")
	fs.StringVar(&o.out, "out", "", "write the combined report to this file (default stdout)")
	fs.StringVar(&o.csvdir, "csvdir", "", "also write each experiment's tables as CSV under this directory")
	fs.IntVar(&o.parallel, "parallel", 0, "concurrent simulation runs (0 = GOMAXPROCS, 1 = serial)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the evaluation to this file")
	if err := fs.Parse(args); err != nil {
		return benchOpts{}, err
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}

	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	names := swing.Experiments()
	start := time.Now()
	reports, err := swing.RunExperiments(names, swing.ExperimentOptions{
		Seed:        o.seed,
		Parallelism: o.parallel,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	var report strings.Builder
	fmt.Fprintf(&report, "Swing evaluation report (seed %d, generated in %s)\n\n", o.seed, elapsed)
	for i, rep := range reports {
		fmt.Fprintf(&report, "%s\n\n", rep.String())
		if o.csvdir != "" {
			if err := writeCSVs(o.csvdir, names[i], rep); err != nil {
				return err
			}
		}
	}

	if o.out == "" {
		fmt.Print(report.String())
		return nil
	}
	if err := os.WriteFile(o.out, []byte(report.String()), 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	fmt.Println("wrote", o.out)
	return nil
}

func writeCSVs(dir, name string, rep *swing.ExperimentReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", name, i))
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	return nil
}
