// Command swing-bench regenerates every table and figure of the paper's
// evaluation in one pass and writes a combined report (and optionally
// per-experiment CSV files).
//
// Usage:
//
//	swing-bench [-seed 42] [-out report.txt] [-csvdir results/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swing-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swing-bench", flag.ContinueOnError)
	var (
		seed   = fs.Int64("seed", 42, "simulation seed")
		out    = fs.String("out", "", "write the combined report to this file (default stdout)")
		csvdir = fs.String("csvdir", "", "also write each experiment's tables as CSV under this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var report strings.Builder
	start := time.Now()
	fmt.Fprintf(&report, "Swing evaluation report (seed %d, generated in ", *seed)

	var body strings.Builder
	for _, name := range swing.Experiments() {
		expStart := time.Now()
		rep, err := swing.RunExperiment(name, swing.ExperimentOptions{Seed: *seed})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(&body, "%s\n(generated in %s)\n\n", rep.String(), time.Since(expStart).Round(time.Millisecond))
		if *csvdir != "" {
			if err := writeCSVs(*csvdir, name, rep); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(&report, "%s)\n\n", time.Since(start).Round(time.Millisecond))
	report.WriteString(body.String())

	if *out == "" {
		fmt.Print(report.String())
		return nil
	}
	if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	fmt.Println("wrote", *out)
	return nil
}

func writeCSVs(dir, name string, rep *swing.ExperimentReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", name, i))
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	return nil
}
