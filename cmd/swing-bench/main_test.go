package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	swing "github.com/swingframework/swing"
)

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	rep, err := swing.RunExperiment("table1", swing.ExperimentOptions{Seed: 1, Duration: 5e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSVs(dir, "table1", rep); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(rep.Tables) {
		t.Fatalf("%d csv files for %d tables", len(entries), len(rep.Tables))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Phone") {
		t.Fatalf("csv content: %q", string(data)[:60])
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{
		"-seed", "7", "-parallel", "3", "-cpuprofile", "p.pprof", "-out", "r.txt",
	})
	if err != nil {
		t.Fatalf("parseArgs: %v", err)
	}
	if o.seed != 7 || o.parallel != 3 || o.cpuprofile != "p.pprof" || o.out != "r.txt" {
		t.Fatalf("parsed opts = %+v", o)
	}
	o, err = parseArgs(nil)
	if err != nil {
		t.Fatalf("parseArgs(defaults): %v", err)
	}
	if o.seed != 42 || o.parallel != 0 || o.cpuprofile != "" {
		t.Fatalf("default opts = %+v", o)
	}
	if _, err := parseArgs([]string{"-parallel", "abc"}); err == nil {
		t.Fatal("non-integer -parallel accepted")
	}
}

func TestRunReportToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "report.txt")
	profile := filepath.Join(dir, "bench.pprof")
	if err := run([]string{"-out", out, "-cpuprofile", profile, "-parallel", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "Figure 4", "Figure 10", "Cloudlet"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q", want)
		}
	}
	if info, err := os.Stat(profile); err != nil || info.Size() == 0 {
		t.Fatalf("cpu profile not written: info=%v err=%v", info, err)
	}
}
