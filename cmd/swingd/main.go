// Command swingd runs a live Swing node: a master that coordinates a
// swarm and streams sensed frames into it, or a worker that joins a
// master and contributes compute. Nodes find each other via UDP discovery
// or an explicit address.
//
// Usage:
//
//	swingd -role master -app facerec -listen :7716 [-fps 24] [-duration 30s]
//	swingd -role worker -id B [-master host:7716] [-speed 2.0]
//
// With no -master, a worker listens for the master's UDP announcement.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swingd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swingd", flag.ContinueOnError)
	var (
		role     = fs.String("role", "", "master or worker")
		appName  = fs.String("app", "facerec", "application (facerec or voicetrans)")
		listen   = fs.String("listen", ":7716", "master: control/data listen address")
		policyN  = fs.String("policy", "LRS", "master: routing policy")
		fps      = fs.Float64("fps", 24, "master: source frame rate")
		duration = fs.Duration("duration", 30*time.Second, "master: streaming duration (0 = until interrupted)")
		announce = fs.String("announce", "", "master: UDP discovery target, e.g. 255.255.255.255:17716")
		id       = fs.String("id", "", "worker: device id")
		master   = fs.String("master", "", "worker: master address (empty = discover via UDP)")
		discover = fs.String("discover", fmt.Sprintf(":%d", swing.DiscoveryPort), "worker: UDP discovery listen address")
		speed    = fs.Float64("speed", 1, "worker: artificial slowdown factor (>= 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := loadApp(*appName)
	if err != nil {
		return err
	}
	switch *role {
	case "master":
		return runMaster(app, *listen, *policyN, *fps, *duration, *announce)
	case "worker":
		return runWorker(app, *id, *master, *discover, *speed)
	default:
		return fmt.Errorf("missing or invalid -role %q (master or worker)", *role)
	}
}

func loadApp(name string) (*swing.App, error) {
	switch name {
	case "facerec":
		return swing.FaceRecognition()
	case "voicetrans":
		return swing.VoiceTranslation()
	default:
		return nil, fmt.Errorf("unknown app %q", name)
	}
}

func runMaster(app *swing.App, listen, policyName string, fps float64, duration time.Duration, announceTarget string) error {
	policy, err := swing.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	delivered := 0
	m, err := swing.StartMaster(swing.MasterConfig{
		App:        app,
		Policy:     policy,
		ListenAddr: listen,
		OnResult: func(r swing.LiveResult) {
			delivered++
			if delivered%24 == 0 {
				result, _ := r.Tuple.MustString("result")
				fmt.Printf("frame %d: %q from %s (latency %s)\n",
					r.Tuple.SeqNo, result, r.Worker, r.Latency.Round(time.Millisecond))
			}
		},
	})
	if err != nil {
		return err
	}
	defer func() { _ = m.Close() }()
	fmt.Println("master listening on", m.Addr())

	if announceTarget != "" {
		ann, err := swing.Announce(announceTarget,
			swing.Announcement{App: app.Name(), Addr: m.Addr()}, time.Second)
		if err != nil {
			return err
		}
		defer func() { _ = ann.Close() }()
	}

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt, syscall.SIGTERM)

	src := swing.NewFrameSource(app.FrameBytes, 1)
	ticker := time.NewTicker(time.Duration(float64(time.Second) / fps))
	defer ticker.Stop()
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	submitted, dropped := 0, 0
	for {
		select {
		case <-ticker.C:
			if err := m.Submit(src.Next()); err != nil {
				dropped++
			} else {
				submitted++
			}
		case <-deadline:
			st := m.Stats()
			fmt.Printf("done: submitted=%d dropped=%d arrived=%d played=%d skipped=%d\n",
				submitted, dropped, st.Arrived, st.Played, st.Skipped)
			return nil
		case <-interrupted:
			fmt.Println("interrupted")
			return nil
		}
	}
}

func runWorker(app *swing.App, id, masterAddr, discoverAddr string, speed float64) error {
	if id == "" {
		return fmt.Errorf("worker needs -id")
	}
	if masterAddr == "" {
		fmt.Println("discovering master on", discoverAddr, "...")
		ann, err := swing.Discover(discoverAddr, app.Name(), 30*time.Second)
		if err != nil {
			return fmt.Errorf("discovery: %w", err)
		}
		masterAddr = ann.Addr
		fmt.Println("found master at", masterAddr)
	}
	w, err := swing.StartWorker(swing.WorkerConfig{
		DeviceID:    id,
		MasterAddr:  masterAddr,
		App:         app,
		SpeedFactor: speed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("worker %s joined %s (speed factor %.1f)\n", id, masterAddr, speed)

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		w.Wait()
		close(done)
	}()
	select {
	case <-interrupted:
		fmt.Println("leaving swarm")
		return w.Close()
	case <-done:
		fmt.Printf("master closed the session; processed %d tuples\n", w.Processed())
		return nil
	}
}
