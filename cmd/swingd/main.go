// Command swingd runs a live Swing node: a master that coordinates a
// swarm and streams sensed frames into it, or a worker that joins a
// master and contributes compute. Nodes find each other via UDP discovery
// or an explicit address.
//
// Usage:
//
//	swingd -role master -app facerec -listen :7716 [-fps 24] [-duration 30s]
//	swingd -role worker -id B [-master host:7716] [-speed 2.0]
//
// With no -master, a worker listens for the master's UDP announcement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swingd:", err)
		os.Exit(1)
	}
}

// masterOpts collects the master-role flags.
type masterOpts struct {
	listen, policy, announce string
	fps                      float64
	duration                 time.Duration
	retryDeadline            time.Duration
	maxAttempts              int
	heartbeat                time.Duration
	suspectAfter             time.Duration
	deadAfter                time.Duration
	breakerThreshold         int
	breakerCooldown          time.Duration
	breakerAckTimeout        time.Duration
	inflightHighWater        int
	shards                   int
	parallelism              int
	linger                   time.Duration
	opDeadline               time.Duration
	poisonAttempts           int
	hedgeAfter               time.Duration
	statusEvery              time.Duration
	statusAddr               string
	pprof                    bool
	submitBatch              int
	submitLinger             time.Duration
	journal                  string
	checkpointEvery          time.Duration
	fsync                    string
	replicateAddr            string
	standby                  bool
	takeoverAfter            time.Duration
	transport                swing.Transport
	shaped                   *swing.ShapedTransport
}

// workerOpts collects the worker-role flags.
type workerOpts struct {
	id, master, discover string
	speed                float64
	reconnect            bool
	reconnectBackoff     time.Duration
	reconnectAttempts    int
	transport            swing.Transport
}

func run(args []string) error {
	fs := flag.NewFlagSet("swingd", flag.ContinueOnError)
	var (
		role     = fs.String("role", "", "master or worker")
		appName  = fs.String("app", "facerec", "application (facerec or voicetrans)")
		listen   = fs.String("listen", ":7716", "master: control/data listen address")
		policyN  = fs.String("policy", "LRS", "master: routing policy")
		fps      = fs.Float64("fps", 24, "master: source frame rate")
		duration = fs.Duration("duration", 30*time.Second, "master: streaming duration (0 = until interrupted)")
		announce = fs.String("announce", "", "master: UDP discovery target, e.g. 255.255.255.255:17716")
		retryDL  = fs.Duration("retry-deadline", 3*time.Second, "master: how long a tuple may still be retransmitted after its worker dies")
		maxTries = fs.Int("max-attempts", 3, "master: total transmission attempts per tuple, first included")

		// Liveness and overload protection (master).
		heartbeat = fs.Duration("heartbeat", 500*time.Millisecond, "master: liveness ping period per worker (0 = no failure detector)")
		suspectN  = fs.Duration("suspect-after", 0, "master: silence before a worker is marked suspect (0 = 3x heartbeat)")
		deadN     = fs.Duration("dead-after", 0, "master: silence before a hung worker is evicted (0 = 6x heartbeat)")
		brThresh  = fs.Int("breaker-threshold", 5, "master: consecutive failures that open a worker's circuit breaker (0 = no breakers)")
		brCool    = fs.Duration("breaker-cooldown", 2*time.Second, "master: how long an open breaker blocks a worker before the half-open probe")
		brAckTO   = fs.Duration("breaker-ack-timeout", 0, "master: unacked-tuple age counted as a breaker failure (0 = drops alone drive breakers)")
		inflHW    = fs.Int("inflight-high-water", 0, "master: in-flight tuples beyond which Submit sheds oldest-first instead of blocking (0 = block on backpressure)")

		// Failure containment (master).
		opDL      = fs.Duration("op-deadline", 0, "master: per-tuple operator deadline deployed to every worker; a hung chain is abandoned as a deadline drop (0 = no watchdog)")
		poisonAtt = fs.Int("poison-attempts", 0, "master: distinct workers a tuple may burn with drop notices before it is quarantined as poison (0 = no quarantine)")
		hedgeAft  = fs.Duration("hedge-after", 0, "master: age past which a straggling in-flight tuple is speculatively duplicated to a second worker, floored by 2x the worker's recent p95 latency (0 = no hedging)")
		statusEv  = fs.Duration("status-every", 5*time.Second, "master: period of the status log line (0 = silent)")
		statusAdr = fs.String("status-addr", "", "master: HTTP observability endpoint address serving /statusz, /status.json and /events (empty = off; \":0\" picks a free port)")
		pprofF    = fs.Bool("pprof", false, "master: mount net/http/pprof under /debug/pprof/ on the -status-addr listener (requires -status-addr)")

		// Live network emulation (master; shapes the downlink of every
		// accepted worker connection).
		shapeSpec = fs.String("shape", "", "master: link-shaping scenario: wifi-degrade[:leg], mobility[:leg], flash-crowd[:leg], or walk:<rssi>@<until>,... (empty = off)")
		shapeSeed = fs.Int64("shape-seed", 1, "master: PRNG seed for shaping jitter and loss draws")

		// Dataplane tuning (master; deployed to every worker).
		shards   = fs.Int("shards", 0, "master: hot-state shard count, rounded up to a power of two and capped at 128 (0 = GOMAXPROCS)")
		parallel = fs.Int("parallelism", 0, "master: worker processor-pool width deployed to every worker (0 = worker GOMAXPROCS)")
		linger   = fs.Duration("linger", 0, "master: worker ack/result batching window; a result may wait up to this long to share a frame (0 = opportunistic batching only)")
		subBatch = fs.Int("submit-batch", 1, "master: source-side submit batch size; frames accumulate into one SubmitBatch of up to this many tuples (1 = per-tuple submit)")
		subLing  = fs.Duration("submit-linger", 0, "master: submit-side linger window; a partial submit batch flushes after waiting at most this long for more frames (0 = flush only on a full batch)")

		// Crash recovery (master).
		journalP = fs.String("journal", "", "master: write-ahead journal path enabling crash recovery (empty = off); a restart with the same path resumes the previous incarnation")
		ckptEv   = fs.Duration("checkpoint-every", 10*time.Second, "master: checkpoint + journal compaction period (<0 = recovery/close checkpoints only)")
		fsyncM   = fs.String("fsync", "interval", "master: journal fsync policy: always, interval or never")

		// Hot-standby failover (master).
		replAddr = fs.String("replicate-addr", "", "master: hot-standby replication address — the replication listen address on a primary; with -standby, the primary's replication address to dial (empty = off)")
		standbyF = fs.Bool("standby", false, "master: run as a hot standby instead of a primary: mirror the journal streamed from -replicate-addr and promote when the primary goes silent (requires -journal)")
		takeover = fs.Duration("takeover-after", 2*time.Second, "standby: primary silence before the standby promotes itself")
		id       = fs.String("id", "", "worker: device id")
		master   = fs.String("master", "", "worker: master address (empty = discover via UDP)")
		discover = fs.String("discover", fmt.Sprintf(":%d", swing.DiscoveryPort), "worker: UDP discovery listen address")
		speed    = fs.Float64("speed", 1, "worker: artificial slowdown factor (>= 1)")
		rejoin   = fs.Bool("reconnect", false, "worker: rejoin the master with backoff after a broken link")
		rejoinBO = fs.Duration("reconnect-backoff", 50*time.Millisecond, "worker: initial reconnect delay (doubles per failure)")
		rejoinN  = fs.Int("reconnect-attempts", 0, "worker: cumulative failed rejoins before giving up; the budget refills after a session survives 30s (0 = forever)")

		// Fault injection (for resilience drills; off by default).
		faultSeed      = fs.Int64("fault-seed", 1, "fault injection: PRNG seed for deterministic replay")
		faultDropNth   = fs.Int("fault-drop-nth", 0, "fault injection: drop every Nth written frame")
		faultDelay     = fs.Duration("fault-delay", 0, "fault injection: fixed per-frame write delay")
		faultJitter    = fs.Duration("fault-jitter", 0, "fault injection: extra uniform random per-frame delay")
		faultBreak     = fs.Int("fault-break-after", 0, "fault injection: break the link after N written frames")
		faultDialFails = fs.Int("fault-dial-failures", 0, "fault injection: fail the first N dial attempts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Contradictory flag combinations fail loudly with usage instead of
	// silently misbehaving at runtime (a standby that never mirrors, a
	// takeover timer nothing reads, a shaping pack that does not exist).
	if *standbyF && *replAddr == "" {
		return usageErr(fs, "-standby needs -replicate-addr (the primary's replication address to mirror)")
	}
	if *standbyF && *journalP == "" {
		return usageErr(fs, "-standby needs -journal (the mirrored journal lives there)")
	}
	if !*standbyF && flagSet(fs, "takeover-after") {
		return usageErr(fs, "-takeover-after only applies to a -standby master")
	}
	if *shapeSpec != "" {
		if _, err := swing.ParseScenario(*shapeSpec); err != nil {
			return usageErr(fs, "bad -shape: %v", err)
		}
	}
	if *pprofF && *statusAdr == "" {
		return usageErr(fs, "-pprof needs -status-addr (the profiling handlers mount on that listener)")
	}
	if *subBatch < 1 {
		return usageErr(fs, "-submit-batch must be >= 1")
	}
	if *subLing > 0 && *subBatch <= 1 {
		return usageErr(fs, "-submit-linger only applies with -submit-batch > 1")
	}
	app, err := loadApp(*appName)
	if err != nil {
		return err
	}
	faults := faultTransport(swing.FaultConfig{
		Seed:             *faultSeed,
		DropEveryNth:     *faultDropNth,
		Delay:            *faultDelay,
		Jitter:           *faultJitter,
		BreakAfterFrames: *faultBreak,
		DialFailures:     *faultDialFails,
	})
	switch *role {
	case "master":
		opt := masterOpts{
			listen: *listen, policy: *policyN, announce: *announce,
			fps: *fps, duration: *duration,
			retryDeadline: *retryDL, maxAttempts: *maxTries,
			heartbeat: *heartbeat, suspectAfter: *suspectN, deadAfter: *deadN,
			breakerThreshold: *brThresh, breakerCooldown: *brCool, breakerAckTimeout: *brAckTO,
			inflightHighWater: *inflHW, shards: *shards, parallelism: *parallel, linger: *linger,
			submitBatch: *subBatch, submitLinger: *subLing,
			opDeadline: *opDL, poisonAttempts: *poisonAtt, hedgeAfter: *hedgeAft,
			statusEvery: *statusEv, statusAddr: *statusAdr, pprof: *pprofF,
			journal: *journalP, checkpointEvery: *ckptEv, fsync: *fsyncM,
			replicateAddr: *replAddr, standby: *standbyF, takeoverAfter: *takeover,
			transport: faults,
		}
		if *shapeSpec != "" {
			scn, err := swing.ParseScenario(*shapeSpec)
			if err != nil {
				return err
			}
			inner := opt.transport
			if inner == nil {
				inner = swing.TCPTransport{}
			}
			opt.shaped = swing.WithShaping(inner, scn, *shapeSeed)
			opt.transport = opt.shaped
		}
		return runMaster(app, opt)
	case "worker":
		return runWorker(app, workerOpts{
			id: *id, master: *master, discover: *discover, speed: *speed,
			reconnect: *rejoin, reconnectBackoff: *rejoinBO, reconnectAttempts: *rejoinN,
			transport: faults,
		})
	default:
		return fmt.Errorf("missing or invalid -role %q (master or worker)", *role)
	}
}

// flagSet reports whether the named flag was explicitly set on the
// command line (as opposed to resting at its default).
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// usageErr prints the flag usage and returns the validation error, so a
// contradictory invocation exits non-zero with the full flag reference.
func usageErr(fs *flag.FlagSet, format string, args ...any) error {
	fs.Usage()
	return fmt.Errorf(format, args...)
}

// faultTransport wraps the production TCP transport with fault injection
// when any fault is configured; with none it returns nil so the runtime
// keeps its default transport.
func faultTransport(cfg swing.FaultConfig) swing.Transport {
	if cfg.DropEveryNth == 0 && cfg.Delay == 0 && cfg.Jitter == 0 &&
		cfg.BreakAfterFrames == 0 && cfg.DialFailures == 0 {
		return nil
	}
	return swing.WithFaults(swing.TCPTransport{}, cfg)
}

func loadApp(name string) (*swing.App, error) {
	switch name {
	case "facerec":
		return swing.FaceRecognition()
	case "voicetrans":
		return swing.VoiceTranslation()
	default:
		return nil, fmt.Errorf("unknown app %q", name)
	}
}

func runMaster(app *swing.App, opt masterOpts) error {
	policy, err := swing.ParsePolicy(opt.policy)
	if err != nil {
		return err
	}
	fsync, err := swing.ParseFsyncMode(opt.fsync)
	if err != nil {
		return err
	}
	delivered := 0
	cfg := swing.MasterConfig{
		App:               app,
		Policy:            policy,
		ListenAddr:        opt.listen,
		Transport:         opt.transport,
		StatusAddr:        opt.statusAddr,
		StatusPprof:       opt.pprof,
		RetryDeadline:     opt.retryDeadline,
		MaxAttempts:       opt.maxAttempts,
		Heartbeat:         opt.heartbeat,
		SuspectAfter:      opt.suspectAfter,
		DeadAfter:         opt.deadAfter,
		BreakerThreshold:  opt.breakerThreshold,
		BreakerCooldown:   opt.breakerCooldown,
		BreakerAckTimeout: opt.breakerAckTimeout,
		InflightHighWater: opt.inflightHighWater,
		OpDeadline:        opt.opDeadline,
		PoisonAttempts:    opt.poisonAttempts,
		HedgeAfter:        opt.hedgeAfter,
		Shards:            opt.shards,
		Parallelism:       opt.parallelism,
		AckLinger:         opt.linger,
		JournalPath:       opt.journal,
		CheckpointEvery:   opt.checkpointEvery,
		Fsync:             fsync,
		OnResult: func(r swing.LiveResult) {
			delivered++
			if delivered%24 == 0 {
				result, _ := r.Tuple.MustString("result")
				fmt.Printf("frame %d: %q from %s (latency %s)\n",
					r.Tuple.SeqNo, result, r.Worker, r.Latency.Round(time.Millisecond))
			}
		},
	}
	if opt.standby {
		return runStandby(app, opt, cfg)
	}
	cfg.ReplicateAddr = opt.replicateAddr
	m, err := swing.StartMaster(cfg)
	if err != nil {
		return err
	}
	if opt.replicateAddr != "" {
		fmt.Println("replication listener on", opt.replicateAddr)
	}
	return serveMaster(app, opt, m)
}

// runStandby mirrors a primary until it dies, then serves the swarm as
// the promoted master. The promoted master announces under its bumped
// epoch, so workers rediscovering the swarm home onto it and ignore
// stale beacons from the dead incarnation.
func runStandby(app *swing.App, opt masterOpts, cfg swing.MasterConfig) error {
	if opt.replicateAddr == "" {
		return fmt.Errorf("-standby needs -replicate-addr (the primary's replication address)")
	}
	if opt.journal == "" {
		return fmt.Errorf("-standby needs -journal (the mirror lives there)")
	}
	// The promoted master does not re-open a replication listener: on a
	// one-host drill it would collide with the dead primary's address.
	cfg.ReplicateAddr = ""
	sb, err := swing.StartStandby(swing.StandbyConfig{
		PrimaryAddr:   opt.replicateAddr,
		TakeoverAfter: opt.takeoverAfter,
		Master:        cfg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("standby mirroring primary at %s (takeover after %s of silence)\n",
		opt.replicateAddr, opt.takeoverAfter)

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt, syscall.SIGTERM)
	select {
	case <-interrupted:
		fmt.Println("interrupted")
		return sb.Close()
	case <-sb.Promoted():
	}
	signal.Stop(interrupted)
	defer func() { _ = sb.Close() }()
	if err := sb.Err(); err != nil {
		return err
	}
	m := sb.Master()
	fmt.Printf("standby promoted to primary: epoch %d\n", m.Epoch())
	return serveMaster(app, opt, m)
}

// serveMaster drives a started master: discovery announcements, the
// frame source, the periodic status line, and the exit summary. The
// promoted-standby path joins here with the swarm's journal already
// recovered, so the source resumes exactly like a crash-restart.
func serveMaster(app *swing.App, opt masterOpts, m *swing.Master) error {
	defer func() { _ = m.Close() }()
	if opt.journal != "" && m.Epoch() > 1 {
		fmt.Printf("master recovered from %s: epoch %d, resuming stream at frame %d\n",
			opt.journal, m.Epoch(), m.NextSeq())
	}
	fmt.Println("master listening on", m.Addr())
	if addr := m.StatusAddr(); addr != "" {
		fmt.Printf("status endpoint on http://%s/statusz\n", addr)
	}
	if opt.shaped != nil {
		// The shaping report is the scenario's inspectable artifact: what
		// it actually did to each link, printed on exit.
		defer func() {
			if b, err := json.Marshal(opt.shaped.Report()); err == nil {
				fmt.Printf("shaping report: %s\n", b)
			}
		}()
	}

	if opt.announce != "" {
		ann, err := swing.Announce(opt.announce,
			swing.Announcement{App: app.Name(), Addr: m.Addr(), Epoch: m.Epoch()}, time.Second)
		if err != nil {
			return err
		}
		defer func() { _ = ann.Close() }()
	}

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt, syscall.SIGTERM)

	src := swing.NewFrameSource(app.FrameBytes, 1)
	// After a crash-recovery restart the source resumes past every burned
	// sequence number, so replayed backlog and fresh frames never collide.
	src.SeekTo(m.NextSeq())
	ticker := time.NewTicker(time.Duration(float64(time.Second) / opt.fps))
	defer ticker.Stop()
	var deadline <-chan time.Time
	if opt.duration > 0 {
		deadline = time.After(opt.duration)
	}
	var statusTick <-chan time.Time
	if opt.statusEvery > 0 {
		status := time.NewTicker(opt.statusEvery)
		defer status.Stop()
		statusTick = status.C
	}
	submitted, dropped := 0, 0
	// Submit-side batching: frames accumulate into one SubmitBatch of up
	// to opt.submitBatch tuples; a partial batch flushes after waiting at
	// most opt.submitLinger for stragglers (0 = only full batches flush,
	// which at a steady fps just trades one frame interval of latency).
	batchN := opt.submitBatch
	if batchN < 1 {
		batchN = 1
	}
	var (
		pend        []*swing.Tuple
		lingerTimer *time.Timer
		lingerC     <-chan time.Time
	)
	flush := func() {
		if lingerTimer != nil {
			lingerTimer.Stop()
		}
		lingerC = nil
		if len(pend) == 0 {
			return
		}
		if err := m.SubmitBatch(pend); err != nil {
			dropped += len(pend)
		} else {
			submitted += len(pend)
		}
		pend = pend[:0]
	}
	for {
		select {
		case <-ticker.C:
			if batchN <= 1 {
				if err := m.Submit(src.Next()); err != nil {
					dropped++
				} else {
					submitted++
				}
				break
			}
			pend = append(pend, src.Next())
			if len(pend) >= batchN {
				flush()
			} else if opt.submitLinger > 0 && lingerC == nil {
				if lingerTimer == nil {
					lingerTimer = time.NewTimer(opt.submitLinger)
				} else {
					lingerTimer.Reset(opt.submitLinger)
				}
				lingerC = lingerTimer.C
			}
		case <-lingerC:
			lingerC = nil
			flush()
		case <-statusTick:
			printStatus(m.StatusSnapshot())
		case <-deadline:
			flush()
			st := m.Stats()
			fmt.Printf("done: submitted=%d dropped=%d arrived=%d played=%d skipped=%d\n",
				submitted, dropped, st.Arrived, st.Played, st.Skipped)
			fmt.Printf("ledger: acked=%d retransmitted=%d hedged=%d shed=%d (overload %d, poison %d) workerDropped=%d evicted=%d inFlight=%d\n",
				st.Acked, st.Retransmitted, st.Hedged, st.Shed, st.ShedOverload, st.ShedPoison, st.WorkerDropped, st.Evicted, st.InFlight)
			if st.WorkerDropped > 0 {
				fmt.Printf("drops: errors=%d panics=%d deadlines=%d filtered=%d\n",
					st.DropErrors, st.DropPanics, st.DropDeadlines, st.Filtered)
			}
			return nil
		case <-interrupted:
			fmt.Println("interrupted")
			return nil
		}
	}
}

// printStatus logs the periodic master status line. It renders the same
// StatusSnapshot the HTTP endpoint serves — one snapshot path, so the log
// line and /statusz can never disagree.
func printStatus(snap swing.StatusSnapshot) {
	l := snap.Ledger
	fmt.Printf("status: submitted=%d acked=%d shed=%d (overload %d) inFlight=%d retransmitting=%d evicted=%d balanced=%v\n",
		l.Submitted, l.Acked, l.Shed, l.ShedOverload, l.InFlight, l.Retransmitting, l.Evicted, l.Balanced)
	for _, ws := range snap.Workers {
		fmt.Printf("  worker %s: health=%s silence=%dms breaker=%s opens=%d queue=%d weight=%.2f latency=%.1fms processed=%d dropped=%d reconnects=%d\n",
			ws.ID, ws.Health, ws.SilenceMillis, ws.Breaker, ws.BreakerOpens,
			ws.QueueLen, ws.Weight, ws.LatencyMillis, ws.Processed, ws.Dropped, ws.Reconnects)
	}
}

func runWorker(app *swing.App, opt workerOpts) error {
	if opt.id == "" {
		return fmt.Errorf("worker needs -id")
	}
	masterAddr := opt.master
	rediscover := ""
	if masterAddr == "" {
		fmt.Println("discovering master on", opt.discover, "...")
		ann, err := swing.Discover(opt.discover, app.Name(), 30*time.Second)
		if err != nil {
			return fmt.Errorf("discovery: %w", err)
		}
		masterAddr = ann.Addr
		fmt.Println("found master at", masterAddr)
		// A worker that found its master by discovery keeps rediscovering
		// on reconnect failures, so a promoted standby announcing under a
		// bumped epoch is found instead of redialing the dead primary
		// forever. An explicit -master stays pinned to that address.
		rediscover = opt.discover
	}
	w, err := swing.StartWorker(swing.WorkerConfig{
		DeviceID:          opt.id,
		MasterAddr:        masterAddr,
		App:               app,
		Transport:         opt.transport,
		SpeedFactor:       opt.speed,
		Reconnect:         opt.reconnect,
		ReconnectBackoff:  opt.reconnectBackoff,
		ReconnectAttempts: opt.reconnectAttempts,
		DiscoverAddr:      rediscover,
	})
	if err != nil {
		return err
	}
	fmt.Printf("worker %s joined %s (speed factor %.1f)\n", opt.id, masterAddr, opt.speed)

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- w.Wait() }()
	select {
	case <-interrupted:
		fmt.Println("leaving swarm")
		return w.Close()
	case err := <-done:
		if err != nil {
			// Terminal failure (e.g. reconnect budget exhausted): exit
			// non-zero so supervisors notice the worker fell out of the
			// swarm instead of reading it as a clean shutdown.
			return fmt.Errorf("worker terminated: %w (processed %d tuples)", err, w.Processed())
		}
		fmt.Printf("master closed the session; processed %d tuples\n", w.Processed())
		return nil
	}
}
