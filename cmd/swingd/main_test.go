package main

import (
	"testing"

	swing "github.com/swingframework/swing"
)

func TestLoadApp(t *testing.T) {
	for _, name := range []string{"facerec", "voicetrans"} {
		app, err := loadApp(name)
		if err != nil || app == nil {
			t.Fatalf("loadApp(%s): %v", name, err)
		}
	}
	if _, err := loadApp("bogus"); err == nil {
		t.Fatal("bogus app accepted")
	}
}

func TestRunRejectsBadRole(t *testing.T) {
	if err := run([]string{"-role", "gateway"}); err == nil {
		t.Fatal("bad role accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing role accepted")
	}
}

func TestRunWorkerNeedsID(t *testing.T) {
	if err := run([]string{"-role", "worker", "-master", "127.0.0.1:1"}); err == nil {
		t.Fatal("worker without id accepted")
	}
}

func TestRunWorkerDialFailure(t *testing.T) {
	// Port 1 is never listening; the dial must fail fast.
	if err := run([]string{"-role", "worker", "-id", "w", "-master", "127.0.0.1:1"}); err == nil {
		t.Fatal("dial to dead master succeeded")
	}
}

// TestRunWorkerInjectedDialFailure exercises the fault-injection flags:
// one injected dial failure without reconnection fails the worker fast,
// deterministically, before any real network traffic.
func TestRunWorkerInjectedDialFailure(t *testing.T) {
	err := run([]string{
		"-role", "worker", "-id", "w", "-master", "127.0.0.1:1",
		"-fault-dial-failures", "1",
	})
	if err == nil {
		t.Fatal("injected dial failure did not surface")
	}
}

func TestFaultTransportOffByDefault(t *testing.T) {
	if tr := faultTransport(swing.FaultConfig{Seed: 7}); tr != nil {
		t.Fatal("fault transport engaged with no faults configured")
	}
	if tr := faultTransport(swing.FaultConfig{DropEveryNth: 2}); tr == nil {
		t.Fatal("fault transport not engaged despite configured drops")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestMasterWorkerSession drives a short live session end to end through
// the daemon entry points.
func TestMasterWorkerSession(t *testing.T) {
	masterErr := make(chan error, 1)
	go func() {
		masterErr <- run([]string{
			"-role", "master", "-listen", "127.0.0.1:0",
			"-fps", "24", "-duration", "2s",
		})
	}()
	// The master picked a random port we cannot see from here; this test
	// only checks the master half runs to completion. (The runtime
	// package integration tests cover full sessions.)
	if err := <-masterErr; err != nil {
		t.Fatalf("master session: %v", err)
	}
}
