package main

import (
	"testing"

	swing "github.com/swingframework/swing"
)

func TestLoadApp(t *testing.T) {
	for _, name := range []string{"facerec", "voicetrans"} {
		app, err := loadApp(name)
		if err != nil || app == nil {
			t.Fatalf("loadApp(%s): %v", name, err)
		}
	}
	if _, err := loadApp("bogus"); err == nil {
		t.Fatal("bogus app accepted")
	}
}

func TestRunRejectsBadRole(t *testing.T) {
	if err := run([]string{"-role", "gateway"}); err == nil {
		t.Fatal("bad role accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing role accepted")
	}
}

func TestRunWorkerNeedsID(t *testing.T) {
	if err := run([]string{"-role", "worker", "-master", "127.0.0.1:1"}); err == nil {
		t.Fatal("worker without id accepted")
	}
}

func TestRunWorkerDialFailure(t *testing.T) {
	// Port 1 is never listening; the dial must fail fast.
	if err := run([]string{"-role", "worker", "-id", "w", "-master", "127.0.0.1:1"}); err == nil {
		t.Fatal("dial to dead master succeeded")
	}
}

// TestRunWorkerInjectedDialFailure exercises the fault-injection flags:
// one injected dial failure without reconnection fails the worker fast,
// deterministically, before any real network traffic.
func TestRunWorkerInjectedDialFailure(t *testing.T) {
	err := run([]string{
		"-role", "worker", "-id", "w", "-master", "127.0.0.1:1",
		"-fault-dial-failures", "1",
	})
	if err == nil {
		t.Fatal("injected dial failure did not surface")
	}
}

func TestFaultTransportOffByDefault(t *testing.T) {
	if tr := faultTransport(swing.FaultConfig{Seed: 7}); tr != nil {
		t.Fatal("fault transport engaged with no faults configured")
	}
	if tr := faultTransport(swing.FaultConfig{DropEveryNth: 2}); tr == nil {
		t.Fatal("fault transport not engaged despite configured drops")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunRejectsContradictoryFlags pins the flag cross-validation: the
// combinations below would each silently misbehave at runtime (a standby
// with nothing to mirror, a takeover timer nothing reads, a shaping pack
// that does not exist), so run must refuse them up front.
func TestRunRejectsContradictoryFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"standby without replicate-addr", []string{
			"-role", "master", "-standby", "-journal", "/tmp/j"}},
		{"standby without journal", []string{
			"-role", "master", "-standby", "-replicate-addr", "127.0.0.1:7717"}},
		{"takeover-after on non-standby", []string{
			"-role", "master", "-takeover-after", "1s"}},
		{"unknown shape pack", []string{
			"-role", "master", "-shape", "solar-flare"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Fatalf("contradictory flags accepted: %v", tc.args)
			}
		})
	}
}

// TestRunAcceptsContainmentFlags runs a short master session with every
// containment flag armed, proving the flags parse and wire through.
func TestRunAcceptsContainmentFlags(t *testing.T) {
	err := run([]string{
		"-role", "master", "-listen", "127.0.0.1:0",
		"-fps", "24", "-duration", "1s",
		"-op-deadline", "100ms", "-poison-attempts", "3", "-hedge-after", "500ms",
	})
	if err != nil {
		t.Fatalf("containment flags rejected: %v", err)
	}
}

// TestMasterWorkerSession drives a short live session end to end through
// the daemon entry points.
func TestMasterWorkerSession(t *testing.T) {
	masterErr := make(chan error, 1)
	go func() {
		masterErr <- run([]string{
			"-role", "master", "-listen", "127.0.0.1:0",
			"-fps", "24", "-duration", "2s",
		})
	}()
	// The master picked a random port we cannot see from here; this test
	// only checks the master half runs to completion. (The runtime
	// package integration tests cover full sessions.)
	if err := <-masterErr; err != nil {
		t.Fatalf("master session: %v", err)
	}
}
