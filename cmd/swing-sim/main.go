// Command swing-sim regenerates any single table or figure from the
// paper's evaluation on the simulated nine-device testbed.
//
// Usage:
//
//	swing-sim -exp fig4 [-seed 42] [-duration 300s]
//	swing-sim -list
//	swing-sim -policy LRS -app facerec -duration 120s   (one ad hoc run)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swing-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swing-sim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment to regenerate (table1, fig1, fig2, fig4..fig10)")
		list     = fs.Bool("list", false, "list available experiments")
		seed     = fs.Int64("seed", 42, "simulation seed")
		duration = fs.Duration("duration", 0, "override the experiment's default duration")
		policy   = fs.String("policy", "", "ad hoc run: routing policy (RR, PR, LR, PRS, LRS)")
		appName  = fs.String("app", "facerec", "ad hoc run: application (facerec or voicetrans)")
		jsonOut  = fs.Bool("json", false, "ad hoc run: emit the full result as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range swing.Experiments() {
			fmt.Println(name)
		}
		return nil
	}

	if *policy != "" {
		return adhoc(*policy, *appName, *seed, *duration, *jsonOut)
	}

	if *exp == "" {
		return fmt.Errorf("missing -exp (or -list, or -policy); try -exp fig4")
	}
	rep, err := swing.RunExperiment(*exp, swing.ExperimentOptions{Seed: *seed, Duration: *duration})
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	return nil
}

// adhoc runs one policy/app combination and prints a summary.
func adhoc(policyName, appName string, seed int64, duration time.Duration, jsonOut bool) error {
	p, err := swing.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	var app *swing.App
	switch appName {
	case "facerec":
		app, err = swing.FaceRecognition()
	case "voicetrans":
		app, err = swing.VoiceTranslation()
	default:
		return fmt.Errorf("unknown app %q (facerec or voicetrans)", appName)
	}
	if err != nil {
		return err
	}
	if duration == 0 {
		duration = 300 * time.Second
	}
	res, err := swing.RunSim(swing.TestbedConfig(app, p, seed, duration))
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("app=%s policy=%s duration=%s seed=%d\n", res.App, res.Policy, res.Duration, seed)
	fmt.Printf("throughput: %.2f FPS (target %.0f)\n", res.ThroughputFPS, app.TargetFPS)
	fmt.Printf("latency ms: mean=%.1f min=%.1f max=%.1f stddev=%.1f\n",
		res.Latency.Mean(), res.Latency.Min(), res.Latency.Max(), res.Latency.Stddev())
	fmt.Printf("power: %.2f W aggregate, %.2f FPS/W\n", res.AggregatePowerW, res.FPSPerWatt)
	fmt.Printf("frames: generated=%d delivered=%d dropped=%d lost=%d skipped=%d\n",
		res.Generated, res.Delivered, res.DroppedAtSource, res.LostOnLeave, res.SkippedByReorder)
	fmt.Println("per-device:")
	for _, id := range swing.WorkerIDs() {
		d := res.Devices[id]
		fmt.Printf("  %s: input=%.2f FPS cpu=%.0f%% power=%.2f W tx=%d B\n",
			id, d.SourceInputFPS, d.CPUUtil*100, d.TotalPowerW(), d.TxBytes)
	}
	return nil
}
