package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-duration", "10s"}); err != nil {
		t.Fatalf("run -exp table1: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunMissingArgs(t *testing.T) {
	err := run(nil)
	if err == nil {
		t.Fatal("empty invocation accepted")
	}
	if !strings.Contains(err.Error(), "-exp") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRunAdhoc(t *testing.T) {
	if err := run([]string{"-policy", "LRS", "-duration", "10s"}); err != nil {
		t.Fatalf("ad hoc run: %v", err)
	}
}

func TestRunAdhocBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "WRONG"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRunAdhocBadApp(t *testing.T) {
	if err := run([]string{"-policy", "LRS", "-app", "nonsense"}); err == nil {
		t.Fatal("bad app accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunAdhocJSON(t *testing.T) {
	if err := run([]string{"-policy", "RR", "-duration", "5s", "-json"}); err != nil {
		t.Fatalf("json run: %v", err)
	}
}
