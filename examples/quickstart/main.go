// Quickstart: compose a sensing app with the Swing API, start a live
// master and two workers in this process (over loopback TCP), stream
// frames through the swarm and print the in-order results.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's face-recognition app: source → detect → recognize →
	// display, 6 kB frames at 24 FPS.
	app, err := swing.FaceRecognition()
	if err != nil {
		return err
	}

	// Master: hosts the source and the sink; results arrive in playback
	// order thanks to the reorder buffer.
	results := make(chan swing.LiveResult, 256)
	master, err := swing.StartMaster(swing.MasterConfig{
		App:        app,
		Policy:     swing.LRS,
		ListenAddr: "127.0.0.1:0",
		OnResult:   func(r swing.LiveResult) { results <- r },
	})
	if err != nil {
		return err
	}
	defer func() { _ = master.Close() }()
	fmt.Println("master listening on", master.Addr())

	// Two workers join the swarm; the second is artificially 4x slower,
	// so LRS will shift most frames to the fast one.
	for _, w := range []struct {
		id    string
		speed float64
	}{{"phone-fast", 1}, {"phone-slow", 4}} {
		worker, err := swing.StartWorker(swing.WorkerConfig{
			DeviceID:    w.id,
			MasterAddr:  master.Addr(),
			App:         app,
			SpeedFactor: w.speed,
		})
		if err != nil {
			return err
		}
		defer func() { _ = worker.Close() }()
	}
	// Wait for both joins.
	for len(master.Workers()) < 2 {
		time.Sleep(10 * time.Millisecond)
	}

	// Stream two seconds of video.
	const frames = 48
	src := swing.NewFrameSource(app.FrameBytes, 7)
	ticker := time.NewTicker(time.Second / 24)
	defer ticker.Stop()
	for i := 0; i < frames; i++ {
		<-ticker.C
		if err := master.Submit(src.Next()); err != nil {
			return fmt.Errorf("submit: %w", err)
		}
	}

	// Collect in-order results.
	byWorker := map[string]int{}
	for i := 0; i < frames; i++ {
		select {
		case r := <-results:
			name, err := r.Tuple.MustString("result")
			if err != nil {
				return err
			}
			if r.Tuple.SeqNo%12 == 0 {
				fmt.Printf("frame %2d: recognized %q on %s (%.0f ms)\n",
					r.Tuple.SeqNo, name, r.Worker,
					float64(r.Latency)/float64(time.Millisecond))
			}
			byWorker[r.Worker]++
		case <-time.After(5 * time.Second):
			st := master.Stats()
			fmt.Printf("timed out waiting for results: %+v\n", st)
			return nil
		}
	}
	fmt.Println("\nload split (LRS avoids the slow device):")
	for id, n := range byWorker {
		fmt.Printf("  %-10s %d frames\n", id, n)
	}
	return nil
}
