// Cloudlet mode (simulated): the paper notes (§II) that Swing supports a
// "cloudlet mode" when edge infrastructure happens to be available. This
// example shows why no special support is needed: an edge server joins
// the swarm as just another worker, LRS measures its latency like any
// phone's, and the stream migrates to it — slashing phone battery drain —
// while the phones instantly absorb the load again if the cloudlet
// disappears.
//
// Run with: go run ./examples/cloudlet
package main

import (
	"fmt"
	"log"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := swing.FaceRecognition()
	if err != nil {
		return err
	}

	profiles := swing.TestbedProfiles()
	// An edge server in the room: an order of magnitude faster than the
	// best phone, wall powered.
	cloudlet := swing.DeviceProfile{
		ID: "X", Model: "Edge Server", Capability: 140, Cores: 16,
		Power: profiles["H"].Power, // placeholder; wall power is free anyway
	}
	profiles["X"] = cloudlet

	cfg := swing.TestbedConfig(app, swing.LRS, 21, 90*time.Second)
	cfg.Profiles = profiles
	cfg.Workers = []string{"G", "H", "I"}
	cfg.Script = []swing.SimScriptEvent{
		{At: 30 * time.Second, Action: swing.ActionJoin, Device: "X"},
		{At: 60 * time.Second, Action: swing.ActionLeave, Device: "X"},
	}

	res, err := swing.RunSim(cfg)
	if err != nil {
		return err
	}

	fmt.Println("timeline: phones alone → cloudlet joins at 30s → leaves at 60s")
	fmt.Println()
	fmt.Println("  window       overall FPS   cloudlet share")
	for t := 10 * time.Second; t <= 90*time.Second; t += 10 * time.Second {
		from := t - 10*time.Second
		share := 0.0
		if s, ok := res.SourceInput["X"]; ok {
			share = s.MeanBetween(from, t)
		}
		fmt.Printf("  %2.0f-%2.0fs       %5.1f        %5.1f FPS\n",
			from.Seconds(), t.Seconds(), res.Throughput.MeanBetween(from, t), share)
	}
	fmt.Println()
	fmt.Printf("frames lost when the cloudlet vanished: %d (phones re-absorbed the stream)\n",
		res.LostOnLeave)
	return nil
}
