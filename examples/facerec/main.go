// Collaborative face recognition on the paper's nine-device testbed
// (simulated): the scenario from the paper's introduction — a security
// team patrols a route and pools its phones to analyze a 24 FPS video
// stream none of the devices could handle alone.
//
// The example runs the swarm once under round-robin (the data-center
// default) and once under Swing's LRS, and prints the comparison the
// paper's Figure 4 makes.
//
// Run with: go run ./examples/facerec
package main

import (
	"fmt"
	"log"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := swing.FaceRecognition()
	if err != nil {
		return err
	}

	fmt.Println("swarm: 8 heterogeneous phones/tablets, B/C/D in weak Wi-Fi spots")
	fmt.Printf("workload: %d-byte video frames at %.0f FPS\n\n", app.FrameBytes, app.TargetFPS)

	type outcome struct {
		policy swing.Policy
		res    *swing.SimResult
	}
	var outcomes []outcome
	for _, p := range []swing.Policy{swing.RR, swing.LRS} {
		res, err := swing.RunSim(swing.TestbedConfig(app, p, 42, 120*time.Second))
		if err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{policy: p, res: res})
	}

	for _, o := range outcomes {
		res := o.res
		fmt.Printf("--- %s ---\n", o.policy)
		fmt.Printf("throughput: %6.2f FPS  (target %.0f: %s)\n",
			res.ThroughputFPS, app.TargetFPS, verdict(res.MeetsTarget(app.TargetFPS, 0.05)))
		fmt.Printf("latency:    %6.0f ms mean, %6.0f ms worst\n",
			res.Latency.Mean(), res.Latency.Max())
		fmt.Printf("energy:     %6.2f W across the swarm, %.2f FPS/W\n",
			res.AggregatePowerW, res.FPSPerWatt)
		fmt.Println("per-device share of the stream:")
		for _, id := range swing.WorkerIDs() {
			d := res.Devices[id]
			bar := ""
			for i := 0; i < int(d.SourceInputFPS); i++ {
				bar += "#"
			}
			fmt.Printf("  %s %5.1f FPS %s\n", id, d.SourceInputFPS, bar)
		}
		fmt.Println()
	}

	rr, lrs := outcomes[0].res, outcomes[1].res
	fmt.Printf("LRS vs RR: %.1fx throughput, %.1fx lower latency (paper: 2.7x, 6.7x)\n",
		lrs.ThroughputFPS/rr.ThroughputFPS, rr.Latency.Mean()/lrs.Latency.Mean())
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "met"
	}
	return "MISSED"
}
