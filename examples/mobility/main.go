// Mobility handling (simulated): the paper's Figure 10 scenario — three
// phones share a face-recognition stream while one user walks away from
// the access point, through fair signal into a weak-signal corner. LRS
// notices the rising latencies and shifts the walker's share to the
// devices that stayed behind.
//
// Run with: go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := swing.FaceRecognition()
	if err != nil {
		return err
	}

	walk, err := swing.NewWalk([]swing.MobilityEpoch{
		{Until: 60 * time.Second, RSSI: swing.RSSIGood},
		{Until: 120 * time.Second, RSSI: swing.RSSIFair},
		{Until: 180 * time.Second, RSSI: swing.RSSIBad},
	})
	if err != nil {
		return err
	}

	cfg := swing.TestbedConfig(app, swing.LRS, 11, 180*time.Second)
	cfg.Workers = []string{"B", "G", "H"}
	cfg.Mobility = map[string]swing.Mobility{"G": walk}
	cfg.InputFPS = 20

	res, err := swing.RunSim(cfg)
	if err != nil {
		return err
	}

	fmt.Println("G walks: good signal (0-60s) → fair (60-120s) → bad (120-180s)")
	fmt.Println()
	fmt.Println("per-device input rate, 15 s windows:")
	fmt.Println("  t(s)   overall   B       G       H")
	for t := 15 * time.Second; t <= 180*time.Second; t += 15 * time.Second {
		from := t - 15*time.Second
		row := fmt.Sprintf("  %3.0f    %5.1f  ", t.Seconds(),
			res.Throughput.MeanBetween(from, t))
		for _, id := range []string{"B", "G", "H"} {
			fps := res.SourceInput[id].MeanBetween(from, t)
			row += fmt.Sprintf("%5.1f %s ", fps, spark(fps))
		}
		fmt.Println(row)
	}
	fmt.Println()
	gStart := res.SourceInput["G"].MeanBetween(10*time.Second, 60*time.Second)
	gEnd := res.SourceInput["G"].MeanBetween(130*time.Second, 180*time.Second)
	fmt.Printf("G's share: %.1f FPS in good signal → %.1f FPS in bad signal\n", gStart, gEnd)
	fmt.Printf("overall throughput held at %.1f FPS through the walk\n",
		res.Throughput.MeanBetween(130*time.Second, 180*time.Second))
	return nil
}

// spark renders a small load bar.
func spark(fps float64) string {
	n := int(fps / 2)
	if n > 8 {
		n = 8
	}
	return strings.Repeat("▌", n)
}
