// Collaborative voice translation with swarm dynamics (simulated): a
// group of travelers pools their phones to translate a native speaker in
// real time — the paper's second motivating scenario — while group
// members join and leave mid-conversation.
//
// Run with: go run ./examples/translation
package main

import (
	"fmt"
	"log"
	"time"

	swing "github.com/swingframework/swing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := swing.VoiceTranslation()
	if err != nil {
		return err
	}

	// Start with three travelers' phones; two more arrive at t=30 s and
	// one leaves abruptly at t=60 s (battery died).
	cfg := swing.TestbedConfig(app, swing.LRS, 7, 90*time.Second)
	cfg.Workers = []string{"G", "H", "I"}
	cfg.Script = []swing.SimScriptEvent{
		{At: 30 * time.Second, Action: swing.ActionJoin, Device: "B"},
		{At: 30 * time.Second, Action: swing.ActionJoin, Device: "F"},
		{At: 60 * time.Second, Action: swing.ActionLeave, Device: "H"},
	}
	// Everyone huddles around the speaker: good signal for all.
	cfg.Mobility = nil

	res, err := swing.RunSim(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("voice translation, %d-byte audio frames at %.0f FPS target\n\n",
		app.FrameBytes, app.TargetFPS)
	fmt.Println("phase timeline (1 s windows):")
	fmt.Println("  t=0s    G,H,I translating")
	fmt.Println("  t=30s   B and F join the group")
	fmt.Println("  t=60s   H's battery dies (abrupt leave)")
	fmt.Println()

	phases := []struct {
		name     string
		from, to time.Duration
	}{
		{"3 phones ", 5 * time.Second, 30 * time.Second},
		{"5 phones ", 35 * time.Second, 60 * time.Second},
		{"4 phones ", 65 * time.Second, 90 * time.Second},
	}
	for _, ph := range phases {
		fps := res.Throughput.MeanBetween(ph.from, ph.to)
		fmt.Printf("  %s %5.1f FPS sustained\n", ph.name, fps)
	}
	fmt.Printf("\nframes lost when H died: %d (recovered in about a second)\n", res.LostOnLeave)
	fmt.Printf("end-to-end latency: %.0f ms mean\n", res.Latency.Mean())
	fmt.Printf("swarm energy: %.2f W, %.2f frames per joule-second\n",
		res.AggregatePowerW, res.FPSPerWatt)
	return nil
}
