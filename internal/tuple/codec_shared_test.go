package tuple

import (
	"bytes"
	"testing"
)

func sampleTuple() *Tuple {
	t := New(7, 3)
	t.EmitNanos = 555
	t.Attempt = 1
	t.Set("frame", Bytes([]byte{1, 2, 3, 4}))
	t.Set("camera", String("rear"))
	t.Set("ts", Int64(99))
	return t
}

// TestAppendMarshalMatchesMarshal: the append-based encoder must emit
// byte-identical output after any prefix.
func TestAppendMarshalMatchesMarshal(t *testing.T) {
	tp := sampleTuple()
	plain, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	appended, err := AppendMarshal([]byte("prefix"), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[len("prefix"):], plain) {
		t.Fatal("AppendMarshal output differs from Marshal")
	}
	// Reusing the same buffer must not corrupt the second encoding.
	buf := appended[:0]
	buf, err = AppendMarshal(buf, tp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, plain) {
		t.Fatal("AppendMarshal into reused buffer differs")
	}
}

// TestUnmarshalSharedAliases: the zero-copy decoder must alias byte
// fields into the input buffer, and the regular decoder must not.
func TestUnmarshalSharedAliases(t *testing.T) {
	data, err := Marshal(sampleTuple())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := UnmarshalShared(data)
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Equal(sampleTuple()) {
		t.Fatal("shared decode mismatch")
	}
	sb, err := shared.MustBytes("frame")
	if err != nil {
		t.Fatal(err)
	}
	owned, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := owned.MustBytes("frame")
	if err != nil {
		t.Fatal(err)
	}
	// Mutate through the shared view: the input buffer must change (they
	// alias), while the owned decode must be unaffected.
	before := append([]byte(nil), data...)
	sb[0] = 0xFF
	if bytes.Equal(data, before) {
		t.Fatal("shared bytes do not alias input")
	}
	if ob[0] == 0xFF {
		t.Fatal("owned bytes alias input")
	}
}

// TestUnmarshalSharedAllocs pins the decode allocation budget for the
// worker's hot path: tuple (with inline field storage), interned names,
// aliased bytes — only the string field's copy and the tuple itself
// should allocate.
func TestUnmarshalSharedAllocs(t *testing.T) {
	data, err := Marshal(sampleTuple())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the name-intern table outside the measured window.
	if _, err := UnmarshalShared(data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := UnmarshalShared(data); err != nil {
			t.Fatal(err)
		}
	})
	// 1 tuple + 1 string-field copy.
	if allocs > 2 {
		t.Fatalf("UnmarshalShared allocates %.1f/op, want <= 2", allocs)
	}
}

// TestMarshalAllocs: encoding must allocate only the output buffer.
func TestMarshalAllocs(t *testing.T) {
	tp := sampleTuple()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Marshal(tp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Marshal allocates %.1f/op, want <= 1", allocs)
	}
	// And AppendMarshal into a pre-sized buffer must not allocate at all.
	buf := make([]byte, 0, tp.WireSize())
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := AppendMarshal(buf[:0], tp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendMarshal allocates %.1f/op, want 0", allocs)
	}
}

// TestValidateManyFields keeps the map-based duplicate check for large
// tuples honest (the alloc-free fast path only covers small ones).
func TestValidateManyFields(t *testing.T) {
	big := New(1, 1)
	for i := 0; i < 20; i++ {
		big.Set(string(rune('a'+i)), Int64(int64(i)))
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	big.fields = append(big.fields, Field{Name: "a", Value: Int64(0)})
	if err := big.Validate(); err == nil {
		t.Fatal("duplicate in large tuple accepted")
	}
}
