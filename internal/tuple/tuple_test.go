package tuple

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	tp := New(1, 2)
	tp.Set("frame", Bytes([]byte{1, 2, 3}))
	tp.Set("name", String("alice"))

	b, err := tp.MustBytes("frame")
	if err != nil {
		t.Fatalf("MustBytes: %v", err)
	}
	if len(b) != 3 || b[0] != 1 {
		t.Fatalf("bytes = %v", b)
	}
	s, err := tp.MustString("name")
	if err != nil {
		t.Fatalf("MustString: %v", err)
	}
	if s != "alice" {
		t.Fatalf("string = %q", s)
	}
}

func TestSetReplaces(t *testing.T) {
	tp := New(1, 1)
	tp.Set("x", Int64(1))
	tp.Set("x", Int64(2))
	if tp.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tp.Len())
	}
	v, err := tp.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt64(); i != 2 {
		t.Fatalf("x = %d, want 2", i)
	}
}

func TestGetMissing(t *testing.T) {
	tp := New(1, 1)
	if _, err := tp.Get("missing"); !errors.Is(err, ErrNoField) {
		t.Fatalf("err = %v, want ErrNoField", err)
	}
}

func TestMustBytesWrongKind(t *testing.T) {
	tp := New(1, 1)
	tp.Set("x", String("not bytes"))
	if _, err := tp.MustBytes("x"); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
	tp.Set("y", Bytes(nil))
	if _, err := tp.MustString("y"); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		size int
	}{
		{Bytes([]byte{1, 2}), KindBytes, 2},
		{String("abc"), KindString, 3},
		{Int64(-7), KindInt64, 8},
		{Float64(3.5), KindFloat64, 8},
		{Bool(true), KindBool, 1},
		{FloatMatrix(NewMatrix(2, 3)), KindFloatMatrix, 8 + 48},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
		if c.v.WireSize() != c.size {
			t.Errorf("%v WireSize() = %d, want %d", c.kind, c.v.WireSize(), c.size)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindBytes; k <= KindFloatMatrix; k++ {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should embed its numeric value")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 4.5)
	if m.At(1, 0) != 4.5 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("At(0,0) = %v", m.At(0, 0))
	}
}

func TestCloneIsDeep(t *testing.T) {
	tp := New(9, 10)
	tp.EmitNanos = 1234
	raw := []byte{1, 2, 3}
	m := NewMatrix(1, 2)
	m.Set(0, 0, 7)
	tp.Set("frame", Bytes(raw))
	tp.Set("feat", FloatMatrix(m))

	c := tp.Clone()
	if !c.Equal(tp) {
		t.Fatal("clone not equal to original")
	}
	raw[0] = 99
	m.Set(0, 0, 99)
	cb, err := c.MustBytes("frame")
	if err != nil {
		t.Fatal(err)
	}
	if cb[0] != 1 {
		t.Fatal("clone shares byte payload with original")
	}
	cv, err := c.Get("feat")
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := cv.AsFloatMatrix()
	if cm.At(0, 0) != 7 {
		t.Fatal("clone shares matrix payload with original")
	}
}

func TestValidateDuplicate(t *testing.T) {
	tp := New(1, 1)
	tp.fields = append(tp.fields, Field{Name: "a", Value: Int64(1)}, Field{Name: "a", Value: Int64(2)})
	if err := tp.Validate(); !errors.Is(err, ErrDupField) {
		t.Fatalf("err = %v, want ErrDupField", err)
	}
}

func TestValidateZeroKind(t *testing.T) {
	tp := New(1, 1)
	tp.fields = append(tp.fields, Field{Name: "a"})
	if err := tp.Validate(); err == nil {
		t.Fatal("zero-kind field passed validation")
	}
}

func TestValidateNil(t *testing.T) {
	var tp *Tuple
	if err := tp.Validate(); !errors.Is(err, ErrNilTuple) {
		t.Fatalf("err = %v, want ErrNilTuple", err)
	}
}

func roundTrip(t *testing.T, tp *Tuple) *Tuple {
	t.Helper()
	data, err := Marshal(tp)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(data) != tp.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(data), tp.WireSize())
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Equal(tp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tp)
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.5
	}
	tp := New(42, 7)
	tp.EmitNanos = -5
	tp.Attempt = 2
	tp.Set("frame", Bytes([]byte{0, 255, 127}))
	tp.Set("label", String("héllo wörld"))
	tp.Set("count", Int64(math.MinInt64))
	tp.Set("score", Float64(math.Inf(-1)))
	tp.Set("ok", Bool(true))
	tp.Set("feat", FloatMatrix(m))
	roundTrip(t, tp)
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, New(0, 0))
}

func TestRoundTripNaN(t *testing.T) {
	tp := New(1, 1)
	tp.Set("nan", Float64(math.NaN()))
	roundTrip(t, tp)
}

func TestRoundTripEmptyPayloads(t *testing.T) {
	tp := New(1, 1)
	tp.Set("b", Bytes(nil))
	tp.Set("s", String(""))
	tp.Set("m", FloatMatrix(NewMatrix(0, 0)))
	roundTrip(t, tp)
}

func TestMarshalNil(t *testing.T) {
	if _, err := Marshal(nil); !errors.Is(err, ErrNilTuple) {
		t.Fatalf("err = %v, want ErrNilTuple", err)
	}
}

func TestMarshalBadMatrixShape(t *testing.T) {
	tp := New(1, 1)
	tp.Set("m", FloatMatrix(&Matrix{Rows: 2, Cols: 2, Data: make([]float64, 3)}))
	if _, err := Marshal(tp); err == nil {
		t.Fatal("mis-shaped matrix marshaled without error")
	}
}

func TestMarshalLongFieldName(t *testing.T) {
	tp := New(1, 1)
	tp.Set(strings.Repeat("x", 256), Int64(1))
	if _, err := Marshal(tp); err == nil {
		t.Fatal("256-char field name marshaled without error")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	tp := New(3, 4)
	tp.Set("frame", Bytes(make([]byte, 100)))
	data, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, headerSize - 1, headerSize, headerSize + 3, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("Unmarshal of %d/%d bytes succeeded", cut, len(data))
		}
	}
}

func TestUnmarshalTrailingGarbage(t *testing.T) {
	data, err := Marshal(New(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(data, 0xde, 0xad)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalBadKind(t *testing.T) {
	tp := New(1, 1)
	tp.Set("x", Bool(false))
	data, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the kind byte (header + nameLen + name).
	data[headerSize+1+1] = 200
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("unknown kind byte accepted")
	}
}

func TestUnmarshalOversizedLengthPrefix(t *testing.T) {
	tp := New(1, 1)
	tp.Set("b", Bytes([]byte{1}))
	data, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	// Length prefix sits after header + nameLen(1) + name(1) + kind(1).
	off := headerSize + 3
	data[off] = 0xff
	data[off+1] = 0xff
	data[off+2] = 0xff
	data[off+3] = 0xff
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func TestUnmarshalDoesNotAliasInput(t *testing.T) {
	tp := New(1, 1)
	tp.Set("b", Bytes([]byte{10, 20}))
	data, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0
	}
	b, err := got.MustBytes("b")
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 10 || b[1] != 20 {
		t.Fatal("decoded tuple aliases input buffer")
	}
}

// TestRoundTripProperty fuzzes tuples with random field mixes through the
// codec and requires exact equality after a round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(id, seq uint64, emit int64, blob []byte, s string, i int64, fl float64, flag bool) bool {
		tp := New(id, seq)
		tp.EmitNanos = emit
		tp.Set("blob", Bytes(blob))
		tp.Set("s", String(s))
		tp.Set("i", Int64(i))
		tp.Set("f", Float64(fl))
		tp.Set("flag", Bool(flag))
		data, err := Marshal(tp)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got.Equal(tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalNeverPanicsProperty feeds random byte soup to Unmarshal; it
// must return an error or a valid tuple, never panic.
func TestUnmarshalNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		got, err := Unmarshal(junk)
		if err != nil {
			return true
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	f := func(blob []byte, s string) bool {
		tp := New(1, 2)
		tp.Set("b", Bytes(blob))
		tp.Set("s", String(s))
		data, err := Marshal(tp)
		if err != nil {
			return false
		}
		return len(data) == tp.WireSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalVideoFrame(b *testing.B) {
	// The paper's face-recognition frames are 6.0 kB (400x226 px).
	tp := New(1, 1)
	tp.Set("frame", Bytes(make([]byte, 6000)))
	tp.Set("camera", String("A"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(tp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalVideoFrame(b *testing.B) {
	tp := New(1, 1)
	tp.Set("frame", Bytes(make([]byte, 6000)))
	tp.Set("camera", String("A"))
	data, err := Marshal(tp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
