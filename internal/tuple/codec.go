package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Wire format (all integers little-endian):
//
//	header:  id u64 | seq u64 | emitNanos i64 | attempt u8 | nfields u16
//	field:   nameLen u8 | name | kind u8 | payload
//	payload: bytes/string: len u32 | data
//	         int64/float64: 8 bytes
//	         bool: 1 byte
//	         matrix: rows u32 | cols u32 | rows*cols float64
//
// The format is versionless by design: both ends of a Swing deployment run
// the same app binary (the paper's workflow installs the same app on every
// device), so there is no cross-version framing to negotiate.

const headerSize = 8 + 8 + 8 + 1 + 2

const (
	maxFieldName = 255
	maxFields    = 1 << 16

	// maxPayload bounds a single field payload (64 MiB); it protects
	// receivers against corrupt or hostile length prefixes.
	maxPayload = 64 << 20
)

func fieldFraming(f Field) int {
	n := 1 + len(f.Name) + 1 // nameLen, name, kind
	switch f.Value.kind {
	case KindBytes:
		n += 4 + len(f.Value.b)
	case KindString:
		n += 4 + len(f.Value.s)
	case KindInt64, KindFloat64:
		n += 8
	case KindBool:
		n++
	case KindFloatMatrix:
		n += 8
		if f.Value.m != nil {
			n += 8 * len(f.Value.m.Data)
		}
	}
	return n
}

// Marshal serializes the tuple into a fresh byte slice.
func Marshal(t *Tuple) ([]byte, error) {
	if t == nil {
		return nil, ErrNilTuple
	}
	return AppendMarshal(make([]byte, 0, t.WireSize()), t)
}

// AppendMarshal appends the tuple's encoding to dst and returns the
// extended slice, so hot paths can serialize into pooled or reused
// buffers. On error the returned slice may carry a partial encoding;
// callers should truncate back to the original length before reuse.
func AppendMarshal(dst []byte, t *Tuple) ([]byte, error) {
	if t == nil {
		return dst, ErrNilTuple
	}
	if err := t.Validate(); err != nil {
		return dst, err
	}
	if len(t.fields) >= maxFields {
		return dst, fmt.Errorf("tuple: %d fields exceeds limit", len(t.fields))
	}
	buf := dst
	buf = binary.LittleEndian.AppendUint64(buf, t.ID)
	buf = binary.LittleEndian.AppendUint64(buf, t.SeqNo)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.EmitNanos))
	buf = append(buf, t.Attempt)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.fields)))
	for _, f := range t.fields {
		if len(f.Name) > maxFieldName {
			return buf, fmt.Errorf("tuple: field name %q too long", f.Name)
		}
		buf = append(buf, byte(len(f.Name)))
		buf = append(buf, f.Name...)
		buf = append(buf, byte(f.Value.kind))
		switch f.Value.kind {
		case KindBytes:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Value.b)))
			buf = append(buf, f.Value.b...)
		case KindString:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Value.s)))
			buf = append(buf, f.Value.s...)
		case KindInt64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Value.i))
		case KindFloat64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.Value.f))
		case KindBool:
			if f.Value.yes {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case KindFloatMatrix:
			m := f.Value.m
			if m == nil {
				m = &Matrix{}
			}
			if m.Rows < 0 || m.Cols < 0 || m.Rows*m.Cols != len(m.Data) {
				return buf, fmt.Errorf("tuple: field %q matrix shape %dx%d does not match %d elements",
					f.Name, m.Rows, m.Cols, len(m.Data))
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
			for _, v := range m.Data {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		default:
			return buf, fmt.Errorf("tuple: field %q has unsupported kind %v", f.Name, f.Value.kind)
		}
	}
	return buf, nil
}

// Field names recur on every tuple of a stream (the same few names,
// millions of tuples), so decoding interns them instead of allocating a
// fresh string per field. The table is bounded: hostile streams with
// unbounded distinct names fall back to plain allocation once it fills.
const internCap = 1024

var (
	internMu    sync.RWMutex
	internTable = make(map[string]string)
)

func internName(b []byte) string {
	internMu.RLock()
	s, ok := internTable[string(b)] // compiler avoids allocating the key
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTable) < internCap {
		internTable[s] = s
	}
	internMu.Unlock()
	return s
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf))
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Unmarshal parses a tuple from data. The returned tuple owns copies of all
// payloads; data may be reused afterwards.
func Unmarshal(data []byte) (*Tuple, error) {
	return unmarshal(data, false)
}

// UnmarshalShared parses a tuple whose byte-array fields alias data
// instead of copying it. The caller must keep data alive and unmutated
// for as long as the tuple (or anything derived from its bytes fields)
// is in use — e.g. a pooled frame buffer may only be released after the
// tuple has been fully processed. All other field kinds are owned by
// the tuple as with Unmarshal.
func UnmarshalShared(data []byte) (*Tuple, error) {
	return unmarshal(data, true)
}

func unmarshal(data []byte, share bool) (*Tuple, error) {
	r := &reader{buf: data}
	id, err := r.u64()
	if err != nil {
		return nil, err
	}
	seq, err := r.u64()
	if err != nil {
		return nil, err
	}
	emit, err := r.u64()
	if err != nil {
		return nil, err
	}
	attempt, err := r.u8()
	if err != nil {
		return nil, err
	}
	nf, err := r.u16()
	if err != nil {
		return nil, err
	}
	t := &Tuple{ID: id, SeqNo: seq, EmitNanos: int64(emit), Attempt: attempt}
	if int(nf) <= len(t.farr) {
		t.fields = t.farr[:0]
	} else {
		t.fields = make([]Field, 0, nf)
	}
	for i := 0; i < int(nf); i++ {
		nameLen, err := r.u8()
		if err != nil {
			return nil, err
		}
		nameBytes, err := r.need(int(nameLen))
		if err != nil {
			return nil, err
		}
		name := internName(nameBytes)
		kindByte, err := r.u8()
		if err != nil {
			return nil, err
		}
		kind := Kind(kindByte)
		var v Value
		switch kind {
		case KindBytes:
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			if n > maxPayload {
				return nil, fmt.Errorf("tuple: field %q payload %d exceeds limit", name, n)
			}
			raw, err := r.need(int(n))
			if err != nil {
				return nil, err
			}
			if share {
				v = Bytes(raw)
			} else {
				b := make([]byte, n)
				copy(b, raw)
				v = Bytes(b)
			}
		case KindString:
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			if n > maxPayload {
				return nil, fmt.Errorf("tuple: field %q payload %d exceeds limit", name, n)
			}
			raw, err := r.need(int(n))
			if err != nil {
				return nil, err
			}
			v = String(string(raw))
		case KindInt64:
			u, err := r.u64()
			if err != nil {
				return nil, err
			}
			v = Int64(int64(u))
		case KindFloat64:
			u, err := r.u64()
			if err != nil {
				return nil, err
			}
			v = Float64(math.Float64frombits(u))
		case KindBool:
			b, err := r.u8()
			if err != nil {
				return nil, err
			}
			v = Bool(b != 0)
		case KindFloatMatrix:
			rows, err := r.u32()
			if err != nil {
				return nil, err
			}
			cols, err := r.u32()
			if err != nil {
				return nil, err
			}
			total := uint64(rows) * uint64(cols)
			if total*8 > maxPayload {
				return nil, fmt.Errorf("tuple: field %q matrix %dx%d exceeds limit", name, rows, cols)
			}
			m := &Matrix{Rows: int(rows), Cols: int(cols), Data: make([]float64, total)}
			for j := range m.Data {
				u, err := r.u64()
				if err != nil {
					return nil, err
				}
				m.Data[j] = math.Float64frombits(u)
			}
			v = FloatMatrix(m)
		default:
			return nil, fmt.Errorf("tuple: field %q has unknown kind byte %d", name, kindByte)
		}
		t.fields = append(t.fields, Field{Name: name, Value: v})
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("tuple: %d trailing bytes after decode", len(data)-r.off)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
