package tuple

import (
	"errors"
	"testing"
)

func videoSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema().
		Field("frame", KindBytes).
		Field("camera", KindString).
		Optional("gps", KindFloatMatrix).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func TestSchemaCheckOK(t *testing.T) {
	s := videoSchema(t)
	tp := New(1, 1)
	tp.Set("frame", Bytes([]byte{1}))
	tp.Set("camera", String("A"))
	if err := s.Check(tp); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// With the optional field present too.
	tp.Set("gps", FloatMatrix(NewMatrix(1, 2)))
	if err := s.Check(tp); err != nil {
		t.Fatalf("Check with optional: %v", err)
	}
}

func TestSchemaMissingRequired(t *testing.T) {
	s := videoSchema(t)
	tp := New(1, 1)
	tp.Set("frame", Bytes([]byte{1}))
	if err := s.Check(tp); !errors.Is(err, ErrSchemaViolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchemaWrongKind(t *testing.T) {
	s := videoSchema(t)
	tp := New(1, 1)
	tp.Set("frame", String("not bytes"))
	tp.Set("camera", String("A"))
	if err := s.Check(tp); !errors.Is(err, ErrSchemaViolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchemaUndeclaredField(t *testing.T) {
	s := videoSchema(t)
	tp := New(1, 1)
	tp.Set("frame", Bytes(nil))
	tp.Set("camera", String("A"))
	tp.Set("rogue", Int64(1))
	if err := s.Check(tp); !errors.Is(err, ErrSchemaViolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchemaNilTuple(t *testing.T) {
	s := videoSchema(t)
	if err := s.Check(nil); !errors.Is(err, ErrNilTuple) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchemaBuilderErrors(t *testing.T) {
	if _, err := NewSchema().Field("", KindBytes).Build(); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewSchema().Field("x", Kind(0)).Build(); err == nil {
		t.Fatal("invalid kind accepted")
	}
	_, err := NewSchema().Field("x", KindBytes).Field("x", KindString).Build()
	if !errors.Is(err, ErrSchemaDup) {
		t.Fatalf("dup err = %v", err)
	}
}

func TestSchemaFieldsOrder(t *testing.T) {
	s := videoSchema(t)
	fields := s.Fields()
	want := []string{"frame", "camera", "gps"}
	if len(fields) != len(want) {
		t.Fatalf("fields = %v", fields)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Fatalf("fields = %v, want %v", fields, want)
		}
	}
}

func TestSchemaEmptyAcceptsEmptyTuple(t *testing.T) {
	s, err := NewSchema().Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Check(New(1, 1)); err != nil {
		t.Fatalf("empty schema vs empty tuple: %v", err)
	}
	tp := New(1, 1)
	tp.Set("x", Int64(1))
	if err := s.Check(tp); err == nil {
		t.Fatal("empty schema accepted a field")
	}
}
