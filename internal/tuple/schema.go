package tuple

import (
	"errors"
	"fmt"
	"strings"
)

// Schema declares the structure of tuples flowing along a graph edge, the
// way the paper's API defines the tuple layout up front ("first part: a
// byte array, second part: a string"). A schema is an ordered list of
// (name, kind) pairs; Check verifies a tuple conforms.
type Schema struct {
	fields []schemaField
}

type schemaField struct {
	name     string
	kind     Kind
	optional bool
}

// Schema errors.
var (
	ErrSchemaViolation = errors.New("tuple: schema violation")
	ErrSchemaDup       = errors.New("tuple: duplicate schema field")
)

// SchemaBuilder composes a Schema.
type SchemaBuilder struct {
	s    Schema
	errs []error
}

// NewSchema starts composing a schema.
func NewSchema() *SchemaBuilder { return &SchemaBuilder{} }

// Field adds a required field of the given kind.
func (b *SchemaBuilder) Field(name string, kind Kind) *SchemaBuilder {
	return b.add(name, kind, false)
}

// Optional adds a field that tuples may omit.
func (b *SchemaBuilder) Optional(name string, kind Kind) *SchemaBuilder {
	return b.add(name, kind, true)
}

func (b *SchemaBuilder) add(name string, kind Kind, optional bool) *SchemaBuilder {
	if name == "" {
		b.errs = append(b.errs, errors.New("tuple: empty schema field name"))
		return b
	}
	if kind < KindBytes || kind > KindFloatMatrix {
		b.errs = append(b.errs, fmt.Errorf("tuple: schema field %q has invalid kind %d", name, kind))
		return b
	}
	for _, f := range b.s.fields {
		if f.name == name {
			b.errs = append(b.errs, fmt.Errorf("%w: %q", ErrSchemaDup, name))
			return b
		}
	}
	b.s.fields = append(b.s.fields, schemaField{name: name, kind: kind, optional: optional})
	return b
}

// Build returns the composed schema or the first accumulated error.
func (b *SchemaBuilder) Build() (*Schema, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	s := b.s // copy
	return &s, nil
}

// Fields returns the schema's field names in declaration order.
func (s *Schema) Fields() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.name
	}
	return out
}

// Check verifies the tuple conforms: every required field is present with
// the declared kind, optional fields (when present) have the declared
// kind, and the tuple carries no undeclared fields.
func (s *Schema) Check(t *Tuple) error {
	if t == nil {
		return ErrNilTuple
	}
	declared := make(map[string]schemaField, len(s.fields))
	for _, f := range s.fields {
		declared[f.name] = f
	}
	seen := make(map[string]struct{}, t.Len())
	for _, f := range t.Fields() {
		seen[f.Name] = struct{}{}
		d, ok := declared[f.Name]
		if !ok {
			return fmt.Errorf("%w: undeclared field %q", ErrSchemaViolation, f.Name)
		}
		if f.Value.Kind() != d.kind {
			return fmt.Errorf("%w: field %q is %v, want %v",
				ErrSchemaViolation, f.Name, f.Value.Kind(), d.kind)
		}
	}
	var missing []string
	for _, f := range s.fields {
		if f.optional {
			continue
		}
		if _, ok := seen[f.name]; !ok {
			missing = append(missing, f.name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%w: missing required field(s) %s",
			ErrSchemaViolation, strings.Join(missing, ", "))
	}
	return nil
}
