// Package tuple implements Swing's data tuples: the unit of data that flows
// along edges of an application dataflow graph, together with the binary
// serialization service the paper describes (§IV-C, "Serialization
// Service").
//
// A tuple is an ordered list of named, typed fields. Mobile sensing apps
// transmit customized payloads — an image container, a multi-dimensional
// sensor vector, a segment of an audio stream — so the codec supports raw
// byte arrays, strings, scalars and float matrices.
package tuple

import (
	"errors"
	"fmt"
	"math"
)

// Kind identifies the dynamic type of a tuple field value.
type Kind uint8

// Field value kinds. They start at 1 so the zero Kind is invalid, which
// catches uninitialized fields during validation.
const (
	KindBytes Kind = iota + 1
	KindString
	KindInt64
	KindFloat64
	KindBool
	KindFloatMatrix
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindString:
		return "string"
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindBool:
		return "bool"
	case KindFloatMatrix:
		return "floatmatrix"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Matrix is a dense row-major matrix of float64 values, e.g. image feature
// vectors or audio spectra.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a Rows x Cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Value is a single typed tuple field value.
type Value struct {
	kind Kind

	b   []byte
	s   string
	i   int64
	f   float64
	yes bool
	m   *Matrix
}

// Bytes wraps a byte slice as a Value. The slice is not copied; callers
// that retain the input must not mutate it afterwards.
func Bytes(b []byte) Value { return Value{kind: KindBytes, b: b} }

// String wraps a string as a Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int64 wraps an int64 as a Value.
func Int64(i int64) Value { return Value{kind: KindInt64, i: i} }

// Float64 wraps a float64 as a Value.
func Float64(f float64) Value { return Value{kind: KindFloat64, f: f} }

// Bool wraps a bool as a Value.
func Bool(b bool) Value { return Value{kind: KindBool, yes: b} }

// FloatMatrix wraps a Matrix as a Value. The matrix is not copied.
func FloatMatrix(m *Matrix) Value { return Value{kind: KindFloatMatrix, m: m} }

// Kind reports the value's dynamic kind; zero for an unset Value.
func (v Value) Kind() Kind { return v.kind }

// AsBytes returns the byte payload and whether the value holds one.
func (v Value) AsBytes() ([]byte, bool) { return v.b, v.kind == KindBytes }

// AsString returns the string payload and whether the value holds one.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsInt64 returns the int64 payload and whether the value holds one.
func (v Value) AsInt64() (int64, bool) { return v.i, v.kind == KindInt64 }

// AsFloat64 returns the float64 payload and whether the value holds one.
func (v Value) AsFloat64() (float64, bool) { return v.f, v.kind == KindFloat64 }

// AsBool returns the bool payload and whether the value holds one.
func (v Value) AsBool() (bool, bool) { return v.yes, v.kind == KindBool }

// AsFloatMatrix returns the matrix payload and whether the value holds one.
func (v Value) AsFloatMatrix() (*Matrix, bool) { return v.m, v.kind == KindFloatMatrix }

// WireSize returns the number of payload bytes this value contributes when
// serialized, excluding per-field framing. It is the quantity the network
// model charges for transmission.
func (v Value) WireSize() int {
	switch v.kind {
	case KindBytes:
		return len(v.b)
	case KindString:
		return len(v.s)
	case KindInt64, KindFloat64:
		return 8
	case KindBool:
		return 1
	case KindFloatMatrix:
		if v.m == nil {
			return 8
		}
		return 8 + 8*len(v.m.Data)
	default:
		return 0
	}
}

// Equal reports deep value equality. NaN float payloads compare equal to
// themselves so round-trip tests can use it.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindBytes:
		if len(v.b) != len(o.b) {
			return false
		}
		for i := range v.b {
			if v.b[i] != o.b[i] {
				return false
			}
		}
		return true
	case KindString:
		return v.s == o.s
	case KindInt64:
		return v.i == o.i
	case KindFloat64:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindBool:
		return v.yes == o.yes
	case KindFloatMatrix:
		if (v.m == nil) != (o.m == nil) {
			return false
		}
		if v.m == nil {
			return true
		}
		if v.m.Rows != o.m.Rows || v.m.Cols != o.m.Cols || len(v.m.Data) != len(o.m.Data) {
			return false
		}
		for i := range v.m.Data {
			a, b := v.m.Data[i], o.m.Data[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Field is a named tuple value.
type Field struct {
	Name  string
	Value Value
}

// Tuple is the unit of data flowing along dataflow-graph edges.
//
// ID is assigned by the source and is globally unique within a run; it
// drives ACK matching at upstreams and reordering at the sink. SeqNo is the
// source emission sequence (playback order). EmitNanos carries the
// timestamp the current upstream attached when it dispatched the tuple,
// which the downstream echoes in its ACK for latency estimation (§V-B).
// Attempt counts transmission attempts: 0 on first dispatch, incremented
// each time the runtime retransmits the tuple after a worker failure, so
// downstreams can tell a retransmission from fresh traffic.
type Tuple struct {
	ID        uint64
	SeqNo     uint64
	EmitNanos int64
	Attempt   uint8

	fields []Field
	// farr inlines storage for small field lists (the common case for
	// sensing tuples: a payload plus a couple of annotations), so
	// decoding a tuple costs one allocation instead of two. fields
	// aliases farr when it fits; Set's append spills to the heap
	// transparently when it does not. Tuples must not be copied by
	// value (use Clone), or fields would alias the original's farr.
	farr [4]Field
}

// Errors returned by tuple operations.
var (
	ErrNoField   = errors.New("tuple: no such field")
	ErrDupField  = errors.New("tuple: duplicate field name")
	ErrNilTuple  = errors.New("tuple: nil tuple")
	ErrBadKind   = errors.New("tuple: wrong field kind")
	ErrTruncated = errors.New("tuple: truncated encoding")
)

// New returns an empty tuple with the given identity.
func New(id, seq uint64) *Tuple {
	return &Tuple{ID: id, SeqNo: seq}
}

// Set adds or replaces the named field.
func (t *Tuple) Set(name string, v Value) *Tuple {
	for i := range t.fields {
		if t.fields[i].Name == name {
			t.fields[i].Value = v
			return t
		}
	}
	t.fields = append(t.fields, Field{Name: name, Value: v})
	return t
}

// Get returns the named field's value.
func (t *Tuple) Get(name string) (Value, error) {
	for i := range t.fields {
		if t.fields[i].Name == name {
			return t.fields[i].Value, nil
		}
	}
	return Value{}, fmt.Errorf("%w: %q", ErrNoField, name)
}

// MustBytes returns the named bytes field or an error if absent/mistyped.
func (t *Tuple) MustBytes(name string) ([]byte, error) {
	v, err := t.Get(name)
	if err != nil {
		return nil, err
	}
	b, ok := v.AsBytes()
	if !ok {
		return nil, fmt.Errorf("%w: field %q is %v, want bytes", ErrBadKind, name, v.Kind())
	}
	return b, nil
}

// MustString returns the named string field or an error if absent/mistyped.
func (t *Tuple) MustString(name string) (string, error) {
	v, err := t.Get(name)
	if err != nil {
		return "", err
	}
	s, ok := v.AsString()
	if !ok {
		return "", fmt.Errorf("%w: field %q is %v, want string", ErrBadKind, name, v.Kind())
	}
	return s, nil
}

// Fields returns a copy of the field list in insertion order.
func (t *Tuple) Fields() []Field {
	out := make([]Field, len(t.fields))
	copy(out, t.fields)
	return out
}

// Len reports the number of fields.
func (t *Tuple) Len() int { return len(t.fields) }

// WireSize is the total payload size in bytes: field payloads plus framing
// (headers, names and length prefixes), matching the encoded length of
// Marshal's output.
func (t *Tuple) WireSize() int {
	n := headerSize
	for i := range t.fields {
		n += fieldFraming(t.fields[i])
	}
	return n
}

// Clone returns a deep copy of the tuple; byte and matrix payloads are
// copied so the clone can be mutated independently.
func (t *Tuple) Clone() *Tuple {
	c := &Tuple{ID: t.ID, SeqNo: t.SeqNo, EmitNanos: t.EmitNanos, Attempt: t.Attempt}
	c.fields = make([]Field, len(t.fields))
	for i, f := range t.fields {
		cv := f.Value
		switch cv.kind {
		case KindBytes:
			b := make([]byte, len(cv.b))
			copy(b, cv.b)
			cv.b = b
		case KindFloatMatrix:
			if cv.m != nil {
				m := &Matrix{Rows: cv.m.Rows, Cols: cv.m.Cols, Data: make([]float64, len(cv.m.Data))}
				copy(m.Data, cv.m.Data)
				cv.m = m
			}
		}
		c.fields[i] = Field{Name: f.Name, Value: cv}
	}
	return c
}

// Equal reports deep equality of identity and fields.
func (t *Tuple) Equal(o *Tuple) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.ID != o.ID || t.SeqNo != o.SeqNo || t.EmitNanos != o.EmitNanos ||
		t.Attempt != o.Attempt || len(t.fields) != len(o.fields) {
		return false
	}
	for i := range t.fields {
		if t.fields[i].Name != o.fields[i].Name || !t.fields[i].Value.Equal(o.fields[i].Value) {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: no duplicate field names and no
// zero-kind values.
func (t *Tuple) Validate() error {
	if t == nil {
		return ErrNilTuple
	}
	// Small tuples (the hot path) take a quadratic scan rather than
	// allocating a set; Validate runs on every Marshal and Unmarshal.
	if len(t.fields) <= 16 {
		for i := range t.fields {
			f := &t.fields[i]
			if f.Value.kind == 0 || f.Value.kind > KindFloatMatrix {
				return fmt.Errorf("tuple: field %q has invalid kind %d", f.Name, f.Value.kind)
			}
			for j := 0; j < i; j++ {
				if t.fields[j].Name == f.Name {
					return fmt.Errorf("%w: %q", ErrDupField, f.Name)
				}
			}
		}
		return nil
	}
	seen := make(map[string]struct{}, len(t.fields))
	for _, f := range t.fields {
		if _, dup := seen[f.Name]; dup {
			return fmt.Errorf("%w: %q", ErrDupField, f.Name)
		}
		seen[f.Name] = struct{}{}
		if f.Value.kind == 0 || f.Value.kind > KindFloatMatrix {
			return fmt.Errorf("tuple: field %q has invalid kind %d", f.Name, f.Value.kind)
		}
	}
	return nil
}
