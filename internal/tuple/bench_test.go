package tuple

import "testing"

func benchTuple() *Tuple {
	t := New(42, 7)
	t.EmitNanos = 123456789
	t.Set("frame", Bytes(make([]byte, 6*1024)))
	t.Set("camera", String("front"))
	t.Set("ts", Int64(987654321))
	return t
}

// BenchmarkTupleMarshal measures the per-tuple encode cost on the Submit
// hot path.
func BenchmarkTupleMarshal(b *testing.B) {
	t := benchTuple()
	b.ReportAllocs()
	b.SetBytes(int64(t.WireSize()))
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTupleUnmarshal measures the per-tuple decode cost on the
// worker's receive path.
func BenchmarkTupleUnmarshal(b *testing.B) {
	data, err := Marshal(benchTuple())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
