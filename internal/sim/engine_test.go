package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if got := e.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := New(1)
	var fired time.Duration
	e.Schedule(5*time.Millisecond, func() { fired = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 5*time.Millisecond {
		t.Fatalf("event fired at %v, want 5ms", fired)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
}

func TestEventOrderingByTime(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New(1)
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	e := New(1)
	e.Schedule(10*time.Millisecond, func() {
		e.ScheduleAt(time.Millisecond, func() {
			if e.Now() != 10*time.Millisecond {
				t.Errorf("past event fired at %v, want clamp to 10ms", e.Now())
			}
		})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Millisecond, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelNil(t *testing.T) {
	e := New(1)
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	e := New(1)
	ev := e.Schedule(time.Millisecond, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 9 * time.Millisecond} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(5 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want horizon 5ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d total, want 3", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New(1)
	if err := e.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := New(1)
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestEvery(t *testing.T) {
	e := New(1)
	var ticks []time.Duration
	cancel, err := e.Every(100*time.Millisecond, func() {
		ticks = append(ticks, e.Now())
	})
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	if err := e.RunUntil(350 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3 (at 100,200,300ms): %v", len(ticks), ticks)
	}
	cancel()
	if err := e.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks after cancel: got %d, want 3", len(ticks))
	}
}

func TestEveryInvalidPeriod(t *testing.T) {
	e := New(1)
	if _, err := e.Every(0, func() {}); err == nil {
		t.Fatal("Every(0) did not error")
	}
	if _, err := e.Every(-time.Second, func() {}); err == nil {
		t.Fatal("Every(-1s) did not error")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, recurse)
		}
	}
	e.Schedule(time.Millisecond, recurse)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 100*time.Millisecond {
		t.Fatalf("Now() = %v, want 100ms", e.Now())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same-seed engines diverge")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if New(42).Rand().Float64() == c.Rand().Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestProcessedCount(t *testing.T) {
	e := New(1)
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

// TestClockMonotonicProperty checks via quick that, for any schedule of
// delays, event execution times observed by callbacks never decrease.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(delays []int16) bool {
		e := New(7)
		var times []time.Duration
		for _, d := range delays {
			delay := time.Duration(d) * time.Microsecond
			e.Schedule(delay, func() { times = append(times, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHeapStressProperty schedules and cancels a pseudo-random mixture of
// events and checks bookkeeping invariants.
func TestHeapStressProperty(t *testing.T) {
	f := func(seed int64) bool {
		e := New(seed)
		var handles []*Event
		fired := 0
		for i := 0; i < 200; i++ {
			d := time.Duration(e.Rand().IntN(1000)) * time.Microsecond
			handles = append(handles, e.Schedule(d, func() { fired++ }))
		}
		canceled := 0
		for i, h := range handles {
			if i%3 == 0 && e.Cancel(h) {
				canceled++
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		return fired+canceled == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEngineSchedule measures the steady-state schedule→fire cycle:
// one event scheduled and executed per iteration, the pattern the swarm
// hot path (processing, ACK, delivery events) produces.
func BenchmarkEngineSchedule(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		if !e.Step() {
			b.Fatal("no event to step")
		}
	}
}

func BenchmarkSchedule(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if e.Pending() > 10000 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
}
