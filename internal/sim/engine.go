// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in scheduling order,
// which — together with a seeded random source — makes every simulation run
// fully reproducible.
//
// All Swing experiments (see internal/experiments) run on top of this
// engine so that the paper's figures regenerate deterministically.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// ErrStopped is returned by Run variants when the engine was stopped
// explicitly via Stop before the run condition was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a handle to a scheduled callback. It can be used to cancel the
// callback before it fires.
//
// Handle lifetime: a handle is valid until its event fires. Fired Event
// structs are recycled through the engine's freelist so the steady-state
// schedule→fire cycle does not allocate; a stale handle retained across
// later Schedule calls may therefore alias a newer event. Canceling a
// just-fired handle before any further scheduling remains a safe no-op.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index; -1 once removed
	canceled bool
}

// At reports the virtual time at which the event fires.
func (e *Event) At() time.Duration { return e.at }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		// Silently dropping a foreign value would corrupt the schedule;
		// this is unreachable through the Engine API, so any occurrence
		// is a programming error worth crashing on.
		panic(fmt.Sprintf("sim: eventHeap.Push of %T, want *Event", x))
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// free holds fired Event structs for reuse, so the steady-state
	// schedule→fire cycle allocates nothing. Its high-water mark equals
	// the peak number of concurrently pending events.
	free []*Event

	// processed counts events executed so far, useful as a runaway guard
	// and for diagnostics.
	processed uint64
}

// New returns an Engine whose random source is seeded with seed. Two
// engines created with the same seed and fed the same schedule produce
// identical runs.
func New(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewPCG(uint64(seed), 0x51deadbeef)),
	}
}

// Now returns the current virtual time, measured from the start of the
// simulation.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's seeded random source. Model code must draw all
// randomness from this source to preserve determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run after delay of virtual time. A negative
// delay is treated as zero. The returned Event may be canceled.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at virtual time at. Times in the past
// are clamped to the current instant.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: at, seq: e.seq, fn: fn}
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn}
	}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op. It reports whether the event was
// actually removed.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain or the engine was
// stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.processed++
	fn := ev.fn
	// Recycle before running the callback so an event scheduled from
	// inside fn reuses this struct — the common steady-state pattern.
	ev.fn = nil
	e.free = append(e.free, ev)
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// ErrStopped in the latter case.
func (e *Engine) Run() error {
	for e.Step() {
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// RunUntil executes events with timestamps up to and including horizon,
// then advances the clock to horizon. Events scheduled beyond the horizon
// stay queued.
func (e *Engine) RunUntil(horizon time.Duration) error {
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		e.Step()
	}
	if e.stopped {
		return ErrStopped
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// RunFor is shorthand for RunUntil(Now()+d).
func (e *Engine) RunFor(d time.Duration) error {
	return e.RunUntil(e.now + d)
}

// Stop halts the current Run/RunUntil after the in-flight event completes.
// The engine can not be restarted afterwards.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Every schedules fn to run every period of virtual time, starting after
// the first period elapses. It returns a cancel function that stops future
// firings. Period must be positive.
func (e *Engine) Every(period time.Duration, fn func()) (cancel func(), err error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", period)
	}
	stopped := false
	var schedule func()
	var pending *Event
	schedule = func() {
		pending = e.Schedule(period, func() {
			// This event just fired and its struct is back on the
			// freelist; drop the handle so a cancel from inside fn
			// cannot alias whatever reuses it.
			pending = nil
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule()
			}
		})
	}
	schedule()
	return func() {
		stopped = true
		e.Cancel(pending)
	}, nil
}
