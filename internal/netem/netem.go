// Package netem models the 802.11n wireless testbed of the paper: received
// signal strength (RSSI) per device location, rate adaptation from RSSI to
// effective link throughput, per-frame transmission delay, and user
// mobility as an RSSI-over-time trace (paper §III Figure 2, §VI-C
// Figure 10).
//
// The model captures the three effects the paper measures:
//
//   - Weak signal → the Wi-Fi rate-adaptation and TCP congestion control
//     collapse effective goodput, inflating transmission delay (Figure 2
//     left).
//   - All transmissions from one device share its single radio, so airtime
//     spent on slow links stalls traffic to fast links (the straggler
//     effect that penalises round-robin, §VI-B).
//   - A sender whose per-link queue backs up must slow down (TCP
//     backpressure), which reduces end-to-end throughput (§VI-B1).
package netem

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// RSSI is a received signal strength in dBm (negative; closer to zero is
// stronger).
type RSSI float64

// Signal-region constants matching the paper's experiment placements.
const (
	// RSSIGood is a strong signal (paper: > -30 dBm in Figure 10).
	RSSIGood RSSI = -28
	// RSSIFair is a moderate signal (paper: -70 to -60 dBm).
	RSSIFair RSSI = -65
	// RSSIBad is a weak signal (paper: -80 to -70 dBm).
	RSSIBad RSSI = -80
)

// ratePoint is one breakpoint of the RSSI → effective goodput curve.
type ratePoint struct {
	rssi RSSI
	bps  float64
}

// rateCurve maps RSSI to effective application-level goodput in bits/s.
// The curve folds together 802.11n MCS selection, MAC efficiency, frame
// loss/retransmission and TCP dynamics (congestion-window collapse under
// loss); it is calibrated so that the paper's "good/fair/bad" placements
// reproduce Figure 2's transmission delays and the weak-spot throughput
// collapse of Figure 4.
var rateCurve = []ratePoint{
	{-50, 22e6},
	{-55, 16e6},
	{-60, 8e6},
	{-65, 3.5e6},
	{-70, 1.0e6},
	{-74, 0.30e6},
	{-78, 0.08e6},
	{-82, 0.03e6},
	{-88, 0.01e6},
}

// airCurve maps RSSI to the MAC-level airtime rate: how fast bits actually
// occupy the shared radio once transmitted, including retransmission
// overhead. It degrades far more gently than goodput — a lossy TCP flow is
// slow because its congestion window collapses, not because each of its
// (few) packets monopolizes the air. The distinction matters for the
// straggler effect: a weak-signal downstream stalls its own flow long
// before it stalls the sender's radio.
var airCurve = []ratePoint{
	{-50, 30e6},
	{-60, 20e6},
	{-65, 13e6},
	{-70, 8e6},
	{-75, 5e6},
	{-80, 3e6},
	{-88, 1.5e6},
}

// AirRate returns the MAC-level airtime rate in bits per second at RSSI r.
func AirRate(r RSSI) float64 { return lookupCurve(airCurve, r, 1e6) }

// AirTime returns the radio occupancy for sizeBytes at RSSI r.
func AirTime(sizeBytes int, r RSSI) time.Duration {
	if sizeBytes <= 0 {
		return 0
	}
	sec := float64(sizeBytes*8) / AirRate(r)
	return time.Duration(sec * float64(time.Second))
}

// lookupCurve log-interpolates a rate curve at r with the given floor.
func lookupCurve(curve []ratePoint, r RSSI, floor float64) float64 {
	if r >= curve[0].rssi {
		return curve[0].bps
	}
	last := curve[len(curve)-1]
	if r <= last.rssi {
		drop := float64(last.rssi - r)
		v := last.bps * math.Pow(2, -drop/3)
		if v < floor {
			return floor
		}
		return v
	}
	i := sort.Search(len(curve), func(i int) bool { return curve[i].rssi <= r })
	hi, lo := curve[i-1], curve[i]
	frac := float64(hi.rssi-r) / float64(hi.rssi-lo.rssi)
	return math.Exp(math.Log(hi.bps) + frac*(math.Log(lo.bps)-math.Log(hi.bps)))
}

// EffectiveRate returns the effective goodput in bits per second for a
// link at the given RSSI. Above the first breakpoint the curve is flat;
// below the last it decays toward a floor.
func EffectiveRate(r RSSI) float64 { return lookupCurve(rateCurve, r, 5e3) }

// TxTime returns the airtime needed to push sizeBytes over a link at RSSI
// r, excluding propagation and queuing.
func TxTime(sizeBytes int, r RSSI) time.Duration {
	if sizeBytes <= 0 {
		return 0
	}
	rate := EffectiveRate(r)
	sec := float64(sizeBytes*8) / rate
	return time.Duration(sec * float64(time.Second))
}

// PropagationDelay is the fixed one-way MAC+stack latency applied to every
// transmission on top of airtime.
const PropagationDelay = 2 * time.Millisecond

// Mobility yields a device's RSSI as a function of experiment time. It
// abstracts a user walking between locations of different signal strength.
type Mobility interface {
	RSSIAt(at time.Duration) RSSI
}

// Static is a Mobility that never moves.
type Static RSSI

// RSSIAt implements Mobility.
func (s Static) RSSIAt(time.Duration) RSSI { return RSSI(s) }

var _ Mobility = Static(0)

// Epoch is one leg of a piecewise-constant mobility trace.
type Epoch struct {
	// Until is the end of this epoch, measured from experiment start.
	Until time.Duration
	RSSI  RSSI
}

// Walk is a piecewise-constant mobility trace: the device holds each
// epoch's RSSI until the epoch ends; after the last epoch the final RSSI
// holds forever. This matches the paper's Figure 10 scenario where a user
// stays one minute per location.
type Walk struct {
	epochs []Epoch
}

// ErrBadTrace reports an invalid mobility trace.
var ErrBadTrace = errors.New("netem: invalid mobility trace")

// NewWalk validates and returns a Walk. Epochs must be in strictly
// increasing order of Until and non-empty.
func NewWalk(epochs []Epoch) (*Walk, error) {
	if len(epochs) == 0 {
		return nil, fmt.Errorf("%w: no epochs", ErrBadTrace)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i].Until <= epochs[i-1].Until {
			return nil, fmt.Errorf("%w: epoch %d ends at %v, not after %v",
				ErrBadTrace, i, epochs[i].Until, epochs[i-1].Until)
		}
	}
	cp := make([]Epoch, len(epochs))
	copy(cp, epochs)
	return &Walk{epochs: cp}, nil
}

// RSSIAt implements Mobility.
func (w *Walk) RSSIAt(at time.Duration) RSSI {
	for _, e := range w.epochs {
		if at < e.Until {
			return e.RSSI
		}
	}
	return w.epochs[len(w.epochs)-1].RSSI
}

var _ Mobility = (*Walk)(nil)

// Jitter parameters for per-frame transmission randomness: each frame's
// airtime is multiplied by a draw from a log-normal distribution with unit
// median and the given sigma, modeling contention and retransmission
// variance. The draw function is supplied by the caller (the simulator's
// seeded RNG).
const TxJitterSigma = 0.25

// JitterMultiplier converts a standard-normal draw z into the airtime
// multiplier exp(sigma·z).
func JitterMultiplier(z float64) float64 {
	return math.Exp(TxJitterSigma * z)
}
