package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEffectiveRateMonotonic(t *testing.T) {
	prev := math.Inf(1)
	for r := RSSI(-20); r >= -100; r -= 0.5 {
		got := EffectiveRate(r)
		if got > prev {
			t.Fatalf("rate increased as signal weakened: %v dBm -> %v bps (prev %v)", r, got, prev)
		}
		if got <= 0 {
			t.Fatalf("non-positive rate at %v dBm", r)
		}
		prev = got
	}
}

func TestEffectiveRateRegions(t *testing.T) {
	good := EffectiveRate(RSSIGood)
	fair := EffectiveRate(RSSIFair)
	bad := EffectiveRate(RSSIBad)
	if good < 20e6 {
		t.Fatalf("good rate = %v, want >= 20 Mbps", good)
	}
	if fair > good/4 || fair < 1e6 {
		t.Fatalf("fair rate = %v, want a few Mbps", fair)
	}
	if bad > 1e6 || bad < 5e3 {
		t.Fatalf("bad rate = %v, want well under 1 Mbps", bad)
	}
	// The bad region must be slow enough that a 6 kB frame takes >100 ms:
	// that is what collapses RR/P* policies in Figure 4.
	if d := TxTime(6000, RSSIBad); d < 100*time.Millisecond {
		t.Fatalf("6kB at bad signal = %v, want >= 100ms", d)
	}
}

func TestEffectiveRateExtremes(t *testing.T) {
	if EffectiveRate(-10) != EffectiveRate(-50) {
		t.Fatal("curve not flat above first breakpoint")
	}
	deepFade := EffectiveRate(-120)
	if deepFade < 5e3 || deepFade > 1e5 {
		t.Fatalf("deep fade rate = %v, want near floor", deepFade)
	}
}

func TestTxTime(t *testing.T) {
	if TxTime(0, RSSIGood) != 0 {
		t.Fatal("zero bytes has nonzero airtime")
	}
	if TxTime(-5, RSSIGood) != 0 {
		t.Fatal("negative bytes has nonzero airtime")
	}
	// 6 kB at 22 Mbps ≈ 2.2 ms.
	d := TxTime(6000, RSSIGood)
	if d < time.Millisecond || d > 4*time.Millisecond {
		t.Fatalf("6kB at good signal = %v, want ~2ms", d)
	}
	// Voice frames are 72 kB (paper §VI-A): 12x the bytes, 12x the time.
	ratio := float64(TxTime(72000, RSSIFair)) / float64(TxTime(6000, RSSIFair))
	if math.Abs(ratio-12) > 0.01 {
		t.Fatalf("airtime not linear in size: ratio = %v", ratio)
	}
}

func TestStaticMobility(t *testing.T) {
	m := Static(-42)
	if m.RSSIAt(0) != -42 || m.RSSIAt(time.Hour) != -42 {
		t.Fatal("Static mobility moved")
	}
}

func TestWalk(t *testing.T) {
	w, err := NewWalk([]Epoch{
		{Until: time.Minute, RSSI: RSSIGood},
		{Until: 2 * time.Minute, RSSI: RSSIFair},
		{Until: 3 * time.Minute, RSSI: RSSIBad},
	})
	if err != nil {
		t.Fatalf("NewWalk: %v", err)
	}
	cases := []struct {
		at   time.Duration
		want RSSI
	}{
		{0, RSSIGood},
		{59 * time.Second, RSSIGood},
		{time.Minute, RSSIFair},
		{90 * time.Second, RSSIFair},
		{2*time.Minute + time.Second, RSSIBad},
		{time.Hour, RSSIBad}, // holds last epoch forever
	}
	for _, c := range cases {
		if got := w.RSSIAt(c.at); got != c.want {
			t.Errorf("RSSIAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestWalkValidation(t *testing.T) {
	if _, err := NewWalk(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	_, err := NewWalk([]Epoch{
		{Until: 2 * time.Minute, RSSI: RSSIGood},
		{Until: time.Minute, RSSI: RSSIBad},
	})
	if err == nil {
		t.Fatal("out-of-order epochs accepted")
	}
	_, err = NewWalk([]Epoch{
		{Until: time.Minute, RSSI: RSSIGood},
		{Until: time.Minute, RSSI: RSSIBad},
	})
	if err == nil {
		t.Fatal("equal epoch ends accepted")
	}
}

func TestWalkCopiesInput(t *testing.T) {
	epochs := []Epoch{{Until: time.Minute, RSSI: RSSIGood}}
	w, err := NewWalk(epochs)
	if err != nil {
		t.Fatal(err)
	}
	epochs[0].RSSI = RSSIBad
	if w.RSSIAt(0) != RSSIGood {
		t.Fatal("Walk aliases caller slice")
	}
}

func TestRadioSerializesTransmissions(t *testing.T) {
	var r Radio
	s1, e1 := r.Reserve(0, 10*time.Millisecond, 6000)
	if s1 != 0 || e1 != 10*time.Millisecond {
		t.Fatalf("first reservation [%v, %v]", s1, e1)
	}
	// Second transmission requested at t=2ms must wait for the first.
	s2, e2 := r.Reserve(2*time.Millisecond, 5*time.Millisecond, 6000)
	if s2 != 10*time.Millisecond || e2 != 15*time.Millisecond {
		t.Fatalf("second reservation [%v, %v], want [10ms, 15ms]", s2, e2)
	}
	// After the radio idles, a reservation starts immediately.
	s3, _ := r.Reserve(time.Second, time.Millisecond, 100)
	if s3 != time.Second {
		t.Fatalf("idle radio start = %v, want 1s", s3)
	}
}

func TestRadioBacklog(t *testing.T) {
	var r Radio
	r.Reserve(0, 30*time.Millisecond, 100)
	if got := r.Backlog(10 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("Backlog = %v, want 20ms", got)
	}
	if got := r.Backlog(time.Minute); got != 0 {
		t.Fatalf("Backlog after idle = %v, want 0", got)
	}
}

func TestRadioAccounting(t *testing.T) {
	var r Radio
	r.Reserve(0, 10*time.Millisecond, 6000)
	r.Reserve(0, 10*time.Millisecond, 4000)
	if r.TxBytes() != 10000 {
		t.Fatalf("TxBytes = %d", r.TxBytes())
	}
	if r.TxTime() != 20*time.Millisecond {
		t.Fatalf("TxTime = %v", r.TxTime())
	}
	// 10000 bytes over 1 s = 80 kbps.
	if got := r.MeanRateBps(time.Second); math.Abs(got-80000) > 1e-6 {
		t.Fatalf("MeanRateBps = %v", got)
	}
	if r.MeanRateBps(0) != 0 {
		t.Fatal("zero-elapsed rate not 0")
	}
}

func TestJitterMultiplier(t *testing.T) {
	if JitterMultiplier(0) != 1 {
		t.Fatalf("median jitter = %v, want 1", JitterMultiplier(0))
	}
	if JitterMultiplier(1) <= 1 || JitterMultiplier(-1) >= 1 {
		t.Fatal("jitter not monotone in z")
	}
	if math.Abs(JitterMultiplier(1)*JitterMultiplier(-1)-1) > 1e-12 {
		t.Fatal("jitter not symmetric in log space")
	}
}

// TestRadioNoOverlapProperty: arbitrary interleavings of reservations
// never overlap on the air.
func TestRadioNoOverlapProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		var r Radio
		var lastEnd time.Duration
		now := time.Duration(0)
		for _, q := range reqs {
			airtime := time.Duration(q%1000+1) * time.Microsecond
			now += time.Duration(q%97) * time.Microsecond
			start, end := r.Reserve(now, airtime, int(q))
			if start < lastEnd || start < now || end != start+airtime {
				return false
			}
			lastEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRateCurveContinuity: the interpolated curve has no discontinuities
// bigger than the breakpoint steps themselves.
func TestRateCurveContinuity(t *testing.T) {
	for r := RSSI(-20); r > -100; r -= 0.1 {
		a, b := EffectiveRate(r), EffectiveRate(r-0.1)
		if b > a {
			t.Fatalf("non-monotone at %v", r)
		}
		if a/b > 1.6 {
			t.Fatalf("discontinuity at %v dBm: %v -> %v", r, a, b)
		}
	}
}
