package netem

import (
	"testing"
	"time"
)

func TestAirRateMonotonic(t *testing.T) {
	prev := AirRate(-20)
	for r := RSSI(-21); r >= -100; r-- {
		cur := AirRate(r)
		if cur > prev {
			t.Fatalf("air rate increased at %v dBm", r)
		}
		prev = cur
	}
}

// TestAirRateDegradesGentlyVsGoodput: the defining property of the
// two-curve model — at weak signal the goodput collapses by orders of
// magnitude while the MAC airtime rate degrades only by a small factor, so
// a slow TCP flow does not monopolize the sender's radio.
func TestAirRateDegradesGentlyVsGoodput(t *testing.T) {
	goodAir, badAir := AirRate(RSSIGood), AirRate(RSSIBad)
	goodTCP, badTCP := EffectiveRate(RSSIGood), EffectiveRate(RSSIBad)
	airDrop := goodAir / badAir
	tcpDrop := goodTCP / badTCP
	if airDrop > 20 {
		t.Fatalf("air rate dropped %vx; MAC rates bottom out around MCS0", airDrop)
	}
	if tcpDrop < 50 {
		t.Fatalf("goodput dropped only %vx; weak-link TCP must collapse", tcpDrop)
	}
	if tcpDrop < 3*airDrop {
		t.Fatalf("goodput collapse (%vx) not much steeper than airtime (%vx)", tcpDrop, airDrop)
	}
}

func TestAirRateFloor(t *testing.T) {
	if AirRate(-120) < 1e6 {
		t.Fatal("air rate below MCS0-with-retransmissions floor")
	}
}

func TestAirTime(t *testing.T) {
	if AirTime(0, RSSIGood) != 0 || AirTime(-1, RSSIGood) != 0 {
		t.Fatal("non-positive size has airtime")
	}
	// A 6 kB frame at a good signal occupies the air for ~1.6 ms.
	d := AirTime(6000, RSSIGood)
	if d < 500*time.Microsecond || d > 5*time.Millisecond {
		t.Fatalf("6kB airtime = %v", d)
	}
	// Even at a bad signal, airtime stays in the tens of milliseconds —
	// it is the flow delay (TxTime) that explodes.
	if bad := AirTime(6000, RSSIBad); bad > 50*time.Millisecond {
		t.Fatalf("6kB airtime at bad signal = %v", bad)
	}
	if flow := TxTime(6000, RSSIBad); flow < 500*time.Millisecond {
		t.Fatalf("6kB flow time at bad signal = %v, want ~1s", flow)
	}
}
