package netem

import (
	"time"
)

// Radio models a device's single wireless interface. All outgoing
// transmissions serialize through it: while a frame is on the air toward a
// slow link, frames queued for fast links must wait. This shared-airtime
// contention is the physical mechanism behind the paper's straggler effect
// — one weak-signal downstream can stall an upstream's entire output.
//
// Radio tracks only the time until which the air interface is busy; the
// enclosing simulator owns per-destination queues and scheduling.
type Radio struct {
	busyUntil time.Duration

	// txBytes and txTime account cumulative transmitted volume and
	// airtime for utilisation/power reporting.
	txBytes int64
	txTime  time.Duration
}

// NextStart returns the earliest instant a new transmission may begin at
// or after now.
func (r *Radio) NextStart(now time.Duration) time.Duration {
	if r.busyUntil > now {
		return r.busyUntil
	}
	return now
}

// Reserve books the radio for a transmission of the given airtime starting
// no earlier than now, returning the transmission's start and end times.
func (r *Radio) Reserve(now time.Duration, airtime time.Duration, sizeBytes int) (start, end time.Duration) {
	start = r.NextStart(now)
	end = start + airtime
	r.busyUntil = end
	r.txBytes += int64(sizeBytes)
	r.txTime += airtime
	return start, end
}

// Backlog reports how far into the future the radio is already booked.
func (r *Radio) Backlog(now time.Duration) time.Duration {
	if r.busyUntil <= now {
		return 0
	}
	return r.busyUntil - now
}

// TxBytes returns cumulative bytes transmitted.
func (r *Radio) TxBytes() int64 { return r.txBytes }

// TxTime returns cumulative airtime used.
func (r *Radio) TxTime() time.Duration { return r.txTime }

// MeanRateBps returns the average transmit rate over a window of the given
// length ending now, based on cumulative counters sampled by the caller.
// Callers typically difference TxBytes between samples; this helper is for
// whole-run averages.
func (r *Radio) MeanRateBps(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.txBytes*8) / elapsed.Seconds()
}
