package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 100} {
		s.Observe(v)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"n":5`, `"mean":22`, `"min":1`, `"max":100`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("json missing %s: %s", key, data)
		}
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Mean() != s.Mean() || got.Min() != s.Min() || got.Max() != s.Max() {
		t.Fatalf("round trip: %+v vs %+v", got, s)
	}
	if math.Abs(got.Stddev()-s.Stddev()) > 1e-9 {
		t.Fatalf("stddev %v vs %v", got.Stddev(), s.Stddev())
	}
}

func TestSummaryJSONSingleSample(t *testing.T) {
	var s Summary
	s.Observe(7)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Variance() != 0 || got.Mean() != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := NewSeries("throughput")
	s.Add(time.Second, 10)
	s.Add(2*time.Second, 20)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"throughput"`) {
		t.Fatalf("json: %s", data)
	}
	var got Series
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "throughput" || got.Len() != 2 {
		t.Fatalf("got %+v", got)
	}
	pts := got.Points()
	if pts[1].At != 2*time.Second || pts[1].Value != 20 {
		t.Fatalf("points %v", pts)
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	var s Summary
	if err := json.Unmarshal([]byte(`{"n": "x"}`), &s); err == nil {
		t.Fatal("bad summary accepted")
	}
	var se Series
	if err := json.Unmarshal([]byte(`[1,2]`), &se); err == nil {
		t.Fatal("bad series accepted")
	}
}
