package metrics

import (
	"encoding/json"
	"time"
)

// summaryJSON is the stable wire form of a Summary.
type summaryJSON struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
}

// MarshalJSON implements json.Marshaler so experiment results export
// cleanly for external plotting.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{
		N:      s.N(),
		Mean:   s.Mean(),
		Min:    s.Min(),
		Max:    s.Max(),
		Stddev: s.Stddev(),
	})
}

// UnmarshalJSON restores the summary statistics. Individual samples are
// not retained, so a round-tripped Summary reports the same aggregates
// but cannot absorb further Observe calls coherently; it is intended for
// result files, not for resuming measurement.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var j summaryJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	s.n = j.N
	s.mean = j.Mean
	s.min = j.Min
	s.max = j.Max
	// Reconstruct m2 from the stddev (unbiased variance).
	if j.N > 1 {
		s.m2 = j.Stddev * j.Stddev * float64(j.N-1)
	} else {
		s.m2 = 0
	}
	return nil
}

// pointJSON is the wire form of a Series point.
type pointJSON struct {
	AtSeconds float64 `json:"atSeconds"`
	Value     float64 `json:"value"`
}

type seriesJSON struct {
	Name   string      `json:"name"`
	Points []pointJSON `json:"points"`
}

// MarshalJSON implements json.Marshaler.
func (s *Series) MarshalJSON() ([]byte, error) {
	j := seriesJSON{Name: s.Name, Points: make([]pointJSON, len(s.points))}
	for i, p := range s.points {
		j.Points[i] = pointJSON{AtSeconds: p.At.Seconds(), Value: p.Value}
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Series) UnmarshalJSON(data []byte) error {
	var j seriesJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	s.Name = j.Name
	s.points = make([]Point, len(j.Points))
	for i, p := range j.Points {
		s.points[i] = Point{At: time.Duration(p.AtSeconds * float64(time.Second)), Value: p.Value}
	}
	return nil
}
