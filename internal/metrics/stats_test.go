package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Variance() != 0 {
		t.Fatal("zero-value summary not all zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if math.Abs(s.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev())
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Observe(3)
	if s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-sample stats wrong")
	}
	if s.Variance() != 0 {
		t.Fatalf("Variance = %v, want 0", s.Variance())
	}
}

func TestSummaryObserveDuration(t *testing.T) {
	var s Summary
	s.ObserveDuration(1500 * time.Millisecond)
	if s.Mean() != 1500 {
		t.Fatalf("Mean = %v ms, want 1500", s.Mean())
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	vals := []float64{1, 2, 3, 10, 20, 30, -5}
	for i, v := range vals {
		all.Observe(v)
		if i < 3 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged Variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Observe(5)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed stats")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty did not copy")
	}
}

// TestSummaryMatchesNaiveProperty cross-checks Welford against the naive
// two-pass computation on random inputs.
func TestSummaryMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		var sum float64
		for _, r := range raw {
			s.Observe(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, r := range raw {
			d := float64(r) - mean
			m2 += d * d
		}
		wantVar := 0.0
		if len(raw) > 1 {
			wantVar = m2 / float64(len(raw)-1)
		}
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Variance()-wantVar) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantiler(t *testing.T) {
	var q Quantiler
	if q.Quantile(0.5) != 0 {
		t.Fatal("empty quantiler nonzero")
	}
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}
	if q.N() != 100 {
		t.Fatalf("N = %d", q.N())
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.95, 95}, {1, 100}, {2, 100}, {-1, 1},
	}
	for _, c := range cases {
		if got := q.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Observing after querying re-sorts correctly.
	q.Observe(-5)
	if got := q.Quantile(0); got != -5 {
		t.Errorf("Quantile(0) after new sample = %v, want -5", got)
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(time.Second)
	m.Start(0)
	for i := 0; i < 10; i++ {
		m.Tick(time.Duration(i) * 100 * time.Millisecond) // 10 events in [0, 900ms]
	}
	if m.Total() != 10 {
		t.Fatalf("Total = %d", m.Total())
	}
	if got := m.WindowRate(time.Second); got != 9 { // events in (0s, 1s]: 100..900ms
		t.Fatalf("WindowRate = %v, want 9", got)
	}
	if got := m.MeanRate(time.Second); got != 10 {
		t.Fatalf("MeanRate = %v, want 10", got)
	}
	// Long after the burst the window empties.
	if got := m.WindowRate(time.Minute); got != 0 {
		t.Fatalf("stale WindowRate = %v, want 0", got)
	}
	// Mean rate decays with elapsed time.
	if got := m.MeanRate(10 * time.Second); got != 1 {
		t.Fatalf("MeanRate(10s) = %v, want 1", got)
	}
}

func TestRateMeterEdge(t *testing.T) {
	m := NewRateMeter(time.Second)
	m.Start(5 * time.Second)
	if m.MeanRate(5*time.Second) != 0 {
		t.Fatal("zero-elapsed mean rate nonzero")
	}
	if m.MeanRate(4*time.Second) != 0 {
		t.Fatal("negative-elapsed mean rate nonzero")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("throughput")
	if s.Len() != 0 {
		t.Fatal("new series nonempty")
	}
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	pts := s.Points()
	pts[0].Value = 999
	if s.Points()[0].Value != 0 {
		t.Fatal("Points exposes internal slice")
	}
	// Mean of values at t=2,3,4 (from 2s inclusive to 5s exclusive).
	if got := s.MeanBetween(2*time.Second, 5*time.Second); got != 3 {
		t.Fatalf("MeanBetween = %v, want 3", got)
	}
	if got := s.MeanBetween(time.Hour, 2*time.Hour); got != 0 {
		t.Fatalf("empty MeanBetween = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table I: Performance Heterogeneity", "Phone", "Delay (ms)", "FPS")
	tb.AddRow("B", 92.9, 10)
	tb.AddRow("E", 463.4, 2)
	out := tb.String()
	if !strings.Contains(out, "Table I") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "92.9") || !strings.Contains(out, "463.4") {
		t.Fatalf("missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Fatalf("trailing whitespace in %q", l)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.001234)
	tb.AddRow(3.14159)
	tb.AddRow(42.75)
	tb.AddRow(12345.6)
	out := tb.String()
	for _, want := range []string{"0.0012", "3.14", "42.8", "12346"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", `has "quotes", and comma`)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, `"has ""quotes"", and comma"`) {
		t.Fatalf("csv escaping: %q", csv)
	}
}

// TestQuantilerOrderedProperty: quantiles are monotone in p.
func TestQuantilerOrderedProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		var q Quantiler
		for _, v := range vals {
			if !math.IsNaN(v) {
				q.Observe(v)
			}
		}
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return q.Quantile(pa) <= q.Quantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
