package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for experiment reports: the
// format cmd/swing-sim and cmd/swing-bench print for each paper table and
// figure.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	h := make([]string, len(headers))
	copy(h, headers)
	return &Table{title: title, headers: h}
}

// AddRow appends one row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

func trimFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av != 0 && av < 0.01:
		return fmt.Sprintf("%.4f", v)
	case av < 10:
		return fmt.Sprintf("%.2f", v)
	case av < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", width[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		sep := make([]string, ncol)
		for i := range sep {
			sep[i] = strings.Repeat("-", width[i])
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
