// Package metrics provides the measurement primitives Swing experiments
// report: streaming summary statistics (min/max/mean/variance — the
// quantities in Figure 4), windowed throughput meters, time series
// recorders for the timeline figures, and plain-text table rendering for
// experiment reports.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Summary accumulates streaming summary statistics using Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Observe adds one sample.
func (s *Summary) Observe(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// ObserveDuration adds one sample expressed as a duration in milliseconds.
func (s *Summary) ObserveDuration(d time.Duration) {
	s.Observe(float64(d) / float64(time.Millisecond))
}

// N returns the number of samples.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds another summary into this one.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Quantiler retains all samples to answer arbitrary quantile queries.
// Experiments are bounded (minutes of simulated time), so exact retention
// is affordable and avoids sketch error.
//
// Samples are kept as a large sorted prefix plus a small tail of recent
// observations (a dirty-region variant of a cached sort). A query sorts
// only the dirty tail and resolves the requested rank across the two
// sorted runs by binary selection — no per-query re-sort or merge of the
// full population. The tail is folded into the prefix only when it grows
// past a fraction of the total, so the interleaved observe/query pattern
// costs O(k log k) per query plus an amortized O(1) merge per observe,
// instead of an O(n) pass over all retained samples on every query.
type Quantiler struct {
	vals       []float64 // sorted prefix vals[:nSorted], tail after
	nSorted    int
	tailSorted bool      // whether the tail is currently sorted
	scratch    []float64 // merge buffer, reused across compactions
}

// Observe adds one sample.
func (q *Quantiler) Observe(v float64) {
	q.vals = append(q.vals, v)
	q.tailSorted = false
}

// N returns the number of samples.
func (q *Quantiler) N() int { return len(q.vals) }

// compact merges the sorted tail into the sorted prefix.
func (q *Quantiler) compact() {
	prefix, tail := q.vals[:q.nSorted], q.vals[q.nSorted:]
	if cap(q.scratch) < len(q.vals) {
		q.scratch = make([]float64, 0, 2*cap(q.vals))
	}
	merged := q.scratch[:0]
	i, j := 0, 0
	for i < len(prefix) && j < len(tail) {
		if tail[j] < prefix[i] {
			merged = append(merged, tail[j])
			j++
		} else {
			merged = append(merged, prefix[i])
			i++
		}
	}
	merged = append(merged, prefix[i:]...)
	merged = append(merged, tail[j:]...)
	q.scratch = q.vals[:0]
	q.vals = merged
	q.nSorted = len(q.vals)
}

// kthOfTwo returns the k-th smallest (0-based) element of the union of
// two sorted slices, discarding half the remaining rank per iteration.
func kthOfTwo(a, b []float64, k int) float64 {
	for {
		if len(a) == 0 {
			return b[k]
		}
		if len(b) == 0 {
			return a[k]
		}
		if k == 0 {
			if a[0] < b[0] {
				return a[0]
			}
			return b[0]
		}
		step := (k + 1) / 2
		i, j := step, step
		if i > len(a) {
			i = len(a)
		}
		if j > len(b) {
			j = len(b)
		}
		if a[i-1] <= b[j-1] {
			a = a[i:]
			k -= i
		} else {
			b = b[j:]
			k -= j
		}
	}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) by nearest-rank, or 0 with
// no samples.
func (q *Quantiler) Quantile(p float64) float64 {
	n := len(q.vals)
	if n == 0 {
		return 0
	}
	if !q.tailSorted {
		sort.Float64s(q.vals[q.nSorted:])
		q.tailSorted = true
	}
	// Fold the tail in once it is big enough that sorting it per query
	// costs more than the amortized merge.
	if tailLen := n - q.nSorted; tailLen > 64 && tailLen > n/256 {
		q.compact()
	}
	idx := 0
	switch {
	case p >= 1:
		idx = n - 1
	case p > 0:
		idx = int(math.Ceil(p*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
	}
	if q.nSorted == n {
		return q.vals[idx]
	}
	return kthOfTwo(q.vals[:q.nSorted], q.vals[q.nSorted:], idx)
}

// RateMeter counts events and reports rates over the full run and over a
// sliding window, used for throughput timelines (Figures 9, 10).
type RateMeter struct {
	window time.Duration
	stamps []time.Duration
	total  int64
	start  time.Duration
}

// NewRateMeter returns a meter with the given sliding-window length.
func NewRateMeter(window time.Duration) *RateMeter {
	return &RateMeter{window: window}
}

// Start marks the beginning of the measured run.
func (m *RateMeter) Start(at time.Duration) { m.start = at }

// Tick records one event at the given time.
func (m *RateMeter) Tick(at time.Duration) {
	m.total++
	m.stamps = append(m.stamps, at)
	m.gc(at)
}

func (m *RateMeter) gc(now time.Duration) {
	cut := now - m.window
	i := 0
	for i < len(m.stamps) && m.stamps[i] <= cut {
		i++
	}
	if i > 0 {
		m.stamps = append(m.stamps[:0], m.stamps[i:]...)
	}
}

// Total returns the number of events since Start.
func (m *RateMeter) Total() int64 { return m.total }

// WindowRate returns the event rate per second over the sliding window
// ending at now.
func (m *RateMeter) WindowRate(now time.Duration) float64 {
	m.gc(now)
	if m.window <= 0 {
		return 0
	}
	return float64(len(m.stamps)) / m.window.Seconds()
}

// MeanRate returns the average event rate per second since Start.
func (m *RateMeter) MeanRate(now time.Duration) float64 {
	el := now - m.start
	if el <= 0 {
		return 0
	}
	return float64(m.total) / el.Seconds()
}

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series records a named time series for timeline figures.
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one point. Points should be appended in time order.
func (s *Series) Add(at time.Duration, v float64) {
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns a copy of the recorded points.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// MeanBetween averages point values with from ≤ At < to; 0 if none.
func (s *Series) MeanBetween(from, to time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range s.points {
		if p.At >= from && p.At < to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
