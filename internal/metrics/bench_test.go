package metrics

import "testing"

// BenchmarkQuantile exercises the interleaved observe/query pattern the
// experiment harnesses use: a large retained population with periodic
// quantile reads as new samples stream in.
func BenchmarkQuantile(b *testing.B) {
	q := &Quantiler{}
	for i := 0; i < 10000; i++ {
		q.Observe(float64((i * 7919) % 10000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Observe(float64((i * 104729) % 10000))
		if v := q.Quantile(0.99); v < 0 {
			b.Fatal("negative quantile")
		}
	}
}
