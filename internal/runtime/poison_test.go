package runtime

import (
	"errors"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// containProcess is the healthy containment-test operator: it obeys the
// "panic" and "hang" tuple fields (the two misbehaviors the worker
// sandbox must contain) and otherwise echoes a result.
func containProcess(em graph.Emitter, tp *tuple.Tuple) error {
	if _, err := tp.Get("panic"); err == nil {
		panic("injected operator panic")
	}
	if v, err := tp.Get("hang"); err == nil {
		if ms, ok := v.AsInt64(); ok && ms > 0 {
			time.Sleep(time.Duration(ms) * time.Millisecond)
		}
	}
	out := tuple.New(tp.ID, tp.SeqNo)
	out.EmitNanos = tp.EmitNanos
	out.Set(apps.FieldResult, tuple.String("ok"))
	return em.Emit(out)
}

// containApp builds the single-operator containment app around proc. All
// variants share the graph name "contain", so a master deploying the
// healthy variant admits workers running a sick or slow variant — which
// is exactly how a genuinely faulty device looks to the swarm.
func containApp(t *testing.T, proc func(graph.Emitter, *tuple.Tuple) error) *apps.App {
	t.Helper()
	g, err := graph.NewBuilder("contain").
		Source("source").
		Operator("op",
			graph.WithWork(0.01),
			graph.WithProcessor(func() graph.Processor { return graph.ProcessorFunc(proc) })).
		Sink("sink").
		Chain("source", "op", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &apps.App{Graph: g, FrameBytes: 64, TargetFPS: 24, TotalWork: 0.01}
}

func startContainWorker(t *testing.T, mem *transport.Mem, m *Master, id string, proc func(graph.Emitter, *tuple.Tuple) error) *Worker {
	t.Helper()
	w, err := StartWorker(WorkerConfig{
		DeviceID:   id,
		MasterAddr: m.Addr(),
		App:        containApp(t, proc),
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker(%s): %v", id, err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// TestOperatorPanicContained checks the sandbox half of failure
// containment: an operator panic becomes a typed DropPanic notice — the
// worker process survives, keeps its master connection, and processes
// the next tuple as if nothing happened.
func TestOperatorPanicContained(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        containApp(t, containProcess),
		ListenAddr: "master",
		Transport:  mem,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w := startContainWorker(t, mem, m, "w1", containProcess)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	// The dropped tuple never reaches the sink, so it gets a high seq: a
	// hole at seq 0 would (by design) hold in-order playback until the
	// reorder buffer overflows.
	bad := plainTuple(1000)
	bad.Set("panic", tuple.Bool(true))
	if err := m.Submit(bad); err != nil {
		t.Fatalf("Submit panic tuple: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return m.Stats().DropPanics == 1 }, "panic drop notice accounted")
	if got := w.Panics(); got != 1 {
		t.Fatalf("worker recovered %d panics, want 1", got)
	}
	if len(m.Workers()) != 1 {
		t.Fatal("worker lost its master connection after an operator panic")
	}

	// The panicked chain was retired; a fresh one handles the next tuple.
	if err := m.Submit(plainTuple(0)); err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(col.snapshot()) == 1 }, "healthy tuple after panic")
	st := m.Stats()
	if st.WorkerDropped != 1 || st.DropPanics != 1 || st.DropErrors != 0 {
		t.Fatalf("drop accounting = dropped %d, panics %d, errors %d; want 1/1/0",
			st.WorkerDropped, st.DropPanics, st.DropDeadlines)
	}
}

// TestOpDeadlineAbandonsHungTuple checks the watchdog half: a tuple that
// hangs its operator past OpDeadline is abandoned with a DropDeadline
// notice instead of wedging the worker's pool slot forever.
func TestOpDeadlineAbandonsHungTuple(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        containApp(t, containProcess),
		ListenAddr: "master",
		Transport:  mem,
		OnResult:   col.add,
		OpDeadline: 50 * time.Millisecond,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w := startContainWorker(t, mem, m, "w1", containProcess)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	// High seq: the abandoned tuple never plays, and a hole at seq 0 would
	// stall in-order playback (see TestOperatorPanicContained).
	hung := plainTuple(1000)
	hung.Set("hang", tuple.Int64(400))
	if err := m.Submit(hung); err != nil {
		t.Fatalf("Submit hung tuple: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return m.Stats().DropDeadlines == 1 }, "deadline drop notice accounted")
	if got := w.Deadlined(); got != 1 {
		t.Fatalf("worker abandoned %d tuples, want 1", got)
	}

	// The slot respawned its runner; later tuples flow normally even while
	// the abandoned chain invocation is still sleeping.
	if err := m.Submit(plainTuple(0)); err != nil {
		t.Fatalf("Submit after deadline: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(col.snapshot()) == 1 }, "healthy tuple after deadline drop")
}

// TestPoisonQuarantineSparesHealthyBreakers is the issue's containment
// scenario: one poison tuple panics on three healthy workers in turn and
// must end up quarantined (ShedPoison) WITHOUT opening any of their
// breakers — only the first burned worker is charged, once.
func TestPoisonQuarantineSparesHealthyBreakers(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:              containApp(t, containProcess),
		ListenAddr:       "master",
		Transport:        mem,
		OnResult:         col.add,
		PoisonAttempts:   3,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	for _, id := range []string{"w1", "w2", "w3"} {
		startContainWorker(t, mem, m, id, containProcess)
	}
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 3 }, "three workers join")

	// High seq: the quarantined tuple never plays, and a hole at seq 0
	// would stall in-order playback of the healthy load below.
	bad := plainTuple(1000)
	bad.Set("panic", tuple.Bool(true))
	if err := m.Submit(bad); err != nil {
		t.Fatalf("Submit poison tuple: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return m.Stats().ShedPoison == 1 }, "poison tuple quarantined")

	st := m.Stats()
	if st.Shed < 1 {
		t.Fatalf("ShedPoison must be a subset of Shed: shed %d, poison %d", st.Shed, st.ShedPoison)
	}
	for _, ws := range st.Workers {
		if ws.Breaker != "closed" || ws.BreakerOpens != 0 {
			t.Fatalf("worker %s breaker %s (opened %d times): poison tuple tripped a healthy worker",
				ws.ID, ws.Breaker, ws.BreakerOpens)
		}
	}

	// The swarm is intact: healthy load is routable to all three workers
	// and delivers in full.
	const n = 12
	for i := uint64(0); i < n; i++ {
		if err := m.Submit(plainTuple(i)); err != nil {
			t.Fatalf("Submit healthy %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return len(col.snapshot()) == n }, "healthy load delivered after quarantine")
}

// TestSickWorkerStillTripsBreaker is the flip side of quarantine: a
// worker that fails EVERY tuple (fresh failures, not one bad tuple
// bouncing around) must still accumulate consecutive breaker charges and
// trip — quarantine's first-failure-only charging does not grant sick
// devices immunity. Each of its tuples re-dispatches to the healthy
// worker and is delivered, not quarantined.
func TestSickWorkerStillTripsBreaker(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:              containApp(t, containProcess),
		ListenAddr:       "master",
		Transport:        mem,
		OnResult:         col.add,
		PoisonAttempts:   3,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	sickProc := func(graph.Emitter, *tuple.Tuple) error {
		return errors.New("sick device: refusing every tuple")
	}
	startContainWorker(t, mem, m, "sick", sickProc)
	startContainWorker(t, mem, m, "healthy", containProcess)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "both workers join")

	// Feed plain tuples until the sick worker's breaker opens. Every tuple
	// it touches is that tuple's FIRST failure, so each one charges it.
	var submitted int
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := m.Stats()
		var sick *WorkerStatus
		for i := range st.Workers {
			if st.Workers[i].ID == "sick" {
				sick = &st.Workers[i]
			}
		}
		if sick != nil && sick.Breaker == "open" {
			break
		}
		if submitted < 60 {
			if err := m.Submit(plainTuple(uint64(submitted))); err != nil {
				t.Fatalf("Submit %d: %v", submitted, err)
			}
			submitted++
		}
		time.Sleep(20 * time.Millisecond)
	}

	st := m.Stats()
	var sickOpens, healthyOpens int64
	for _, ws := range st.Workers {
		switch ws.ID {
		case "sick":
			sickOpens = ws.BreakerOpens
			if ws.Breaker != "open" {
				t.Fatalf("sick worker breaker %q after %d tuples, want open", ws.Breaker, submitted)
			}
		case "healthy":
			healthyOpens = ws.BreakerOpens
			if ws.Breaker != "closed" {
				t.Fatalf("healthy worker breaker %q, want closed", ws.Breaker)
			}
		}
	}
	if sickOpens != 1 || healthyOpens != 0 {
		t.Fatalf("breaker opens = sick %d, healthy %d; want 1, 0", sickOpens, healthyOpens)
	}

	// Worker-specific failures are NOT poison: every tuple that failed on
	// the sick worker re-dispatched to the healthy one and was delivered.
	waitFor(t, 10*time.Second, func() bool {
		return len(col.snapshot()) == submitted && m.Stats().InFlight == 0
	}, "all tuples delivered despite the sick worker")
	if got := m.Stats().ShedPoison; got != 0 {
		t.Fatalf("ShedPoison = %d: worker-specific failures were quarantined as poison", got)
	}
	seen := make(map[uint64]bool)
	for _, r := range col.snapshot() {
		if seen[r.Tuple.SeqNo] {
			t.Fatalf("seq %d delivered twice", r.Tuple.SeqNo)
		}
		seen[r.Tuple.SeqNo] = true
	}
}

// TestHedgedRetransmitStragglers pins the hedging tentpole: tuples stuck
// on a pathologically slow worker past the hedge bar are speculatively
// duplicated to the fast worker, the first result wins, and the sink's
// dedup keeps delivery at-most-once — so tail latency collapses without
// giving up the straggler's eventual answer.
func TestHedgedRetransmitStragglers(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        containApp(t, containProcess),
		ListenAddr: "master",
		Transport:  mem,
		OnResult:   col.add,
		HedgeAfter: 60 * time.Millisecond,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	slowProc := func(em graph.Emitter, tp *tuple.Tuple) error {
		time.Sleep(500 * time.Millisecond)
		return containProcess(em, tp)
	}
	startContainWorker(t, mem, m, "slow", slowProc)
	startContainWorker(t, mem, m, "fast", containProcess)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "both workers join")

	const n = 8
	for i := uint64(0); i < n; i++ {
		if err := m.Submit(plainTuple(i)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Everything lands despite the straggler, well before the slow worker
	// could have drained its share serially, and at least one dispatch was
	// hedged.
	waitFor(t, 10*time.Second, func() bool {
		return len(col.snapshot()) == n && m.Stats().Hedged > 0
	}, "all delivered with hedged dispatches")
	waitFor(t, 10*time.Second, func() bool {
		st := m.Stats()
		return st.InFlight == 0 && st.Acked == n
	}, "ledger settles after hedging")
	seen := make(map[uint64]bool)
	for _, r := range col.snapshot() {
		if seen[r.Tuple.SeqNo] {
			t.Fatalf("seq %d delivered twice despite hedged duplicates", r.Tuple.SeqNo)
		}
		seen[r.Tuple.SeqNo] = true
	}
}
