package runtime

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/discovery"
	"github.com/swingframework/swing/internal/transport"
)

// TestDiscoveryToJoin exercises the paper's full join workflow over real
// sockets: the master announces itself over UDP, a worker discovers the
// address, dials it over TCP, and processes frames.
func TestDiscoveryToJoin(t *testing.T) {
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "127.0.0.1:0",
		Transport:  transport.TCP{},
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	// Pick a free UDP port for the discovery channel.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := pc.LocalAddr().(*net.UDPAddr).Port
	_ = pc.Close()
	udpAddr := fmt.Sprintf("127.0.0.1:%d", port)

	// The worker listens first, then the master starts announcing.
	found := make(chan discovery.Announcement, 1)
	go func() {
		ann, err := discovery.Listen(udpAddr, app.Name(), 10*time.Second)
		if err == nil {
			found <- ann
		}
	}()
	time.Sleep(50 * time.Millisecond)
	ann, err := discovery.NewAnnouncer(udpAddr,
		discovery.Announcement{App: app.Name(), Addr: m.Addr()}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ann.Close() }()

	var masterAddr string
	select {
	case got := <-found:
		masterAddr = got.Addr
	case <-time.After(10 * time.Second):
		t.Fatal("discovery timed out")
	}

	w, err := StartWorker(WorkerConfig{
		DeviceID:   "discovered",
		MasterAddr: masterAddr,
		App:        app,
		Transport:  transport.TCP{},
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker: %v", err)
	}
	defer func() { _ = w.Close() }()
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "discovered worker join")

	src := apps.NewFrameSource(6000, 3)
	for i := 0; i < 5; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return len(col.snapshot()) == 5 }, "results via discovered worker")
}
