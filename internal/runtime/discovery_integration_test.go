package runtime

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/discovery"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
)

// TestDiscoveryToJoin exercises the paper's full join workflow over real
// sockets: the master announces itself over UDP, a worker discovers the
// address, dials it over TCP, and processes frames.
func TestDiscoveryToJoin(t *testing.T) {
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "127.0.0.1:0",
		Transport:  transport.TCP{},
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	// Pick a free UDP port for the discovery channel.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := pc.LocalAddr().(*net.UDPAddr).Port
	_ = pc.Close()
	udpAddr := fmt.Sprintf("127.0.0.1:%d", port)

	// The worker listens first, then the master starts announcing.
	found := make(chan discovery.Announcement, 1)
	go func() {
		ann, err := discovery.Listen(udpAddr, app.Name(), 10*time.Second)
		if err == nil {
			found <- ann
		}
	}()
	time.Sleep(50 * time.Millisecond)
	ann, err := discovery.NewAnnouncer(udpAddr,
		discovery.Announcement{App: app.Name(), Addr: m.Addr()}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ann.Close() }()

	var masterAddr string
	select {
	case got := <-found:
		masterAddr = got.Addr
	case <-time.After(10 * time.Second):
		t.Fatal("discovery timed out")
	}

	w, err := StartWorker(WorkerConfig{
		DeviceID:   "discovered",
		MasterAddr: masterAddr,
		App:        app,
		Transport:  transport.TCP{},
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker: %v", err)
	}
	defer func() { _ = w.Close() }()
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "discovered worker join")

	src := apps.NewFrameSource(6000, 3)
	for i := 0; i < 5; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return len(col.snapshot()) == 5 }, "results via discovered worker")
}

// TestLateJoinerWarmsIntoSelection exercises the paper's §IV-C workflow
// for a device that arrives mid-stream: it hears the master's
// epoch-bearing beacon, joins the running swarm, is probed while its
// estimate is cold, and enters the selected routing set once the
// estimate warms.
func TestLateJoinerWarmsIntoSelection(t *testing.T) {
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "127.0.0.1:0",
		Transport:  transport.TCP{},
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	w1, err := StartWorker(WorkerConfig{
		DeviceID:   "early",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  transport.TCP{},
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w1.Close() }()
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "early worker joins")

	// Stream continuously so probing and selection have live traffic.
	stop := make(chan struct{})
	var streamDone sync.WaitGroup
	streamDone.Add(1)
	go func() {
		defer streamDone.Done()
		src := apps.NewFrameSource(6000, 11)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.Submit(src.Next())
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() { close(stop); streamDone.Wait() }()

	// The master announces with its epoch; the late joiner filters beacons
	// by that epoch — a stale incarnation could not steer it.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	udpAddr := fmt.Sprintf("127.0.0.1:%d", pc.LocalAddr().(*net.UDPAddr).Port)
	_ = pc.Close()
	found := make(chan discovery.Announcement, 1)
	go func() {
		ann, err := discovery.ListenSince(udpAddr, app.Name(), m.Epoch(), 10*time.Second)
		if err == nil {
			found <- ann
		}
	}()
	time.Sleep(50 * time.Millisecond)
	ann, err := discovery.NewAnnouncer(udpAddr,
		discovery.Announcement{App: app.Name(), Addr: m.Addr(), Epoch: m.Epoch()},
		50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ann.Close() }()
	var beacon discovery.Announcement
	select {
	case beacon = <-found:
	case <-time.After(10 * time.Second):
		t.Fatal("late joiner never heard an acceptable beacon")
	}
	if beacon.Epoch != m.Epoch() {
		t.Fatalf("beacon epoch = %d, want %d", beacon.Epoch, m.Epoch())
	}

	late, err := StartWorker(WorkerConfig{
		DeviceID:   "late",
		MasterAddr: beacon.Addr,
		App:        app,
		Transport:  transport.TCP{},
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("late StartWorker: %v", err)
	}
	defer func() { _ = late.Close() }()
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "late worker joins mid-stream")

	// A genuinely new device starts cold — no samples — and must be probed
	// with real traffic before LRS can weigh it (§IV-C).
	lateInfo := func() (routing.Info, bool) {
		for _, info := range m.Snapshot() {
			if info.ID == "late" {
				return info, true
			}
		}
		return routing.Info{}, false
	}
	if info, ok := lateInfo(); !ok {
		t.Fatal("late worker missing from routing snapshot")
	} else if info.Estimate.Samples != 0 {
		t.Fatalf("late joiner started with %d samples, want cold start", info.Estimate.Samples)
	}
	waitFor(t, 10*time.Second, func() bool {
		info, ok := lateInfo()
		return ok && info.Estimate.Samples > 0
	}, "late joiner probed")
	waitFor(t, 10*time.Second, func() bool {
		info, ok := lateInfo()
		return ok && info.Estimate.Samples > 0 && info.Selected
	}, "late joiner selected once estimate warms")
}
