package runtime

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/obs"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/wire"
)

// startPrimary starts a journaling master with a replication listener on
// the shared mem transport. Periodic checkpoints stay disabled so the
// only checkpoints cut are the standby-attach ones.
func startPrimary(t *testing.T, mem *transport.Mem, jpath string, col *resultCollector) *Master {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	cfg := MasterConfig{
		App:                app,
		Policy:             routing.LRS,
		ListenAddr:         "master",
		Transport:          mem,
		JournalPath:        jpath,
		CheckpointEvery:    -1,
		Fsync:              FsyncNever,
		RetryDeadline:      5 * time.Second,
		Shards:             4,
		ReplicateAddr:      "primary-rep",
		ReplicatePingEvery: 20 * time.Millisecond,
		Logger:             quietLogger(),
	}
	if col != nil {
		cfg.OnResult = col.add
	}
	m, err := StartMaster(cfg)
	if err != nil {
		t.Fatalf("StartMaster: %v", err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// startHotStandby attaches a standby to the primary's replication
// listener. The standby's master config reuses the primary's worker
// listen address: on the mem transport a crashed primary frees it, so
// the promoted incarnation is reachable at the address every worker is
// already redialing.
func startHotStandby(t *testing.T, mem *transport.Mem, jpath string, col *resultCollector,
	takeoverAfter time.Duration) *Standby {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	cfg := MasterConfig{
		App:             app,
		Policy:          routing.LRS,
		ListenAddr:      "master",
		Transport:       mem,
		JournalPath:     jpath,
		CheckpointEvery: -1,
		Fsync:           FsyncNever,
		RetryDeadline:   5 * time.Second,
		Shards:          4,
		Logger:          quietLogger(),
	}
	if col != nil {
		cfg.OnResult = col.add
	}
	sb, err := StartStandby(StandbyConfig{
		ID:            "sb1",
		PrimaryAddr:   "primary-rep",
		TakeoverAfter: takeoverAfter,
		RedialBackoff: 20 * time.Millisecond,
		Master:        cfg,
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartStandby: %v", err)
	}
	t.Cleanup(func() {
		_ = sb.Close()
		if m := sb.Master(); m != nil {
			_ = m.Close()
		}
	})
	return sb
}

// standbys samples the primary's replication status.
func standbys(m *Master) []obs.Standby {
	rep := m.StatusSnapshot().Replication
	if rep == nil {
		return nil
	}
	return rep.Standbys
}

// hasEvent reports whether the master's event log contains kind.
func hasEvent(m *Master, kind string) bool {
	for _, e := range m.Events() {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// TestStandbyReplicationStream checks the replication plane without a
// failover: a standby attaches through a checkpoint, tails the journal
// to lag zero, and its mirror alone — no promotion — recovers to
// exactly the primary's durable state.
func TestStandbyReplicationStream(t *testing.T) {
	mem := transport.NewMem()
	dir := t.TempDir()
	pwal := filepath.Join(dir, "p-wal")
	swal := filepath.Join(dir, "s-wal")
	col := &resultCollector{}
	m := startPrimary(t, mem, pwal, col)
	startReconnectingWorker(t, mem, m.Addr(), "w1")
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "worker join")

	sb := startHotStandby(t, mem, swal, nil, time.Hour) // never promotes in this test
	waitFor(t, 3*time.Second, func() bool { return len(standbys(m)) == 1 }, "standby attach")
	if !hasEvent(m, obs.EventStandbyAttach) {
		t.Fatal("no standby-attach event recorded")
	}

	const n = 30
	src := apps.NewFrameSource(600, 7)
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return st.Acked == n && st.InFlight == 0
	}, "batch acked")

	// The standby catches all the way up: lag 0 means every flushed batch
	// — submits and acks both — is confirmed applied in the mirror.
	waitFor(t, 3*time.Second, func() bool {
		sbs := standbys(m)
		return len(sbs) == 1 && sbs[0].Lag == 0 && sbs[0].AckedSeq > 0
	}, "standby lag zero")
	rep := m.StatusSnapshot().Replication
	if rep.Role != "primary" {
		t.Fatalf("replication role = %q, want primary", rep.Role)
	}
	if rep.Standbys[0].ID != "sb1" {
		t.Fatalf("standby id = %q, want sb1", rep.Standbys[0].ID)
	}
	if sb.Applied() == 0 {
		t.Fatal("standby applied watermark never advanced")
	}
	select {
	case <-sb.Promoted():
		t.Fatal("standby promoted while the primary was alive")
	default:
	}

	// Detach and read the mirror back through the ordinary recovery path:
	// it must reconstruct the primary's ledger exactly, with no pending
	// backlog (everything was acked) and the primary's epoch.
	_ = sb.Close()
	waitFor(t, 3*time.Second, func() bool { return len(standbys(m)) == 0 }, "standby detach")
	if !hasEvent(m, obs.EventStandbyDetach) {
		t.Fatal("no standby-detach event recorded")
	}
	rs, err := recoverState(swal, swal+".ckpt")
	if err != nil {
		t.Fatalf("recoverState over mirror: %v", err)
	}
	if rs.counters.Submitted != n || rs.counters.Acked != n {
		t.Fatalf("mirror recovered submitted/acked = %d/%d, want %d/%d",
			rs.counters.Submitted, rs.counters.Acked, n, n)
	}
	if len(rs.pending) != 0 {
		t.Fatalf("mirror recovered %d pending tuples, want 0", len(rs.pending))
	}
	if rs.prevEpoch != 1 {
		t.Fatalf("mirror epoch = %d, want 1", rs.prevEpoch)
	}
}

// TestStandbyFailoverPromotion is the headline failover scenario: eight
// workers stream under a primary with a hot standby attached, the
// primary is killed mid-stream with tuples in flight, the standby
// promotes itself within the takeover window, every worker re-adopts
// onto the bumped epoch, the journaled backlog drains, and the sink
// plays every tuple at most once across both incarnations.
func TestStandbyFailoverPromotion(t *testing.T) {
	mem := transport.NewMem()
	dir := t.TempDir()
	col1 := &resultCollector{}
	col2 := &resultCollector{}
	m1 := startPrimary(t, mem, filepath.Join(dir, "p-wal"), col1)
	if m1.Epoch() != 1 {
		t.Fatalf("fresh primary epoch = %d, want 1", m1.Epoch())
	}

	const workers = 8
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = startReconnectingWorker(t, mem, m1.Addr(), fmt.Sprintf("w%d", i))
	}
	waitFor(t, 3*time.Second, func() bool { return len(m1.Workers()) == workers }, "workers join")

	sb := startHotStandby(t, mem, filepath.Join(dir, "s-wal"), col2, 300*time.Millisecond)
	waitFor(t, 3*time.Second, func() bool { return len(standbys(m1)) == 1 }, "standby attach")

	// Sustained load: most of it resolves under the primary, the tail is
	// still in flight when the kill lands.
	src := apps.NewFrameSource(600, 7)
	const warm, tail = 120, 40
	for i := 0; i < warm; i++ {
		if err := m1.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return m1.Stats().Acked >= warm/2 }, "load in progress")
	for i := 0; i < tail; i++ {
		if err := m1.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	m1.Crash()
	st1 := m1.Stats()
	if !ledgerBalanced(st1) {
		t.Fatalf("primary ledger unbalanced at crash: %+v", st1)
	}

	// The standby notices the silence and takes over within the window.
	select {
	case <-sb.Promoted():
	case <-time.After(5 * time.Second):
		t.Fatal("standby did not promote after primary crash")
	}
	if err := sb.Err(); err != nil {
		t.Fatalf("promotion failed: %v", err)
	}
	m2 := sb.Master()
	if m2 == nil {
		t.Fatal("promoted standby has no master")
	}
	if m2.Epoch() != m1.Epoch()+1 {
		t.Fatalf("promoted epoch = %d, want %d", m2.Epoch(), m1.Epoch()+1)
	}
	if !hasEvent(m2, obs.EventPromoted) {
		t.Fatal("no promoted event recorded on the new incarnation")
	}

	// Every worker's ordinary reconnect loop lands on the promoted master
	// and re-adopts under the bumped epoch.
	waitFor(t, 5*time.Second, func() bool { return len(m2.Workers()) == workers }, "workers re-adopt")
	waitFor(t, 3*time.Second, func() bool {
		for _, w := range ws {
			if w.MasterEpoch() != m2.Epoch() {
				return false
			}
		}
		return true
	}, "workers see promoted epoch")
	if got := m2.Stats().Readopted; got != workers {
		t.Fatalf("Readopted = %d, want %d", got, workers)
	}

	// The mirrored backlog drains through the normal retransmit path, and
	// fresh traffic keeps flowing on the promoted incarnation.
	waitFor(t, 10*time.Second, func() bool { return m2.Stats().InFlight == 0 }, "backlog resolved")
	src.SeekTo(m2.NextSeq())
	const fresh = 30
	for i := 0; i < fresh; i++ {
		if err := m2.Submit(src.Next()); err != nil {
			t.Fatalf("Submit after failover: %v", err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return m2.Stats().InFlight == 0 }, "fresh batch resolved")
	st2 := m2.Stats()
	if !ledgerBalanced(st2) {
		t.Fatalf("post-failover ledger unbalanced: %+v", st2)
	}

	// At-most-once across the failover: semi-sync replication holds every
	// result until its ack record is mirrored, so the promoted master can
	// never replay a frame the dead primary already delivered.
	seen := make(map[uint64]int)
	for _, r := range col1.snapshot() {
		seen[r.Tuple.ID]++
	}
	for _, r := range col2.snapshot() {
		seen[r.Tuple.ID]++
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("tuple %d played %d times across failover", id, n)
		}
	}
}

// epochFakeMaster accepts one worker and completes the handshake
// advertising the given incarnation number, then hangs up.
func epochFakeMaster(t *testing.T, mem *transport.Mem, addr string, app *apps.App, epoch uint64) {
	t.Helper()
	ln, err := mem.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.FrameHello {
			return
		}
		db, err := wire.EncodeJSON(wire.Deploy{
			Units:             app.Graph.Operators(),
			ReportEveryMillis: 1000,
			Epoch:             epoch,
		})
		if err != nil {
			return
		}
		_ = wire.WriteFrame(conn, wire.FrameDeploy, db)
		_ = wire.WriteFrame(conn, wire.FrameStart, nil)
	}()
}

// TestZombiePrimaryFenced checks both halves of the epoch fence: a
// worker that re-adopted onto a promoted master refuses a deployment
// from the older incarnation it used to serve, and a journaling master
// refuses a worker that claims a newer incarnation than its own.
func TestZombiePrimaryFenced(t *testing.T) {
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}

	// Worker side: the zombie primary still answers its address and deploys
	// under epoch 1, but this worker has already served epoch 2.
	mem := transport.NewMem()
	epochFakeMaster(t, mem, "zombie", app, 1)
	_, err = dialSession(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: "zombie",
		App:        app,
		Transport:  mem,
	}.withDefaults(), 2)
	if !errors.Is(err, ErrStaleMaster) {
		t.Fatalf("dialSession against stale master = %v, want ErrStaleMaster", err)
	}

	// Master side: a live epoch-1 master must refuse a worker claiming
	// epoch 2 — that worker belongs to a newer incarnation, and adopting
	// it would split the swarm across a failover.
	mem2 := transport.NewMem()
	m := startRecoverableMaster(t, mem2, filepath.Join(t.TempDir(), "wal"), nil)
	conn, err := mem2.Dial(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	hello, err := wire.EncodeJSON(wire.Hello{DeviceID: "future", App: app.Name(), Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatalf("stale master answered a future-epoch worker with %v, want refusal", typ)
	}
	if len(m.Workers()) != 0 {
		t.Fatalf("stale master adopted a future-epoch worker: %v", m.Workers())
	}
}

// TestWorkerReconnectBudgetCumulative checks that brief sessions do not
// refill the reconnect budget: a link that flaps through outages each
// individually smaller than the budget still exhausts it, because the
// failed-attempt count carries across rejoins.
func TestWorkerReconnectBudgetCumulative(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	startMaster := func() *Master {
		m, err := StartMaster(MasterConfig{
			App:        app,
			ListenAddr: "budget-master",
			Transport:  mem,
			Logger:     quietLogger(),
		})
		if err != nil {
			t.Fatalf("StartMaster: %v", err)
		}
		return m
	}
	m := startMaster()
	w, err := StartWorker(WorkerConfig{
		DeviceID:         "flappy",
		MasterAddr:       "budget-master",
		App:              app,
		Transport:        mem,
		Reconnect:        true,
		ReconnectBackoff: 10 * time.Millisecond,
		// Budget 4 with a reset window far beyond the test: every outage
		// below draws down the same budget.
		ReconnectAttempts:   4,
		ReconnectResetAfter: time.Hour,
		Logger:              quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	errCh := make(chan error, 1)
	go func() { errCh <- w.Wait() }()

	// Each cycle: kill the master, let a couple of dials fail (well under
	// the budget of 4), then bring a master back so the worker rejoins.
	// Without cumulative accounting the worker would survive indefinitely.
	for cycle := 0; cycle < 8; cycle++ {
		waitFor(t, 3*time.Second, func() bool { return len(m.Workers()) == 1 }, "worker joined")
		m.Crash()
		time.Sleep(50 * time.Millisecond)
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrReconnectExhausted) {
				t.Fatalf("Wait() = %v, want ErrReconnectExhausted", err)
			}
			return
		default:
		}
		m = startMaster()
		t.Cleanup(func() { _ = m.Close() })
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrReconnectExhausted) {
			t.Fatalf("Wait() = %v, want ErrReconnectExhausted", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("budget never exhausted: brief sessions must not refill ReconnectAttempts")
	}
}

// TestWorkerReconnectBudgetReset checks the other half of the policy: a
// session that survives ReconnectResetAfter counts as a real recovery
// and refills the budget, so a worker weathering occasional outages
// separated by long healthy stretches never falls out of the swarm.
func TestWorkerReconnectBudgetReset(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	startMaster := func() *Master {
		m, err := StartMaster(MasterConfig{
			App:        app,
			ListenAddr: "reset-master",
			Transport:  mem,
			Logger:     quietLogger(),
		})
		if err != nil {
			t.Fatalf("StartMaster: %v", err)
		}
		return m
	}
	m := startMaster()
	w, err := StartWorker(WorkerConfig{
		DeviceID:            "steady",
		MasterAddr:          "reset-master",
		App:                 app,
		Transport:           mem,
		Reconnect:           true,
		ReconnectBackoff:    10 * time.Millisecond,
		ReconnectAttempts:   4,
		ReconnectResetAfter: 100 * time.Millisecond,
		Logger:              quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })

	// Five outages of one-to-three failed dials each — more failures in
	// total than the budget of 4 — but every rejoined session holds well
	// past ReconnectResetAfter, refilling the budget each time.
	for cycle := 0; cycle < 5; cycle++ {
		waitFor(t, 3*time.Second, func() bool { return len(m.Workers()) == 1 }, "worker joined")
		time.Sleep(250 * time.Millisecond) // session outlives the reset window
		m.Crash()
		time.Sleep(40 * time.Millisecond) // a dial failure or two
		m = startMaster()
		t.Cleanup(func() { _ = m.Close() })
	}
	waitFor(t, 3*time.Second, func() bool { return len(m.Workers()) == 1 }, "worker joined after final outage")
	if err := w.Err(); err != nil {
		t.Fatalf("worker terminal error = %v, want none (budget should have refilled)", err)
	}
}

// TestFailoverSoak hammers the failover path: a long sustained stream
// with a chain of primaries, each killed mid-load and replaced by a hot
// standby, verifying the ledger and at-most-once invariants hold across
// every hop. Gated behind SWING_SOAK=1 (see scripts/soak.sh).
func TestFailoverSoak(t *testing.T) {
	if os.Getenv("SWING_SOAK") == "" {
		t.Skip("soak test: set SWING_SOAK=1 to run")
	}
	mem := transport.NewMem()
	dir := t.TempDir()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	cols := []*resultCollector{{}}
	m := startPrimary(t, mem, filepath.Join(dir, "wal-0"), cols[0])
	const workers = 8
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = startReconnectingWorker(t, mem, m.Addr(), fmt.Sprintf("w%d", i))
	}
	waitFor(t, 3*time.Second, func() bool { return len(m.Workers()) == workers }, "workers join")

	src := apps.NewFrameSource(600, 7)
	const hops = 5
	for hop := 1; hop <= hops; hop++ {
		col := &resultCollector{}
		cols = append(cols, col)
		sbCfg := MasterConfig{
			App:             app,
			Policy:          routing.LRS,
			ListenAddr:      "master",
			Transport:       mem,
			JournalPath:     filepath.Join(dir, fmt.Sprintf("wal-%d", hop)),
			CheckpointEvery: -1,
			Fsync:           FsyncNever,
			RetryDeadline:   5 * time.Second,
			Shards:          4,
			// The promoted master becomes the next hop's primary.
			ReplicateAddr:      "primary-rep",
			ReplicatePingEvery: 20 * time.Millisecond,
			OnResult:           col.add,
			Logger:             quietLogger(),
		}
		sb, err := StartStandby(StandbyConfig{
			ID:            fmt.Sprintf("sb%d", hop),
			PrimaryAddr:   "primary-rep",
			TakeoverAfter: 300 * time.Millisecond,
			RedialBackoff: 20 * time.Millisecond,
			Master:        sbCfg,
			Logger:        quietLogger(),
		})
		if err != nil {
			t.Fatalf("StartStandby hop %d: %v", hop, err)
		}
		waitFor(t, 3*time.Second, func() bool { return len(standbys(m)) == 1 },
			"standby attach")

		src.SeekTo(m.NextSeq())
		for i := 0; i < 100; i++ {
			if err := m.Submit(src.Next()); err != nil {
				t.Fatalf("Submit hop %d: %v", hop, err)
			}
		}
		prevAcked := m.Stats().Acked
		waitFor(t, 10*time.Second, func() bool { return m.Stats().Acked >= prevAcked+40 },
			"load in progress")
		m.Crash()

		select {
		case <-sb.Promoted():
		case <-time.After(5 * time.Second):
			t.Fatalf("hop %d: standby did not promote", hop)
		}
		if err := sb.Err(); err != nil {
			t.Fatalf("hop %d: promotion failed: %v", hop, err)
		}
		next := sb.Master()
		_ = sb.Close()
		t.Cleanup(func() { _ = next.Close() })
		if next.Epoch() != uint64(hop+1) {
			t.Fatalf("hop %d: epoch = %d, want %d", hop, next.Epoch(), hop+1)
		}
		waitFor(t, 5*time.Second, func() bool { return len(next.Workers()) == workers },
			"workers re-adopt")
		waitFor(t, 15*time.Second, func() bool { return next.Stats().InFlight == 0 },
			"backlog resolved")
		if st := next.Stats(); !ledgerBalanced(st) {
			t.Fatalf("hop %d: ledger unbalanced: %+v", hop, st)
		}
		m = next
	}

	// At-most-once across the whole chain of incarnations.
	seen := make(map[uint64]int)
	for _, col := range cols {
		for _, r := range col.snapshot() {
			seen[r.Tuple.ID]++
		}
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("tuple %d played %d times across the failover chain", id, n)
		}
	}
}
