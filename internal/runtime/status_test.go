package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/obs"
	"github.com/swingframework/swing/internal/transport"
)

// pollStatus fetches and decodes one /statusz JSON sample, asserting the
// exact ledger invariant — Acked + Shed + InFlight + Retransmitting ==
// Submitted — which must hold on EVERY poll, not only at quiescence.
func pollStatus(t *testing.T, base string) (obs.Snapshot, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/statusz?format=json")
	if err != nil {
		t.Fatalf("poll status: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("poll status read: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("poll status decode: %v\n%s", err, body)
	}
	if !snap.Ledger.Balanced || !snap.Ledger.CheckBalance() {
		t.Fatalf("unbalanced ledger in live sample: %+v", snap.Ledger)
	}
	return snap, body
}

// TestStatusEndpointE2E drives a live swarm with the observability plane
// enabled: two workers join, one hangs and is evicted, and every poll of
// the HTTP endpoint — taken concurrently with submits, acks, eviction and
// retransmission — must show a balanced ledger. The eviction must surface
// in the worker view, the eviction counter, and the event log.
func TestStatusEndpointE2E(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:          app,
		ListenAddr:   "master",
		Transport:    mem,
		StatusAddr:   "127.0.0.1:0",
		Heartbeat:    20 * time.Millisecond,
		SuspectAfter: 60 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	if m.StatusAddr() == "" {
		t.Fatal("StatusAddr empty with status endpoint configured")
	}
	base := "http://" + m.StatusAddr()

	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "w1 joins")
	// Every frame the hung worker writes stalls 250 ms — longer than
	// DeadAfter, so the silence detector must evict it.
	startFaultyWorker(t, mem, m, "lagged", transport.FaultConfig{Seed: 9, Delay: 250 * time.Millisecond})
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "lagged joins")

	snap, _ := pollStatus(t, base)
	if len(snap.Workers) != 2 {
		t.Fatalf("workers in status = %+v, want w1 and lagged", snap.Workers)
	}
	if snap.Epoch != 1 || snap.Routing.Policy != "LRS" {
		t.Fatalf("status header: epoch %d policy %q", snap.Epoch, snap.Routing.Policy)
	}

	src := apps.NewFrameSource(600, 7)
	const n = 40
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if i%8 == 0 {
			pollStatus(t, base) // sample mid-traffic: invariant must hold
		}
	}

	// Poll through the eviction window; every sample stays balanced.
	waitFor(t, 5*time.Second, func() bool {
		snap, _ = pollStatus(t, base)
		return snap.Ledger.Evicted == 1 && len(snap.Workers) == 1
	}, "eviction surfaces in status endpoint")
	if snap.Workers[0].ID != "w1" {
		t.Fatalf("surviving worker = %+v, want w1", snap.Workers)
	}

	// Drain: everything submitted ends acked or shed, nothing in limbo.
	waitFor(t, 10*time.Second, func() bool {
		snap, _ = pollStatus(t, base)
		return snap.Ledger.Acked+snap.Ledger.Shed == n &&
			snap.Ledger.InFlight == 0 && snap.Ledger.Retransmitting == 0
	}, "ledger drains after eviction")
	if snap.Ledger.Submitted != n {
		t.Fatalf("Submitted = %d, want %d", snap.Ledger.Submitted, n)
	}
	if snap.Sink.Played == 0 {
		t.Fatal("no frames played through the sink")
	}
	if snap.UptimeMillis <= 0 || snap.EventsTotal == 0 {
		t.Fatalf("uptime %dms, events %d", snap.UptimeMillis, snap.EventsTotal)
	}

	// The event log must carry both joins and the eviction.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	evicted := ""
	for _, e := range events {
		kinds[e.Kind]++
		if e.Kind == obs.EventEvicted {
			evicted = e.Worker
		}
	}
	if kinds[obs.EventWorkerJoin] != 2 {
		t.Fatalf("worker-join events = %d, want 2 (events: %+v)", kinds[obs.EventWorkerJoin], events)
	}
	if evicted != "lagged" {
		t.Fatalf("worker-evicted event for %q, want lagged (events: %+v)", evicted, events)
	}

	// The endpoint and Stats render the same snapshot path: they agree.
	st := m.Stats()
	snap, _ = pollStatus(t, base)
	if snap.Ledger.Submitted != st.Submitted || snap.Ledger.Acked != st.Acked ||
		snap.Ledger.Shed != st.Shed || snap.Ledger.Evicted != st.Evicted {
		t.Fatalf("endpoint %+v disagrees with Stats %+v", snap.Ledger, st)
	}
}

// TestShapedDegradedLink runs a two-worker swarm over a shaped transport:
// the first link degrades from a strong signal to the paper's weak-spot
// RSSI shortly after start while the second stays strong. LRS must shift
// routing probability mass off the degraded link, and the shaping report
// must show where the injected delay went.
func TestShapedDegradedLink(t *testing.T) {
	mem := transport.NewMem()
	scn, err := transport.ParseScenario("walk:-28@150ms,-82@60s")
	if err != nil {
		t.Fatal(err)
	}
	shaped := transport.WithShaping(mem, scn, 5)
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:               app,
		ListenAddr:        "master",
		Transport:         shaped, // shapes the downlink of accepted conns
		StatusAddr:        "127.0.0.1:0",
		OutboxCap:         16,
		InflightHighWater: 128,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })

	// Join order fixes link numbering: "degraded" is link 0 (the walk),
	// "healthy" is link 1 (strong forever).
	startTestWorker(t, mem, m, "degraded", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "degraded joins")
	startTestWorker(t, mem, m, "healthy", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "healthy joins")

	src := apps.NewFrameSource(600, 11)
	deadline := time.Now().Add(2500 * time.Millisecond)
	var sent int64
	for time.Now().Before(deadline) {
		if err := m.Submit(src.Next()); err == nil {
			sent++
		}
		time.Sleep(2 * time.Millisecond)
	}
	if sent == 0 {
		t.Fatal("nothing submitted through the shaped swarm")
	}

	// The endpoint and the weights: probability mass leaves the degraded
	// link once its inflated latency estimate feeds a reconfigure.
	var snap obs.Snapshot
	waitFor(t, 10*time.Second, func() bool {
		snap, _ = pollStatus(t, "http://"+m.StatusAddr())
		var deg, ok obs.Worker
		for _, w := range snap.Workers {
			switch w.ID {
			case "degraded":
				deg = w
			case "healthy":
				ok = w
			}
		}
		return deg.Samples > 0 && ok.Samples > 0 && deg.Weight < ok.Weight
	}, "LRS shifts weight off the degraded link")

	r := shaped.Report()
	if len(r.Links) < 2 {
		t.Fatalf("shaping report has %d links, want >= 2: %+v", len(r.Links), r)
	}
	if r.Links[0].DelayMillis <= r.Links[1].DelayMillis {
		t.Fatalf("degraded link 0 injected %.1fms <= healthy link 1 %.1fms",
			r.Links[0].DelayMillis, r.Links[1].DelayMillis)
	}
}

// TestShapedSoak is the scripted Wi-Fi-degradation soak behind
// scripts/soak.sh: three workers under the wifi-degrade pack, polling the
// status endpoint throughout (every sample must balance) and asserting
// the routing mass ends up off the degraded link. The final endpoint JSON
// is archived to SWING_SOAK_STATUS when set — the artifact soak.sh stores
// next to the log. Opt in with SWING_SOAK=1.
func TestShapedSoak(t *testing.T) {
	if os.Getenv("SWING_SOAK") == "" {
		t.Skip("set SWING_SOAK=1 (see scripts/soak.sh) to run the shaped soak")
	}
	dur := 10 * time.Second
	if s := os.Getenv("SWING_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad SWING_SOAK_SECONDS %q", s)
		}
		dur = time.Duration(secs) * time.Second
	}
	mem := transport.NewMem()
	// Three legs over the soak: link 0 good, then fair, then bad.
	scn, err := transport.ParseScenario(fmt.Sprintf("wifi-degrade:%s", dur/3))
	if err != nil {
		t.Fatal(err)
	}
	shaped := transport.WithShaping(mem, scn, 42)
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:               app,
		ListenAddr:        "master",
		Transport:         shaped,
		StatusAddr:        "127.0.0.1:0",
		Heartbeat:         50 * time.Millisecond,
		SuspectAfter:      200 * time.Millisecond,
		DeadAfter:         2 * time.Second,
		OutboxCap:         16,
		InflightHighWater: 256,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	for i, id := range []string{"degraded", "h1", "h2"} {
		startTestWorker(t, mem, m, id, 1)
		waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == i+1 }, id+" joins")
	}

	base := "http://" + m.StatusAddr()
	type sample struct {
		at     time.Duration
		weight float64
	}
	var series []sample
	var lastJSON []byte
	start := time.Now()
	src := apps.NewFrameSource(600, 13)
	deadline := start.Add(dur)
	var sent int64
	nextPoll := start
	for time.Now().Before(deadline) {
		if err := m.Submit(src.Next()); err == nil {
			sent++
		}
		if now := time.Now(); now.After(nextPoll) {
			snap, body := pollStatus(t, base) // asserts balance every poll
			lastJSON = body
			for _, w := range snap.Workers {
				if w.ID == "degraded" {
					series = append(series, sample{at: now.Sub(start), weight: w.Weight})
				}
			}
			nextPoll = now.Add(200 * time.Millisecond)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("shaped soak: %d submitted, %d status samples over %v", sent, len(series), dur)
	if sent == 0 || len(series) < 4 {
		t.Fatalf("soak too thin: %d submitted, %d samples", sent, len(series))
	}

	// Weight mass must shift off the degraded link: compare the first
	// leg's average weight (signal still strong) to the final quarter's.
	var early, late float64
	var nEarly, nLate int
	for _, s := range series {
		if s.at < dur/3 {
			early += s.weight
			nEarly++
		} else if s.at > 3*dur/4 {
			late += s.weight
			nLate++
		}
	}
	if nEarly == 0 || nLate == 0 {
		t.Fatalf("sample windows empty: early %d late %d", nEarly, nLate)
	}
	early /= float64(nEarly)
	late /= float64(nLate)
	t.Logf("degraded link weight: early %.3f -> late %.3f", early, late)
	if late >= early {
		t.Fatalf("weight mass did not shift off the degraded link: early %.3f late %.3f", early, late)
	}

	// Final poll is the archived artifact.
	snap, body := pollStatus(t, base)
	lastJSON = body
	for _, w := range snap.Workers {
		if w.ID == "degraded" {
			for _, h := range snap.Workers {
				if h.ID != "degraded" && w.Weight >= h.Weight {
					t.Fatalf("final weights: degraded %.3f >= %s %.3f", w.Weight, h.ID, h.Weight)
				}
			}
		}
	}
	if path := os.Getenv("SWING_SOAK_STATUS"); path != "" {
		if err := os.WriteFile(path, lastJSON, 0o644); err != nil {
			t.Fatalf("archive status JSON: %v", err)
		}
		t.Logf("archived final status JSON to %s", path)
	}
}
