package runtime

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/testutil"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// frameTuple builds one deterministic frame tuple for direct Submit calls.
func frameTuple(id uint64) *tuple.Tuple {
	t := tuple.New(id, id)
	t.Set(apps.FieldFrame, tuple.Bytes(make([]byte, 600)))
	return t
}

// ledgerBalanced checks the fault-tolerance invariant on a stats snapshot.
func ledgerBalanced(st MasterStats) bool {
	return st.Acked+st.Shed+int64(st.InFlight) == st.Submitted
}

func TestJournalReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, err := openJournal(path, 3, 7, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := j.appendSubmit(frameTuple(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.appendResend(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.appendAck(1); err != nil {
		t.Fatal(err)
	}
	if err := j.appendShed(3, true); err != nil {
		t.Fatal(err)
	}
	if err := j.appendShed(4, false); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	rep, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.truncated {
		t.Fatal("clean journal reported truncated")
	}
	if rep.epoch != 3 || rep.generation != 7 {
		t.Fatalf("meta = epoch %d gen %d, want 3/7", rep.epoch, rep.generation)
	}
	if len(rep.submits) != 4 {
		t.Fatalf("submits = %d, want 4", len(rep.submits))
	}
	if rep.attempts[2] != 1 || rep.resends != 1 {
		t.Fatalf("resend not replayed: attempts=%v resends=%d", rep.attempts, rep.resends)
	}
	if _, ok := rep.acked[1]; !ok {
		t.Fatal("ack of tuple 1 not replayed")
	}
	if overload, ok := rep.shed[3]; !ok || !overload {
		t.Fatalf("shed of tuple 3 = (%v,%v), want overload", overload, ok)
	}
	if overload, ok := rep.shed[4]; !ok || overload {
		t.Fatalf("shed of tuple 4 = (%v,%v), want non-overload", overload, ok)
	}

	// Merged view: tuple 2 pending at attempt 1, the rest released.
	rs, err := recoverState(path, filepath.Join(t.TempDir(), "none.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.pending) != 1 {
		t.Fatalf("pending = %d entries, want 1", len(rs.pending))
	}
	e, ok := rs.pending[2]
	if !ok || e.attempt != 1 {
		t.Fatalf("pending[2] = %+v, want attempt 1", e)
	}
	c := rs.counters
	if c.Submitted != 4 || c.Acked != 1 || c.Shed != 2 || c.ShedOverload != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Acked+c.Shed+int64(len(rs.pending)) != c.Submitted {
		t.Fatalf("replayed ledger unbalanced: %+v with %d pending", c, len(rs.pending))
	}
	if c.NextSeq != 5 {
		t.Fatalf("NextSeq = %d, want 5", c.NextSeq)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, err := openJournal(path, 1, 1, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		if err := j.appendSubmit(frameTuple(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.appendAck(2); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record (the ack): a crash mid-append leaves exactly
	// this — a partial record at the tail.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rep, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.truncated {
		t.Fatal("torn tail not reported")
	}
	if len(rep.submits) != 3 || len(rep.acked) != 0 {
		t.Fatalf("replay after tear: %d submits, %d acks; want 3, 0", len(rep.submits), len(rep.acked))
	}

	// The tear must have been truncated in place: a second replay sees a
	// clean journal ending at the last intact record.
	rep2, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.truncated {
		t.Fatal("tail still torn after truncating replay")
	}
	if len(rep2.submits) != 3 {
		t.Fatalf("second replay: %d submits, want 3", len(rep2.submits))
	}
}

func TestJournalForeignFileTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.truncated || len(rep.submits) != 0 {
		t.Fatalf("foreign file: truncated=%v submits=%d", rep.truncated, len(rep.submits))
	}
}

func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	st := &checkpointState{
		Version: checkpointVersion, Epoch: 2, Generation: 9,
		Submitted: 100, Acked: 90, Shed: 4, NextPlay: 88, NextSeq: 100,
		Estimates: []ckptEstimate{{ID: "w1", LatencyNanos: 5e6, ProcessingNanos: 2e6, Samples: 42}},
	}
	if err := saveCheckpoint(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || got.Generation != 9 || got.Submitted != 100 || got.NextPlay != 88 {
		t.Fatalf("loaded checkpoint = %+v", got)
	}
	if len(got.Estimates) != 1 || got.Estimates[0].Samples != 42 {
		t.Fatalf("estimates = %+v", got.Estimates)
	}

	// Flip one body byte: the checksum must fail closed, not decode junk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}

	// Missing file is a clean fresh start.
	got, err = loadCheckpoint(filepath.Join(t.TempDir(), "absent"))
	if err != nil || got != nil {
		t.Fatalf("missing checkpoint: %v, %v", got, err)
	}
}

func TestRecoverStateIgnoresStaleJournal(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wal")
	cpath := filepath.Join(dir, "ckpt")

	// Checkpoint at generation 5; journal left behind at generation 4.
	// This is the crash window between checkpoint rename and journal
	// rotation: every journal record is already folded into the
	// checkpoint, so replaying it would double-count.
	if err := saveCheckpoint(cpath, &checkpointState{
		Version: checkpointVersion, Epoch: 2, Generation: 5,
		Submitted: 10, Acked: 10, NextSeq: 10,
	}); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(jpath, 2, 4, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.appendSubmit(frameTuple(3)); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	rs, err := recoverState(jpath, cpath)
	if err != nil {
		t.Fatal(err)
	}
	if rs.counters.Submitted != 10 {
		t.Fatalf("stale journal replayed: Submitted = %d, want 10", rs.counters.Submitted)
	}
	if len(rs.pending) != 0 {
		t.Fatalf("stale journal produced %d pending", len(rs.pending))
	}
	if rs.prevEpoch != 2 || rs.generation != 5 {
		t.Fatalf("recovered epoch/gen = %d/%d, want 2/5", rs.prevEpoch, rs.generation)
	}
}

// startRecoverableMaster starts a journaling master on the shared mem
// transport. Periodic checkpoints are disabled so tests control exactly
// when state is snapshotted.
func startRecoverableMaster(t *testing.T, mem *transport.Mem, jpath string, col *resultCollector) *Master {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	cfg := MasterConfig{
		App:             app,
		Policy:          routing.LRS,
		ListenAddr:      "master",
		Transport:       mem,
		JournalPath:     jpath,
		CheckpointEvery: -1,
		Fsync:           FsyncNever,
		RetryDeadline:   5 * time.Second,
		// Several shards so every crash/recovery scenario in this file
		// exercises the segmented journal layout, not just segment 0.
		Shards: 4,
		Logger: quietLogger(),
	}
	if col != nil {
		cfg.OnResult = col.add
	}
	m, err := StartMaster(cfg)
	if err != nil {
		t.Fatalf("StartMaster: %v", err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// startReconnectingWorker joins a worker that survives master restarts.
func startReconnectingWorker(t *testing.T, mem *transport.Mem, addr, id string) *Worker {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	w, err := StartWorker(WorkerConfig{
		DeviceID:         id,
		MasterAddr:       addr,
		App:              app,
		Transport:        mem,
		Reconnect:        true,
		ReconnectBackoff: 10 * time.Millisecond,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker(%s): %v", id, err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// TestMasterCrashRecovery is the headline crash-recovery scenario: kill
// the master mid-stream, restart it from journal + checkpoint, and verify
// the worker is re-adopted under the new epoch, the ledger invariant
// holds across incarnations, the sink plays every tuple at most once, and
// the router restarts from checkpointed latency estimates.
func TestMasterCrashRecovery(t *testing.T) {
	mem := transport.NewMem()
	jpath := filepath.Join(t.TempDir(), "wal")
	col1 := &resultCollector{}
	m1 := startRecoverableMaster(t, mem, jpath, col1)
	if m1.Epoch() != 1 {
		t.Fatalf("fresh master epoch = %d, want 1", m1.Epoch())
	}
	w := startReconnectingWorker(t, mem, m1.Addr(), "w1")
	waitFor(t, 2*time.Second, func() bool { return len(m1.Workers()) == 1 }, "worker join")

	src := apps.NewFrameSource(600, 7)
	const warm = 40
	for i := 0; i < warm; i++ {
		if err := m1.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return m1.Stats().Acked >= warm }, "warm batch acked")

	// Mid-stream checkpoint: persists the ledger, the sink playback
	// position and w1's latency estimate, and rotates the journal.
	if err := m1.checkpointNow(); err != nil {
		t.Fatalf("checkpointNow: %v", err)
	}

	// Second batch rides only in the post-checkpoint journal generation;
	// crash before any of it can be fully acknowledged.
	const tail = 10
	for i := 0; i < tail; i++ {
		if err := m1.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	m1.Crash()
	st1 := m1.Stats()
	if !ledgerBalanced(st1) {
		t.Fatalf("incarnation 1 ledger unbalanced at crash: %+v", st1)
	}
	if st1.Submitted != warm+tail {
		t.Fatalf("incarnation 1 submitted = %d, want %d", st1.Submitted, warm+tail)
	}

	// Restart from the same journal path. The mem address is free again,
	// so the reconnecting worker's redial lands on the new incarnation.
	col2 := &resultCollector{}
	m2 := startRecoverableMaster(t, mem, jpath, col2)
	if m2.Epoch() != 2 {
		t.Fatalf("restarted master epoch = %d, want 2", m2.Epoch())
	}
	st2 := m2.Stats()
	if st2.Submitted != st1.Submitted {
		t.Fatalf("recovered submitted = %d, want %d", st2.Submitted, st1.Submitted)
	}
	if st2.Recovered != int64(st1.InFlight) {
		t.Fatalf("recovered backlog = %d, want the crashed incarnation's in-flight %d",
			st2.Recovered, st1.InFlight)
	}
	if !ledgerBalanced(st2) {
		t.Fatalf("recovered ledger unbalanced: %+v", st2)
	}
	if got := m2.NextSeq(); got != warm+tail {
		t.Fatalf("recovered NextSeq = %d, want %d", got, warm+tail)
	}

	// The checkpointed estimate is waiting for w1 before it even rejoins.
	m2.routerMu.Lock()
	est, warmOK := m2.router.SeededEstimate("w1")
	m2.routerMu.Unlock()
	if !warmOK || est.Samples == 0 {
		t.Fatalf("no warm estimate for w1 after recovery: %+v (ok=%v)", est, warmOK)
	}

	// Re-adoption: the worker reconnects on its own, echoes the old epoch,
	// and the new incarnation counts it.
	waitFor(t, 5*time.Second, func() bool { return len(m2.Workers()) == 1 }, "worker re-adopt")
	waitFor(t, 2*time.Second, func() bool { return w.MasterEpoch() == 2 }, "worker sees new epoch")
	if got := m2.Stats().Readopted; got != 1 {
		t.Fatalf("Readopted = %d, want 1", got)
	}
	m2.routerMu.Lock()
	adopted, err := m2.router.Estimate("w1")
	m2.routerMu.Unlock()
	if err != nil || adopted.Samples != est.Samples {
		t.Fatalf("router did not adopt warm estimate: %+v (%v), seeded %+v", adopted, err, est)
	}

	// The journaled backlog drains through the normal retransmit path.
	waitFor(t, 10*time.Second, func() bool { return m2.Stats().InFlight == 0 }, "backlog resolved")
	st2 = m2.Stats()
	if !ledgerBalanced(st2) {
		t.Fatalf("post-recovery ledger unbalanced: %+v", st2)
	}

	// Keep streaming on the resumed source: sequence numbers continue past
	// every burned slot.
	src.SeekTo(m2.NextSeq())
	const fresh = 20
	for i := 0; i < fresh; i++ {
		if err := m2.Submit(src.Next()); err != nil {
			t.Fatalf("Submit after recovery: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		st := m2.Stats()
		return st.InFlight == 0 && st.Submitted == warm+tail+fresh
	}, "fresh batch resolved")
	st2 = m2.Stats()
	if !ledgerBalanced(st2) {
		t.Fatalf("final ledger unbalanced: %+v", st2)
	}

	// At-most-once across incarnations: no tuple ID plays twice, crash or
	// not. (A process crash loses no journal bytes, so dedup is exact.)
	seen := make(map[uint64]int)
	for _, r := range col1.snapshot() {
		seen[r.Tuple.ID]++
	}
	for _, r := range col2.snapshot() {
		seen[r.Tuple.ID]++
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("tuple %d played %d times across incarnations", id, n)
		}
	}
}

// TestCheckpointWarmRestart closes the master cleanly and restarts it,
// verifying the final checkpoint alone (no journal replay, no backlog)
// restores counters, playback position, and exact latency estimates.
func TestCheckpointWarmRestart(t *testing.T) {
	mem := transport.NewMem()
	jpath := filepath.Join(t.TempDir(), "wal")
	m1 := startRecoverableMaster(t, mem, jpath, nil)
	startTestWorker(t, mem, m1, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m1.Workers()) == 1 }, "worker join")

	src := apps.NewFrameSource(600, 7)
	const n = 30
	for i := 0; i < n; i++ {
		if err := m1.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		st := m1.Stats()
		return st.Acked == n && st.InFlight == 0
	}, "all acked")
	m1.routerMu.Lock()
	want := m1.router.Estimates()["w1"]
	m1.routerMu.Unlock()
	if want.Samples == 0 {
		t.Fatal("worker estimate never warmed")
	}
	stClosed := m1.Stats()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := startRecoverableMaster(t, mem, jpath, nil)
	if m2.Epoch() != 2 {
		t.Fatalf("epoch after clean restart = %d, want 2", m2.Epoch())
	}
	st := m2.Stats()
	if st.Submitted != stClosed.Submitted || st.Acked != stClosed.Acked ||
		st.Played != stClosed.Played || st.Recovered != 0 {
		t.Fatalf("restarted stats %+v, want counters of %+v with no backlog", st, stClosed)
	}
	// Quiesced shutdown makes the comparison exact: no ack raced the
	// final checkpoint, so the estimate must match to the nanosecond.
	m2.routerMu.Lock()
	got, ok := m2.router.SeededEstimate("w1")
	m2.routerMu.Unlock()
	// LastUpdate is a live-clock reading and deliberately not checkpointed;
	// the measured quantities must survive exactly.
	if !ok || got.Latency != want.Latency || got.Processing != want.Processing ||
		got.Samples != want.Samples {
		t.Fatalf("warm estimate = %+v (ok=%v), want %+v", got, ok, want)
	}

	// A same-ID worker joining the new incarnation adopts the estimate and
	// the stream resumes at the recovered sequence.
	col := &resultCollector{}
	m2.cfg.OnResult = col.add // safe: no traffic yet in this incarnation
	startTestWorker(t, mem, m2, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m2.Workers()) == 1 }, "worker joins restart")
	src.SeekTo(m2.NextSeq())
	for i := 0; i < n; i++ {
		if err := m2.Submit(src.Next()); err != nil {
			t.Fatalf("Submit after restart: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return m2.Stats().Acked == 2*n }, "second batch acked")
	for _, r := range col.snapshot() {
		if r.Tuple.SeqNo < n {
			t.Fatalf("sequence %d replayed after clean restart", r.Tuple.SeqNo)
		}
	}
}

// TestTornJournalMasterRecovery boots a master from a journal with a torn
// tail: recovery truncates the tear, resurrects the intact records, and
// the ledger still balances once the orphaned backlog sheds (no worker
// ever joins the new incarnation).
func TestTornJournalMasterRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "wal")
	j, err := openJournal(jpath, 1, 1, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 5; id++ {
		if err := j.appendSubmit(frameTuple(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.appendAck(0); err != nil {
		t.Fatal(err)
	}
	if err := j.appendAck(1); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the second ack mid-record.
	if err := os.Truncate(jpath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:             app,
		ListenAddr:      "master",
		Transport:       transport.NewMem(),
		JournalPath:     jpath,
		CheckpointEvery: -1,
		Fsync:           FsyncNever,
		RetryDeadline:   150 * time.Millisecond,
		Logger:          quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartMaster on torn journal: %v", err)
	}
	defer func() { _ = m.Close() }()
	if m.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", m.Epoch())
	}
	st := m.Stats()
	// The torn ack is discarded: 5 submits, 1 surviving ack, 4 pending.
	if st.Submitted != 5 || st.Acked != 1 || st.Recovered != 4 {
		t.Fatalf("recovered stats from torn journal: %+v", st)
	}
	// With no worker to adopt the backlog it sheds at the retry deadline,
	// and the ledger balances across the tear.
	waitFor(t, 5*time.Second, func() bool { return m.Stats().InFlight == 0 }, "backlog shed")
	st = m.Stats()
	if !ledgerBalanced(st) {
		t.Fatalf("ledger unbalanced after torn-tail recovery: %+v", st)
	}
	if st.Shed != 4 {
		t.Fatalf("shed = %d, want 4", st.Shed)
	}
}

// TestMasterKillSoak is the seeded master-kill chaos soak behind
// scripts/soak.sh: two reconnecting workers stream frames while the
// master is repeatedly crashed at seeded intervals and restarted from its
// journal and periodic checkpoints. Every incarnation must re-adopt the
// swarm, drain the recovered backlog, keep the cumulative ledger
// invariant, and never play a tuple twice. Opt in with SWING_SOAK=1;
// SWING_SOAK_SECONDS overrides the default duration.
func TestMasterKillSoak(t *testing.T) {
	if os.Getenv("SWING_SOAK") == "" {
		t.Skip("set SWING_SOAK=1 (see scripts/soak.sh) to run the master-kill soak")
	}
	dur := 5 * time.Second
	if s := os.Getenv("SWING_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad SWING_SOAK_SECONDS %q", s)
		}
		dur = time.Duration(secs) * time.Second
	}
	baseline := testutil.LeakBaseline()

	mem := transport.NewMem()
	jpath := filepath.Join(t.TempDir(), "wal")
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}

	// plays counts deliveries per tuple ID across every incarnation; the
	// at-most-once guarantee is exact under process crashes.
	var playsMu sync.Mutex
	plays := make(map[uint64]int)
	record := func(r Result) {
		playsMu.Lock()
		plays[r.Tuple.ID]++
		playsMu.Unlock()
	}
	incarnate := func() *Master {
		m, err := StartMaster(MasterConfig{
			App:             app,
			Policy:          routing.LRS,
			ListenAddr:      "master",
			Transport:       mem,
			JournalPath:     jpath,
			CheckpointEvery: 200 * time.Millisecond,
			Fsync:           FsyncInterval,
			FsyncEvery:      20 * time.Millisecond,
			RetryDeadline:   2 * time.Second,
			Shards:          4,
			OnResult:        record,
			Logger:          quietLogger(),
		})
		if err != nil {
			t.Fatalf("StartMaster: %v", err)
		}
		return m
	}

	m := incarnate()
	startReconnectingWorker(t, mem, m.Addr(), "w1")
	startReconnectingWorker(t, mem, m.Addr(), "w2")
	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 2 }, "workers join")

	rng := rand.New(rand.NewSource(4242))
	src := apps.NewFrameSource(600, 99)
	deadline := time.Now().Add(dur)
	nextKill := time.Now().Add(500 * time.Millisecond)
	var sent, refused, kills int
	for time.Now().Before(deadline) {
		if time.Now().After(nextKill) {
			m.Crash()
			kills++
			m = incarnate()
			src.SeekTo(m.NextSeq())
			nextKill = time.Now().Add(500*time.Millisecond +
				time.Duration(rng.Intn(700))*time.Millisecond)
		}
		if err := m.Submit(src.Next()); err != nil {
			refused++ // workers mid-reconnect after a kill
		} else {
			sent++
		}
		time.Sleep(time.Millisecond)
	}
	t.Logf("soak: %d submitted, %d refused, %d master kills over %v", sent, refused, kills, dur)
	if sent == 0 || kills == 0 {
		t.Fatalf("soak too quiet: sent=%d kills=%d", sent, kills)
	}
	if got := m.Epoch(); got != uint64(kills+1) {
		t.Fatalf("final epoch = %d after %d kills, want %d", got, kills, kills+1)
	}

	// Quiescence on the final incarnation: the cumulative ledger must
	// balance across every crash.
	var last MasterStats
	waitFor(t, 30*time.Second, func() bool {
		st := m.Stats()
		stable := st.Acked == last.Acked && st.Shed == last.Shed && st.InFlight == last.InFlight
		last = st
		return stable && ledgerBalanced(st)
	}, "cross-epoch ledger invariant at quiescence")

	playsMu.Lock()
	for id, n := range plays {
		if n > 1 {
			playsMu.Unlock()
			t.Fatalf("tuple %d played %d times across %d incarnations", id, n, kills+1)
		}
	}
	playsMu.Unlock()

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Workers close via t.Cleanup; crashed incarnations already drained
	// their goroutines inside crash(). Everything else must drain now.
	t.Cleanup(func() {
		testutil.CheckLeaked(t, baseline, 15*time.Second)
	})
}
