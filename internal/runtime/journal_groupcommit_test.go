package runtime

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"github.com/swingframework/swing/internal/tuple"
)

// TestJournalGroupCommitConcurrent hammers the journal from many
// goroutines under the strictest fsync policy: every record must
// survive, whole, in the replayable prefix — group commit may coalesce
// writes but must never reorder bytes within a record or tear one.
func TestJournalGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.journal")
	j, err := openJournal(path, 3, 1, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i + 1)
				tp := tuple.New(id, id)
				tp.Set("payload", tuple.String(fmt.Sprintf("w%d-%d", w, i)))
				if err := j.appendSubmit(tp); err != nil {
					t.Errorf("appendSubmit(%d): %v", id, err)
					return
				}
				// Mix in lifecycle records so batches interleave kinds.
				switch i % 3 {
				case 0:
					if err := j.appendAck(id); err != nil {
						t.Errorf("appendAck(%d): %v", id, err)
					}
				case 1:
					if err := j.appendShed(id, true); err != nil {
						t.Errorf("appendShed(%d): %v", id, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	rep, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.truncated {
		t.Fatal("clean shutdown replayed as truncated")
	}
	if rep.epoch != 3 || rep.generation != 1 {
		t.Fatalf("meta epoch=%d gen=%d", rep.epoch, rep.generation)
	}
	total := writers * perWriter
	if len(rep.submits) != total {
		t.Fatalf("replayed %d submits, want %d", len(rep.submits), total)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := uint64(w*perWriter + i + 1)
			b, ok := rep.submits[id]
			if !ok {
				t.Fatalf("submit %d missing", id)
			}
			tp, err := tuple.Unmarshal(b)
			if err != nil {
				t.Fatalf("submit %d corrupt: %v", id, err)
			}
			got, err := tp.MustString("payload")
			if err != nil || got != fmt.Sprintf("w%d-%d", w, i) {
				t.Fatalf("submit %d payload %q err=%v", id, got, err)
			}
			switch i % 3 {
			case 0:
				if _, acked := rep.acked[id]; !acked {
					t.Fatalf("ack %d missing", id)
				}
			case 1:
				if overload, shed := rep.shed[id]; !shed || !overload {
					t.Fatalf("shed %d missing or wrong flag", id)
				}
			}
		}
	}
}

// TestJournalAppendAfterClose: the log refuses records once closed,
// instead of buffering them into nowhere.
func TestJournalAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.journal")
	j, err := openJournal(path, 1, 1, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple.New(1, 1)
	tp.Set("x", tuple.Int64(1))
	if err := j.appendSubmit(tp); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	if err := j.appendAck(1); err == nil {
		t.Fatal("append after close succeeded")
	}
	// The pre-close record is intact.
	rep, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.submits) != 1 {
		t.Fatalf("replayed %d submits, want 1", len(rep.submits))
	}
}

// TestJournalSyncFlushesPending: sync must push buffered batch bytes to
// the file even when no appender is currently driving a flush.
func TestJournalSyncFlushesPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.journal")
	j, err := openJournal(path, 1, 1, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := j.appendAck(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.sync(); err != nil {
		t.Fatal(err)
	}
	// Replay from a separate handle while the journal is still open.
	rep, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.acked) != 10 {
		t.Fatalf("replayed %d acks after sync, want 10", len(rep.acked))
	}
	_ = j.close()
}
