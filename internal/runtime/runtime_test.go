package runtime

import (
	"errors"
	"log/slog"
	"sync"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// resultCollector gathers playback deliveries.
type resultCollector struct {
	mu      sync.Mutex
	results []Result
}

func (c *resultCollector) add(r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = append(c.results, r)
}

func (c *resultCollector) snapshot() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Result, len(c.results))
	copy(out, c.results)
	return out
}

func startTestMaster(t *testing.T, mem *transport.Mem, col *resultCollector) *Master {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	cfg := MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "master",
		Transport:  mem,
		Logger:     quietLogger(),
	}
	if col != nil {
		cfg.OnResult = col.add
	}
	m, err := StartMaster(cfg)
	if err != nil {
		t.Fatalf("StartMaster: %v", err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

func startTestWorker(t *testing.T, mem *transport.Mem, m *Master, id string, speed float64) *Worker {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	w, err := StartWorker(WorkerConfig{
		DeviceID:    id,
		MasterAddr:  m.Addr(),
		App:         app,
		Transport:   mem,
		SpeedFactor: speed,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker(%s): %v", id, err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

func TestSubmitNoWorkers(t *testing.T) {
	mem := transport.NewMem()
	m := startTestMaster(t, mem, nil)
	tp := tuple.New(0, 0)
	tp.Set(apps.FieldFrame, tuple.Bytes(make([]byte, 100)))
	if err := m.Submit(tp); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Submit with no workers: %v", err)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m := startTestMaster(t, mem, col)
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "worker join")

	src := apps.NewFrameSource(600, 7) // small frames: fast test
	const n = 30
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return len(col.snapshot()) == n }, "all results")

	results := col.snapshot()
	for i, r := range results {
		if r.Tuple.SeqNo != uint64(i) {
			t.Fatalf("playback out of order at %d: seq %d", i, r.Tuple.SeqNo)
		}
		name, err := r.Tuple.MustString(apps.FieldResult)
		if err != nil {
			t.Fatalf("result %d missing name: %v", i, err)
		}
		if name == "" {
			t.Fatalf("empty recognition result")
		}
		if r.Worker != "w1" {
			t.Fatalf("result from %q", r.Worker)
		}
		if r.Latency <= 0 {
			t.Fatalf("non-positive latency")
		}
	}
	st := m.Stats()
	if st.Submitted != n || st.Arrived != n || st.Played != n {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultiWorkerDistribution(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m := startTestMaster(t, mem, col)
	w1 := startTestWorker(t, mem, m, "w1", 1)
	w2 := startTestWorker(t, mem, m, "w2", 1)
	w3 := startTestWorker(t, mem, m, "w3", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 3 }, "workers join")

	// Pace submissions so arrival disorder stays within the reorder
	// buffer (burst submission legitimately causes skips).
	src := apps.NewFrameSource(600, 7)
	const n = 90
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, 10*time.Second, func() bool {
		st := m.Stats()
		return st.Arrived == n
	}, "all results arrive")
	total := w1.Processed() + w2.Processed() + w3.Processed()
	if total != n {
		t.Fatalf("workers processed %d, want %d", total, n)
	}
	// Playback delivers the overwhelming majority in order; skips only
	// happen when the buffer overflows.
	st := m.Stats()
	if st.Played+st.Skipped < n-5 {
		t.Fatalf("played %d + skipped %d out of %d", st.Played, st.Skipped, n)
	}
	plays := col.snapshot()
	for i := 1; i < len(plays); i++ {
		if plays[i].Tuple.SeqNo <= plays[i-1].Tuple.SeqNo {
			t.Fatalf("playback not in order at %d", i)
		}
	}
	// With equal speeds every worker should see some share.
	for _, w := range []*Worker{w1, w2, w3} {
		if w.Processed() == 0 {
			t.Fatal("a worker was never used")
		}
	}
}

func TestSlowWorkerGetsLessTraffic(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m := startTestMaster(t, mem, col)
	fast := startTestWorker(t, mem, m, "fast", 1)
	slow := startTestWorker(t, mem, m, "slow", 8) // 8x slower
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "workers join")

	src := apps.NewFrameSource(600, 7)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for i := 0; i < 200; i++ {
			<-ticker.C
			if err := m.Submit(src.Next()); err != nil {
				return
			}
		}
	}()
	<-done
	waitFor(t, 10*time.Second, func() bool {
		return fast.Processed()+slow.Processed() >= 190
	}, "most frames processed")
	if fast.Processed() <= 2*slow.Processed() {
		t.Fatalf("fast=%d slow=%d: latency-based routing did not shift load",
			fast.Processed(), slow.Processed())
	}
}

func TestWorkerLeaveRecovery(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m := startTestMaster(t, mem, col)
	startTestWorker(t, mem, m, "w1", 1)
	w2 := startTestWorker(t, mem, m, "w2", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "workers join")

	src := apps.NewFrameSource(600, 7)
	for i := 0; i < 20; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	_ = w2.Close() // abrupt leave
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "leave detected")

	// The swarm keeps processing on the survivor: the entire second
	// batch must arrive even though part of the first died with w2.
	arrivedAtLeave := m.Stats().Arrived
	for i := 0; i < 20; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit after leave: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		return m.Stats().Arrived >= arrivedAtLeave+20
	}, "post-leave processing")
}

func TestWorkerJoinMidStream(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m := startTestMaster(t, mem, col)
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "first worker")

	src := apps.NewFrameSource(600, 7)
	for i := 0; i < 10; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	w2 := startTestWorker(t, mem, m, "w2", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "join mid-stream")
	for i := 0; i < 60; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return m.Stats().Arrived == 70 }, "all processed")
	if w2.Processed() == 0 {
		t.Fatal("joiner never received traffic")
	}
}

func TestDuplicateWorkerIDRejected(t *testing.T) {
	mem := transport.NewMem()
	m := startTestMaster(t, mem, nil)
	startTestWorker(t, mem, m, "dup", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "first join")

	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	// The second "dup" completes the handshake but is then dropped; its
	// connection closes shortly after.
	w2, err := StartWorker(WorkerConfig{
		DeviceID:   "dup",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err == nil {
		done := make(chan struct{})
		go func() {
			w2.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			t.Fatal("duplicate worker not disconnected")
		}
	}
	if got := len(m.Workers()); got != 1 {
		t.Fatalf("%d workers registered, want 1", got)
	}
}

func TestAppMismatchRejected(t *testing.T) {
	mem := transport.NewMem()
	m := startTestMaster(t, mem, nil)
	other, err := apps.VoiceTranslation()
	if err != nil {
		t.Fatal(err)
	}
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "wrongapp",
		MasterAddr: m.Addr(),
		App:        other,
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err == nil {
		defer func() { _ = w.Close() }()
		// Handshake may race the close; either way, no registration.
	}
	time.Sleep(100 * time.Millisecond)
	if got := len(m.Workers()); got != 0 {
		t.Fatalf("%d workers, want 0", got)
	}
}

func TestMasterCloseStopsWorkers(t *testing.T) {
	mem := transport.NewMem()
	m := startTestMaster(t, mem, nil)
	w := startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		w.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("worker did not stop after master close")
	}
}

func TestOverTCPLoopback(t *testing.T) {
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "127.0.0.1:0",
		Transport:  transport.TCP{},
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartMaster: %v", err)
	}
	defer func() { _ = m.Close() }()

	w, err := StartWorker(WorkerConfig{
		DeviceID:   "tcp1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  transport.TCP{},
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker: %v", err)
	}
	defer func() { _ = w.Close() }()
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "tcp join")

	src := apps.NewFrameSource(6000, 1)
	for i := 0; i < 10; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return len(col.snapshot()) == 10 }, "tcp results")
}

func TestStartWorkerErrors(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartWorker(WorkerConfig{DeviceID: "", MasterAddr: "x", App: app, Transport: mem}); err == nil {
		t.Fatal("empty device id accepted")
	}
	if _, err := StartWorker(WorkerConfig{DeviceID: "w", MasterAddr: "nowhere", App: app, Transport: mem}); err == nil {
		t.Fatal("dial to nowhere succeeded")
	}
	if _, err := StartWorker(WorkerConfig{DeviceID: "w", MasterAddr: "x", App: nil, Transport: mem}); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestStartMasterErrors(t *testing.T) {
	if _, err := StartMaster(MasterConfig{App: nil}); err == nil {
		t.Fatal("nil app accepted")
	}
}
