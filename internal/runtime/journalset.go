package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/tuple"
)

// journalSet is the segmented write-ahead log: one journal file per
// hot-state shard, each with its own lock and group commit, so journal
// appends on the Submit and ACK paths contend only when their tuples
// hash to the same segment. A shared atomic sequence stamps every record
// (journal format v2), which is what lets recovery merge concurrently
// written segments back into the global append order by (epoch, seq).
//
// Layout on disk: segment 0 keeps the configured journal path — so a
// one-segment set is byte-compatible with the pre-sharding layout and an
// old single-file journal recovers under a sharded master — and segment
// i > 0 lives at "<path>.s<i>". Checkpoint rotation holds every segment
// lock at once (index order) and rotates them all, so a generation
// boundary can never split a batch across generations; a crash mid-
// rotation leaves some segments at the old generation, which recovery
// gates out individually exactly like the single-file case.
type journalSet struct {
	path string
	segs []*journal
	mask uint64
	seq  atomic.Uint64
}

// segmentPath names segment i of the journal at path.
func segmentPath(path string, i int) string {
	if i == 0 {
		return path
	}
	return fmt.Sprintf("%s.s%d", path, i)
}

// listJournalSegments returns the journal segment files that exist on
// disk for path, base file first, then numeric segments in index order.
// Discovery is independent of the configured shard count: a master
// restarted with fewer shards still recovers every segment its previous
// incarnation wrote.
func listJournalSegments(path string) []string {
	var out []string
	if _, err := os.Stat(path); err == nil {
		out = append(out, path)
	}
	matches, _ := filepath.Glob(path + ".s*")
	type numbered struct {
		path string
		idx  int
	}
	var segs []numbered
	for _, p := range matches {
		suffix := strings.TrimPrefix(p, path+".s")
		idx, err := strconv.Atoi(suffix)
		if err != nil || idx <= 0 {
			continue // ".tmp" leftovers and other non-segment names
		}
		segs = append(segs, numbered{path: p, idx: idx})
	}
	for i := 1; i < len(segs); i++ {
		x := segs[i]
		j := i - 1
		for j >= 0 && segs[j].idx > x.idx {
			segs[j+1] = segs[j]
			j--
		}
		segs[j+1] = x
	}
	for _, s := range segs {
		out = append(out, s.path)
	}
	return out
}

// openJournalSet creates (or truncates) one journal segment per shard and
// removes stale higher-numbered segment files from a previous incarnation
// that ran with more shards — their contents are already folded into the
// checkpoint recovery just wrote, so leaving them would double-replay on
// the next crash.
func openJournalSet(path string, shards int, epoch, generation uint64, mode FsyncMode, every time.Duration) (*journalSet, error) {
	n := ceilPow2(shards)
	js := &journalSet{path: path, mask: uint64(n - 1)}
	for i := 0; i < n; i++ {
		j, err := openJournal(segmentPath(path, i), epoch, generation, mode, every)
		if err != nil {
			for _, prev := range js.segs {
				_ = prev.close()
			}
			return nil, err
		}
		// Segments share the set's sequence counter; the per-journal one
		// allocated by openJournal is discarded before any lifecycle append.
		j.seq = &js.seq
		js.segs = append(js.segs, j)
	}
	for _, p := range listJournalSegments(path) {
		if suffix := strings.TrimPrefix(p, path+".s"); suffix != p {
			if idx, err := strconv.Atoi(suffix); err == nil && idx >= n {
				_ = os.Remove(p)
			}
		}
	}
	return js, nil
}

// seg routes a tuple ID to its segment — the same splitmix64 spread the
// in-flight table uses, so one tuple's records always share a segment.
func (js *journalSet) seg(id uint64) *journal {
	return js.segs[mix64(id)&js.mask]
}

// appendSubmit logs a first-attempt dispatch on the tuple's segment.
func (js *journalSet) appendSubmit(t *tuple.Tuple) error {
	return js.seg(t.ID).appendSubmit(t)
}

// appendSubmitBatch logs a batch of first-attempt dispatches, regrouped
// in place by owning segment so each touched segment takes its lock once
// and commits the whole group under one group-commit entry. Callers pass
// scratch the submit path owns; the reorder is harmless because recovery
// merges segments by sequence number, not append order.
func (js *journalSet) appendSubmitBatch(ts []*tuple.Tuple) error {
	if js.mask == 0 {
		return js.segs[0].appendSubmitBatch(ts)
	}
	var firstErr error
	for lo := 0; lo < len(ts); {
		idx := mix64(ts[lo].ID) & js.mask
		hi := lo
		for j := lo; j < len(ts); j++ {
			if mix64(ts[j].ID)&js.mask == idx {
				ts[hi], ts[j] = ts[j], ts[hi]
				hi++
			}
		}
		if err := js.segs[idx].appendSubmitBatch(ts[lo:hi]); err != nil && firstErr == nil {
			firstErr = err
		}
		lo = hi
	}
	return firstErr
}

// appendResend logs a retransmission's new attempt counter.
func (js *journalSet) appendResend(id uint64, attempt uint8) error {
	return js.seg(id).appendResend(id, attempt)
}

// appendAck logs a worker acknowledgment.
func (js *journalSet) appendAck(id uint64) error {
	return js.seg(id).appendAck(id)
}

// appendShed logs an abandoned tuple.
func (js *journalSet) appendShed(id uint64, overload bool) error {
	return js.seg(id).appendShed(id, overload)
}

// lockAll acquires every segment lock in index order (the deadlock-free
// total order); unlockAll releases them. Between the two the caller owns
// the whole log: no append can land and no flush can start.
func (js *journalSet) lockAll() {
	for _, j := range js.segs {
		j.mu.Lock()
	}
}

func (js *journalSet) unlockAll() {
	for i := len(js.segs) - 1; i >= 0; i-- {
		js.segs[i].mu.Unlock()
	}
}

// setTapLocked installs (or, with nil, removes) the flush tap on every
// segment: tap(seg, bytes) fires with that segment's lock held each time
// a batch of record bytes reaches the segment file, in file order. The
// caller holds all segment locks and has quiesced, so no batch is in
// flight across the installation — the tap observes every byte flushed
// after it and none before. The tap must copy what it keeps and must not
// block or take locks that appenders hold.
func (js *journalSet) setTapLocked(tap func(seg int, b []byte)) {
	for i, j := range js.segs {
		if tap == nil {
			j.tap = nil
			continue
		}
		seg := i
		j.tap = func(b []byte) { tap(seg, b) }
	}
}

// quiesceAllLocked waits out in-flight group-commit flushes on every
// segment. The caller holds all segment locks.
func (js *journalSet) quiesceAllLocked() {
	for _, j := range js.segs {
		j.quiesceLocked()
	}
}

// rotateAllLocked starts the next generation on every segment. The caller
// holds all segment locks and has quiesced; a crash partway through
// leaves a mix of old- and new-generation segments, and recovery gates
// each segment's generation individually, so the half-rotated state is
// exactly as safe as a crash between checkpoint write and single-file
// rotation always was.
func (js *journalSet) rotateAllLocked(epoch, generation uint64) error {
	for _, j := range js.segs {
		if err := j.rotateLocked(epoch, generation); err != nil {
			return err
		}
	}
	return nil
}

// depths collects each segment's observability counters for the status
// endpoint: per-segment appended records and bytes, plus the summed
// group-commit backlog across segments.
func (js *journalSet) depths() (records, bytes []int64, pending int64) {
	records = make([]int64, len(js.segs))
	bytes = make([]int64, len(js.segs))
	for i, j := range js.segs {
		var p int64
		records[i], bytes[i], p = j.depth()
		pending += p
	}
	return records, bytes, pending
}

// sync flushes and fsyncs every segment.
func (js *journalSet) sync() error {
	var first error
	for _, j := range js.segs {
		if err := j.sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// close flushes, syncs and closes every segment. Later appends fail.
func (js *journalSet) close() error {
	var first error
	for _, j := range js.segs {
		if err := j.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
