package runtime

import (
	"sort"
	"sync"
	"time"

	"github.com/swingframework/swing/internal/obs"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
)

// latRingSize bounds the per-worker latency sample window feeding the
// hedging threshold. 64 recent acks is enough for a stable p95 while
// staying cheap to copy and sort on each sweep.
const latRingSize = 64

// latRing is a fixed ring of recent end-to-end ack latencies. It carries
// its own lock: the ACK path appends from readLoop goroutines while the
// monitor's hedge sweep reads quantiles.
type latRing struct {
	mu  sync.Mutex
	buf [latRingSize]time.Duration
	n   int // filled entries, saturates at latRingSize
	i   int // next write index
}

func (r *latRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.i] = d
	r.i = (r.i + 1) % latRingSize
	if r.n < latRingSize {
		r.n++
	}
	r.mu.Unlock()
}

// quantile returns the q-quantile of the window, or 0 with fewer than
// 8 samples — too few acks to call anything a straggler.
func (r *latRing) quantile(q float64) time.Duration {
	r.mu.Lock()
	n := r.n
	var tmp [latRingSize]time.Duration
	copy(tmp[:n], r.buf[:n])
	r.mu.Unlock()
	if n < 8 {
		return 0
	}
	s := tmp[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(n-1))
	return s[idx]
}

// countDrop attributes one worker drop notice to its per-reason counter.
// Legacy workers encode no reason (DropNone), which lands in DropErrors —
// the pre-typed meaning of a drop.
func (m *Master) countDrop(r wire.DropReason) {
	switch r {
	case wire.DropPanic:
		m.dropPanics.Add(1)
	case wire.DropDeadline:
		m.dropDeadlines.Add(1)
	default:
		m.dropErrors.Add(1)
	}
}

// chargeDropBreaker counts a processor-drop notice as a breaker failure:
// the worker is reachable but not producing results.
func (m *Master) chargeDropBreaker(wc *workerConn) {
	wc.mu.Lock()
	prev := wc.br.state
	wc.br.onFailure(time.Now())
	next := wc.br.state
	wc.mu.Unlock()
	if prev != breakerOpen && next == breakerOpen {
		m.events.Record(obs.EventBreakerOpen, wc.id, "processor drops", 0)
		m.cfg.Logger.Warn("swing master: breaker opened", "worker", wc.id,
			"reason", "processor drops")
	}
}

// handlePoisonDrop is the quarantine-mode drop path: the notice burns the
// reporting worker in the tuple's distinct-failure history, and the tuple
// is re-dispatched to an unburned worker or quarantined after
// PoisonAttempts distinct workers. Only a tuple's first failure charges a
// worker's breaker: a poison tuple marching across the swarm burns each
// worker at most once and opens no breaker, while a genuinely sick worker
// is the first failure of every fresh tuple it drops and trips as before.
func (m *Master) handlePoisonDrop(wc *workerConn, meta wire.ResultMeta) {
	e, verdict := m.inflight.failAttempt(meta.TupleID, wc.id, m.cfg.PoisonAttempts)
	switch verdict {
	case failUntracked:
		// Straggler notice for a tuple already acked, shed, or in another
		// path's hands.
	case failQuarantined:
		m.journalShed(e.t.ID, false)
		m.events.Record(obs.EventQuarantine, wc.id, "distinct-worker budget burned", 1)
		m.cfg.Logger.Warn("swing master: quarantined poison tuple",
			"tuple", e.t.ID, "seq", e.t.SeqNo,
			"workers", len(e.failedOn), "lastReason", meta.Reason.String())
	case failRetry:
		if len(e.failedOn) == 1 {
			m.chargeDropBreaker(wc)
		}
		m.wg.Add(1)
		go m.redispatchPoison(e)
	}
}

// redispatchPoison re-routes a suspect tuple around the workers it
// burned. It deliberately skips the MaxAttempts / RetryDeadline budget:
// quarantine-within-K-distinct-workers is the poison path's own crisp
// bound, and mixing budgets would quarantine early on busy swarms. When
// no unburned worker can take the tuple it is quarantined immediately.
func (m *Master) redispatchPoison(e *inflightEntry) {
	defer m.wg.Done()
	if err := m.submit(e.t, e.attempt+1, e.deadline, e.failedOn); err != nil {
		m.inflight.shedOrphanPoison(e.t.ID)
		m.journalShed(e.t.ID, false)
		m.events.Record(obs.EventQuarantine, "", "no unburned worker", 1)
		m.cfg.Logger.Warn("swing master: quarantined poison tuple",
			"tuple", e.t.ID, "seq", e.t.SeqNo,
			"workers", len(e.failedOn), "err", err)
	}
}

// hedgeSweep speculatively duplicates stragglers: in-flight tuples older
// than their worker's straggler bar — twice its recent p95 ack latency,
// floored at HedgeAfter — are re-sent to a second worker. The first
// result wins through the normal ack path; the loser's duplicate finds no
// in-flight entry and the sink's sequence reorder already drops replayed
// frames, so at-most-once delivery is untouched. A hedge duplicates a
// dispatch, not a tuple: the ledger balance never sees it, only the
// Hedged annotation counts it.
func (m *Master) hedgeSweep(now time.Time) {
	workers := m.workerMap()
	if len(workers) < 2 {
		return // nowhere to hedge to
	}
	bar := make(map[string]time.Duration, len(workers))
	for id, wc := range workers {
		th := m.cfg.HedgeAfter
		if p := wc.lat.quantile(0.95); 2*p > th {
			th = 2 * p
		}
		bar[id] = th
	}
	var cands []*inflightEntry
	for i := range m.inflight.shards {
		s := &m.inflight.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			th, ok := bar[e.worker]
			if !ok || e.hedged || now.Sub(e.sentAt) < th {
				continue
			}
			cands = append(cands, e)
		}
		s.mu.Unlock()
	}
	var hedged int64
	for _, e := range cands {
		if m.hedge(e, workers) {
			hedged++
		}
	}
	if hedged > 0 {
		m.events.Record(obs.EventHedge, "", "stragglers duplicated", hedged)
	}
}

// hedge duplicates one straggler to a second worker. The frame is
// marshaled inside the shard critical section that confirms the entry is
// still live and flags it hedged: once an entry leaves the table its
// tuple may be mutated by the retransmit path (EmitNanos, Attempt), so
// in-map under the lock is the only window where reading it is safe. The
// send-queue slot is reserved non-blocking before the lock — a sweep must
// never stall the master on a slow hedge target — and returned on any
// losing race.
func (m *Master) hedge(e *inflightEntry, workers map[string]*workerConn) bool {
	id, err := m.table.Load().Pick(m.pickU(), func(cand string) bool {
		if cand == e.worker {
			return true
		}
		wc, ok := workers[cand]
		if !ok || len(wc.slots) == cap(wc.slots) {
			return true
		}
		wc.mu.Lock()
		closed := wc.br.state == breakerClosed
		wc.mu.Unlock()
		return !closed
	})
	if err != nil || id == e.worker {
		// Pick's avoid hint is only binding in probe mode; a draw that
		// lands back on the straggler's own worker would burn the one-shot
		// hedge flag on a duplicate down the same stalled link. Leave the
		// entry unhedged so the next sweep redraws.
		return false
	}
	wc, ok := workers[id]
	if !ok {
		return false
	}
	select {
	case wc.slots <- struct{}{}:
	default:
		return false // target filled up since the pick
	}
	fb := wire.GetBuf(0)
	s := m.inflight.shard(e.t.ID)
	s.mu.Lock()
	cur, live := s.m[e.t.ID]
	if !live || cur != e || e.hedged {
		s.mu.Unlock()
		fb.Release()
		<-wc.slots
		return false // acked, retransmitted, or hedged since collection
	}
	frame, merr := tuple.AppendMarshal(fb.B[:0], e.t)
	if merr != nil {
		s.mu.Unlock()
		fb.Release()
		<-wc.slots
		return false
	}
	e.hedged = true
	s.led.hedged++
	s.mu.Unlock()
	fb.B = frame
	wc.out <- outFrame{typ: wire.FrameTuple, payload: frame, buf: fb}
	m.noteDispatched(wc)
	return true
}
