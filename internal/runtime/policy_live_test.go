package runtime

import (
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
)

// runLiveSession drives a fixed frame budget through a master with one
// fast and one very slow worker and reports how many frames completed
// within the deadline.
func runLiveSession(t *testing.T, policy routing.PolicyKind) (completed int64, fast, slow int64) {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	mem := transport.NewMem()
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     policy,
		ListenAddr: "master",
		Transport:  mem,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	wFast := startTestWorker(t, mem, m, "fast", 1)
	wSlow := startTestWorker(t, mem, m, "slow", 80) // ~ the straggler E
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "join")

	// Stream under a fixed wall-clock budget; under RR the straggler's
	// full queue blocks Submit (TCP backpressure), so fewer frames even
	// enter the swarm — the same mechanism the simulator models.
	src := apps.NewFrameSource(600, 5)
	deadline := time.After(2 * time.Second)
	ticker := time.NewTicker(3 * time.Millisecond)
	defer ticker.Stop()
stream:
	for {
		select {
		case <-ticker.C:
			done := make(chan error, 1)
			go func() { done <- m.Submit(src.Next()) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
			case <-deadline:
				break stream
			}
		case <-deadline:
			break stream
		}
	}
	// Short fixed drain window.
	time.Sleep(500 * time.Millisecond)
	st := m.Stats()
	return st.Arrived, wFast.Processed(), wSlow.Processed()
}

// TestLiveLRSBeatsRR: with a 25x-slower straggler in the swarm, the live
// LRS session completes more frames in the same wall-clock budget than RR,
// which keeps handing the straggler an equal share.
func TestLiveLRSBeatsRR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live session in -short mode")
	}
	lrsDone, lrsFast, lrsSlow := runLiveSession(t, routing.LRS)
	rrDone, rrFast, rrSlow := runLiveSession(t, routing.RR)

	t.Logf("LRS: %d done (fast=%d slow=%d); RR: %d done (fast=%d slow=%d)",
		lrsDone, lrsFast, lrsSlow, rrDone, rrFast, rrSlow)
	if lrsDone <= rrDone {
		t.Fatalf("live LRS completed %d <= RR %d", lrsDone, rrDone)
	}
	// LRS shifts share decisively toward the fast worker; RR cannot.
	if lrsFast < 3*lrsSlow {
		t.Fatalf("LRS split fast=%d slow=%d, want heavy skew", lrsFast, lrsSlow)
	}
}
