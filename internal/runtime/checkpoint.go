package runtime

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/tuple"
)

// A checkpoint snapshots everything a restarted master needs that the
// journal alone cannot cheaply reconstruct: the cumulative ledger
// counters, the sink's playback position, the source sequence high-water
// mark, the router's warm per-worker latency estimates, and the set of
// tuples still un-acked at snapshot time (full bytes, so they can be
// retransmitted). Each checkpoint advances the generation counter and the
// journal rotates to match; recovery replays the journal only when its
// generation equals the checkpoint's, which makes the two-file update
// crash-safe without cross-file atomicity:
//
//	write ckpt(gen+1) → rename → rotate journal(gen+1) → rename
//
// A crash between the renames leaves ckpt at gen+1 and the journal at gen;
// the stale journal is ignored (every record it holds is already folded
// into the checkpoint).
//
// On-disk layout: u32 length | JSON | u32 crc32c(JSON). A short, corrupt
// or torn checkpoint fails closed — recovery reports the error rather
// than silently starting cold from a half-written snapshot (the previous
// checkpoint was atomically replaced, so a torn one can only mean outside
// interference or disk corruption).

// checkpointVersion guards the snapshot schema.
const checkpointVersion = 1

// ckptEstimate is one worker's persisted routing estimate.
type ckptEstimate struct {
	ID              string `json:"id"`
	LatencyNanos    int64  `json:"latencyNanos"`
	ProcessingNanos int64  `json:"processingNanos"`
	Samples         int64  `json:"samples"`
}

// ckptPending is one un-acked tuple at snapshot time.
type ckptPending struct {
	Tuple   string `json:"tuple"` // base64 of the marshaled tuple
	Attempt uint8  `json:"attempt"`
}

// checkpointState is the JSON snapshot body.
type checkpointState struct {
	Version    int    `json:"version"`
	Epoch      uint64 `json:"epoch"`
	Generation uint64 `json:"generation"`

	Submitted     int64 `json:"submitted"`
	Acked         int64 `json:"acked"`
	Retransmitted int64 `json:"retransmitted"`
	Shed          int64 `json:"shed"`
	ShedOverload  int64 `json:"shedOverload"`
	// ShedPoison / Hedged and the per-reason drop counters are omitted
	// when zero, so checkpoints from masters predating failure containment
	// decode with all of them zero.
	ShedPoison    int64 `json:"shedPoison,omitempty"`
	Hedged        int64 `json:"hedged,omitempty"`
	WorkerDropped int64 `json:"workerDropped"`
	DropErrors    int64 `json:"dropErrors,omitempty"`
	DropPanics    int64 `json:"dropPanics,omitempty"`
	DropDeadlines int64 `json:"dropDeadlines,omitempty"`
	Filtered      int64 `json:"filtered,omitempty"`
	Evicted       int64 `json:"evicted"`
	Readopted     int64 `json:"readopted"`

	Arrived  int64  `json:"arrived"`
	Played   int64  `json:"played"`
	Skipped  int64  `json:"skipped"`
	NextPlay uint64 `json:"nextPlay"`
	NextSeq  uint64 `json:"nextSeq"`

	Estimates []ckptEstimate `json:"estimates,omitempty"`
	Pending   []ckptPending  `json:"pending,omitempty"`
}

// saveCheckpoint writes the snapshot atomically: temp file, fsync, rename.
func saveCheckpoint(path string, st *checkpointState) error {
	body, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("runtime: encode checkpoint: %w", err)
	}
	return saveCheckpointBytes(path, body)
}

// saveCheckpointBytes installs a pre-marshaled checkpoint body with the
// same atomic temp-fsync-rename protocol. The replication standby uses it
// to mirror the primary's checkpoint image byte-for-byte.
func saveCheckpointBytes(path string, body []byte) error {
	buf := make([]byte, 0, 4+len(body)+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Update(0, journalCRC, body))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("runtime: write checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("runtime: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("runtime: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runtime: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("runtime: install checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads and verifies a snapshot. A missing file returns
// (nil, nil): no checkpoint has ever been written.
func loadCheckpoint(path string) (*checkpointState, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runtime: read checkpoint: %w", err)
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("runtime: checkpoint too short (%d bytes)", len(raw))
	}
	n := binary.LittleEndian.Uint32(raw[:4])
	if int(n) > len(raw)-8 {
		return nil, fmt.Errorf("runtime: checkpoint body length %d exceeds file", n)
	}
	body := raw[4 : 4+n]
	sum := binary.LittleEndian.Uint32(raw[4+n : 8+n])
	if crc32.Update(0, journalCRC, body) != sum {
		return nil, errors.New("runtime: checkpoint checksum mismatch")
	}
	var st checkpointState
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("runtime: decode checkpoint: %w", err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("runtime: checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	return &st, nil
}

// recoveredState is the merged checkpoint + journal view handed to the
// new incarnation.
type recoveredState struct {
	prevEpoch  uint64
	generation uint64
	counters   checkpointState // counter fields only
	// pending is the un-acked backlog to retransmit, keyed by tuple ID.
	pending map[uint64]*inflightEntry
	// acked is the cross-epoch sink dedup set: IDs acknowledged by the
	// previous incarnation whose straggler results must not replay.
	acked map[uint64]struct{}
	// estimates warm-start the router when each worker re-joins.
	estimates map[string]routing.Estimate
	// journalTruncated reports a torn tail was cut during replay.
	journalTruncated bool
}

// recoverState merges the checkpoint (if any) with the journal's
// replayable prefix. Every segment the previous incarnation wrote is
// discovered and parsed; a segment is replayed only when its generation
// reached the checkpoint's — an older segment predates the snapshot and
// is wholly folded in already (this per-segment gate is what makes a
// crash mid-rotation safe: rotated segments are empty at the new
// generation, un-rotated ones are stale and ignored). Replayable
// segments merge into one global record order by (epoch, seq).
func recoverState(journalPath, ckptPath string) (*recoveredState, error) {
	ckpt, err := loadCheckpoint(ckptPath)
	if err != nil {
		return nil, err
	}
	var (
		segs      []*segmentReplay
		truncated bool
	)
	for _, p := range listJournalSegments(journalPath) {
		sr, err := replaySegment(p)
		if err != nil {
			return nil, err
		}
		if sr == nil {
			continue
		}
		truncated = truncated || sr.truncated
		if ckpt != nil && sr.generation < ckpt.Generation {
			continue
		}
		segs = append(segs, sr)
	}
	rep := mergeSegments(segs)
	rs := &recoveredState{
		pending:          make(map[uint64]*inflightEntry),
		acked:            make(map[uint64]struct{}),
		estimates:        make(map[string]routing.Estimate),
		journalTruncated: truncated,
	}
	if ckpt != nil {
		rs.prevEpoch = ckpt.Epoch
		rs.generation = ckpt.Generation
		rs.counters = *ckpt
		for _, e := range ckpt.Estimates {
			rs.estimates[e.ID] = routing.Estimate{
				Latency:    time.Duration(e.LatencyNanos),
				Processing: time.Duration(e.ProcessingNanos),
				Samples:    e.Samples,
			}
		}
		for _, p := range ckpt.Pending {
			raw, err := base64.StdEncoding.DecodeString(p.Tuple)
			if err != nil {
				continue
			}
			t, err := tuple.Unmarshal(raw)
			if err != nil {
				continue
			}
			rs.pending[t.ID] = &inflightEntry{t: t, attempt: p.Attempt}
		}
	}

	// Stale segments were gated out above, so the merged replay applies
	// unconditionally on top of the checkpoint.
	if rep.epoch > rs.prevEpoch {
		rs.prevEpoch = rep.epoch
	}
	for id, raw := range rep.submits {
		if _, dup := rs.pending[id]; dup {
			continue
		}
		t, err := tuple.Unmarshal(raw)
		if err != nil {
			continue
		}
		rs.pending[id] = &inflightEntry{t: t}
		rs.counters.Submitted++
		if t.SeqNo >= rs.counters.NextSeq {
			rs.counters.NextSeq = t.SeqNo + 1
		}
	}
	for id, attempt := range rep.attempts {
		if e, ok := rs.pending[id]; ok && attempt > e.attempt {
			e.attempt = attempt
		}
	}
	rs.counters.Retransmitted += rep.resends
	for id := range rep.acked {
		if _, ok := rs.pending[id]; ok {
			delete(rs.pending, id)
			rs.counters.Acked++
		}
		rs.acked[id] = struct{}{}
	}
	for id, overload := range rep.shed {
		if _, ok := rs.pending[id]; ok {
			delete(rs.pending, id)
			rs.counters.Shed++
			if overload {
				rs.counters.ShedOverload++
			}
		}
	}
	return rs, nil
}
