package runtime

import "time"

// breakerState is one of the three classic circuit-breaker positions.
type breakerState int32

const (
	// breakerClosed passes traffic and counts consecutive failures.
	breakerClosed breakerState = iota
	// breakerOpen blocks all traffic until the cooldown expires.
	breakerOpen
	// breakerHalfOpen admits exactly one probe tuple; its outcome decides
	// between closing (success) and re-opening (failure).
	breakerHalfOpen
)

// String names the breaker state for stats and logs.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a per-worker circuit breaker over the master's view of that
// worker: consecutive ack timeouts and processor-error drops open it, the
// router then stops selecting the worker, and after a cooldown a single
// half-open probe tuple (mirroring LRS's round-robin probing window, which
// also spends one tuple to refresh a stale estimate) decides whether the
// worker is re-admitted.
//
// The breaker is not self-locking; the owning workerConn's mutex guards
// it. All transitions take an explicit time so tests drive the machine
// deterministically with a fake clock.
type breaker struct {
	// threshold is the consecutive-failure count that opens the breaker;
	// zero disables the breaker entirely (allow always passes).
	threshold int
	// cooldown is how long the breaker stays open before the next allow
	// call moves it to half-open.
	cooldown time.Duration

	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open: the probe tuple has been dispatched
	opens    int64     // cumulative open transitions, for stats
}

// enabled reports whether the breaker is active.
func (b *breaker) enabled() bool { return b.threshold > 0 }

// allow reports whether the router may select this worker now. An open
// breaker whose cooldown has expired moves to half-open and admits the
// probe; a half-open breaker with its probe already in flight admits
// nothing more.
func (b *breaker) allow(now time.Time) bool {
	if !b.enabled() {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = false
		return true
	default: // half-open
		return !b.probing
	}
}

// noteDispatch records that a tuple was actually routed to the worker; in
// half-open this claims the single probe slot.
func (b *breaker) noteDispatch() {
	if b.state == breakerHalfOpen {
		b.probing = true
	}
}

// onSuccess records a healthy ack: consecutive failures reset while
// closed, and a half-open probe success closes the breaker. A success
// arriving while open is a straggler — the ack of a tuple dispatched
// before the breaker tripped — and must not short-circuit the cooldown,
// mirroring how onFailure ignores stragglers while open.
func (b *breaker) onSuccess() {
	switch b.state {
	case breakerClosed:
		b.failures = 0
	case breakerHalfOpen:
		b.state = breakerClosed
		b.probing = false
		b.failures = 0
	}
}

// onFailure records an ack timeout or processor-error drop. While closed
// it counts toward the threshold; in half-open it re-opens immediately
// (the probe failed); while open it only refreshes nothing — the cooldown
// keeps running from the original open.
func (b *breaker) onFailure(now time.Time) {
	if !b.enabled() {
		return
	}
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open(now)
		}
	case breakerHalfOpen:
		b.open(now)
	}
}

func (b *breaker) open(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.probing = false
	b.failures = 0
	b.opens++
}
