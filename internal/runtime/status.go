package runtime

import (
	"sort"
	"time"

	"github.com/swingframework/swing/internal/obs"
)

// StatusSnapshot assembles one obs.Snapshot from the master's live state.
// It is the single observability path: the HTTP endpoint (/statusz,
// /status.json) serves exactly this value, and the swingd status log line
// renders it, so the two can never disagree.
//
// The ledger fields come from one consistent cross-shard sample, so the
// exact invariant Acked + Shed + InFlight + Retransmitting == Submitted
// holds in every snapshot even under concurrent Submit/ACK traffic and
// mid-retransmit worker failures. Each subsystem (ledger, sink, router,
// journal) is sampled under its own lock in sequence — never two at once,
// which keeps this path deadlock-free against checkpointNow's
// journal-then-router lock order.
func (m *Master) StatusSnapshot() obs.Snapshot {
	now := time.Now()
	m.flushEstimates(now)
	led, inflight := m.inflight.ledgerSnapshot()
	snap := obs.Snapshot{
		TakenAt:      now,
		UptimeMillis: now.Sub(m.start).Milliseconds(),
		Epoch:        m.epoch,
		Ledger: obs.Ledger{
			Submitted:      led.submitted,
			Acked:          led.acked,
			Retransmitted:  led.retransmitted,
			Shed:           led.shed,
			ShedOverload:   led.shedOverload,
			ShedPoison:     led.shedPoison,
			InFlight:       inflight,
			Retransmitting: led.orphaned,
			WorkerDropped:  m.workerDropped.Load(),
			Hedged:         led.hedged,
			DropErrors:     m.dropErrors.Load(),
			DropPanics:     m.dropPanics.Load(),
			DropDeadlines:  m.dropDeadlines.Load(),
			Filtered:       m.filtered.Load(),
			Evicted:        m.evicted.Load(),
			Readopted:      m.readopted.Load(),
			Recovered:      m.recovered,
		},
		EventsTotal: m.events.Total(),
	}
	snap.Ledger.Balanced = snap.Ledger.CheckBalance()
	if bs := m.batchSubmits.Load(); bs > 0 {
		snap.Batch = &obs.Batch{
			Submits: bs,
			Tuples:  m.batchTuples.Load(),
			Frames:  m.batchFrames.Load(),
		}
	}

	m.sinkMu.Lock()
	snap.Sink = obs.Sink{Arrived: m.arrived, Played: m.played, Skipped: m.skipped}
	m.sinkMu.Unlock()

	m.routerMu.Lock()
	infos := m.router.Snapshot()
	m.routerMu.Unlock()
	t := m.table.Load()
	snap.Routing = obs.Routing{
		Policy:      m.cfg.Policy.String(),
		Overloaded:  t.Overloaded(),
		ProbeBudget: t.ProbeLeft(),
	}
	snap.Routing.Probing = snap.Routing.ProbeBudget > 0

	// Merge the router's per-worker view (weights, estimates) with each
	// connection's health and breaker state. A router entry whose
	// connection is already gone (drop in progress) still reports its
	// routing side with health "gone".
	conns := m.workerMap()
	for _, info := range infos {
		w := obs.Worker{
			ID:               info.ID,
			Health:           "gone",
			Breaker:          "off",
			Selected:         info.Selected,
			Weight:           info.Weight,
			LatencyMillis:    float64(info.Estimate.Latency) / float64(time.Millisecond),
			ProcessingMillis: float64(info.Estimate.Processing) / float64(time.Millisecond),
			Samples:          info.Estimate.Samples,
		}
		if wc, ok := conns[info.ID]; ok {
			wc.mu.Lock()
			w.Health = wc.health.String()
			w.SilenceMillis = now.Sub(wc.lastHeard).Milliseconds()
			if wc.br.enabled() {
				w.Breaker = wc.br.state.String()
			}
			w.BreakerOpens = wc.br.opens
			w.QueueLen = wc.queueLen
			w.Processed = wc.processed
			w.Dropped = wc.dropped
			w.Panics = wc.panics
			w.Deadlined = wc.deadlined
			w.Reconnects = wc.reconnects
			wc.mu.Unlock()
		}
		snap.Workers = append(snap.Workers, w)
	}
	sort.Slice(snap.Workers, func(i, j int) bool {
		return snap.Workers[i].ID < snap.Workers[j].ID
	})

	if m.journal != nil {
		records, bytes, pending := m.journal.depths()
		j := &obs.Journal{
			Segments:       len(records),
			Generation:     m.generation.Load(),
			PendingBytes:   pending,
			SegmentRecords: records,
			SegmentBytes:   bytes,
		}
		for i := range records {
			j.Records += records[i]
			j.Bytes += bytes[i]
		}
		snap.Journal = j
	}
	if m.rep != nil {
		snap.Replication = m.rep.status(now)
	}
	return snap
}

// StatusAddr returns the observability endpoint's listen address
// ("" when StatusAddr was not configured). With ":0" configured, this is
// where the kernel-assigned port is learned.
func (m *Master) StatusAddr() string {
	if m.statusSrv == nil {
		return ""
	}
	return m.statusSrv.Addr()
}

// Events returns the retained observability events, oldest first — the
// same data the /events endpoint serves.
func (m *Master) Events() []obs.Event {
	return m.events.Snapshot()
}
