package runtime

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
)

// WorkerConfig configures StartWorker.
type WorkerConfig struct {
	// DeviceID uniquely names this worker in the swarm.
	DeviceID string
	// MasterAddr is the master's control address (from discovery or
	// out-of-band).
	MasterAddr string
	// App must be the same application the master coordinates (the
	// paper's workflow installs the app on every device).
	App *apps.App
	// Transport defaults to TCP.
	Transport transport.Transport
	// QueueCap bounds the input queue in tuples (default 48); a full
	// queue stalls the connection read, which is the TCP backpressure
	// the master's routing observes.
	QueueCap int
	// SpeedFactor artificially slows processing by the given factor
	// (>1), emulating a weaker device on homogeneous test hosts.
	SpeedFactor float64
	// Reconnect makes a broken master link re-run the dial and
	// hello/deploy/start handshake with exponential backoff and jitter
	// instead of shutting the worker down — a transient radio dropout
	// rejoins the swarm (§IV-C) rather than leaving it permanently. A
	// master-initiated Stop still shuts down cleanly.
	Reconnect bool
	// ReconnectBackoff is the initial retry delay (default 50 ms); it
	// doubles per failed attempt up to ReconnectMaxBackoff (default 5 s).
	ReconnectBackoff    time.Duration
	ReconnectMaxBackoff time.Duration
	// ReconnectAttempts bounds consecutive failed rejoin attempts before
	// the worker gives up (0 = retry forever). A successful rejoin resets
	// the count.
	ReconnectAttempts int
	// Seed drives the backoff jitter (default 1), keeping reconnection
	// schedules reproducible in tests.
	Seed int64
	// Logger defaults to slog.Default.
	Logger *slog.Logger
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Transport == nil {
		c.Transport = transport.TCP{}
	}
	if c.QueueCap == 0 {
		c.QueueCap = 48
	}
	if c.SpeedFactor < 1 {
		c.SpeedFactor = 1
	}
	if c.ReconnectBackoff == 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
	if c.ReconnectMaxBackoff == 0 {
		c.ReconnectMaxBackoff = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// workerSession is one joined connection's state: everything that is torn
// down and rebuilt when the worker reconnects.
type workerSession struct {
	conn        net.Conn
	chain       []graph.Processor
	reportEvery time.Duration
	// epoch is the master incarnation that deployed this session; a change
	// between sessions means the worker was re-adopted by a restarted
	// master, not merely reconnected to the same one.
	epoch uint64

	queue   chan *tuple.Tuple
	dead    chan struct{} // closed when the read loop exits
	writeMu sync.Mutex
	sawStop bool // FrameStop received: clean shutdown, do not reconnect
}

// Worker executes the operator pipeline assigned by the master on locally
// received tuples and returns results. With Reconnect enabled it survives
// link breaks by rejoining the master.
type Worker struct {
	cfg WorkerConfig

	mu   sync.Mutex
	conn net.Conn // current session's connection, for Close

	statsMu    sync.Mutex
	processed  int64
	dropped    int64
	reconnects int64
	lastEpoch  uint64 // master incarnation of the current session
	termErr    error  // terminal failure (e.g. reconnect budget exhausted)

	start time.Time
	stop  chan struct{}
	once  sync.Once
	done  chan struct{}
}

// StartWorker joins the swarm: it dials the master, completes the
// hello/deploy/start handshake and begins processing. The initial join
// must succeed (so configuration errors surface immediately); later link
// breaks follow the Reconnect policy.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.App == nil {
		return nil, errors.New("runtime: nil app")
	}
	if cfg.DeviceID == "" {
		return nil, errors.New("runtime: empty device id")
	}
	s, err := dialSession(cfg, 0)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		cfg:   cfg,
		conn:  s.conn,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	w.lastEpoch = s.epoch
	go w.run(s)
	cfg.Logger.Info("swing worker: joined", "device", cfg.DeviceID, "master", cfg.MasterAddr)
	return w, nil
}

// dialSession performs the join workflow (paper §IV-B steps 2-3): dial,
// hello, receive the deployment, acknowledge start. lastEpoch is the
// master incarnation the worker was last joined to (0 on the first join);
// echoing it lets a restarted master count the re-adoption.
func dialSession(cfg WorkerConfig, lastEpoch uint64) (*workerSession, error) {
	conn, err := cfg.Transport.Dial(cfg.MasterAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: join master: %w", err)
	}
	hello, err := wire.EncodeJSON(wire.Hello{
		DeviceID:    cfg.DeviceID,
		App:         cfg.App.Name(),
		SpeedFactor: cfg.SpeedFactor,
		Epoch:       lastEpoch,
	})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := wire.WriteFrame(conn, wire.FrameHello, hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: hello: %w", err)
	}

	// Deploy: activate the assigned function units.
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameDeploy {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected deploy, got %v: %v", typ, err)
	}
	var deploy wire.Deploy
	if err := wire.DecodeJSON(payload, &deploy); err != nil {
		_ = conn.Close()
		return nil, err
	}
	chain, err := buildChain(cfg.App, deploy.Units)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	typ, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameStart {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected start, got %v: %v", typ, err)
	}
	return &workerSession{
		conn:        conn,
		chain:       chain,
		reportEvery: time.Duration(deploy.ReportEveryMillis) * time.Millisecond,
		epoch:       deploy.Epoch,
		queue:       make(chan *tuple.Tuple, cfg.QueueCap),
		dead:        make(chan struct{}),
	}, nil
}

// buildChain instantiates the worker's processors in pipeline order.
func buildChain(app *apps.App, units []string) ([]graph.Processor, error) {
	if len(units) == 0 {
		return nil, errors.New("runtime: empty deployment")
	}
	chain := make([]graph.Processor, 0, len(units))
	for _, id := range units {
		u, err := app.Graph.Unit(id)
		if err != nil {
			return nil, fmt.Errorf("runtime: deploy: %w", err)
		}
		if u.NewProcessor == nil {
			return nil, fmt.Errorf("runtime: unit %q has no processor factory", id)
		}
		chain = append(chain, u.NewProcessor())
	}
	return chain, nil
}

// run drives sessions until a clean stop: each session processes until
// its link breaks, then (with Reconnect on) the worker redials with
// exponential backoff and jitter and re-runs the handshake.
func (w *Worker) run(s *workerSession) {
	defer close(w.done)
	rng := rand.New(rand.NewPCG(uint64(w.cfg.Seed), 0x3417))
	for {
		w.runSession(s)
		if w.stopped() || s.sawStop || !w.cfg.Reconnect {
			return
		}
		next, ok := w.reconnect(rng)
		if !ok {
			return
		}
		s = next
	}
}

// reconnect redials until a session is established, the attempt budget
// runs out, or the worker is closed. Backoff doubles per failure, capped
// at ReconnectMaxBackoff, with ±50% seeded jitter to avoid thundering
// herds when a swarm's workers all lost the same master.
func (w *Worker) reconnect(rng *rand.Rand) (*workerSession, bool) {
	backoff := w.cfg.ReconnectBackoff
	for attempt := 1; ; attempt++ {
		if w.cfg.ReconnectAttempts > 0 && attempt > w.cfg.ReconnectAttempts {
			w.cfg.Logger.Warn("swing worker: reconnect attempts exhausted",
				"device", w.cfg.DeviceID, "attempts", w.cfg.ReconnectAttempts)
			// Giving up is a terminal failure, not a clean shutdown: record
			// it so Wait/Err report the worker fell out of the swarm.
			w.statsMu.Lock()
			w.termErr = fmt.Errorf("%w after %d attempts (device %s)",
				ErrReconnectExhausted, w.cfg.ReconnectAttempts, w.cfg.DeviceID)
			w.statsMu.Unlock()
			return nil, false
		}
		delay := backoff/2 + time.Duration(rng.Int64N(int64(backoff)))
		select {
		case <-time.After(delay):
		case <-w.stop:
			return nil, false
		}
		s, err := dialSession(w.cfg, w.MasterEpoch())
		if err == nil {
			w.mu.Lock()
			w.conn = s.conn
			w.mu.Unlock()
			// Close may have raced the new dial; do not leak the session.
			if w.stopped() {
				_ = s.conn.Close()
				return nil, false
			}
			w.statsMu.Lock()
			w.reconnects++
			prevEpoch := w.lastEpoch
			w.lastEpoch = s.epoch
			w.statsMu.Unlock()
			if s.epoch != prevEpoch && prevEpoch != 0 {
				w.cfg.Logger.Info("swing worker: re-adopted by new master incarnation",
					"device", w.cfg.DeviceID, "prevEpoch", prevEpoch, "epoch", s.epoch)
			} else {
				w.cfg.Logger.Info("swing worker: rejoined",
					"device", w.cfg.DeviceID, "master", w.cfg.MasterAddr, "attempt", attempt)
			}
			return s, true
		}
		w.cfg.Logger.Warn("swing worker: reconnect failed",
			"device", w.cfg.DeviceID, "attempt", attempt, "err", err, "backoff", backoff)
		if backoff *= 2; backoff > w.cfg.ReconnectMaxBackoff {
			backoff = w.cfg.ReconnectMaxBackoff
		}
	}
}

func (w *Worker) stopped() bool {
	select {
	case <-w.stop:
		return true
	default:
		return false
	}
}

// runSession serves one connection until it breaks or stops.
func (w *Worker) runSession(s *workerSession) {
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		w.readLoop(s)
	}()
	go func() {
		defer wg.Done()
		w.processLoop(s)
	}()
	go func() {
		defer wg.Done()
		w.statsLoop(s)
	}()
	wg.Wait()
	_ = s.conn.Close()
}

func (w *Worker) readLoop(s *workerSession) {
	defer close(s.queue)
	defer close(s.dead)
	for {
		typ, payload, err := wire.ReadFrame(s.conn)
		if err != nil {
			return
		}
		switch typ {
		case wire.FrameTuple:
			t, err := tuple.Unmarshal(payload)
			if err != nil {
				w.cfg.Logger.Warn("swing worker: bad tuple", "err", err)
				continue
			}
			select {
			case s.queue <- t:
			case <-w.stop:
				return
			}
		case wire.FramePing:
			// Echo the payload verbatim: the pong is the master's proof of
			// life for this link, and a worker whose processing queue is
			// saturated can still answer from the read loop.
			if w.writeFrame(s, wire.FramePong, payload) != nil {
				return
			}
		case wire.FrameStop:
			s.sawStop = true
			return
		default:
			// Control frames after start are ignored.
		}
	}
}

// collectEmitter gathers a processor's outputs.
type collectEmitter struct {
	out []*tuple.Tuple
}

var _ graph.Emitter = (*collectEmitter)(nil)

// Emit implements graph.Emitter.
func (c *collectEmitter) Emit(t *tuple.Tuple) error {
	c.out = append(c.out, t)
	return nil
}

func (w *Worker) processLoop(s *workerSession) {
	for t := range s.queue {
		w.processOne(s, t)
	}
}

// processOne runs the tuple through the local operator chain (the
// vertical pipeline slice) and returns the result with ACK metadata.
// Every consumed tuple is answered: a processor error sends a drop
// notice, a filtered-out tuple sends a plain ack — so the master's
// in-flight tracker and latency estimate for this worker never go stale
// on a silent discard.
func (w *Worker) processOne(s *workerSession, t *tuple.Tuple) {
	begin := time.Now()
	cur := []*tuple.Tuple{t}
	for _, p := range s.chain {
		var em collectEmitter
		for _, in := range cur {
			if err := p.ProcessData(&em, in); err != nil {
				w.cfg.Logger.Warn("swing worker: process", "err", err)
				w.statsMu.Lock()
				w.dropped++
				w.statsMu.Unlock()
				w.sendAckOnly(s, t, time.Since(begin), true)
				return
			}
		}
		cur = em.out
		if len(cur) == 0 {
			// A stage filtered the tuple out: legitimate, but still ack.
			w.sendAckOnly(s, t, time.Since(begin), false)
			return
		}
	}
	proc := time.Since(begin)
	if w.cfg.SpeedFactor > 1 {
		// Emulate a slower device: stretch processing time.
		time.Sleep(time.Duration(float64(proc) * (w.cfg.SpeedFactor - 1)))
		proc = time.Duration(float64(proc) * w.cfg.SpeedFactor)
	}
	w.statsMu.Lock()
	w.processed++
	w.statsMu.Unlock()

	for _, out := range cur {
		tb, err := tuple.Marshal(out)
		if err != nil {
			w.cfg.Logger.Warn("swing worker: marshal result", "err", err)
			w.statsMu.Lock()
			w.dropped++
			w.statsMu.Unlock()
			w.sendAckOnly(s, t, proc, true)
			continue
		}
		payload, err := wire.EncodeResult(w.resultMeta(t, proc), tb)
		if err != nil {
			continue
		}
		if w.writeFrame(s, wire.FrameResult, payload) != nil {
			return
		}
	}
}

func (w *Worker) resultMeta(t *tuple.Tuple, proc time.Duration) wire.ResultMeta {
	return wire.ResultMeta{
		TupleID:   t.ID,
		Attempt:   t.Attempt,
		EmitNanos: t.EmitNanos,
		ProcNanos: int64(proc),
	}
}

// sendAckOnly reports a consumed-but-resultless tuple to the master.
func (w *Worker) sendAckOnly(s *workerSession, t *tuple.Tuple, proc time.Duration, dropped bool) {
	meta := w.resultMeta(t, proc)
	meta.Dropped = dropped
	payload, err := wire.EncodeResult(meta, nil)
	if err != nil {
		return
	}
	_ = w.writeFrame(s, wire.FrameResult, payload)
}

func (w *Worker) writeFrame(s *workerSession, typ wire.FrameType, payload []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return wire.WriteFrame(s.conn, typ, payload)
}

func (w *Worker) statsLoop(s *workerSession) {
	period := s.reportEvery
	if period <= 0 {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.statsMu.Lock()
			st := wire.Stats{
				DeviceID:   w.cfg.DeviceID,
				Processed:  w.processed,
				Dropped:    w.dropped,
				QueueLen:   len(s.queue),
				Reconnects: w.reconnects,
				UptimeMS:   time.Since(w.start).Milliseconds(),
			}
			w.statsMu.Unlock()
			b, err := wire.EncodeJSON(st)
			if err != nil {
				continue
			}
			if w.writeFrame(s, wire.FrameStats, b) != nil {
				return
			}
		case <-s.dead:
			return
		case <-w.stop:
			return
		}
	}
}

// Processed reports how many tuples this worker has completed.
func (w *Worker) Processed() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.processed
}

// Dropped reports how many tuples this worker discarded on processor
// errors.
func (w *Worker) Dropped() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.dropped
}

// Reconnects reports how many times this worker has rejoined the master
// after a broken link.
func (w *Worker) Reconnects() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.reconnects
}

// MasterEpoch reports the incarnation number of the master that deployed
// the current session; it advances when a reconnect lands on a restarted
// master (re-adoption) rather than the original one.
func (w *Worker) MasterEpoch() uint64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.lastEpoch
}

// Close leaves the swarm: the connection closes (the master observes an
// abrupt leave) and all goroutines drain.
func (w *Worker) Close() error {
	w.once.Do(func() {
		close(w.stop)
		w.mu.Lock()
		conn := w.conn
		w.mu.Unlock()
		_ = conn.Close()
		<-w.done
	})
	return nil
}

// Err reports the worker's terminal failure, if any: non-nil once the
// reconnect budget is exhausted (wrapping ErrReconnectExhausted). A clean
// stop — master-initiated Stop, Close, or a link break with reconnection
// disabled — leaves it nil.
func (w *Worker) Err() error {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.termErr
}

// Wait blocks until the worker has fully shut down: the master stopped
// it, the link broke with reconnection disabled, or the reconnect budget
// ran out. It returns the terminal failure from Err, so callers learn the
// difference between a clean stop and a worker that gave up rejoining.
func (w *Worker) Wait() error {
	<-w.done
	return w.Err()
}
