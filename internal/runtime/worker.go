package runtime

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/discovery"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
)

// WorkerConfig configures StartWorker.
type WorkerConfig struct {
	// DeviceID uniquely names this worker in the swarm.
	DeviceID string
	// MasterAddr is the master's control address (from discovery or
	// out-of-band).
	MasterAddr string
	// App must be the same application the master coordinates (the
	// paper's workflow installs the app on every device).
	App *apps.App
	// Transport defaults to TCP.
	Transport transport.Transport
	// QueueCap bounds the input queue in tuples (default 48); a full
	// queue stalls the connection read, which is the TCP backpressure
	// the master's routing observes.
	QueueCap int
	// SpeedFactor artificially slows processing by the given factor
	// (>1), emulating a weaker device on homogeneous test hosts.
	SpeedFactor float64
	// Reconnect makes a broken master link re-run the dial and
	// hello/deploy/start handshake with exponential backoff and jitter
	// instead of shutting the worker down — a transient radio dropout
	// rejoins the swarm (§IV-C) rather than leaving it permanently. A
	// master-initiated Stop still shuts down cleanly.
	Reconnect bool
	// ReconnectBackoff is the initial retry delay (default 50 ms); it
	// doubles per failed attempt up to ReconnectMaxBackoff (default 5 s).
	ReconnectBackoff    time.Duration
	ReconnectMaxBackoff time.Duration
	// ReconnectAttempts bounds cumulative failed rejoin attempts before
	// the worker gives up (0 = retry forever). The budget is NOT refilled
	// by merely re-establishing a session — a link that flaps every few
	// hundred milliseconds would otherwise retry forever on a budget meant
	// to bound it — only by staying connected for ReconnectResetAfter.
	ReconnectAttempts int
	// ReconnectResetAfter is how long a session must survive before the
	// failed-attempt budget refills (default 30 s). A worker that rejoins
	// and immediately loses the link again keeps drawing down the same
	// budget; one that holds a session this long has demonstrably
	// recovered and starts fresh on the next outage.
	ReconnectResetAfter time.Duration
	// DiscoverAddr, when set, is a UDP listen address (e.g. ":17716") for
	// master rediscovery: after each failed reconnect dial the worker
	// listens here for a beacon from a NEWER master incarnation
	// (epoch > the one it was joined to) and retargets MasterAddr to it.
	// This is the worker half of standby failover — a promoted standby
	// announces under a bumped epoch at a possibly different address, and
	// workers home onto it instead of redialing the dead primary forever.
	// Empty disables rediscovery (reconnects always redial MasterAddr).
	DiscoverAddr string
	// DiscoverWindow bounds each rediscovery listen (default 1 s).
	DiscoverWindow time.Duration
	// Seed drives the backoff jitter (default 1), keeping reconnection
	// schedules reproducible in tests.
	Seed int64
	// Logger defaults to slog.Default.
	Logger *slog.Logger
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Transport == nil {
		c.Transport = transport.TCP{}
	}
	if c.QueueCap == 0 {
		c.QueueCap = 48
	}
	if c.SpeedFactor < 1 {
		c.SpeedFactor = 1
	}
	if c.ReconnectBackoff == 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
	if c.ReconnectMaxBackoff == 0 {
		c.ReconnectMaxBackoff = 5 * time.Second
	}
	if c.ReconnectResetAfter == 0 {
		c.ReconnectResetAfter = 30 * time.Second
	}
	if c.DiscoverWindow == 0 {
		c.DiscoverWindow = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// workerSession is one joined connection's state: everything that is torn
// down and rebuilt when the worker reconnects.
type workerSession struct {
	conn        net.Conn
	chain       []graph.Processor
	units       []string // deployed unit IDs, for building pool chains
	reportEvery time.Duration
	// epoch is the master incarnation that deployed this session; a change
	// between sessions means the worker was re-adopted by a restarted
	// master, not merely reconnected to the same one.
	epoch uint64
	// parallelism is the processor-pool width from the deployment;
	// ackLinger is its result-batching window; opDeadline is the per-tuple
	// watchdog budget (0 = watchdog off, chains run inline).
	parallelism int
	ackLinger   time.Duration
	opDeadline  time.Duration

	// queue feeds the processor pool; order carries the same jobs in
	// arrival order to the send loop, which restores input order on the
	// upstream link whatever order the pool finishes in. The read loop is
	// the only sender on both and closes both on exit.
	queue chan *procJob
	order chan *procJob
	dead  chan struct{} // closed when the read loop exits
	// sendGone is closed when the send loop exits (e.g. a write error),
	// so a read loop blocked handing a job off doesn't wait on a drain
	// that will never come.
	sendGone chan struct{}
	writeMu  sync.Mutex
	sawStop  bool // FrameStop received: clean shutdown, do not reconnect
}

// Worker executes the operator pipeline assigned by the master on locally
// received tuples and returns results. With Reconnect enabled it survives
// link breaks by rejoining the master.
type Worker struct {
	cfg WorkerConfig

	mu   sync.Mutex
	conn net.Conn // current session's connection, for Close

	statsMu    sync.Mutex
	processed  int64
	dropped    int64
	panics     int64 // operator panics recovered by the sandbox
	deadlined  int64 // tuples abandoned by the per-tuple watchdog
	reconnects int64
	lastEpoch  uint64 // master incarnation of the current session
	termErr    error  // terminal failure (e.g. reconnect budget exhausted)

	// attemptsUsed is the cumulative failed-reconnect count charged
	// against ReconnectAttempts. Owned by the run goroutine: incremented
	// per failed dial, zeroed only after a session survives
	// ReconnectResetAfter.
	attemptsUsed int

	start time.Time
	stop  chan struct{}
	once  sync.Once
	done  chan struct{}
}

// StartWorker joins the swarm: it dials the master, completes the
// hello/deploy/start handshake and begins processing. The initial join
// must succeed (so configuration errors surface immediately); later link
// breaks follow the Reconnect policy.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.App == nil {
		return nil, errors.New("runtime: nil app")
	}
	if cfg.DeviceID == "" {
		return nil, errors.New("runtime: empty device id")
	}
	s, err := dialSession(cfg, 0)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		cfg:   cfg,
		conn:  s.conn,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	w.lastEpoch = s.epoch
	go w.run(s)
	cfg.Logger.Info("swing worker: joined", "device", cfg.DeviceID, "master", cfg.MasterAddr)
	return w, nil
}

// dialSession performs the join workflow (paper §IV-B steps 2-3): dial,
// hello, receive the deployment, acknowledge start. lastEpoch is the
// master incarnation the worker was last joined to (0 on the first join);
// echoing it lets a restarted master count the re-adoption.
func dialSession(cfg WorkerConfig, lastEpoch uint64) (*workerSession, error) {
	conn, err := cfg.Transport.Dial(cfg.MasterAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: join master: %w", err)
	}
	hello, err := wire.EncodeJSON(wire.Hello{
		DeviceID:    cfg.DeviceID,
		App:         cfg.App.Name(),
		SpeedFactor: cfg.SpeedFactor,
		Epoch:       lastEpoch,
	})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := wire.WriteFrame(conn, wire.FrameHello, hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: hello: %w", err)
	}

	// Deploy: activate the assigned function units.
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameDeploy {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected deploy, got %v: %v", typ, err)
	}
	var deploy wire.Deploy
	if err := wire.DecodeJSON(payload, &deploy); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if deploy.Epoch != 0 && deploy.Epoch < lastEpoch {
		// Worker-side epoch fence: this master is an older incarnation than
		// the one that last deployed us — a zombie primary that survived its
		// own failover. Joining it would fork the swarm: tuples it dispatches
		// were either already recovered by the promoted master or will never
		// reach the real sink. Refuse and let reconnect/rediscovery find the
		// live incarnation.
		_ = conn.Close()
		return nil, fmt.Errorf("%w: deploy epoch %d < last epoch %d",
			ErrStaleMaster, deploy.Epoch, lastEpoch)
	}
	chain, err := buildChain(cfg.App, deploy.Units)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	typ, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameStart {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected start, got %v: %v", typ, err)
	}
	par := deploy.Parallelism
	if par <= 0 {
		par = goruntime.GOMAXPROCS(0)
	}
	return &workerSession{
		conn:        conn,
		chain:       chain,
		units:       deploy.Units,
		reportEvery: time.Duration(deploy.ReportEveryMillis) * time.Millisecond,
		epoch:       deploy.Epoch,
		parallelism: par,
		ackLinger:   time.Duration(deploy.AckLingerMicros) * time.Microsecond,
		opDeadline:  time.Duration(deploy.OpDeadlineMillis) * time.Millisecond,
		queue:       make(chan *procJob, cfg.QueueCap),
		// order must hold every admitted-but-unsent job: the queue's worth
		// plus one per pool slot plus the one mid-handoff in the read loop.
		order:    make(chan *procJob, cfg.QueueCap+par+1),
		dead:     make(chan struct{}),
		sendGone: make(chan struct{}),
	}, nil
}

// buildChain instantiates the worker's processors in pipeline order.
func buildChain(app *apps.App, units []string) ([]graph.Processor, error) {
	if len(units) == 0 {
		return nil, errors.New("runtime: empty deployment")
	}
	chain := make([]graph.Processor, 0, len(units))
	for _, id := range units {
		u, err := app.Graph.Unit(id)
		if err != nil {
			return nil, fmt.Errorf("runtime: deploy: %w", err)
		}
		if u.NewProcessor == nil {
			return nil, fmt.Errorf("runtime: unit %q has no processor factory", id)
		}
		chain = append(chain, u.NewProcessor())
	}
	return chain, nil
}

// run drives sessions until a clean stop: each session processes until
// its link breaks, then (with Reconnect on) the worker redials with
// exponential backoff and jitter and re-runs the handshake.
func (w *Worker) run(s *workerSession) {
	defer close(w.done)
	rng := rand.New(rand.NewPCG(uint64(w.cfg.Seed), 0x3417))
	for {
		sessionStart := time.Now()
		w.runSession(s)
		if time.Since(sessionStart) >= w.cfg.ReconnectResetAfter {
			// The session held long enough to count as a real recovery;
			// refill the failed-attempt budget. A session that died young is
			// still the same outage as far as the budget is concerned.
			w.attemptsUsed = 0
		}
		if w.stopped() || s.sawStop || !w.cfg.Reconnect {
			return
		}
		next, ok := w.reconnect(rng)
		if !ok {
			return
		}
		s = next
	}
}

// reconnect redials until a session is established, the attempt budget
// runs out, or the worker is closed. Backoff doubles per failure, capped
// at ReconnectMaxBackoff, with ±50% seeded jitter to avoid thundering
// herds when a swarm's workers all lost the same master. The budget is
// cumulative across outages (see ReconnectAttempts): only dial failures
// draw it down, and only a session that survived ReconnectResetAfter
// refills it.
func (w *Worker) reconnect(rng *rand.Rand) (*workerSession, bool) {
	backoff := w.cfg.ReconnectBackoff
	for attempt := 1; ; attempt++ {
		if w.cfg.ReconnectAttempts > 0 && w.attemptsUsed >= w.cfg.ReconnectAttempts {
			w.cfg.Logger.Warn("swing worker: reconnect attempts exhausted",
				"device", w.cfg.DeviceID, "attempts", w.cfg.ReconnectAttempts)
			// Giving up is a terminal failure, not a clean shutdown: record
			// it so Wait/Err report the worker fell out of the swarm.
			w.statsMu.Lock()
			w.termErr = fmt.Errorf("%w after %d attempts (device %s)",
				ErrReconnectExhausted, w.cfg.ReconnectAttempts, w.cfg.DeviceID)
			w.statsMu.Unlock()
			return nil, false
		}
		delay := backoff/2 + time.Duration(rng.Int64N(int64(backoff)))
		select {
		case <-time.After(delay):
		case <-w.stop:
			return nil, false
		}
		s, err := dialSession(w.cfg, w.MasterEpoch())
		if err == nil {
			w.mu.Lock()
			w.conn = s.conn
			w.mu.Unlock()
			// Close may have raced the new dial; do not leak the session.
			if w.stopped() {
				_ = s.conn.Close()
				return nil, false
			}
			w.statsMu.Lock()
			w.reconnects++
			prevEpoch := w.lastEpoch
			w.lastEpoch = s.epoch
			w.statsMu.Unlock()
			if s.epoch != prevEpoch && prevEpoch != 0 {
				w.cfg.Logger.Info("swing worker: re-adopted by new master incarnation",
					"device", w.cfg.DeviceID, "prevEpoch", prevEpoch, "epoch", s.epoch)
			} else {
				w.cfg.Logger.Info("swing worker: rejoined",
					"device", w.cfg.DeviceID, "master", w.cfg.MasterAddr, "attempt", attempt)
			}
			return s, true
		}
		w.attemptsUsed++
		w.cfg.Logger.Warn("swing worker: reconnect failed",
			"device", w.cfg.DeviceID, "attempt", attempt, "err", err, "backoff", backoff)
		w.rediscover()
		if backoff *= 2; backoff > w.cfg.ReconnectMaxBackoff {
			backoff = w.cfg.ReconnectMaxBackoff
		}
	}
}

// rediscover listens (briefly) for a beacon from a newer master
// incarnation and retargets MasterAddr onto it. Called between failed
// reconnect dials: if the master the worker knew is gone for good, a
// promoted standby announcing under a bumped epoch is the only way
// forward, while stale beacons from the dead incarnation — or a zombie
// partitioned away from its own demotion — are filtered by epoch.
func (w *Worker) rediscover() {
	if w.cfg.DiscoverAddr == "" || w.stopped() {
		return
	}
	ann, err := discovery.ListenSince(w.cfg.DiscoverAddr, w.cfg.App.Name(),
		w.MasterEpoch()+1, w.cfg.DiscoverWindow)
	if err != nil || ann.Addr == w.cfg.MasterAddr {
		return
	}
	w.cfg.Logger.Info("swing worker: rediscovered master",
		"device", w.cfg.DeviceID, "addr", ann.Addr, "epoch", ann.Epoch)
	w.cfg.MasterAddr = ann.Addr
}

func (w *Worker) stopped() bool {
	select {
	case <-w.stop:
		return true
	default:
		return false
	}
}

// runSession serves one connection until it breaks or stops.
func (w *Worker) runSession(s *workerSession) {
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		w.readLoop(s)
	}()
	go func() {
		defer wg.Done()
		w.processLoop(s)
	}()
	go func() {
		defer wg.Done()
		w.sendLoop(s)
	}()
	go func() {
		defer wg.Done()
		w.statsLoop(s)
	}()
	wg.Wait()
	_ = s.conn.Close()
}

func (w *Worker) readLoop(s *workerSession) {
	defer close(s.dead)
	defer close(s.order)
	defer close(s.queue)
	for {
		typ, buf, err := wire.ReadFrameBuf(s.conn)
		if err != nil {
			return
		}
		var payload []byte
		if buf != nil {
			payload = buf.B
		}
		switch typ {
		case wire.FrameTuple:
			// Zero-copy decode: the tuple's byte fields alias the pooled
			// frame buffer, which travels with the job and returns to the
			// pool only after the send loop has encoded the results.
			t, terr := tuple.UnmarshalShared(payload)
			if terr != nil {
				w.cfg.Logger.Warn("swing worker: bad tuple", "err", terr)
				buf.Release()
				continue
			}
			job := getJob(t, buf)
			// Queue first, order second: every job the send loop waits on
			// is then guaranteed to reach a pool goroutine that will
			// signal its completion.
			select {
			case s.queue <- job:
			case <-w.stop:
				return
			case <-s.sendGone:
				return
			}
			select {
			case s.order <- job:
			case <-w.stop:
				return
			case <-s.sendGone:
				return
			}
			continue // buffer ownership moved to the job
		case wire.FrameTupleBatch:
			// A batch decodes into a chain of jobs sharing one refcounted
			// frame buffer (every tuple's byte fields alias it) and takes
			// ONE handoff on each channel for the whole chain — the
			// per-tuple queue/order round trips collapse to per-batch.
			head, n, derr := w.decodeTupleBatch(payload)
			if derr != nil {
				w.cfg.Logger.Warn("swing worker: bad tuple batch", "err", derr)
			}
			if head == nil {
				buf.Release()
				continue
			}
			shared := &batchBuf{buf: buf}
			shared.refs.Store(int32(n))
			for j := head; j != nil; j = j.next {
				j.shared = shared
			}
			select {
			case s.queue <- head:
			case <-w.stop:
				return
			case <-s.sendGone:
				return
			}
			select {
			case s.order <- head:
			case <-w.stop:
				return
			case <-s.sendGone:
				return
			}
			continue // buffer ownership moved to the chain
		case wire.FramePing:
			// Echo the payload verbatim: the pong is the master's proof of
			// life for this link, and a worker whose processing queue is
			// saturated can still answer from the read loop.
			if w.writeFrame(s, wire.FramePong, payload) != nil {
				buf.Release()
				return
			}
		case wire.FrameStop:
			s.sawStop = true
			buf.Release()
			return
		default:
			// Control frames after start are ignored.
		}
		buf.Release()
	}
}

// procJob carries one input tuple through the processor pool. done is a
// one-slot channel its pool goroutine signals on completion; the send
// loop receives jobs from the session's order channel and waits on each
// in turn, so results leave in tuple-arrival order however the pool
// interleaves. Jobs are pooled: the send loop recycles each one after
// encoding its results.
//
// Jobs decoded from one FrameTupleBatch are linked through next into an
// intra-batch chain: the read loop hands only the chain head to the
// queue and order channels (one handoff per batch, not per tuple), and
// the consumers walk the chain. All jobs of a chain alias one shared
// refcounted frame buffer instead of owning buf.
type procJob struct {
	t       *tuple.Tuple
	buf     *wire.Buf // pooled frame backing t's byte fields (single tuples)
	shared  *batchBuf // refcounted frame shared by a batch chain (nil otherwise)
	next    *procJob  // next job of the same batch chain
	outs    []*tuple.Tuple
	proc    time.Duration
	dropped bool
	reason  wire.DropReason
	done    chan struct{}
}

// batchBuf is one FrameTupleBatch's pooled frame buffer, shared by every
// job decoded from it: each tuple's byte fields alias the same backing,
// which can return to the pool only after the last job is done with it —
// including a job abandoned to a watchdog reaper.
type batchBuf struct {
	buf  *wire.Buf
	refs atomic.Int32
}

// release drops one reference, returning the frame to the pool with the
// last one.
func (b *batchBuf) release() {
	if b.refs.Add(-1) == 0 {
		b.buf.Release()
	}
}

var jobPool = sync.Pool{New: func() any { return &procJob{done: make(chan struct{}, 1)} }}

func getJob(t *tuple.Tuple, buf *wire.Buf) *procJob {
	j := jobPool.Get().(*procJob)
	j.t, j.buf = t, buf
	return j
}

// recycle releases the job's frame buffer (or its reference on a shared
// batch frame) and returns it to the pool. Only the send loop calls it,
// after the done token has been consumed, so the channel is guaranteed
// empty for the next user. Callers walking a chain must read next before
// recycling — recycle severs it.
func (j *procJob) recycle() {
	if j.shared != nil {
		j.shared.release()
	} else {
		j.buf.Release()
	}
	j.t, j.buf, j.shared, j.next = nil, nil, nil, nil
	for i := range j.outs {
		j.outs[i] = nil
	}
	j.outs = j.outs[:0]
	j.proc, j.dropped, j.reason = 0, false, wire.DropNone
	jobPool.Put(j)
}

// decodeTupleBatch decodes a FrameTupleBatch payload into a chain of
// jobs, without per-tuple frame reads or copies — every tuple's byte
// fields alias the one frame buffer the caller still owns. Returns the
// chain head and its length; a decode error aborts the remainder (the
// jobs built so far still run).
func (w *Worker) decodeTupleBatch(payload []byte) (*procJob, int, error) {
	var head, tail *procJob
	n := 0
	err := wire.DecodeTupleBatch(payload, func(entry []byte) error {
		t, terr := tuple.UnmarshalShared(entry)
		if terr != nil {
			return terr
		}
		j := getJob(t, nil)
		if head == nil {
			head = j
		} else {
			tail.next = j
		}
		tail = j
		n++
		return nil
	})
	return head, n, err
}

// collectEmitter gathers a processor's outputs.
type collectEmitter struct {
	out []*tuple.Tuple
}

var _ graph.Emitter = (*collectEmitter)(nil)

// Emit implements graph.Emitter.
func (c *collectEmitter) Emit(t *tuple.Tuple) error {
	c.out = append(c.out, t)
	return nil
}

// processLoop runs the session's processor pool: parallelism goroutines,
// each with its own operator chain (processors may be stateful, so pool
// members never share one), pulling jobs off the shared queue. Result
// order is not this loop's problem — the send loop restores it. With a
// per-tuple deadline deployed, each slot runs its chain on a watchdogged
// child goroutine instead of inline.
func (w *Worker) processLoop(s *workerSession) {
	var wg sync.WaitGroup
	for i := 0; i < s.parallelism; i++ {
		chain := s.chain
		if i > 0 {
			c, err := buildChain(w.cfg.App, s.units)
			if err != nil {
				// The deploy-time build succeeded, so this cannot really
				// fail; degrade to the chains built so far.
				w.cfg.Logger.Warn("swing worker: build pool chain", "err", err)
				break
			}
			chain = c
		}
		wg.Add(1)
		go func(chain []graph.Processor) {
			defer wg.Done()
			if s.opDeadline > 0 {
				w.poolSlotWatchdog(s, chain)
				return
			}
			// Per-goroutine scratch, reused across jobs, keeps the hot
			// path allocation-free. A queue item is a batch chain (or a
			// chain of one); next is read before done is signaled, since
			// the send loop may recycle a signaled job at any moment.
			var em collectEmitter
			var cur []*tuple.Tuple
			for head := range s.queue {
				for job := head; job != nil; {
					nxt := job.next
					var panicked bool
					cur, panicked = w.runJob(chain, &em, cur, job)
					job.done <- struct{}{}
					if panicked {
						chain = w.rebuildChain(s, chain)
					}
					job = nxt
				}
			}
		}(chain)
	}
	wg.Wait()
}

// rebuildChain replaces a slot's operator chain after a panic: a
// processor that panicked may have corrupted its internal state, so it is
// never trusted with another tuple. Falls back to the old chain if the
// rebuild fails (which the deploy-time build proved it cannot).
func (w *Worker) rebuildChain(s *workerSession, old []graph.Processor) []graph.Processor {
	fresh, err := buildChain(w.cfg.App, s.units)
	if err != nil {
		w.cfg.Logger.Warn("swing worker: rebuild chain after panic", "err", err)
		return old
	}
	return fresh
}

// runJob runs one tuple through an operator chain (the vertical pipeline
// slice), leaving results and ACK metadata on the job. Every consumed
// tuple is answered: a processor error or panic marks a typed drop
// notice, a filtered-out tuple leaves no outputs (a plain ack with
// DropFiltered) — so the master's in-flight tracker and latency estimate
// for this worker never go stale on a silent discard. Returns the
// (possibly regrown) scratch slice and whether a processor panicked (the
// caller must retire the chain).
func (w *Worker) runJob(chain []graph.Processor, em *collectEmitter, scratch []*tuple.Tuple, job *procJob) ([]*tuple.Tuple, bool) {
	begin := time.Now()
	cur := append(scratch[:0], job.t)
	for _, p := range chain {
		em.out = em.out[:0]
		for _, in := range cur {
			err, panicked := w.safeProcess(p, em, in)
			if err != nil {
				w.cfg.Logger.Warn("swing worker: process", "err", err)
				w.statsMu.Lock()
				w.dropped++
				if panicked {
					w.panics++
				}
				w.statsMu.Unlock()
				job.dropped = true
				job.reason = wire.DropError
				if panicked {
					job.reason = wire.DropPanic
				}
				job.proc = time.Since(begin)
				return cur, panicked
			}
		}
		cur = append(cur[:0], em.out...)
		if len(cur) == 0 {
			// A stage filtered the tuple out: legitimate, but still ack.
			job.reason = wire.DropFiltered
			job.proc = time.Since(begin)
			return cur, false
		}
	}
	proc := time.Since(begin)
	if w.cfg.SpeedFactor > 1 {
		// Emulate a slower device: stretch processing time.
		time.Sleep(time.Duration(float64(proc) * (w.cfg.SpeedFactor - 1)))
		proc = time.Duration(float64(proc) * w.cfg.SpeedFactor)
	}
	w.statsMu.Lock()
	w.processed++
	w.statsMu.Unlock()
	job.outs = append(job.outs[:0], cur...)
	job.proc = proc
	return cur, false
}

// safeProcess invokes one processor under the panic sandbox: a panicking
// operator becomes an error (and panicked=true) instead of killing the
// worker process.
func (w *Worker) safeProcess(p graph.Processor, em graph.Emitter, in *tuple.Tuple) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("processor panic: %v", r)
		}
	}()
	err = p.ProcessData(em, in)
	return
}

// chainJob hands one tuple to a chain-runner child. The tuple's byte
// fields alias buf; the runner only reads them, and buf's release stays
// with the parent (normal completion) or a reaper (abandonment).
type chainJob struct {
	t *tuple.Tuple
}

// chainRun is a chain runner's verdict on one tuple. outs alias the
// runner's scratch, which it will not touch again until the parent sends
// the next job, so the parent copies them out before doing so.
type chainRun struct {
	outs     []*tuple.Tuple
	proc     time.Duration
	dropped  bool
	reason   wire.DropReason
	panicked bool
}

// chainRunner is a pool slot's child goroutine in watchdog mode: it owns
// an operator chain and processes one chainJob at a time. The parent
// abandons a runner (close(in), fresh runner spawned) when a tuple blows
// its deadline or panics; the abandoned runner exits as soon as its
// current chain invocation returns.
type chainRunner struct {
	in  chan chainJob
	out chan chainRun // buffered(1): an abandoned runner never blocks here
}

func (w *Worker) spawnChainRunner(chain []graph.Processor) *chainRunner {
	r := &chainRunner{in: make(chan chainJob), out: make(chan chainRun, 1)}
	go func() {
		var em collectEmitter
		var scratch []*tuple.Tuple
		for cj := range r.in {
			job := procJob{t: cj.t}
			var panicked bool
			scratch, panicked = w.runJob(chain, &em, scratch, &job)
			r.out <- chainRun{
				outs:     job.outs,
				proc:     job.proc,
				dropped:  job.dropped,
				reason:   job.reason,
				panicked: panicked,
			}
		}
	}()
	return r
}

// poolSlotWatchdog is a pool slot with the per-tuple deadline armed. The
// chain runs on a child goroutine; if it has not returned within
// opDeadline the slot reports the tuple as a DropDeadline notice, hands
// the (still running) child to a reaper that releases the frame buffer
// when — if — it finishes, and replaces child and chain. A processor
// stuck forever therefore costs one leaked goroutine, not the worker
// process; a finite hang drains on its own.
func (w *Worker) poolSlotWatchdog(s *workerSession, chain []graph.Processor) {
	runner := w.spawnChainRunner(chain)
	defer func() {
		if runner != nil {
			close(runner.in)
		}
	}()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for head := range s.queue {
		for job := head; job != nil; {
			nxt := job.next // read before done: a signaled job may be recycled
			runner.in <- chainJob{t: job.t}
			timer.Reset(s.opDeadline)
			select {
			case run := <-runner.out:
				if !timer.Stop() {
					<-timer.C
				}
				job.outs = append(job.outs[:0], run.outs...)
				job.proc = run.proc
				job.dropped = run.dropped
				job.reason = run.reason
				if run.panicked {
					// runJob already counted the panic; retire the chain by
					// retiring the whole runner (it owns the chain).
					close(runner.in)
					runner = w.respawnRunner(s)
				}
			case <-timer.C:
				w.cfg.Logger.Warn("swing worker: tuple blew processing deadline",
					"tuple", job.t.ID, "deadline", s.opDeadline)
				w.statsMu.Lock()
				w.dropped++
				w.deadlined++
				w.statsMu.Unlock()
				job.outs = job.outs[:0]
				job.proc = s.opDeadline
				job.dropped = true
				job.reason = wire.DropDeadline
				// The child may still be inside the operator, reading tuple
				// bytes that alias the frame buffer: ownership of the buffer
				// (or the batch frame reference, when the tuple rode a
				// FrameTupleBatch) moves to a reaper that releases it once
				// the child surfaces.
				buf := job.buf
				shared := job.shared
				job.buf, job.shared = nil, nil
				abandoned := runner
				go func() {
					select {
					case <-abandoned.out:
						if shared != nil {
							shared.release()
						} else {
							buf.Release()
						}
					case <-w.stop:
					}
				}()
				close(abandoned.in)
				runner = w.respawnRunner(s)
			case <-w.stop:
				return
			}
			job.done <- struct{}{}
			if runner == nil {
				// Chain rebuild failed (cannot really happen — the deploy-time
				// build succeeded); degrade by retiring this slot.
				return
			}
			job = nxt
		}
	}
}

// respawnRunner builds a fresh chain on a fresh runner, or nil if the
// chain cannot be rebuilt (the slot must then retire — an empty chain
// would echo inputs as outputs).
func (w *Worker) respawnRunner(s *workerSession) *chainRunner {
	fresh, err := buildChain(w.cfg.App, s.units)
	if err != nil {
		w.cfg.Logger.Warn("swing worker: rebuild chain", "err", err)
		return nil
	}
	return w.spawnChainRunner(fresh)
}

// Result-batch flush thresholds: a batch flushes when it crosses either,
// whatever the linger window says, bounding frame size and head-of-line
// wait behind a huge batch.
const (
	ackFlushBytes   = 256 << 10
	ackFlushEntries = 128
)

// sendLoop is the upstream writer: it consumes finished jobs in tuple
// arrival order and packs their results/acks into FrameResultBatch
// frames. With AckLinger zero a result waits only for successors that
// are already complete (pure opportunistic batching); with a linger
// window d it may additionally wait up to d for stragglers, so a
// result's measured latency is inflated by at most d.
func (w *Worker) sendLoop(s *workerSession) {
	defer close(s.sendGone)
	var (
		batch   wire.ResultBatch
		scratch []byte
		carry   *procJob // pulled from order but not yet complete
		pending *procJob // next unconsumed job of the current batch chain
		timer   *time.Timer
	)
	for {
		job := carry
		carry = nil
		if job == nil {
			job = pending
		}
		if job == nil {
			var ok bool
			select {
			case job, ok = <-s.order:
				if !ok {
					return
				}
			case <-w.stop:
				return
			}
		}
		// Advance the chain before waiting: once done is consumed and the
		// job recycled, its next link is severed. An order item is a batch
		// chain head (or a chain of one); its tail jobs drain from pending
		// before the next order receive, preserving arrival order.
		pending = job.next
		// Head-of-line wait is unbounded: nothing may be sent before the
		// oldest tuple finishes anyway, or order would be lost.
		select {
		case <-job.done:
		case <-w.stop:
			return
		}
		scratch = w.addResults(&batch, scratch, job)
		var deadline <-chan time.Time
		if s.ackLinger > 0 {
			if timer == nil {
				timer = time.NewTimer(s.ackLinger)
			} else {
				timer.Reset(s.ackLinger)
			}
			deadline = timer.C
		}
	gather:
		for batch.Size() < ackFlushBytes && batch.Count() < ackFlushEntries {
			var next *procJob
			if pending != nil {
				next = pending
			} else {
				var ok bool
				select {
				case next, ok = <-s.order:
				default:
					if deadline == nil {
						break gather
					}
					select {
					case next, ok = <-s.order:
					case <-deadline:
						deadline = nil
						break gather
					case <-w.stop:
						return
					}
				}
				if !ok {
					break gather // read loop closed the order channel
				}
			}
			pending = next.next
			if deadline == nil {
				select {
				case <-next.done:
				default:
					// Not finished and no linger budget: it becomes the
					// next batch's head.
					carry = next
					break gather
				}
			} else {
				select {
				case <-next.done:
				case <-deadline:
					deadline = nil
					carry = next
					break gather
				case <-w.stop:
					return
				}
			}
			scratch = w.addResults(&batch, scratch, next)
		}
		if timer != nil && deadline != nil {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		if w.flushBatch(s, &batch) != nil {
			return
		}
	}
}

// addResults encodes one finished job — its result tuples, or a lone
// ack/drop notice — into the batch, then recycles the job and releases
// the frame buffer its input tuple aliased. Returns the reusable marshal
// scratch buffer.
func (w *Worker) addResults(batch *wire.ResultBatch, scratch []byte, job *procJob) []byte {
	meta := wire.ResultMeta{
		TupleID:   job.t.ID,
		Attempt:   job.t.Attempt,
		EmitNanos: job.t.EmitNanos,
		ProcNanos: int64(job.proc),
		Dropped:   job.dropped,
		Reason:    job.reason,
	}
	if len(job.outs) == 0 {
		batch.Add(meta, nil)
	} else {
		for _, out := range job.outs {
			b, err := tuple.AppendMarshal(scratch[:0], out)
			if err != nil {
				w.cfg.Logger.Warn("swing worker: marshal result", "err", err)
				w.statsMu.Lock()
				w.dropped++
				w.statsMu.Unlock()
				dm := meta
				dm.Dropped = true
				dm.Reason = wire.DropError
				batch.Add(dm, nil)
				continue
			}
			batch.Add(meta, b)
			scratch = b
		}
	}
	job.recycle()
	return scratch
}

// flushBatch writes the accumulated batch as one frame and resets it.
func (w *Worker) flushBatch(s *workerSession, batch *wire.ResultBatch) error {
	payload := batch.Payload()
	if payload == nil {
		return nil
	}
	err := w.writeFrame(s, wire.FrameResultBatch, payload)
	batch.Reset()
	return err
}

func (w *Worker) writeFrame(s *workerSession, typ wire.FrameType, payload []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return wire.WriteFrame(s.conn, typ, payload)
}

func (w *Worker) statsLoop(s *workerSession) {
	period := s.reportEvery
	if period <= 0 {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.statsMu.Lock()
			st := wire.Stats{
				DeviceID:   w.cfg.DeviceID,
				Processed:  w.processed,
				Dropped:    w.dropped,
				QueueLen:   len(s.queue),
				Reconnects: w.reconnects,
				Panics:     w.panics,
				Deadlined:  w.deadlined,
				UptimeMS:   time.Since(w.start).Milliseconds(),
			}
			w.statsMu.Unlock()
			b, err := wire.EncodeJSON(st)
			if err != nil {
				continue
			}
			if w.writeFrame(s, wire.FrameStats, b) != nil {
				return
			}
		case <-s.dead:
			return
		case <-w.stop:
			return
		}
	}
}

// Processed reports how many tuples this worker has completed.
func (w *Worker) Processed() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.processed
}

// Dropped reports how many tuples this worker discarded on processor
// errors.
func (w *Worker) Dropped() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.dropped
}

// Panics reports how many operator panics this worker's sandbox has
// recovered (each retired the panicking chain and dropped one tuple).
func (w *Worker) Panics() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.panics
}

// Deadlined reports how many tuples the per-tuple watchdog abandoned.
func (w *Worker) Deadlined() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.deadlined
}

// Reconnects reports how many times this worker has rejoined the master
// after a broken link.
func (w *Worker) Reconnects() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.reconnects
}

// MasterEpoch reports the incarnation number of the master that deployed
// the current session; it advances when a reconnect lands on a restarted
// master (re-adoption) rather than the original one.
func (w *Worker) MasterEpoch() uint64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.lastEpoch
}

// Close leaves the swarm: the connection closes (the master observes an
// abrupt leave) and all goroutines drain.
func (w *Worker) Close() error {
	w.once.Do(func() {
		close(w.stop)
		w.mu.Lock()
		conn := w.conn
		w.mu.Unlock()
		_ = conn.Close()
		<-w.done
	})
	return nil
}

// Err reports the worker's terminal failure, if any: non-nil once the
// reconnect budget is exhausted (wrapping ErrReconnectExhausted). A clean
// stop — master-initiated Stop, Close, or a link break with reconnection
// disabled — leaves it nil.
func (w *Worker) Err() error {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.termErr
}

// Wait blocks until the worker has fully shut down: the master stopped
// it, the link broke with reconnection disabled, or the reconnect budget
// ran out. It returns the terminal failure from Err, so callers learn the
// difference between a clean stop and a worker that gave up rejoining.
func (w *Worker) Wait() error {
	<-w.done
	return w.Err()
}
