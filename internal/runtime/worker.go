package runtime

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
)

// WorkerConfig configures StartWorker.
type WorkerConfig struct {
	// DeviceID uniquely names this worker in the swarm.
	DeviceID string
	// MasterAddr is the master's control address (from discovery or
	// out-of-band).
	MasterAddr string
	// App must be the same application the master coordinates (the
	// paper's workflow installs the app on every device).
	App *apps.App
	// Transport defaults to TCP.
	Transport transport.Transport
	// QueueCap bounds the input queue in tuples (default 48); a full
	// queue stalls the connection read, which is the TCP backpressure
	// the master's routing observes.
	QueueCap int
	// SpeedFactor artificially slows processing by the given factor
	// (>1), emulating a weaker device on homogeneous test hosts.
	SpeedFactor float64
	// Logger defaults to slog.Default.
	Logger *slog.Logger
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Transport == nil {
		c.Transport = transport.TCP{}
	}
	if c.QueueCap == 0 {
		c.QueueCap = 48
	}
	if c.SpeedFactor < 1 {
		c.SpeedFactor = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Worker executes the operator pipeline assigned by the master on locally
// received tuples and returns results.
type Worker struct {
	cfg   WorkerConfig
	conn  net.Conn
	chain []graph.Processor

	queue chan *tuple.Tuple

	writeMu sync.Mutex

	processed int64
	statsMu   sync.Mutex

	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
	done  chan struct{}
}

// StartWorker joins the swarm: it dials the master, completes the
// hello/deploy/start handshake and begins processing.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.App == nil {
		return nil, errors.New("runtime: nil app")
	}
	if cfg.DeviceID == "" {
		return nil, errors.New("runtime: empty device id")
	}
	conn, err := cfg.Transport.Dial(cfg.MasterAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: join master: %w", err)
	}
	hello, err := wire.EncodeJSON(wire.Hello{
		DeviceID:    cfg.DeviceID,
		App:         cfg.App.Name(),
		SpeedFactor: cfg.SpeedFactor,
	})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := wire.WriteFrame(conn, wire.FrameHello, hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: hello: %w", err)
	}

	// Deploy: activate the assigned function units.
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameDeploy {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected deploy, got %v: %v", typ, err)
	}
	var deploy wire.Deploy
	if err := wire.DecodeJSON(payload, &deploy); err != nil {
		_ = conn.Close()
		return nil, err
	}
	chain, err := buildChain(cfg.App, deploy.Units)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	typ, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameStart {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected start, got %v: %v", typ, err)
	}

	w := &Worker{
		cfg:   cfg,
		conn:  conn,
		chain: chain,
		queue: make(chan *tuple.Tuple, cfg.QueueCap),
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	w.wg.Add(3)
	go w.readLoop()
	go w.processLoop()
	go w.statsLoop(time.Duration(deploy.ReportEveryMillis) * time.Millisecond)
	go func() {
		w.wg.Wait()
		close(w.done)
	}()
	cfg.Logger.Info("swing worker: joined", "device", cfg.DeviceID, "master", cfg.MasterAddr)
	return w, nil
}

// buildChain instantiates the worker's processors in pipeline order.
func buildChain(app *apps.App, units []string) ([]graph.Processor, error) {
	if len(units) == 0 {
		return nil, errors.New("runtime: empty deployment")
	}
	chain := make([]graph.Processor, 0, len(units))
	for _, id := range units {
		u, err := app.Graph.Unit(id)
		if err != nil {
			return nil, fmt.Errorf("runtime: deploy: %w", err)
		}
		if u.NewProcessor == nil {
			return nil, fmt.Errorf("runtime: unit %q has no processor factory", id)
		}
		chain = append(chain, u.NewProcessor())
	}
	return chain, nil
}

func (w *Worker) readLoop() {
	defer w.wg.Done()
	defer close(w.queue)
	for {
		typ, payload, err := wire.ReadFrame(w.conn)
		if err != nil {
			return
		}
		switch typ {
		case wire.FrameTuple:
			t, err := tuple.Unmarshal(payload)
			if err != nil {
				w.cfg.Logger.Warn("swing worker: bad tuple", "err", err)
				continue
			}
			select {
			case w.queue <- t:
			case <-w.stop:
				return
			}
		case wire.FrameStop:
			return
		default:
			// Control frames after start are ignored.
		}
	}
}

// collectEmitter gathers a processor's outputs.
type collectEmitter struct {
	out []*tuple.Tuple
}

var _ graph.Emitter = (*collectEmitter)(nil)

// Emit implements graph.Emitter.
func (c *collectEmitter) Emit(t *tuple.Tuple) error {
	c.out = append(c.out, t)
	return nil
}

func (w *Worker) processLoop() {
	defer w.wg.Done()
	for t := range w.queue {
		w.processOne(t)
	}
}

// processOne runs the tuple through the local operator chain (the
// vertical pipeline slice) and returns the result with ACK metadata.
func (w *Worker) processOne(t *tuple.Tuple) {
	begin := time.Now()
	cur := []*tuple.Tuple{t}
	for _, p := range w.chain {
		var em collectEmitter
		for _, in := range cur {
			if err := p.ProcessData(&em, in); err != nil {
				w.cfg.Logger.Warn("swing worker: process", "err", err)
				return
			}
		}
		cur = em.out
		if len(cur) == 0 {
			return // stage filtered the tuple out
		}
	}
	proc := time.Since(begin)
	if w.cfg.SpeedFactor > 1 {
		// Emulate a slower device: stretch processing time.
		time.Sleep(time.Duration(float64(proc) * (w.cfg.SpeedFactor - 1)))
		proc = time.Duration(float64(proc) * w.cfg.SpeedFactor)
	}
	w.statsMu.Lock()
	w.processed++
	w.statsMu.Unlock()

	for _, out := range cur {
		tb, err := tuple.Marshal(out)
		if err != nil {
			w.cfg.Logger.Warn("swing worker: marshal result", "err", err)
			continue
		}
		payload, err := wire.EncodeResult(wire.ResultMeta{
			EmitNanos: t.EmitNanos,
			ProcNanos: int64(proc),
		}, tb)
		if err != nil {
			continue
		}
		w.writeMu.Lock()
		err = wire.WriteFrame(w.conn, wire.FrameResult, payload)
		w.writeMu.Unlock()
		if err != nil {
			return
		}
	}
}

func (w *Worker) statsLoop(period time.Duration) {
	defer w.wg.Done()
	if period <= 0 {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.statsMu.Lock()
			st := wire.Stats{
				DeviceID:  w.cfg.DeviceID,
				Processed: w.processed,
				QueueLen:  len(w.queue),
				UptimeMS:  time.Since(w.start).Milliseconds(),
			}
			w.statsMu.Unlock()
			b, err := wire.EncodeJSON(st)
			if err != nil {
				continue
			}
			w.writeMu.Lock()
			err = wire.WriteFrame(w.conn, wire.FrameStats, b)
			w.writeMu.Unlock()
			if err != nil {
				return
			}
		case <-w.stop:
			return
		}
	}
}

// Processed reports how many tuples this worker has completed.
func (w *Worker) Processed() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.processed
}

// Close leaves the swarm: the connection closes (the master observes an
// abrupt leave) and all goroutines drain.
func (w *Worker) Close() error {
	w.once.Do(func() {
		close(w.stop)
		_ = w.conn.Close()
		<-w.done
	})
	return nil
}

// Wait blocks until the worker has fully shut down (connection closed by
// either side).
func (w *Worker) Wait() { <-w.done }
