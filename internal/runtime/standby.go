package runtime

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/obs"
	"github.com/swingframework/swing/internal/wire"
)

// The standby side of hot-standby replication. A Standby dials the
// primary's replication listener, mirrors its durable state — the
// checkpoint image byte-for-byte, then every journal record batch the
// primary flushes, appended to mirror segment files under the same
// generation — and arms a takeover timer on the primary's ping cadence.
// When the primary has been silent for TakeoverAfter, the standby
// promotes: it runs StartMaster over its mirror, which drives the exact
// recovery path a restarted master runs (checkpoint + journal replay,
// epoch bump to primaryEpoch+1, warm ledger and estimates, un-acked
// backlog queued for retransmission). Workers' ordinary reconnect path
// then re-adopts onto the new incarnation, and the bumped epoch fences
// out any zombie primary still limping along on the old one.
//
// The mirror is applied with the same framing the primary wrote, so
// promotion needs no special-case code: recoverState cannot tell a
// replicated mirror from a local crash's leftovers. Each mirrored
// segment file begins with a meta record the standby writes itself —
// the primary's rotation writes segment headers straight to disk,
// bypassing the flush tap, so they are deliberately absent from the
// stream and reconstructed here from the checkpoint's (epoch,
// generation).

// ErrStandbyClosed reports an operation on a standby after Close.
var ErrStandbyClosed = errors.New("runtime: standby closed")

// StandbyConfig configures StartStandby.
type StandbyConfig struct {
	// ID names this standby on the primary's replication plane
	// (default "standby").
	ID string
	// PrimaryAddr is the primary master's ReplicateAddr.
	PrimaryAddr string
	// TakeoverAfter is how long the primary may stay silent — no ping,
	// checkpoint or record frame — before the standby promotes itself
	// (default 2 s). Must be comfortably above the primary's
	// ReplicatePingEvery.
	TakeoverAfter time.Duration
	// RedialBackoff paces reconnection attempts to a lost primary while
	// the takeover timer runs (default 100 ms).
	RedialBackoff time.Duration
	// Master configures the master this standby becomes on promotion.
	// JournalPath is required — it is also where the mirror lives, so it
	// must not collide with the primary's own files. Transport doubles as
	// the replication dialer.
	Master MasterConfig
	// Logger defaults to the master config's logger.
	Logger *slog.Logger
}

// Standby tails a primary and promotes itself when the primary dies.
type Standby struct {
	cfg StandbyConfig

	// Mirror state, owned by the run goroutine.
	segFiles   map[uint32]*os.File
	epoch      uint64
	gen        uint64
	haveCkpt   bool
	applied    atomic.Uint64 // highest applied flush-batch watermark
	primarySeq atomic.Uint64 // primary's flush watermark from the last ping
	lastHeard  atomic.Int64  // unix nanos of the last frame from the primary

	mu     sync.Mutex
	conn   net.Conn // current replication link, for Close to sever
	master *Master  // set at promotion
	err    error

	promoted  chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// StartStandby connects a hot standby to a primary. It returns
// immediately; replication and the takeover timer run in the
// background. Promotion is signaled on Promoted().
func StartStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.PrimaryAddr == "" {
		return nil, errors.New("runtime: standby needs PrimaryAddr")
	}
	if cfg.Master.JournalPath == "" {
		return nil, errors.New("runtime: standby needs Master.JournalPath (the mirror lives there)")
	}
	cfg.Master = cfg.Master.withDefaults()
	if cfg.ID == "" {
		cfg.ID = "standby"
	}
	if cfg.TakeoverAfter == 0 {
		cfg.TakeoverAfter = 2 * time.Second
	}
	if cfg.RedialBackoff == 0 {
		cfg.RedialBackoff = 100 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = cfg.Master.Logger
	}
	s := &Standby{
		cfg:      cfg,
		segFiles: make(map[uint32]*os.File),
		promoted: make(chan struct{}),
		stop:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// Promoted is closed once the standby has taken over (or failed trying:
// check Err). Master() returns the promoted master afterwards.
func (s *Standby) Promoted() <-chan struct{} { return s.promoted }

// Master returns the promoted master, nil before promotion or if
// promotion failed.
func (s *Standby) Master() *Master {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master
}

// Err reports a failed promotion, nil otherwise.
func (s *Standby) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Applied returns the highest flush-batch watermark the standby has
// applied to its mirror in the current replication session.
func (s *Standby) Applied() uint64 { return s.applied.Load() }

// Close stops replication and releases the mirror files. It does NOT
// close a promoted master — ownership of that passed to the caller via
// Master().
func (s *Standby) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.mu.Lock()
		if s.conn != nil {
			_ = s.conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

// run is the standby's life: dial, tail, and — once the primary has
// been silent past the takeover window — promote.
func (s *Standby) run() {
	defer s.wg.Done()
	defer s.closeSegFiles()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.shouldPromote() {
			s.promote()
			return
		}
		conn, err := s.cfg.Master.Transport.Dial(s.cfg.PrimaryAddr)
		if err != nil {
			if !s.sleep(s.cfg.RedialBackoff) {
				return
			}
			continue
		}
		s.serve(conn)
	}
}

// shouldPromote reports whether the primary has been silent past the
// takeover window. A standby that never heard from a primary at all
// keeps dialing forever: it has no mirror to promote from, and
// promoting cold would restart the epoch sequence and break fencing.
func (s *Standby) shouldPromote() bool {
	last := s.lastHeard.Load()
	return s.haveCkpt && last != 0 &&
		time.Since(time.Unix(0, last)) > s.cfg.TakeoverAfter
}

// sleep waits d or until Close; it reports false when closing.
func (s *Standby) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

// serve runs one replication session: hello, then the apply loop. Every
// read is bounded by TakeoverAfter, so a zombie primary that keeps the
// TCP link open but stops sending still trips the takeover timer.
func (s *Standby) serve(conn net.Conn) {
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
		_ = conn.Close()
	}()

	hello, err := wire.EncodeJSON(wire.RepHello{StandbyID: s.cfg.ID, App: s.cfg.Master.App.Name()})
	if err != nil {
		return
	}
	if err := wire.WriteFrame(conn, wire.FrameRepHello, hello); err != nil {
		return
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.TakeoverAfter))
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		s.lastHeard.Store(time.Now().UnixNano())
		switch typ {
		case wire.FrameRepCheckpoint:
			ck, err := wire.DecodeRepCheckpoint(payload)
			if err != nil {
				s.cfg.Logger.Warn("swing standby: bad checkpoint frame", "err", err)
				return
			}
			if err := s.resetMirror(ck); err != nil {
				s.cfg.Logger.Warn("swing standby: reset mirror", "err", err)
				return
			}
			s.cfg.Logger.Info("swing standby: checkpoint applied",
				"epoch", ck.Epoch, "generation", ck.Generation, "bytes", len(ck.Data))
		case wire.FrameRepRecords:
			rr, err := wire.DecodeRepRecords(payload)
			if err != nil {
				s.cfg.Logger.Warn("swing standby: bad records frame", "err", err)
				return
			}
			if !s.haveCkpt {
				// Records before the base image would replay against the
				// wrong generation; the primary never sends them, so this
				// is a protocol breach worth a resync.
				s.cfg.Logger.Warn("swing standby: records before checkpoint, resyncing")
				return
			}
			if err := s.applyRecords(rr); err != nil {
				s.cfg.Logger.Warn("swing standby: apply records", "err", err)
				return
			}
			// Ack every applied batch immediately, not just on pings: the
			// primary's sink holds results until the ack record is
			// mirrored, so ack latency is sink latency.
			ack := wire.AppendRepSeq(make([]byte, 0, 8), s.applied.Load())
			if err := wire.WriteFrame(conn, wire.FrameRepAck, ack); err != nil {
				return
			}
		case wire.FrameRepPing:
			if seq, err := wire.DecodeRepSeq(payload); err == nil {
				s.primarySeq.Store(seq)
			}
			ack := wire.AppendRepSeq(make([]byte, 0, 8), s.applied.Load())
			if err := wire.WriteFrame(conn, wire.FrameRepAck, ack); err != nil {
				return
			}
		}
	}
}

// resetMirror replaces the whole mirror with a fresh checkpoint image:
// stale segment files from the previous sync are deleted, the
// checkpoint body is installed byte-for-byte, and subsequent record
// batches append against the new generation.
func (s *Standby) resetMirror(ck wire.RepCheckpoint) error {
	s.closeSegFiles()
	for _, p := range listJournalSegments(s.cfg.Master.JournalPath) {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("runtime: clear mirror segment: %w", err)
		}
	}
	if err := saveCheckpointBytes(s.cfg.Master.CheckpointPath, ck.Data); err != nil {
		return err
	}
	s.epoch = ck.Epoch
	s.gen = ck.Generation
	s.haveCkpt = true
	// The watermark restarts with the stream: a resync (or a new primary
	// incarnation) numbers its flushes from the checkpoint base again.
	s.applied.Store(0)
	return nil
}

// applyRecords appends one flushed batch to its mirror segment file,
// creating the file — with the meta record recoverState expects at the
// head of every generation — on first touch.
func (s *Standby) applyRecords(rr wire.RepRecords) error {
	f, ok := s.segFiles[rr.Seg]
	if !ok {
		var err error
		f, err = os.OpenFile(segmentPath(s.cfg.Master.JournalPath, int(rr.Seg)),
			os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("runtime: open mirror segment: %w", err)
		}
		if _, err := f.Write(encodeJournalRecord(recMeta, metaPayload(s.epoch, s.gen))); err != nil {
			_ = f.Close()
			return fmt.Errorf("runtime: write mirror meta: %w", err)
		}
		s.segFiles[rr.Seg] = f
	}
	if _, err := f.Write(rr.Data); err != nil {
		return fmt.Errorf("runtime: append mirror segment: %w", err)
	}
	if rr.Seq > s.applied.Load() {
		s.applied.Store(rr.Seq)
	}
	return nil
}

// closeSegFiles releases the mirror segment file handles.
func (s *Standby) closeSegFiles() {
	for _, f := range s.segFiles {
		_ = f.Close()
	}
	s.segFiles = make(map[uint32]*os.File)
}

// promote turns the mirror into a live master: StartMaster runs the
// ordinary crash-recovery path over the mirrored checkpoint and journal
// — bumping the epoch past the dead primary's, warming the ledger and
// estimates, queueing the un-acked backlog — and starts listening for
// workers. The epoch bump is the fence: a zombie primary's old epoch is
// refused by workers that have re-adopted, and stale workers dialing
// the zombie are refused by it in turn once they carry the new epoch.
func (s *Standby) promote() {
	s.closeSegFiles()
	s.cfg.Logger.Info("swing standby: primary silent, promoting",
		"standby", s.cfg.ID, "takeover_after", s.cfg.TakeoverAfter,
		"applied_seq", s.applied.Load())
	m, err := StartMaster(s.cfg.Master)
	s.mu.Lock()
	if err != nil {
		s.err = fmt.Errorf("runtime: standby promotion: %w", err)
	} else {
		s.master = m
	}
	s.mu.Unlock()
	if err == nil {
		m.events.Record(obs.EventPromoted, s.cfg.ID,
			fmt.Sprintf("standby promoted to epoch %d", m.Epoch()), 0)
		s.cfg.Logger.Info("swing standby: promoted",
			"standby", s.cfg.ID, "epoch", m.Epoch(), "addr", m.Addr())
	} else {
		s.cfg.Logger.Error("swing standby: promotion failed", "err", err)
	}
	close(s.promoted)
}
