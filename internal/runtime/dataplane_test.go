package runtime

import (
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
)

// TestCoalescedMasterWrites proves the master's per-connection writer
// batches queued frames into shared Write calls: a burst submitted
// faster than the link drains must reach the worker in noticeably fewer
// writes than frames. The fault transport (no faults configured) wraps
// the master's listener purely for its frame/write counters.
func TestCoalescedMasterWrites(t *testing.T) {
	mem := transport.NewMem()
	mf := transport.WithFaults(mem, transport.FaultConfig{})
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "master",
		Transport:  mf,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	src := apps.NewFrameSource(600, 7)
	const n = 120
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, func() bool {
		st := m.Stats()
		return st.Acked+st.Shed == n
	}, "all acked")

	frames, calls := mf.FramesWritten(), mf.WriteCalls()
	// Deploy + Start + n tuple frames, before any Stop.
	if frames < n+2 {
		t.Fatalf("FramesWritten = %d, want >= %d", frames, n+2)
	}
	if calls >= frames {
		t.Fatalf("WriteCalls = %d >= FramesWritten = %d: no coalescing", calls, frames)
	}
	if saved := frames - calls; saved < n/4 {
		t.Fatalf("only %d writes saved over %d frames: coalescing too weak", saved, frames)
	}
	t.Logf("master frames=%d writes=%d (%.1f frames/write)",
		frames, calls, float64(frames)/float64(calls))
}

// TestAckBatchingReducesUpstreamFrames: with a linger window, a worker
// must pack many results per FrameResultBatch, so the upstream frame
// count stays far below the result count. Counters ride the worker's
// fault-wrapped (but fault-free) transport.
func TestAckBatchingReducesUpstreamFrames(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "master",
		Transport:  mem,
		AckLinger:  5 * time.Millisecond,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	wf := transport.WithFaults(mem, transport.FaultConfig{})
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  wf,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	src := apps.NewFrameSource(600, 7)
	const n = 120
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, func() bool { return m.Stats().Arrived == n }, "all arrive")

	// Worker frames: hello + a stats report or two + result batches. If
	// every result rode its own frame this would exceed n; batching must
	// keep it far under.
	frames := wf.FramesWritten()
	if frames >= n {
		t.Fatalf("worker wrote %d frames for %d results: no ack batching", frames, n)
	}
	if frames > n/2+10 {
		t.Fatalf("worker wrote %d frames for %d results: batching too weak", frames, n)
	}
	t.Logf("worker frames=%d for %d results", frames, n)
}

// runLingerLatencySession submits widely spaced lone tuples (no
// successor ever completes within the linger window) and returns the
// mean end-to-end latency — the worst case for linger-induced delay.
func runLingerLatencySession(t *testing.T, linger time.Duration) time.Duration {
	t.Helper()
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "master",
		Transport:  mem,
		AckLinger:  linger,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	src := apps.NewFrameSource(600, 7)
	const n = 12
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		// Same pacing for every session, comfortably past the widest
		// linger window under test: each result flushes alone.
		time.Sleep(150 * time.Millisecond)
	}
	waitFor(t, 10*time.Second, func() bool { return len(col.snapshot()) == n }, "all results")
	var total time.Duration
	for _, r := range col.snapshot() {
		total += r.Latency
	}
	return total / n
}

// TestAckLingerLatencyBound pins the ack-batching latency contract: a
// linger window d may inflate a result's end-to-end latency by at most
// ~d (plus scheduling noise), and must actually engage — a lone result
// waits out the window before its batch flushes.
func TestAckLingerLatencyBound(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second paced sessions in -short mode")
	}
	const d = 60 * time.Millisecond
	plain := runLingerLatencySession(t, 0)
	lingered := runLingerLatencySession(t, d)
	t.Logf("mean latency: linger=0 %v, linger=%v %v", plain, d, lingered)
	diff := lingered - plain
	if diff > d+40*time.Millisecond {
		t.Fatalf("linger %v inflated latency by %v, bound is ~%v", d, diff, d)
	}
	if diff < d/4 {
		t.Fatalf("linger %v inflated latency by only %v: window never engaged", d, diff)
	}
}

// runLingerPolicySession runs a 1.2 s LRS stream against one fast and
// one 40x-slower worker under the given linger window and reports each
// worker's processed count.
func runLingerPolicySession(t *testing.T, linger time.Duration) (fast, slow int64) {
	t.Helper()
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "master",
		Transport:  mem,
		AckLinger:  linger,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	wFast := startTestWorker(t, mem, m, "fast", 1)
	wSlow := startTestWorker(t, mem, m, "slow", 40)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "join")

	src := apps.NewFrameSource(600, 5)
	deadline := time.After(1200 * time.Millisecond)
	ticker := time.NewTicker(3 * time.Millisecond)
	defer ticker.Stop()
stream:
	for {
		select {
		case <-ticker.C:
			done := make(chan error, 1)
			go func() { done <- m.Submit(src.Next()) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
			case <-deadline:
				break stream
			}
		case <-deadline:
			break stream
		}
	}
	time.Sleep(300 * time.Millisecond)
	return wFast.Processed(), wSlow.Processed()
}

// TestLRSSelectionUnchangedByLinger: ack batching delays when feedback
// arrives, but must not change what it says — LRS under heterogeneous
// worker profiles shifts load to the fast worker just as decisively
// with a linger window as without one.
func TestLRSSelectionUnchangedByLinger(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live sessions in -short mode")
	}
	plainFast, plainSlow := runLingerPolicySession(t, 0)
	lingerFast, lingerSlow := runLingerPolicySession(t, 10*time.Millisecond)
	t.Logf("linger=0: fast=%d slow=%d; linger=10ms: fast=%d slow=%d",
		plainFast, plainSlow, lingerFast, lingerSlow)
	if plainFast < 3*plainSlow {
		t.Fatalf("unbatched LRS split fast=%d slow=%d, want heavy skew", plainFast, plainSlow)
	}
	if lingerFast < 3*lingerSlow {
		t.Fatalf("batched LRS split fast=%d slow=%d, want heavy skew", lingerFast, lingerSlow)
	}
}

// TestPoolPreservesOrder: a multi-goroutine processor pool may finish
// tuples in any order, but the worker must still emit results in tuple
// arrival order — under a floor-sized reorder buffer, a burst through a
// parallel worker plays back completely, in order, with zero skips.
func TestPoolPreservesOrder(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:           app,
		Policy:        routing.LRS,
		ListenAddr:    "master",
		Transport:     mem,
		Parallelism:   4,
		ReorderBuffer: time.Millisecond, // collapses to the rcap floor
		OnResult:      col.add,
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	src := apps.NewFrameSource(600, 7)
	const n = 100
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, func() bool { return m.Stats().Played == n }, "all played")
	st := m.Stats()
	if st.Skipped != 0 {
		t.Fatalf("skipped %d frames: pool broke result order", st.Skipped)
	}
	plays := col.snapshot()
	for i := 1; i < len(plays); i++ {
		if plays[i].Tuple.SeqNo <= plays[i-1].Tuple.SeqNo {
			t.Fatalf("playback out of order at %d: %d after %d",
				i, plays[i].Tuple.SeqNo, plays[i-1].Tuple.SeqNo)
		}
	}
}
