package runtime

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/obs"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/wire"
)

// The primary side of hot-standby replication: a listener beside the
// master's worker port accepts standby masters and streams the
// write-ahead journal to them live.
//
// Attach protocol. The standby opens with a FrameRepHello; the primary
// answers by cutting a fresh checkpoint — the same lockAll → quiesce →
// snapshot → save → rotate cycle the periodic checkpointer runs — and
// registers the subscriber inside that locked window, with the
// checkpoint image as its first queued frame. Rotation empties every
// journal segment, so the subscriber needs no historical bytes: it sees
// the checkpoint base plus exactly the record batches flushed after it,
// nothing missing and nothing doubled. Records are forwarded at flush
// time (the journal tap), not append time, because records still
// buffered at a rotation flush into the *next* generation — tapping the
// flush preserves the same generation boundary on the standby's mirror.
//
// Flow control is Redis-style resync-on-overflow: each subscriber has a
// bounded frame queue, and a standby too slow to drain it is dropped
// rather than allowed to backpressure the primary's group-commit path;
// it redials and re-attaches through a fresh checkpoint.
//
// Acknowledgment runs on a tap-count watermark, not journal sequence
// numbers: every flushed batch is stamped with a monotone flush index
// (tapSeq), and the standby echoes the highest index it has applied.
// Journal sequences cannot serve here — they are drawn before the
// segment lock, and segments flush independently, so a later-flushing
// segment's batch can carry a sequence watermark that covers records
// another segment has not streamed yet. Tap indices are assigned at
// flush time under r.mu, so index order equals queue order and
// "acked index ≥ N" really means every batch up to N is in the mirror.
// That exactness is what lets waitFlushed give sink delivery a
// semi-synchronous guarantee: a result is only released to the sink
// once every attached standby has mirrored the ack record, closing the
// lost-ack duplicate window a promoted standby would otherwise have.

// repQueueCap bounds a subscriber's pending frame queue. At the default
// ping cadence and flush sizes this is tens of megabytes of headroom —
// a standby that falls further behind is cut loose to resync.
const repQueueCap = 1024

// repMsg is one queued replication frame.
type repMsg struct {
	typ     wire.FrameType
	payload []byte
}

// repWriteTimeout bounds one frame write to a standby. A standby that
// stops reading stalls the write loop; the deadline converts that into
// a detach, which in turn releases any waitFlushed callers — so a hung
// standby can delay sink delivery by at most about this long.
const repWriteTimeout = time.Second

// repSub is one attached standby subscriber.
type repSub struct {
	id       string
	conn     net.Conn
	queue    chan repMsg
	ackedSeq atomic.Uint64 // highest tap index the standby has applied
	lastAck  atomic.Int64  // unix nanos of the last ack frame
	closed   sync.Once
	gone     chan struct{}
}

// replicator is the primary's replication plane: listener, subscriber
// registry, journal tap fan-out, and the liveness ping loop.
type replicator struct {
	m  *Master
	ln net.Listener

	mu     sync.Mutex
	cond   *sync.Cond // signaled when any ackedSeq advances or a sub leaves
	tapSeq uint64     // flush-batch watermark, incremented per tap under mu
	subs   map[*repSub]struct{}
	sealed bool // close() ran: no new subscribers

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// startReplicator opens the replication listener and installs the
// journal flush tap. Called from StartMaster after recovery, before any
// worker or standby traffic.
func startReplicator(m *Master) (*replicator, error) {
	ln, err := m.cfg.Transport.Listen(m.cfg.ReplicateAddr)
	if err != nil {
		return nil, err
	}
	r := &replicator{
		m:    m,
		ln:   ln,
		subs: make(map[*repSub]struct{}),
		stop: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	m.journal.lockAll()
	m.journal.setTapLocked(r.fanout)
	m.journal.unlockAll()
	r.wg.Add(2)
	go r.acceptLoop()
	go r.pingLoop()
	return r, nil
}

// fanout is the journal tap: it runs with the flushing segment's lock
// held, so it only copies the batch into one shared frame payload and
// enqueues it per subscriber — never blocking, never taking other
// journal locks. The tap index is assigned under r.mu after the batch
// bytes are fixed, so index order equals queue order: a standby that
// has acked index N holds every batch up to N in its mirror.
func (r *replicator) fanout(seg int, b []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tapSeq++
	if len(r.subs) == 0 {
		return
	}
	payload := wire.AppendRepRecords(make([]byte, 0, 12+len(b)), wire.RepRecords{
		Seg:  uint32(seg),
		Seq:  r.tapSeq,
		Data: b,
	})
	for sub := range r.subs {
		r.enqueueLocked(sub, repMsg{typ: wire.FrameRepRecords, payload: payload})
	}
}

// waitFlushed blocks until every attached standby has applied all
// batches flushed so far — the semi-synchronous half of replication.
// The sink path calls it after journaling an ack, so a result frame is
// only released once the ack record that would dedup its replay is in
// every mirror; a promoted standby then can never redeliver it. With no
// standby attached it returns immediately, and a standby that stalls is
// detached by the write deadline or queue overflow, which also releases
// waiters — the primary degrades to async rather than wedging its sink.
func (r *replicator) waitFlushed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	target := r.tapSeq
	for !r.sealed {
		pending := false
		for sub := range r.subs {
			if sub.ackedSeq.Load() < target {
				pending = true
				break
			}
		}
		if !pending {
			return
		}
		r.cond.Wait()
	}
}

// enqueueLocked queues one frame, dropping the subscriber on overflow.
// The caller holds r.mu.
func (r *replicator) enqueueLocked(sub *repSub, msg repMsg) {
	select {
	case sub.queue <- msg:
	default:
		// The standby is not draining: cut it loose (it will redial and
		// resync from a fresh checkpoint) instead of stalling the queue.
		r.m.cfg.Logger.Warn("swing master: replication queue overflow, dropping standby",
			"standby", sub.id)
		sub.closed.Do(func() {
			close(sub.gone)
			_ = sub.conn.Close()
		})
	}
}

// acceptLoop admits standbys for the life of the primary.
func (r *replicator) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) || errors.Is(err, transport.ErrClosed) {
				return
			}
			continue
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handleStandby(conn)
		}()
	}
}

// handleStandby runs one standby's session: hello, attach-by-checkpoint,
// then writer/reader until the link breaks or the primary stops.
func (r *replicator) handleStandby(conn net.Conn) {
	if r.m.cfg.HelloTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(r.m.cfg.HelloTimeout))
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameRepHello {
		_ = conn.Close()
		return
	}
	var hello wire.RepHello
	if err := wire.DecodeJSON(payload, &hello); err != nil || hello.StandbyID == "" {
		_ = conn.Close()
		return
	}
	if hello.App != r.m.cfg.App.Name() {
		r.m.cfg.Logger.Warn("swing master: replication app mismatch",
			"standby", hello.StandbyID, "app", hello.App)
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})

	sub := &repSub{
		id:    hello.StandbyID,
		conn:  conn,
		queue: make(chan repMsg, repQueueCap),
		gone:  make(chan struct{}),
	}
	sub.lastAck.Store(time.Now().UnixNano())

	// Attach inside the checkpoint's locked window: the checkpoint image
	// is the subscriber's first frame, and every record byte flushed
	// after the rotation lands behind it in the queue.
	err = r.m.checkpointAnd(func(epoch, gen uint64, body []byte) {
		ck := wire.AppendRepCheckpoint(make([]byte, 0, 16+len(body)), wire.RepCheckpoint{
			Epoch:      epoch,
			Generation: gen,
			Data:       body,
		})
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.sealed {
			return
		}
		// The checkpoint covers exactly the batches tapped so far: the
		// journal is locked across this hook, so no flush is concurrent,
		// and everything already tapped was flushed to the old generation
		// the checkpoint folded in. Starting the watermark here means
		// waitFlushed never waits on bytes the standby holds as part of
		// its base image.
		sub.ackedSeq.Store(r.tapSeq)
		sub.queue <- repMsg{typ: wire.FrameRepCheckpoint, payload: ck} // cap >> 1: never blocks here
		r.subs[sub] = struct{}{}
	})
	r.mu.Lock()
	attached := !r.sealed && err == nil
	if _, ok := r.subs[sub]; !ok {
		attached = false
	}
	r.mu.Unlock()
	if !attached {
		if err != nil {
			r.m.cfg.Logger.Warn("swing master: standby attach checkpoint failed",
				"standby", hello.StandbyID, "err", err)
		}
		_ = conn.Close()
		return
	}
	r.m.events.Record(obs.EventStandbyAttach, hello.StandbyID, "replication stream attached", 0)
	r.m.cfg.Logger.Info("swing master: standby attached",
		"standby", hello.StandbyID, "addr", conn.RemoteAddr())

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.writeLoop(sub)
	}()
	r.readLoop(sub)
	r.detach(sub, "link closed")
}

// writeLoop drains one subscriber's frame queue onto its connection.
// Each write carries a deadline: a standby that stops reading becomes a
// detach within repWriteTimeout instead of wedging waitFlushed callers.
func (r *replicator) writeLoop(sub *repSub) {
	for {
		select {
		case msg := <-sub.queue:
			_ = sub.conn.SetWriteDeadline(time.Now().Add(repWriteTimeout))
			if err := wire.WriteFrame(sub.conn, msg.typ, msg.payload); err != nil {
				sub.closed.Do(func() {
					close(sub.gone)
					_ = sub.conn.Close()
				})
				return
			}
		case <-sub.gone:
			return
		case <-r.stop:
			return
		}
	}
}

// readLoop consumes the standby's ack frames until the link breaks.
// Watermarks only ever advance: a ping echo racing a fresher batch ack
// must not regress the sub below what waitFlushed already observed.
func (r *replicator) readLoop(sub *repSub) {
	for {
		typ, payload, err := wire.ReadFrame(sub.conn)
		if err != nil {
			return
		}
		if typ == wire.FrameRepAck {
			if seq, err := wire.DecodeRepSeq(payload); err == nil {
				sub.lastAck.Store(time.Now().UnixNano())
				r.mu.Lock()
				if seq > sub.ackedSeq.Load() {
					sub.ackedSeq.Store(seq)
					r.cond.Broadcast()
				}
				r.mu.Unlock()
			}
		}
	}
}

// detach removes a subscriber and closes its connection.
func (r *replicator) detach(sub *repSub, why string) {
	r.mu.Lock()
	_, present := r.subs[sub]
	delete(r.subs, sub)
	r.cond.Broadcast()
	r.mu.Unlock()
	sub.closed.Do(func() {
		close(sub.gone)
		_ = sub.conn.Close()
	})
	if present {
		r.m.events.Record(obs.EventStandbyDetach, sub.id, why, 0)
		r.m.cfg.Logger.Info("swing master: standby detached", "standby", sub.id, "why", why)
	}
}

// pingLoop probes every subscriber with the current flush watermark;
// the standby echoes its applied watermark (lag) and uses ping silence
// to arm its takeover timer.
func (r *replicator) pingLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.m.cfg.ReplicatePingEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.mu.Lock()
			payload := wire.AppendRepSeq(make([]byte, 0, 8), r.tapSeq)
			for sub := range r.subs {
				r.enqueueLocked(sub, repMsg{typ: wire.FrameRepPing, payload: payload})
			}
			r.mu.Unlock()
		case <-r.stop:
			return
		}
	}
}

// status samples the replication plane for the observability snapshot.
// Seq and lag are in flushed-batch units (the tap watermark): lag 0
// means every batch the primary has flushed is in the standby's mirror.
func (r *replicator) status(now time.Time) *obs.Replication {
	rep := &obs.Replication{Role: "solo"}
	r.mu.Lock()
	rep.Seq = r.tapSeq
	for sub := range r.subs {
		acked := sub.ackedSeq.Load()
		lag := uint64(0)
		if rep.Seq > acked {
			lag = rep.Seq - acked
		}
		rep.Standbys = append(rep.Standbys, obs.Standby{
			ID:            sub.id,
			AckedSeq:      acked,
			Lag:           lag,
			SilenceMillis: (now.UnixNano() - sub.lastAck.Load()) / int64(time.Millisecond),
		})
	}
	r.mu.Unlock()
	if len(rep.Standbys) > 0 {
		rep.Role = "primary"
	}
	return rep
}

// close tears the replication plane down: listener, subscribers, loops.
func (r *replicator) close() {
	r.once.Do(func() {
		close(r.stop)
		_ = r.ln.Close()
		r.mu.Lock()
		r.sealed = true
		subs := make([]*repSub, 0, len(r.subs))
		for sub := range r.subs {
			subs = append(subs, sub)
		}
		r.subs = make(map[*repSub]struct{})
		r.cond.Broadcast()
		r.mu.Unlock()
		for _, sub := range subs {
			sub.closed.Do(func() {
				close(sub.gone)
				_ = sub.conn.Close()
			})
		}
		r.wg.Wait()
	})
}
