package runtime

import (
	"errors"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/testutil"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// slowApp builds a single-operator app whose processor sleeps perTuple
// before emitting, so queue-wait time dominates end-to-end latency and
// saturation is reached at a predictable rate.
func slowApp(t *testing.T, perTuple time.Duration) *apps.App {
	t.Helper()
	g, err := graph.NewBuilder("slow").
		Source("source").
		Operator("op",
			graph.WithWork(0.01),
			graph.WithProcessor(func() graph.Processor {
				return graph.ProcessorFunc(func(em graph.Emitter, tp *tuple.Tuple) error {
					time.Sleep(perTuple)
					out := tuple.New(tp.ID, tp.SeqNo)
					out.EmitNanos = tp.EmitNanos
					out.Set(apps.FieldResult, tuple.String("ok"))
					return em.Emit(out)
				})
			})).
		Sink("sink").
		Chain("source", "op", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &apps.App{Graph: g, FrameBytes: 64, TargetFPS: 24, TotalWork: 0.01}
}

// plainTuple builds a minimal tuple for the synthetic apps above.
func plainTuple(seq uint64) *tuple.Tuple {
	tp := tuple.New(seq, seq)
	tp.Set("x", tuple.Int64(1))
	return tp
}

// TestHungWorkerEvicted is the liveness layer's core scenario: a worker
// whose link never breaks but whose frames crawl (delay-injected writes)
// must be detected by silence alone and evicted within the DeadAfter
// window, with its in-flight backlog re-routed to the survivor and the
// ledger invariant intact. Without heartbeats this worker would linger
// forever: the TCP connection stays healthy the whole time.
func TestHungWorkerEvicted(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:          app,
		ListenAddr:   "master",
		Transport:    mem,
		OnResult:     col.add,
		Heartbeat:    20 * time.Millisecond,
		SuspectAfter: 60 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "healthy worker joins")
	// Every frame the lagged worker writes (hello, pongs, results) stalls
	// 250 ms: longer than DeadAfter, but the link itself never breaks.
	startFaultyWorker(t, mem, m, "lagged", transport.FaultConfig{Seed: 9, Delay: 250 * time.Millisecond})
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "lagged worker joins")
	joined := time.Now()

	src := apps.NewFrameSource(600, 7)
	const n = 40
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}

	// The failure detector must evict on silence, not on link state.
	waitFor(t, 5*time.Second, func() bool {
		return len(m.Workers()) == 1 && m.Stats().Evicted == 1
	}, "hung worker evicted")
	if detect := time.Since(joined); detect > 2*time.Second {
		t.Fatalf("eviction took %v, want within a few DeadAfter periods (150ms)", detect)
	}

	// The lagged worker's backlog re-routes to the survivor and the
	// ledger balances: nothing is silently lost.
	waitFor(t, 10*time.Second, func() bool {
		st := m.Stats()
		return st.Acked+st.Shed == n && st.InFlight == 0
	}, "ledger balances after eviction")
	st := m.Stats()
	if st.Submitted != n {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, n)
	}
	if st.Retransmitted == 0 {
		t.Fatalf("no retransmissions despite eviction with backlog: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" || st.Workers[0].Health != "healthy" {
		t.Fatalf("surviving worker view = %+v, want healthy w1", st.Workers)
	}
	// No duplicate playback despite retransmissions.
	seen := make(map[uint64]bool)
	for _, r := range col.snapshot() {
		if seen[r.Tuple.SeqNo] {
			t.Fatalf("seq %d delivered twice", r.Tuple.SeqNo)
		}
		seen[r.Tuple.SeqNo] = true
	}
}

// TestBreakerOpensAndRecovers drives one worker's breaker around its full
// cycle: consecutive processor-error drops open it (Submit then refuses
// with ErrNoWorkers instead of feeding a failing worker), the cooldown
// admits a single half-open probe, and a successful probe closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	mem := transport.NewMem()
	app := poisonApp(t)
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:              app,
		ListenAddr:       "master",
		Transport:        mem,
		OnResult:         col.add,
		BreakerThreshold: 3,
		BreakerCooldown:  500 * time.Millisecond,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	seq := uint64(0)
	submit := func(field string) error {
		tp := plainTuple(seq)
		seq++
		if field != "" {
			tp.Set(field, tuple.Bool(true))
		}
		return m.Submit(tp)
	}
	for i := 0; i < 3; i++ {
		if err := submit("poison"); err != nil {
			t.Fatalf("Submit poison %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return len(st.Workers) == 1 && st.Workers[0].Breaker == "open"
	}, "breaker opens after threshold consecutive drops")
	st := m.Stats()
	if st.Workers[0].BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.Workers[0].BreakerOpens)
	}

	// While open, the sole worker is inadmissible: Submit refuses rather
	// than feeding a failing worker.
	if err := submit(""); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Submit with open breaker = %v, want ErrNoWorkers", err)
	}

	// After the cooldown the next Submit is the half-open probe; its
	// success re-admits the worker.
	time.Sleep(600 * time.Millisecond)
	if err := submit(""); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return len(st.Workers) == 1 && st.Workers[0].Breaker == "closed" && st.Arrived >= 1
	}, "probe success closes the breaker")
	if err := submit(""); err != nil {
		t.Fatalf("Submit after breaker closed: %v", err)
	}
}

// TestWorkerQueueSaturation fills a small worker queue through a slow
// processor and checks the two promised reactions to TCP backpressure:
// the router's upstream latency estimate inflates with queue-wait time,
// and the ack-timeout sweep opens the worker's breaker — while every
// submitted tuple is still eventually acked, none lost. The worker's
// self-reported queue length must also surface in MasterStats.
func TestWorkerQueueSaturation(t *testing.T) {
	const perTuple = 300 * time.Millisecond
	mem := transport.NewMem()
	app := slowApp(t, perTuple)
	m, err := StartMaster(MasterConfig{
		App:               app,
		ListenAddr:        "master",
		Transport:         mem,
		OutboxCap:         4,
		BreakerThreshold:  3,
		BreakerAckTimeout: 150 * time.Millisecond,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		QueueCap:   4,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	// Blocking submits (admission control off) until the breaker refuses:
	// backpressure, not loss, is the designed failure mode.
	var submitted atomic.Int64
	doneSub := make(chan struct{})
	go func() {
		defer close(doneSub)
		for i := uint64(0); i < 30; i++ {
			if err := m.Submit(plainTuple(i)); err != nil {
				return // breaker opened: expected exit
			}
			submitted.Add(1)
		}
	}()

	// The worker's self-reported queue length reaches MasterStats.
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return len(st.Workers) == 1 && st.Workers[0].QueueLen > 0
	}, "worker QueueLen surfaces in MasterStats")
	// Stuck acks trip the breaker.
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return len(st.Workers) == 1 && st.Workers[0].Breaker == "open"
	}, "ack timeouts open the breaker")
	<-doneSub

	// Everything already accepted drains: acked, never lost.
	waitFor(t, 15*time.Second, func() bool {
		st := m.Stats()
		return st.Acked == submitted.Load() && st.InFlight == 0
	}, "all accepted tuples acked after saturation")
	if got := w.Processed(); got != submitted.Load() {
		t.Fatalf("worker processed %d of %d submitted", got, submitted.Load())
	}
	// Queue wait inflated the latency estimate well past pure processing
	// time.
	for _, info := range m.Snapshot() {
		if info.ID != "w1" {
			continue
		}
		if !info.Estimate.HasSample() {
			t.Fatal("no latency samples folded")
		}
		if info.Estimate.Latency < perTuple*3/2 {
			t.Fatalf("estimate %v did not reflect queue wait (processing alone is %v)",
				info.Estimate.Latency, perTuple)
		}
	}
}

// TestOverloadShedding turns on admission control and bursts far past the
// swarm's service rate: Submit must return immediately (no TCP-backpressure
// blocking), shed oldest-first into the distinct ShedOverload counter, and
// leave the ledger invariant intact once the swarm drains.
func TestOverloadShedding(t *testing.T) {
	mem := transport.NewMem()
	app := slowApp(t, 50*time.Millisecond)
	m, err := StartMaster(MasterConfig{
		App:               app,
		ListenAddr:        "master",
		Transport:         mem,
		OutboxCap:         8,
		InflightHighWater: 8,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		QueueCap:   4,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	// 60 tuples at full speed against a 20-tuple/s worker. Blocking
	// backpressure would pin this loop for ~3 s; admission control must
	// return from every call immediately.
	start := time.Now()
	for i := uint64(0); i < 60; i++ {
		if err := m.Submit(plainTuple(i)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("burst took %v: Submit blocked despite admission control", elapsed)
	}
	if st := m.Stats(); st.ShedOverload == 0 {
		t.Fatalf("no overload shedding under 3x overload: %+v", st)
	}

	// Quiescence: every submitted tuple is accounted — acked or shed,
	// nothing lingering, nothing lost.
	waitFor(t, 15*time.Second, func() bool {
		st := m.Stats()
		return st.Acked+st.Shed == st.Submitted && st.InFlight == 0
	}, "ledger balances after overload burst")
	st := m.Stats()
	if st.Submitted != 60 {
		t.Fatalf("Submitted = %d, want 60 (every accepted tuple counted)", st.Submitted)
	}
	if st.Shed < st.ShedOverload {
		t.Fatalf("ShedOverload %d exceeds Shed %d: not a subset", st.ShedOverload, st.Shed)
	}
}

// TestChaosSoak is the seeded long-running chaos test behind
// scripts/soak.sh: three workers with drop, delay and break+reconnect
// fault profiles under the full liveness layer, asserting the ledger
// invariant at quiescence and zero goroutine leaks after shutdown. Opt in
// with SWING_SOAK=1; SWING_SOAK_SECONDS overrides the default duration.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("SWING_SOAK") == "" {
		t.Skip("set SWING_SOAK=1 (see scripts/soak.sh) to run the chaos soak")
	}
	dur := 5 * time.Second
	if s := os.Getenv("SWING_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad SWING_SOAK_SECONDS %q", s)
		}
		dur = time.Duration(secs) * time.Second
	}
	baseline := testutil.LeakBaseline()

	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:               app,
		ListenAddr:        "master",
		Transport:         mem,
		Heartbeat:         50 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
		DeadAfter:         400 * time.Millisecond,
		BreakerThreshold:  5,
		BreakerAckTimeout: 500 * time.Millisecond,
		InflightHighWater: 256,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// dropper loses every 9th frame it writes (acks and pongs included),
	// laggy crawls, flaky's link breaks every ~300 frames and it rejoins
	// through backoff.
	dropper := startFaultyWorker(t, mem, m, "dropper", transport.FaultConfig{Seed: 21, DropEveryNth: 9})
	laggy := startFaultyWorker(t, mem, m, "laggy", transport.FaultConfig{Seed: 22, Delay: 2 * time.Millisecond, Jitter: 10 * time.Millisecond})
	flaky, err := StartWorker(WorkerConfig{
		DeviceID:         "flaky",
		MasterAddr:       m.Addr(),
		App:              app,
		Transport:        transport.WithFaults(mem, transport.FaultConfig{Seed: 23, BreakAfterFrames: 300}),
		Reconnect:        true,
		ReconnectBackoff: 5 * time.Millisecond,
		Seed:             23,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 3 }, "all workers join")

	src := apps.NewFrameSource(600, 42)
	deadline := time.Now().Add(dur)
	var sent, refused int64
	for time.Now().Before(deadline) {
		if err := m.Submit(src.Next()); err != nil {
			refused++ // swarm momentarily empty or all breakers open
		} else {
			sent++
		}
		time.Sleep(time.Millisecond)
	}
	t.Logf("soak: %d submitted, %d refused over %v", sent, refused, dur)
	if sent == 0 {
		t.Fatal("soak submitted nothing")
	}

	// Quiescence: stop submitting, let in-flight work settle, then demand
	// the exact invariant. Dropped ack frames legitimately leave tuples
	// in flight forever — the invariant charges them to InFlight, never
	// loses them.
	var last MasterStats
	waitFor(t, 30*time.Second, func() bool {
		st := m.Stats()
		stable := st.Acked == last.Acked && st.Shed == last.Shed && st.InFlight == last.InFlight
		last = st
		return stable && st.Acked+st.Shed+int64(st.InFlight) == st.Submitted
	}, "ledger invariant at quiescence")

	_ = dropper.Close()
	_ = laggy.Close()
	_ = flaky.Close()
	_ = m.Close()

	// Every goroutine the run spawned must drain.
	testutil.CheckLeaked(t, baseline, 15*time.Second)
}
