package runtime

import (
	"testing"
	"time"
)

// fake clock for driving the breaker deterministically.
func at(ms int64) time.Time { return time.Unix(0, ms*int64(time.Millisecond)) }

func TestBreakerDisabled(t *testing.T) {
	b := &breaker{} // threshold 0: disabled
	for i := 0; i < 100; i++ {
		b.onFailure(at(int64(i)))
	}
	if !b.allow(at(1000)) {
		t.Fatal("disabled breaker blocked traffic")
	}
	if b.state != breakerClosed || b.opens != 0 {
		t.Fatalf("disabled breaker mutated: %+v", b)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 100 * time.Millisecond}
	b.onFailure(at(1))
	b.onFailure(at(2))
	if !b.allow(at(3)) {
		t.Fatal("breaker opened below threshold")
	}
	b.onFailure(at(3))
	if b.state != breakerOpen || b.opens != 1 {
		t.Fatalf("state=%v opens=%d after 3 consecutive failures", b.state, b.opens)
	}
	if b.allow(at(50)) {
		t.Fatal("open breaker admitted traffic inside cooldown")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 100 * time.Millisecond}
	b.onFailure(at(1))
	b.onFailure(at(2))
	b.onSuccess() // consecutive run broken
	b.onFailure(at(3))
	b.onFailure(at(4))
	if b.state != breakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.onFailure(at(5))
	if b.state != breakerOpen {
		t.Fatal("third consecutive failure did not open")
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: 100 * time.Millisecond}
	b.onFailure(at(0))
	if b.state != breakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	// Cooldown expiry: the next allow moves to half-open and admits
	// exactly one probe.
	if !b.allow(at(100)) {
		t.Fatal("cooldown expiry did not admit the probe")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.state)
	}
	b.noteDispatch()
	if b.allow(at(101)) {
		t.Fatal("half-open admitted a second tuple while the probe is in flight")
	}
	b.onSuccess()
	if b.state != breakerClosed {
		t.Fatalf("probe success left state %v", b.state)
	}
	if !b.allow(at(102)) {
		t.Fatal("closed breaker blocked traffic")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: 100 * time.Millisecond}
	b.onFailure(at(0))
	if !b.allow(at(150)) {
		t.Fatal("probe not admitted")
	}
	b.noteDispatch()
	b.onFailure(at(160))
	if b.state != breakerOpen || b.opens != 2 {
		t.Fatalf("probe failure: state=%v opens=%d, want re-open", b.state, b.opens)
	}
	// The new cooldown runs from the re-open, not the original open.
	if b.allow(at(200)) {
		t.Fatal("re-opened breaker admitted traffic 40ms into a 100ms cooldown")
	}
	if !b.allow(at(260)) {
		t.Fatal("re-opened breaker never recovered to half-open")
	}
}

func TestBreakerSuccessWhileOpenIgnored(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: 100 * time.Millisecond}
	b.onFailure(at(0))
	// A straggler ack — from a tuple dispatched before the open — must
	// not close the breaker or shortcut the cooldown.
	b.onSuccess()
	if b.state != breakerOpen {
		t.Fatalf("straggler success closed an open breaker: %v", b.state)
	}
	if b.allow(at(50)) {
		t.Fatal("open breaker admitted traffic inside cooldown after straggler success")
	}
}

func TestBreakerFailureWhileOpenKeepsCooldown(t *testing.T) {
	b := &breaker{threshold: 1, cooldown: 100 * time.Millisecond}
	b.onFailure(at(0))
	// Stragglers (e.g. more ack timeouts from tuples already in flight)
	// must not extend the cooldown or re-count opens.
	b.onFailure(at(50))
	b.onFailure(at(90))
	if b.opens != 1 {
		t.Fatalf("opens=%d, straggler failures re-counted", b.opens)
	}
	if !b.allow(at(100)) {
		t.Fatal("cooldown was extended by straggler failures")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[breakerState]string{
		breakerClosed:   "closed",
		breakerOpen:     "open",
		breakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestHealthTransitions(t *testing.T) {
	const (
		suspect = 100 * time.Millisecond
		dead    = 300 * time.Millisecond
	)
	cases := []struct {
		prev    healthState
		silence time.Duration
		want    healthState
	}{
		{healthHealthy, 0, healthHealthy},
		{healthHealthy, 99 * time.Millisecond, healthHealthy},
		{healthHealthy, 100 * time.Millisecond, healthSuspect},
		{healthSuspect, 50 * time.Millisecond, healthHealthy}, // recovery
		{healthSuspect, 299 * time.Millisecond, healthSuspect},
		{healthSuspect, 300 * time.Millisecond, healthDead},
		{healthHealthy, time.Second, healthDead}, // straight to dead
		{healthDead, 0, healthDead},              // dead is terminal
	}
	for i, c := range cases {
		if got := nextHealth(c.prev, c.silence, suspect, dead); got != c.want {
			t.Errorf("case %d: nextHealth(%v, %v) = %v, want %v", i, c.prev, c.silence, got, c.want)
		}
	}
}

func TestHealthStateStrings(t *testing.T) {
	for s, want := range map[healthState]string{
		healthHealthy: "healthy",
		healthSuspect: "suspect",
		healthDead:    "dead",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
