//go:build race

package runtime

// raceEnabled reports whether the race detector is compiled in; alloc
// ceilings are skipped under race because its runtime instrumentation
// adds allocations the production build never pays.
const raceEnabled = true
