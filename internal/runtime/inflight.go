package runtime

import (
	"sort"
	"sync"
	"time"

	"github.com/swingframework/swing/internal/tuple"
)

// inflightEntry is one routed-but-unacknowledged tuple: everything the
// master needs to retransmit it if the worker holding it dies.
type inflightEntry struct {
	t        *tuple.Tuple
	worker   string
	attempt  uint8
	deadline time.Time
	// sentAt orders entries for oldest-first overload shedding and ages
	// them for the circuit breaker's ack-timeout sweep.
	sentAt time.Time
	// timedOut marks an entry already counted as a breaker failure, so a
	// long-stuck tuple charges its worker once, not once per sweep.
	timedOut bool
}

// inflightTable tracks every tuple between routing and acknowledgment,
// keyed by tuple ID (unique within a run, per the tuple contract). When a
// worker connection breaks, takeWorker surrenders its un-acked tuples for
// retransmission; a result frame acks and releases its entry.
type inflightTable struct {
	mu sync.Mutex
	m  map[uint64]*inflightEntry
}

func newInflightTable() *inflightTable {
	return &inflightTable{m: make(map[uint64]*inflightEntry)}
}

// track records a tuple as in flight toward a worker, replacing any stale
// entry under the same ID.
func (t *inflightTable) track(id uint64, e *inflightEntry) {
	t.mu.Lock()
	t.m[id] = e
	t.mu.Unlock()
}

// ack releases the entry for an acknowledged tuple, reporting whether one
// was being tracked.
func (t *inflightTable) ack(id uint64) bool {
	t.mu.Lock()
	_, ok := t.m[id]
	if ok {
		delete(t.m, id)
	}
	t.mu.Unlock()
	return ok
}

// takeIf removes and returns the entry only if it is still assigned to the
// given worker. A false return means another path (typically the dead
// worker's retransmitter) already owns the tuple.
func (t *inflightTable) takeIf(id uint64, worker string) (*inflightEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[id]
	if !ok || e.worker != worker {
		return nil, false
	}
	delete(t.m, id)
	return e, true
}

// takeWorker removes and returns every entry assigned to the worker — the
// un-acked backlog of a broken connection.
func (t *inflightTable) takeWorker(worker string) []*inflightEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*inflightEntry
	for id, e := range t.m {
		if e.worker == worker {
			out = append(out, e)
			delete(t.m, id)
		}
	}
	return out
}

// takeOldest removes and returns up to n entries, oldest first by sentAt.
// This is the overload-shedding order: a saturated swarm keeps the
// freshest frames (the ones a live viewer still cares about) and abandons
// the stalest.
func (t *inflightTable) takeOldest(n int) []*inflightEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || len(t.m) == 0 {
		return nil
	}
	all := make([]*inflightEntry, 0, len(t.m))
	for _, e := range t.m {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].sentAt.Before(all[j].sentAt) })
	if n > len(all) {
		n = len(all)
	}
	for _, e := range all[:n] {
		delete(t.m, e.t.ID)
	}
	return all[:n]
}

// sweepTimeouts counts, per worker, entries older than timeout that have
// not been counted before, marking them so each stuck tuple charges its
// worker's breaker exactly once. Entries stay tracked — a late ack or the
// worker's death still resolves them through the normal paths.
func (t *inflightTable) sweepTimeouts(now time.Time, timeout time.Duration) map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var counts map[string]int
	for _, e := range t.m {
		if e.timedOut || now.Sub(e.sentAt) < timeout {
			continue
		}
		e.timedOut = true
		if counts == nil {
			counts = make(map[string]int)
		}
		counts[e.worker]++
	}
	return counts
}

// snapshotEntries returns a copy of the entry list (checkpointing). The
// entries themselves are shared; callers only read immutable fields
// (tuple bytes, attempt).
func (t *inflightTable) snapshotEntries() []*inflightEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*inflightEntry, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, e)
	}
	return out
}

// size reports the number of tracked tuples.
func (t *inflightTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
