package runtime

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/tuple"
)

// inflightEntry is one routed-but-unacknowledged tuple: everything the
// master needs to retransmit it if the worker holding it dies.
type inflightEntry struct {
	t        *tuple.Tuple
	worker   string
	attempt  uint8
	deadline time.Time
	// sentAt orders entries for oldest-first overload shedding and ages
	// them for the circuit breaker's ack-timeout sweep.
	sentAt time.Time
	// timedOut marks an entry already counted as a breaker failure, so a
	// long-stuck tuple charges its worker once, not once per sweep.
	timedOut bool
	// failedOn lists the distinct workers whose drop notices burned this
	// tuple (poison-quarantine mode). It travels with the tuple across
	// re-dispatches; at PoisonAttempts distinct workers the tuple is
	// quarantined as ShedPoison. Mutated only under the shard lock.
	failedOn []string
	// hedged marks an entry already speculatively duplicated to a second
	// worker, so a straggler is hedged once, not once per sweep.
	hedged bool
}

// maxShards caps hot-state fan-out: each shard is a map plus a mutex, and
// each journal segment an open file, so unbounded -shards values would
// only waste descriptors past the point of contention relief.
const maxShards = 128

// ceilPow2 rounds n up to the next power of two (minimum 1), clamped to
// maxShards — shard selection is a mask, so the count must be a power of
// two.
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mix64 is the splitmix64 finalizer: tuple IDs are often sequential
// (frame counters), so shard selection hashes them first to spread
// neighboring IDs across shards instead of filling one at a time.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ledgerCounters is one shard's slice of the fault-tolerance ledger. The
// global view is the sum across shards; every mutation happens in the
// same critical section as the map change it accounts for, so the summed
// invariant Acked + Shed + InFlight + Orphaned == Submitted holds at
// every consistently sampled instant (ledgerSnapshot), not just at
// quiescence.
type ledgerCounters struct {
	submitted     int64
	acked         int64
	retransmitted int64
	shed          int64
	shedOverload  int64
	// shedPoison is the quarantine subset of shed: tuples abandoned after
	// failing on PoisonAttempts distinct workers (or with no unburned
	// worker left to try).
	shedPoison int64
	// hedged counts entries speculatively duplicated to a second worker.
	// It annotates the in-flight column rather than extending the balance:
	// a hedge duplicates a dispatch, not a tuple, so
	// acked + shed + inflight + orphaned == submitted is untouched.
	hedged int64
	// orphaned counts entries taken off the table by takeWorker and not
	// yet re-dispatched (trackSubmit) or abandoned (shedOrphan/
	// shedUntracked): a dead worker's backlog in the retransmitter's
	// hands. Unlike the cumulative columns it is instantaneous, and it
	// closes the sampled invariant exactly:
	//
	//	acked + shed + inflight + orphaned == submitted
	//
	// on every ledgerSnapshot, including mid-retransmit — what used to be
	// the one documented transient.
	orphaned int64
}

func (l *ledgerCounters) add(o ledgerCounters) {
	l.submitted += o.submitted
	l.acked += o.acked
	l.retransmitted += o.retransmitted
	l.shed += o.shed
	l.shedOverload += o.shedOverload
	l.shedPoison += o.shedPoison
	l.hedged += o.hedged
	l.orphaned += o.orphaned
}

// inflightShard is one lock domain of the table: a slice of the entry map
// fused with its slice of the ledger. Padding keeps neighboring shards
// off one cache line under multi-core Submit.
type inflightShard struct {
	mu  sync.Mutex
	m   map[uint64]*inflightEntry
	led ledgerCounters
	_   [40]byte
}

// inflightTable tracks every tuple between routing and acknowledgment,
// keyed by tuple ID (unique within a run, per the tuple contract), split
// across power-of-two shards so concurrent Submit and ACK paths contend
// only when they hash to the same shard. When a worker connection breaks,
// takeWorker surrenders its un-acked tuples for retransmission; a result
// frame acks and releases its entry.
//
// The ledger lives inside the shards: counter mutations share the
// critical section of the map mutation they describe. A dead worker's
// off-table backlog is carried by the orphaned column (takeWorker), so
// the sampled invariant acked + shed + inflight + orphaned == submitted
// is exact even mid-retransmit; the one remaining seam is the recovered
// backlog before its checkpointed counters are seeded, which happens
// before the listener opens.
type inflightTable struct {
	shards []inflightShard
	mask   uint64
	// approx is the racy live-entry total for admission-control checks;
	// exact counts come from ledgerSnapshot.
	approx atomic.Int64
}

func newInflightTable(shards int) *inflightTable {
	n := ceilPow2(shards)
	t := &inflightTable{shards: make([]inflightShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*inflightEntry)
	}
	return t
}

func (t *inflightTable) shard(id uint64) *inflightShard {
	return &t.shards[mix64(id)&t.mask]
}

// trackSubmit records a dispatch and counts it into the ledger in one
// critical section: Submitted for a first attempt, Retransmitted for a
// re-route. The entry replaces any stale entry under the same ID.
func (t *inflightTable) trackSubmit(id uint64, e *inflightEntry) {
	s := t.shard(id)
	s.mu.Lock()
	if _, had := s.m[id]; !had {
		t.approx.Add(1)
	}
	s.m[id] = e
	if e.attempt == 0 {
		s.led.submitted++
	} else {
		// A re-route consumes the orphan takeWorker (or a reclaim) handed
		// to the retransmitter.
		s.led.retransmitted++
		s.led.orphaned--
	}
	s.mu.Unlock()
}

// trackSubmitBatch records a batch of dispatches with one lock
// acquisition per touched shard instead of one per tuple. The slice is
// regrouped in place (callers pass scratch the submit path owns); each
// entry gets exactly trackSubmit's semantics — its ledger count moves in
// the same critical section as its map insert.
func (t *inflightTable) trackSubmitBatch(entries []*inflightEntry) {
	var added int64
	for lo := 0; lo < len(entries); {
		idx := mix64(entries[lo].t.ID) & t.mask
		hi := lo
		for j := lo; j < len(entries); j++ {
			if mix64(entries[j].t.ID)&t.mask == idx {
				entries[hi], entries[j] = entries[j], entries[hi]
				hi++
			}
		}
		s := &t.shards[idx]
		s.mu.Lock()
		for _, e := range entries[lo:hi] {
			id := e.t.ID
			if _, had := s.m[id]; !had {
				added++
			}
			s.m[id] = e
			if e.attempt == 0 {
				s.led.submitted++
			} else {
				s.led.retransmitted++
				s.led.orphaned--
			}
		}
		s.mu.Unlock()
		lo = hi
	}
	if added != 0 {
		t.approx.Add(added)
	}
}

// track inserts an entry without touching the ledger — the recovered
// backlog, whose counters were restored wholesale from the checkpoint.
func (t *inflightTable) track(id uint64, e *inflightEntry) {
	s := t.shard(id)
	s.mu.Lock()
	if _, had := s.m[id]; !had {
		t.approx.Add(1)
	}
	s.m[id] = e
	s.mu.Unlock()
}

// ack releases the entry for an acknowledged tuple and counts it, in one
// step, reporting whether one was being tracked.
func (t *inflightTable) ack(id uint64) bool {
	s := t.shard(id)
	s.mu.Lock()
	_, ok := s.m[id]
	if ok {
		delete(s.m, id)
		s.led.acked++
		t.approx.Add(-1)
	}
	s.mu.Unlock()
	return ok
}

// reclaim removes and returns the entry only if it is still assigned to
// the given worker, un-counting its dispatch — the Submit path calls it
// when an enqueue fails and the tuple is about to be re-routed (and
// re-counted) or abandoned. A false return means another path (typically
// the dead worker's retransmitter) already owns the tuple, whose original
// dispatch stays counted.
func (t *inflightTable) reclaim(id uint64, worker string) (*inflightEntry, bool) {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok || e.worker != worker {
		return nil, false
	}
	delete(s.m, id)
	if e.attempt == 0 {
		s.led.submitted--
	} else {
		// The re-route is undone: the entry is an orphan again, back in
		// the caller's hands until re-tracked or abandoned.
		s.led.retransmitted--
		s.led.orphaned++
	}
	t.approx.Add(-1)
	return e, true
}

// shedUntracked accounts a tuple that was reclaimed from the table and
// then abandoned because nowhere could take it: the tuple entered the
// system (Submitted, first attempts only) and left it (Shed, overload
// subset) in one balanced step.
func (t *inflightTable) shedUntracked(id uint64, attempt uint8) {
	s := t.shard(id)
	s.mu.Lock()
	if attempt == 0 {
		s.led.submitted++
	} else {
		// A reclaimed retransmission was an orphan in hand; shedding
		// resolves it.
		s.led.orphaned--
	}
	s.led.shed++
	s.led.shedOverload++
	s.mu.Unlock()
}

// shedOrphan counts the shedding of an entry already surrendered by
// takeWorker (retry deadline or attempt budget exhausted during
// retransmission).
func (t *inflightTable) shedOrphan(id uint64) {
	s := t.shard(id)
	s.mu.Lock()
	s.led.shed++
	s.led.orphaned--
	s.mu.Unlock()
}

// shedOrphanPoison is shedOrphan with the quarantine subset counted: the
// tuple was in the poison redispatcher's hands and nowhere unburned could
// take it.
func (t *inflightTable) shedOrphanPoison(id uint64) {
	s := t.shard(id)
	s.mu.Lock()
	s.led.shed++
	s.led.shedPoison++
	s.led.orphaned--
	s.mu.Unlock()
}

// failVerdict is failAttempt's decision for one drop notice.
type failVerdict int

const (
	// failUntracked: no entry — a straggler notice for a tuple already
	// acked, shed, or in another path's hands. Nothing to do.
	failUntracked failVerdict = iota
	// failRetry: the tuple should be re-dispatched to a worker it has not
	// burned yet; the entry moved to the orphaned column and is returned.
	failRetry
	// failQuarantined: the tuple reached PoisonAttempts distinct workers
	// and was shed as poison in the same critical section.
	failQuarantined
)

// failAttempt processes a worker's drop notice in quarantine mode: the
// worker joins the tuple's distinct-failure history, and the tuple is
// either quarantined (k distinct workers burned — shed as poison) or
// surrendered to the caller for re-dispatch, in one critical section.
func (t *inflightTable) failAttempt(id uint64, worker string, k int) (*inflightEntry, failVerdict) {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok {
		return nil, failUntracked
	}
	burned := false
	for _, w := range e.failedOn {
		if w == worker {
			burned = true
			break
		}
	}
	if !burned {
		e.failedOn = append(e.failedOn, worker)
	}
	delete(s.m, id)
	t.approx.Add(-1)
	if len(e.failedOn) >= k {
		s.led.shed++
		s.led.shedPoison++
		return e, failQuarantined
	}
	s.led.orphaned++
	return e, failRetry
}

// takeWorker removes and returns every entry assigned to the worker — the
// un-acked backlog of a broken connection. Each taken entry moves from
// the live count into the orphaned column in the same critical section,
// so a consistent sample still balances while the retransmitter re-routes
// the backlog; each entry leaves the column when it is re-tracked
// (trackSubmit) or abandoned (shedOrphan).
func (t *inflightTable) takeWorker(worker string) []*inflightEntry {
	var out []*inflightEntry
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for id, e := range s.m {
			if e.worker == worker {
				out = append(out, e)
				delete(s.m, id)
				s.led.orphaned++
				t.approx.Add(-1)
			}
		}
		s.mu.Unlock()
	}
	return out
}

// shedOldest removes and sheds up to n entries, oldest first by sentAt,
// counting each victim in the same critical section that removes it.
// This is the overload-shedding order: a saturated swarm keeps the
// freshest frames (the ones a live viewer still cares about) and
// abandons the stalest. Candidates are collected per shard, globally
// sorted, then re-checked under their shard lock — an entry acked
// between collection and shedding is simply no longer a victim.
func (t *inflightTable) shedOldest(n int) []*inflightEntry {
	if n <= 0 {
		return nil
	}
	var all []*inflightEntry
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			all = append(all, e)
		}
		s.mu.Unlock()
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].sentAt.Before(all[j].sentAt) })
	out := make([]*inflightEntry, 0, n)
	for _, e := range all {
		if len(out) == n {
			break
		}
		s := t.shard(e.t.ID)
		s.mu.Lock()
		if cur, ok := s.m[e.t.ID]; ok && cur == e {
			delete(s.m, e.t.ID)
			s.led.shed++
			s.led.shedOverload++
			t.approx.Add(-1)
			out = append(out, e)
		}
		s.mu.Unlock()
	}
	return out
}

// sweepTimeouts counts, per worker, entries older than timeout that have
// not been counted before, marking them so each stuck tuple charges its
// worker's breaker exactly once. Entries stay tracked — a late ack or the
// worker's death still resolves them through the normal paths.
func (t *inflightTable) sweepTimeouts(now time.Time, timeout time.Duration) map[string]int {
	var counts map[string]int
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			if e.timedOut || now.Sub(e.sentAt) < timeout {
				continue
			}
			e.timedOut = true
			if counts == nil {
				counts = make(map[string]int)
			}
			counts[e.worker]++
		}
		s.mu.Unlock()
	}
	return counts
}

// snapshotEntries returns a copy of the entry list (checkpointing). The
// entries themselves are shared; callers only read immutable fields
// (tuple bytes, attempt).
func (t *inflightTable) snapshotEntries() []*inflightEntry {
	var out []*inflightEntry
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			out = append(out, e)
		}
		s.mu.Unlock()
	}
	return out
}

// seedLedger installs checkpointed counters (crash recovery). They land
// wholly in shard 0 — only the cross-shard sum is meaningful.
func (t *inflightTable) seedLedger(c *checkpointState) {
	s := &t.shards[0]
	s.mu.Lock()
	s.led = ledgerCounters{
		submitted:     c.Submitted,
		acked:         c.Acked,
		retransmitted: c.Retransmitted,
		shed:          c.Shed,
		shedOverload:  c.ShedOverload,
		shedPoison:    c.ShedPoison,
		hedged:        c.Hedged,
	}
	s.mu.Unlock()
}

// ledgerSnapshot sums the per-shard counters and live-entry counts under
// all shard locks (taken in index order, so concurrent snapshots cannot
// deadlock): the consistent read behind MasterStats. No tuple lifecycle
// transition can interleave, so the returned view always balances.
func (t *inflightTable) ledgerSnapshot() (ledgerCounters, int) {
	for i := range t.shards {
		t.shards[i].mu.Lock()
	}
	var led ledgerCounters
	n := 0
	for i := range t.shards {
		led.add(t.shards[i].led)
		n += len(t.shards[i].m)
	}
	for i := len(t.shards) - 1; i >= 0; i-- {
		t.shards[i].mu.Unlock()
	}
	return led, n
}

// size reports the approximate number of tracked tuples — admission
// control's cheap read. Exact counts come from ledgerSnapshot.
func (t *inflightTable) size() int {
	return int(t.approx.Load())
}

// dedupSet is the sharded cross-epoch sink dedup set: tuple IDs the
// previous incarnation acknowledged, whose straggler results must be
// dropped rather than replayed. It shares the table's shard-by-hashed-ID
// layout so lookups on the ACK path never funnel through one lock.
type dedupSet struct {
	shards []dedupShard
	mask   uint64
}

type dedupShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	_  [48]byte
}

func newDedupSet(shards int, ids map[uint64]struct{}) *dedupSet {
	n := ceilPow2(shards)
	d := &dedupSet{shards: make([]dedupShard, n), mask: uint64(n - 1)}
	for i := range d.shards {
		d.shards[i].m = make(map[uint64]struct{})
	}
	for id := range ids {
		s := &d.shards[mix64(id)&d.mask]
		s.m[id] = struct{}{}
	}
	return d
}

// has reports whether the ID was acknowledged by a previous incarnation.
func (d *dedupSet) has(id uint64) bool {
	if d == nil {
		return false
	}
	s := &d.shards[mix64(id)&d.mask]
	s.mu.Lock()
	_, ok := s.m[id]
	s.mu.Unlock()
	return ok
}

// len reports the total number of remembered IDs (tests, logging).
func (d *dedupSet) len() int {
	if d == nil {
		return 0
	}
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
