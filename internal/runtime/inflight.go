package runtime

import (
	"sync"
	"time"

	"github.com/swingframework/swing/internal/tuple"
)

// inflightEntry is one routed-but-unacknowledged tuple: everything the
// master needs to retransmit it if the worker holding it dies.
type inflightEntry struct {
	t        *tuple.Tuple
	worker   string
	attempt  uint8
	deadline time.Time
}

// inflightTable tracks every tuple between routing and acknowledgment,
// keyed by tuple ID (unique within a run, per the tuple contract). When a
// worker connection breaks, takeWorker surrenders its un-acked tuples for
// retransmission; a result frame acks and releases its entry.
type inflightTable struct {
	mu sync.Mutex
	m  map[uint64]*inflightEntry
}

func newInflightTable() *inflightTable {
	return &inflightTable{m: make(map[uint64]*inflightEntry)}
}

// track records a tuple as in flight toward a worker, replacing any stale
// entry under the same ID.
func (t *inflightTable) track(id uint64, e *inflightEntry) {
	t.mu.Lock()
	t.m[id] = e
	t.mu.Unlock()
}

// ack releases the entry for an acknowledged tuple, reporting whether one
// was being tracked.
func (t *inflightTable) ack(id uint64) bool {
	t.mu.Lock()
	_, ok := t.m[id]
	if ok {
		delete(t.m, id)
	}
	t.mu.Unlock()
	return ok
}

// takeIf removes and returns the entry only if it is still assigned to the
// given worker. A false return means another path (typically the dead
// worker's retransmitter) already owns the tuple.
func (t *inflightTable) takeIf(id uint64, worker string) (*inflightEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[id]
	if !ok || e.worker != worker {
		return nil, false
	}
	delete(t.m, id)
	return e, true
}

// takeWorker removes and returns every entry assigned to the worker — the
// un-acked backlog of a broken connection.
func (t *inflightTable) takeWorker(worker string) []*inflightEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*inflightEntry
	for id, e := range t.m {
		if e.worker == worker {
			out = append(out, e)
			delete(t.m, id)
		}
	}
	return out
}

// size reports the number of tracked tuples.
func (t *inflightTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
