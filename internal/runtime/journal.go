package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/tuple"
)

// The master's write-ahead journal (§IV-C's coordinator made crash-safe):
// an append-only file of checksummed records tracking every tuple's life —
// submitted, retransmitted, acked, shed — so a restarted master can rebuild
// the exact ledger and the un-acked backlog of its previous incarnation.
// Checkpoints (checkpoint.go) snapshot the full state and rotate the
// journal to a fresh generation, bounding both replay time and file size.
//
// Record layout (all integers little-endian):
//
//	u32 payloadLen | u8 type | payload | u32 crc32c(type || payload)
//
// The trailing checksum makes a torn tail — a partial record from a crash
// mid-append — detectable: recovery replays records until the first short
// read or checksum mismatch, then truncates the file at the last good
// offset. Everything before the tear is trusted; the tear itself is
// discarded (its tuple stays pending and is retransmitted, never lost).
//
// Since the hot-state sharding work the journal is usually one segment of
// a journalSet (journalset.go): lifecycle records are spread across
// segments by hashed tuple ID, each segment group-commits independently,
// and a shared sequence counter stamps every record so recovery can merge
// segments back into one global order. Format v2 therefore prefixes each
// lifecycle payload with the u64 sequence; the meta record carries the
// format so replay still reads v1 files from earlier releases (whose
// in-file order is their global order).

// journalRecType distinguishes journal records.
type journalRecType uint8

const (
	// recMeta is the mandatory first record of every journal generation:
	// the writing incarnation's epoch and the checkpoint generation this
	// journal extends.
	recMeta journalRecType = iota + 1
	// recSubmit logs a fresh tuple entering the swarm: full tuple bytes.
	recSubmit
	// recResend logs a retransmission: tuple ID + new attempt counter.
	recResend
	// recAck logs a worker acknowledgment: tuple ID.
	recAck
	// recShed logs an abandoned tuple: tuple ID + overload flag.
	recShed
)

// maxJournalRecord bounds a record payload, protecting replay against a
// corrupt length prefix (tuples are bounded by wire.MaxFrameSize anyway).
const maxJournalRecord = 32 << 20

// journalCRC is the checksum table for record integrity (Castagnoli, the
// same polynomial storage systems use for torn-write detection).
var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// FsyncMode selects how aggressively the journal is flushed to stable
// storage. Process crashes (the common mobile case: the coordinating app
// is killed) lose nothing under any mode, because appends go straight to
// the file; fsync only buys durability against whole-machine crashes.
type FsyncMode int

const (
	// FsyncInterval syncs at most once per FsyncEvery (default). Bounded
	// loss window on power failure, negligible overhead.
	FsyncInterval FsyncMode = iota
	// FsyncAlways syncs after every append: zero loss window, one
	// fsync per tuple lifecycle event.
	FsyncAlways
	// FsyncNever leaves flushing to the OS.
	FsyncNever
)

// String names the mode (the -fsync flag values).
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncMode parses a -fsync flag value.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("runtime: unknown fsync mode %q (always, interval or never)", s)
	}
}

// journal is the append side of the write-ahead log, with group commit:
// concurrent appends encode their records into a shared pending buffer
// under mu, then one appender (the leader) writes and fsyncs the whole
// batch while the others wait on cond. Every append still returns only
// after its record has reached the file — and, under FsyncAlways, the
// disk — so durability semantics match the one-write-per-record design;
// the batch just amortizes the write and fsync across the appends that
// piled up behind it.
//
// Rotate (checkpoint compaction) holds mu and waits out any in-flight
// flush, so a record is never split across generations and the file
// handle never changes under the leader's feet.
type journal struct {
	// seq stamps every lifecycle record with its position in the global
	// append order. A standalone journal owns its counter; segments of a
	// journalSet share the set's counter, which is what lets recovery
	// merge concurrently written segments by (epoch, seq).
	seq *atomic.Uint64

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	path     string
	mode     FsyncMode
	every    time.Duration
	lastSync time.Time

	// Group-commit state, all guarded by mu.
	pending    []byte // encoded records awaiting the next flush
	spare      []byte // recycled batch buffer for the next swap
	appendSeq  uint64 // sequence of the most recently buffered record
	flushedSeq uint64 // sequence through which records are in the file
	flushing   bool   // a leader is writing outside the lock
	broken     error  // first flush failure; the log is unusable after
	brokenSeq  uint64 // first record sequence the failed flush covered

	// Observability depth counters (guarded by mu): records and bytes
	// appended this incarnation, cumulative across generation rotations.
	nrecords int64
	nbytes   int64

	// tap, when set (guarded by mu), observes every batch of record
	// bytes that reached the file, in file order, immediately after a
	// successful write and with mu held. Replication streams these bytes
	// to a standby verbatim. The callback must copy what it keeps (the
	// batch buffer is recycled) and must not block or re-enter the
	// journal — it may only hand the bytes off.
	tap func(b []byte)
}

// encodeJournalRecord frames one record.
func encodeJournalRecord(typ journalRecType, payload []byte) []byte {
	buf := make([]byte, 0, 4+1+len(payload)+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, byte(typ))
	buf = append(buf, payload...)
	sum := crc32.Update(0, journalCRC, buf[4:])
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// errTornRecord marks the end of the replayable prefix: a partial or
// corrupt record where a crash interrupted an append.
var errTornRecord = errors.New("runtime: torn journal record")

// readJournalRecord reads one record from r, returning errTornRecord on a
// short read, oversized length or checksum mismatch.
func readJournalRecord(r io.Reader) (journalRecType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, errTornRecord
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxJournalRecord {
		return 0, nil, errTornRecord
	}
	body := make([]byte, 1+n+4)
	body[0] = hdr[4]
	if _, err := io.ReadFull(r, body[1:]); err != nil {
		return 0, nil, errTornRecord
	}
	sum := binary.LittleEndian.Uint32(body[1+n:])
	if crc32.Update(0, journalCRC, body[:1+n]) != sum {
		return 0, nil, errTornRecord
	}
	return journalRecType(body[0]), body[1 : 1+n], nil
}

// openJournal creates (or truncates) the journal file and writes the meta
// record for this generation. The previous generation's contents must
// already have been recovered — opening discards them.
func openJournal(path string, epoch, generation uint64, mode FsyncMode, every time.Duration) (*journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runtime: open journal: %w", err)
	}
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	j := &journal{seq: new(atomic.Uint64), f: f, path: path, mode: mode, every: every, lastSync: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	if err := j.append(recMeta, metaPayload(epoch, generation)); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("runtime: sync journal: %w", err)
	}
	return j, nil
}

// journalFormatV2 marks seq-stamped lifecycle records. A 16-byte meta
// payload (epoch, generation) is implicit format v1 — files written
// before sequence stamping, replayed in file order.
const journalFormatV2 = 2

func metaPayload(epoch, generation uint64) []byte {
	b := make([]byte, 0, 24)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint64(b, generation)
	return binary.LittleEndian.AppendUint64(b, journalFormatV2)
}

func parseMetaPayload(b []byte) (epoch, generation, format uint64, err error) {
	switch len(b) {
	case 16:
		return binary.LittleEndian.Uint64(b[:8]), binary.LittleEndian.Uint64(b[8:]), 1, nil
	case 24:
		return binary.LittleEndian.Uint64(b[:8]), binary.LittleEndian.Uint64(b[8:16]),
			binary.LittleEndian.Uint64(b[16:]), nil
	default:
		return 0, 0, 0, fmt.Errorf("runtime: journal meta record has %d bytes, want 16 or 24", len(b))
	}
}

// reserveLocked begins a record in the pending buffer: length
// placeholder plus type byte. It returns the record's start offset for
// sealLocked.
func (j *journal) reserveLocked(typ journalRecType) (int, error) {
	if j.broken != nil {
		return 0, j.broken
	}
	start := len(j.pending)
	j.pending = append(j.pending, 0, 0, 0, 0, byte(typ))
	return start, nil
}

// sealLocked patches the record's length prefix and appends its
// checksum; the payload must already sit between reserve and seal.
func (j *journal) sealLocked(start int) {
	n := len(j.pending) - start - 5
	binary.LittleEndian.PutUint32(j.pending[start:start+4], uint32(n))
	sum := crc32.Update(0, journalCRC, j.pending[start+4:])
	j.pending = binary.LittleEndian.AppendUint32(j.pending, sum)
	j.nrecords++
	j.nbytes += int64(len(j.pending) - start)
}

// depth reports the segment's observability counters: records and bytes
// appended this incarnation, and the bytes currently buffered awaiting
// group commit.
func (j *journal) depth() (records, bytes, pending int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nrecords, j.nbytes, int64(len(j.pending))
}

// maxBatchRetain caps how large a recycled batch buffer may stay; a
// burst should not pin its high-water mark forever.
const maxBatchRetain = 4 << 20

// commitAndUnlock implements the group-commit protocol for a record
// just sealed into pending. Exactly one appender becomes the flush
// leader: it takes the whole pending batch, writes (and per policy
// fsyncs) it outside the lock, then wakes the appenders whose records
// rode along. Every caller returns only once its record is in the file.
func (j *journal) commitAndUnlock() error {
	j.appendSeq++
	mySeq := j.appendSeq
	for {
		// Records flushed before any failure succeeded; records in or
		// after the failing batch report the breakage.
		if j.broken != nil && mySeq >= j.brokenSeq {
			err := j.broken
			j.mu.Unlock()
			return err
		}
		if j.flushedSeq >= mySeq {
			j.mu.Unlock()
			return nil
		}
		if !j.flushing {
			j.flushing = true
			batch := j.pending
			last := j.appendSeq
			j.pending = j.spare[:0]
			j.spare = nil
			f := j.f
			doSync := j.mode == FsyncAlways
			if j.mode == FsyncInterval {
				if now := time.Now(); now.Sub(j.lastSync) >= j.every {
					j.lastSync = now
					doSync = true
				}
			}
			j.mu.Unlock()

			var err error
			if _, werr := f.Write(batch); werr != nil {
				err = fmt.Errorf("runtime: journal append: %w", werr)
			} else if doSync {
				if serr := f.Sync(); serr != nil {
					err = fmt.Errorf("runtime: journal sync: %w", serr)
				}
			}

			j.mu.Lock()
			j.flushing = false
			if err != nil && j.broken == nil {
				// A failed or partial batch write leaves a torn middle that
				// replay would truncate at; accepting later appends would
				// silently drop everything behind the tear. Fail the whole
				// batch and everything after it.
				j.broken = err
				j.brokenSeq = j.flushedSeq + 1
			}
			if err == nil && j.tap != nil && len(batch) > 0 {
				j.tap(batch)
			}
			j.flushedSeq = last
			if cap(batch) <= maxBatchRetain {
				j.spare = batch[:0]
			}
			j.cond.Broadcast()
			continue
		}
		j.cond.Wait()
	}
}

// quiesceLocked waits until no flush leader is writing outside the
// lock. The caller holds mu, so no new flush can start afterwards.
func (j *journal) quiesceLocked() {
	for j.flushing {
		j.cond.Wait()
	}
}

// flushPendingLocked writes any buffered records directly; the caller
// holds mu and must have quiesced first.
func (j *journal) flushPendingLocked() error {
	if j.broken != nil {
		return j.broken
	}
	if len(j.pending) == 0 {
		return nil
	}
	_, err := j.f.Write(j.pending)
	if err == nil && j.tap != nil {
		j.tap(j.pending)
	}
	j.pending = j.pending[:0]
	if err != nil {
		j.broken = fmt.Errorf("runtime: journal append: %w", err)
		j.brokenSeq = j.flushedSeq + 1
	}
	j.flushedSeq = j.appendSeq
	j.cond.Broadcast()
	return j.broken
}

// append writes one record and applies the fsync policy. Callers must not
// hold master locks that appendAck/appendShed callers also take (the
// journal lock is innermost).
func (j *journal) append(typ journalRecType, payload []byte) error {
	j.mu.Lock()
	start, err := j.reserveLocked(typ)
	if err != nil {
		j.mu.Unlock()
		return err
	}
	j.pending = append(j.pending, payload...)
	j.sealLocked(start)
	return j.commitAndUnlock()
}

// appendSubmit logs a first-attempt dispatch: the full tuple, so recovery
// can rebuild and retransmit it. The tuple is serialized straight into
// the pending batch buffer — no intermediate allocation. The sequence is
// drawn before the segment lock, so within one segment records may land
// slightly out of sequence order; recovery sorts by seq, not file order.
func (j *journal) appendSubmit(t *tuple.Tuple) error {
	seq := j.seq.Add(1)
	j.mu.Lock()
	start, err := j.reserveLocked(recSubmit)
	if err != nil {
		j.mu.Unlock()
		return err
	}
	p, err := tuple.AppendMarshal(binary.LittleEndian.AppendUint64(j.pending, seq), t)
	if err != nil {
		j.pending = j.pending[:start]
		j.mu.Unlock()
		return err
	}
	j.pending = p
	j.sealLocked(start)
	return j.commitAndUnlock()
}

// appendSubmitBatch logs a batch of first-attempt dispatches under one
// lock acquisition and one group-commit entry: every tuple's record is
// reserved, serialized and sealed into the same pending buffer, then a
// single commitAndUnlock rides them all out on one flush. Each record
// still gets its own sequence number, so recovery is indistinguishable
// from per-tuple appends. A tuple that fails to marshal is truncated
// back out of the buffer; the first such error is reported after the
// rest of the batch commits.
func (j *journal) appendSubmitBatch(ts []*tuple.Tuple) error {
	j.mu.Lock()
	var firstErr error
	sealed := 0
	for _, t := range ts {
		seq := j.seq.Add(1)
		start, err := j.reserveLocked(recSubmit)
		if err != nil {
			j.mu.Unlock()
			return err // broken journal: nothing more can append
		}
		p, err := tuple.AppendMarshal(binary.LittleEndian.AppendUint64(j.pending, seq), t)
		if err != nil {
			j.pending = j.pending[:start]
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		j.pending = p
		j.sealLocked(start)
		sealed++
	}
	if sealed == 0 {
		j.mu.Unlock()
		return firstErr
	}
	if err := j.commitAndUnlock(); err != nil {
		return err
	}
	return firstErr
}

// appendResend logs a retransmission's new attempt counter.
func (j *journal) appendResend(id uint64, attempt uint8) error {
	b := make([]byte, 0, 17)
	b = binary.LittleEndian.AppendUint64(b, j.seq.Add(1))
	b = binary.LittleEndian.AppendUint64(b, id)
	return j.append(recResend, append(b, attempt))
}

// appendAck logs a worker acknowledgment.
func (j *journal) appendAck(id uint64) error {
	b := make([]byte, 0, 16)
	b = binary.LittleEndian.AppendUint64(b, j.seq.Add(1))
	return j.append(recAck, binary.LittleEndian.AppendUint64(b, id))
}

// appendShed logs an abandoned tuple; overload marks admission-control
// shedding (the ShedOverload ledger subset).
func (j *journal) appendShed(id uint64, overload bool) error {
	b := make([]byte, 0, 17)
	b = binary.LittleEndian.AppendUint64(b, j.seq.Add(1))
	b = binary.LittleEndian.AppendUint64(b, id)
	if overload {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return j.append(recShed, b)
}

// rotateLocked atomically replaces the journal with a fresh generation:
// the new file is written beside the old and renamed over it, so a crash
// at any point leaves either the complete old journal or the complete new
// one. The checkpointer calls it holding j.mu across both the state
// snapshot and the rotation — after quiescing any in-flight group-commit
// flush — so no returned append lands in the old generation after the
// snapshot was taken (it would double-count on recovery). Records still
// buffered in pending belong to appends that have not returned yet —
// their effects are not in the snapshot — and flush into the new
// generation, where replay applies them on top of the checkpoint.
func (j *journal) rotateLocked(epoch, generation uint64) error {
	tmp := j.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("runtime: rotate journal: %w", err)
	}
	if _, err := nf.Write(encodeJournalRecord(recMeta, metaPayload(epoch, generation))); err != nil {
		_ = nf.Close()
		return fmt.Errorf("runtime: rotate journal: %w", err)
	}
	if err := nf.Sync(); err != nil {
		_ = nf.Close()
		return fmt.Errorf("runtime: rotate journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		_ = nf.Close()
		return fmt.Errorf("runtime: rotate journal: %w", err)
	}
	old := j.f
	j.f = nf
	_ = old.Close()
	return nil
}

// sync flushes buffered records and forces them to stable storage.
func (j *journal) sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.quiesceLocked()
	if err := j.flushPendingLocked(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		if j.broken == nil {
			j.broken = fmt.Errorf("runtime: journal sync: %w", err)
		}
		return j.broken
	}
	return nil
}

// close flushes, syncs and closes the journal file. Later appends fail.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.quiesceLocked()
	ferr := j.flushPendingLocked()
	_ = j.f.Sync()
	cerr := j.f.Close()
	if j.broken == nil {
		// Only appends after the close fail; everything buffered so far
		// was just flushed.
		j.broken = errors.New("runtime: journal closed")
		j.brokenSeq = j.appendSeq + 1
		j.cond.Broadcast()
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// segRecord is one lifecycle record read back from a segment, with the
// global order key recovery merges by. payload is the v1-shaped body
// (seq prefix already stripped for v2 files).
type segRecord struct {
	epoch   uint64
	seq     uint64
	typ     journalRecType
	payload []byte
}

// segmentReplay is the raw parse of one journal segment: its meta header
// plus every intact lifecycle record, torn tail already truncated.
type segmentReplay struct {
	path       string
	epoch      uint64
	generation uint64
	format     uint64
	recs       []segRecord
	truncated  bool
}

// replaySegment reads one segment file, collects its replayable prefix
// and truncates any torn tail in place. A missing file returns
// (nil, nil): that segment was never written.
func replaySegment(path string) (*segmentReplay, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runtime: open journal for recovery: %w", err)
	}
	defer func() { _ = f.Close() }()

	sr := &segmentReplay{path: path}
	// Count every good record's bytes so a torn tail truncates exactly at
	// the last intact boundary.
	good := int64(0)
	first := true
	fileOrder := uint64(0)
	for {
		typ, payload, err := readJournalRecord(f)
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, errTornRecord) {
			sr.truncated = true
			if err := f.Truncate(good); err != nil {
				return nil, fmt.Errorf("runtime: truncate torn journal tail: %w", err)
			}
			break
		}
		if err != nil {
			return nil, err
		}
		if first {
			if typ != recMeta {
				// No meta record: not a journal we wrote. Treat as torn from
				// the start rather than guessing at its contents.
				sr.truncated = true
				if err := f.Truncate(0); err != nil {
					return nil, fmt.Errorf("runtime: truncate foreign journal: %w", err)
				}
				return sr, nil
			}
			if sr.epoch, sr.generation, sr.format, err = parseMetaPayload(payload); err != nil {
				return nil, err
			}
			first = false
			good += int64(4 + 1 + len(payload) + 4)
			continue
		}
		good += int64(4 + 1 + len(payload) + 4)
		if typ == recMeta {
			// A second meta record never occurs in a well-formed segment;
			// ignore defensively.
			continue
		}
		fileOrder++
		seq := fileOrder
		if sr.format >= journalFormatV2 {
			if len(payload) < 8 {
				continue // malformed lifecycle record; skip defensively
			}
			seq = binary.LittleEndian.Uint64(payload[:8])
			payload = payload[8:]
		}
		sr.recs = append(sr.recs, segRecord{epoch: sr.epoch, seq: seq, typ: typ, payload: payload})
	}
	return sr, nil
}

// journalReplay is the merged lifecycle view of one journal generation —
// possibly assembled from several concurrently written segments.
type journalReplay struct {
	epoch      uint64
	generation uint64
	// submits maps tuple ID → marshaled tuple bytes for attempt-0 records.
	submits map[uint64][]byte
	// attempts maps tuple ID → highest attempt seen in resend records.
	attempts map[uint64]uint8
	// acked and shed are the IDs released after their submit; a true shed
	// value marks admission-control (overload) shedding.
	acked   map[uint64]struct{}
	shed    map[uint64]bool
	resends int64
	// truncated reports whether a torn tail was detected and cut.
	truncated bool
}

// mergeSegments folds segment replays into one journalReplay, applying
// lifecycle records in global (epoch, seq) order — the order the running
// master emitted them, regardless of which segment each landed in or how
// group commit interleaved writes within a segment.
func mergeSegments(segs []*segmentReplay) *journalReplay {
	rep := &journalReplay{
		submits:  make(map[uint64][]byte),
		attempts: make(map[uint64]uint8),
		acked:    make(map[uint64]struct{}),
		shed:     make(map[uint64]bool),
	}
	var all []segRecord
	for _, sr := range segs {
		if sr == nil {
			continue
		}
		if sr.epoch > rep.epoch {
			rep.epoch = sr.epoch
		}
		if sr.generation > rep.generation {
			rep.generation = sr.generation
		}
		rep.truncated = rep.truncated || sr.truncated
		all = append(all, sr.recs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].epoch != all[j].epoch {
			return all[i].epoch < all[j].epoch
		}
		return all[i].seq < all[j].seq
	})
	for _, r := range all {
		switch r.typ {
		case recSubmit:
			t, err := tuple.Unmarshal(r.payload)
			if err == nil {
				rep.submits[t.ID] = r.payload
			}
		case recResend:
			if len(r.payload) == 9 {
				id := binary.LittleEndian.Uint64(r.payload[:8])
				if r.payload[8] > rep.attempts[id] {
					rep.attempts[id] = r.payload[8]
				}
				rep.resends++
			}
		case recAck:
			if len(r.payload) == 8 {
				rep.acked[binary.LittleEndian.Uint64(r.payload)] = struct{}{}
			}
		case recShed:
			if len(r.payload) == 9 {
				rep.shed[binary.LittleEndian.Uint64(r.payload[:8])] = r.payload[8] != 0
			}
		}
	}
	return rep
}

// replayJournal reads the single journal file at path, replays its
// replayable prefix and truncates any torn tail in place. A missing file
// returns an empty replay (nil error): a fresh start. Multi-segment
// recovery goes through replaySegment + mergeSegments (recoverState),
// which gates each segment's generation individually.
func replayJournal(path string) (*journalReplay, error) {
	sr, err := replaySegment(path)
	if err != nil {
		return nil, err
	}
	if sr == nil {
		return mergeSegments(nil), nil
	}
	return mergeSegments([]*segmentReplay{sr}), nil
}
