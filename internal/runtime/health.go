package runtime

import "time"

// healthState is the failure detector's verdict on one worker connection.
// It is driven purely by how long the worker has been silent (no pong, no
// result, no stats frame), so a hung worker whose TCP link never breaks
// still progresses to dead and is evicted.
type healthState int32

const (
	// healthHealthy: the worker answered within SuspectAfter.
	healthHealthy healthState = iota
	// healthSuspect: silent longer than SuspectAfter but not yet
	// presumed dead; still routed to, but flagged in stats and logs.
	healthSuspect
	// healthDead: silent longer than DeadAfter; the master evicts the
	// connection exactly like a broken link.
	healthDead
)

// String names the health state for stats and logs.
func (s healthState) String() string {
	switch s {
	case healthHealthy:
		return "healthy"
	case healthSuspect:
		return "suspect"
	case healthDead:
		return "dead"
	default:
		return "unknown"
	}
}

// nextHealth maps a worker's silence duration onto the health state
// machine: healthy → suspect at suspectAfter, suspect → dead at
// deadAfter. A worker that answers again before deadAfter recovers to
// healthy (the transition back is legitimate: suspicion is a measurement,
// not a sentence). Dead is terminal — eviction follows, and a genuinely
// live worker re-enters by reconnecting as a fresh connection.
func nextHealth(prev healthState, silence, suspectAfter, deadAfter time.Duration) healthState {
	if prev == healthDead {
		return healthDead
	}
	switch {
	case silence >= deadAfter:
		return healthDead
	case silence >= suspectAfter:
		return healthSuspect
	default:
		return healthHealthy
	}
}
