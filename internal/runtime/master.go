// Package runtime implements Swing's live execution mode: a master thread
// that hosts the application's source and sink, and worker threads on
// other devices that each run a vertical slice of the operator pipeline
// (paper §IV-B,C). The same routing logic evaluated in simulation
// (internal/routing) decides, per tuple, which worker receives it; TCP
// flow control supplies the backpressure the algorithm reacts to.
//
// Topology: one duplex connection per worker carries deployment control,
// the downstream tuple stream and the upstream result/ACK stream. Workers
// may join at any time (the master keeps accepting) and leave abruptly
// (a broken connection removes them from the routing table and traffic
// re-routes), matching §IV-C "Handling Joining and Leaving".
package runtime

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
	"math/rand/v2"
)

// Result is one in-order playback delivery from the master's sink.
type Result struct {
	// Tuple is the final result tuple.
	Tuple *tuple.Tuple
	// Latency is end-to-end: submit to sink arrival.
	Latency time.Duration
	// Worker is the device that processed the frame.
	Worker string
}

// MasterConfig configures StartMaster.
type MasterConfig struct {
	// App is the application to coordinate.
	App *apps.App
	// Policy selects the resource-management algorithm (default LRS).
	Policy routing.PolicyKind
	// Routing optionally overrides routing parameters.
	Routing *routing.Config
	// ListenAddr is the control/data listen address (default ":0").
	ListenAddr string
	// Transport defaults to TCP.
	Transport transport.Transport
	// OutboxCap bounds the per-worker send queue in tuples (default 16).
	OutboxCap int
	// ReorderBuffer is the sink reorder timespan (default 1 s).
	ReorderBuffer time.Duration
	// OnResult, if set, receives in-order playback deliveries.
	OnResult func(Result)
	// Seed drives the router's weighted-random draws (default 1).
	Seed int64
	// Logger defaults to slog.Default.
	Logger *slog.Logger
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.Policy == 0 {
		c.Policy = routing.LRS
	}
	if c.ListenAddr == "" {
		c.ListenAddr = ":0"
	}
	if c.Transport == nil {
		c.Transport = transport.TCP{}
	}
	if c.OutboxCap == 0 {
		c.OutboxCap = 16
	}
	if c.ReorderBuffer == 0 {
		c.ReorderBuffer = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// workerConn is the master's handle on one connected worker.
type workerConn struct {
	id   string
	conn net.Conn
	out  chan []byte // serialized FrameTuple payloads
	gone chan struct{}

	mu        sync.Mutex
	writeMu   sync.Mutex
	processed int64
}

// Master coordinates a swarm run: accepts workers, routes submitted
// tuples, maintains latency estimates from results, and reorders results
// for playback.
type Master struct {
	cfg MasterConfig
	ln  net.Listener

	routerMu sync.Mutex
	router   *routing.Router

	workersMu sync.Mutex
	workers   map[string]*workerConn

	sinkMu   sync.Mutex
	reorder  map[uint64]*pendingResult
	nextPlay uint64
	rcap     int
	skipped  int64
	played   int64
	arrived  int64

	submitted int64
	subMu     sync.Mutex

	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

type pendingResult struct {
	res Result
}

// Errors.
var (
	ErrStopped   = errors.New("runtime: master stopped")
	ErrNoWorkers = errors.New("runtime: no workers connected")
)

// StartMaster launches the master: it listens for workers and is
// immediately ready for Submit (which fails until a worker joins).
func StartMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	if cfg.App == nil {
		return nil, errors.New("runtime: nil app")
	}
	rc := routing.DefaultConfig(cfg.Policy)
	if cfg.Routing != nil {
		rc = *cfg.Routing
		rc.Policy = cfg.Policy
	}
	router, err := routing.NewRouter(rc, rand.New(rand.NewPCG(uint64(cfg.Seed), 99)))
	if err != nil {
		return nil, err
	}
	ln, err := cfg.Transport.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		cfg:     cfg,
		ln:      ln,
		router:  router,
		workers: make(map[string]*workerConn),
		reorder: make(map[uint64]*pendingResult),
		rcap:    int(cfg.ReorderBuffer.Seconds()*cfg.App.TargetFPS) + 1,
		start:   time.Now(),
		stop:    make(chan struct{}),
	}
	m.wg.Add(2)
	go m.acceptLoop()
	go m.reconfigureLoop(rc.ReconfigurePeriod)
	return m, nil
}

// Addr returns the master's listen address for workers to dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Workers returns the connected worker IDs.
func (m *Master) Workers() []string {
	m.workersMu.Lock()
	defer m.workersMu.Unlock()
	out := make([]string, 0, len(m.workers))
	for id := range m.workers {
		out = append(out, id)
	}
	return out
}

// Snapshot returns the router's current per-worker view.
func (m *Master) Snapshot() []routing.Info {
	m.routerMu.Lock()
	defer m.routerMu.Unlock()
	return m.router.Snapshot()
}

// Stats summarizes the sink side.
type MasterStats struct {
	Submitted int64
	Arrived   int64
	Played    int64
	Skipped   int64
}

// Stats returns sink counters.
func (m *Master) Stats() MasterStats {
	m.sinkMu.Lock()
	defer m.sinkMu.Unlock()
	m.subMu.Lock()
	defer m.subMu.Unlock()
	return MasterStats{
		Submitted: m.submitted,
		Arrived:   m.arrived,
		Played:    m.played,
		Skipped:   m.skipped,
	}
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			select {
			case <-m.stop:
				return
			default:
			}
			m.cfg.Logger.Warn("swing master: accept", "err", err)
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handleWorker(conn)
		}()
	}
}

// handleWorker performs the join workflow (paper §IV-B steps 2-3):
// receive Hello, deploy the operator units, start, then serve the
// connection until it breaks.
func (m *Master) handleWorker(conn net.Conn) {
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameHello {
		_ = conn.Close()
		return
	}
	var hello wire.Hello
	if err := wire.DecodeJSON(payload, &hello); err != nil || hello.DeviceID == "" {
		_ = conn.Close()
		return
	}
	if hello.App != m.cfg.App.Name() {
		m.cfg.Logger.Warn("swing master: app mismatch", "worker", hello.DeviceID, "app", hello.App)
		_ = conn.Close()
		return
	}
	wc := &workerConn{
		id:   hello.DeviceID,
		conn: conn,
		out:  make(chan []byte, m.cfg.OutboxCap),
		gone: make(chan struct{}),
	}

	// Deploy: every worker activates the full operator pipeline (the
	// vertical-slice deployment of Figure 3).
	deploy := wire.Deploy{Units: m.cfg.App.Graph.Operators(), ReportEveryMillis: 1000}
	db, err := wire.EncodeJSON(deploy)
	if err != nil {
		_ = conn.Close()
		return
	}
	if err := wire.WriteFrame(conn, wire.FrameDeploy, db); err != nil {
		_ = conn.Close()
		return
	}
	if err := wire.WriteFrame(conn, wire.FrameStart, nil); err != nil {
		_ = conn.Close()
		return
	}

	m.workersMu.Lock()
	if _, dup := m.workers[wc.id]; dup {
		m.workersMu.Unlock()
		m.cfg.Logger.Warn("swing master: duplicate worker id", "worker", wc.id)
		_ = conn.Close()
		return
	}
	m.workers[wc.id] = wc
	m.workersMu.Unlock()

	m.routerMu.Lock()
	err = m.router.AddDownstream(wc.id)
	m.routerMu.Unlock()
	if err != nil {
		m.cfg.Logger.Warn("swing master: register worker", "worker", wc.id, "err", err)
	}
	m.cfg.Logger.Info("swing master: worker joined", "worker", wc.id)

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.writeLoop(wc)
	}()
	m.readLoop(wc) // returns when the connection breaks
	m.dropWorker(wc)
}

func (m *Master) writeLoop(wc *workerConn) {
	for {
		select {
		case frame := <-wc.out:
			wc.writeMu.Lock()
			err := wire.WriteFrame(wc.conn, wire.FrameTuple, frame)
			wc.writeMu.Unlock()
			if err != nil {
				return
			}
		case <-wc.gone:
			return
		case <-m.stop:
			return
		}
	}
}

func (m *Master) readLoop(wc *workerConn) {
	for {
		typ, payload, err := wire.ReadFrame(wc.conn)
		if err != nil {
			return
		}
		switch typ {
		case wire.FrameResult:
			m.handleResult(wc, payload)
		case wire.FrameStats:
			var st wire.Stats
			if err := wire.DecodeJSON(payload, &st); err == nil {
				wc.mu.Lock()
				wc.processed = st.Processed
				wc.mu.Unlock()
			}
		default:
			// Ignore unexpected frames from workers.
		}
	}
}

// dropWorker handles an abrupt leave: remove from the routing table so
// traffic re-routes immediately (§IV-C).
func (m *Master) dropWorker(wc *workerConn) {
	m.workersMu.Lock()
	if m.workers[wc.id] != wc {
		m.workersMu.Unlock()
		return
	}
	delete(m.workers, wc.id)
	m.workersMu.Unlock()

	close(wc.gone)
	_ = wc.conn.Close()

	m.routerMu.Lock()
	if m.router.Has(wc.id) {
		_ = m.router.RemoveDownstream(wc.id)
	}
	m.routerMu.Unlock()
	m.cfg.Logger.Info("swing master: worker left", "worker", wc.id)
}

func (m *Master) reconfigureLoop(period time.Duration) {
	defer m.wg.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	var lastSubmitted int64
	for {
		select {
		case <-ticker.C:
			m.subMu.Lock()
			cur := m.submitted
			m.subMu.Unlock()
			lambda := float64(cur-lastSubmitted) / period.Seconds()
			lastSubmitted = cur
			m.routerMu.Lock()
			m.router.Reconfigure(lambda)
			m.routerMu.Unlock()
		case <-m.stop:
			return
		}
	}
}

// Submit routes one tuple into the swarm. It blocks when the chosen
// worker's send queue is full (TCP backpressure) and returns ErrNoWorkers
// when the swarm is empty.
func (m *Master) Submit(t *tuple.Tuple) error {
	for attempts := 0; ; attempts++ {
		select {
		case <-m.stop:
			return ErrStopped
		default:
		}
		m.routerMu.Lock()
		id, err := m.router.RouteAvoiding(func(id string) bool {
			m.workersMu.Lock()
			wc, ok := m.workers[id]
			m.workersMu.Unlock()
			return !ok || len(wc.out) == cap(wc.out)
		})
		m.routerMu.Unlock()
		if err != nil {
			return ErrNoWorkers
		}
		m.workersMu.Lock()
		wc, ok := m.workers[id]
		m.workersMu.Unlock()
		if !ok {
			if attempts > 8 {
				return ErrNoWorkers
			}
			continue // routed to a worker that just left; re-route
		}
		t.EmitNanos = time.Now().UnixNano()
		frame, err := tuple.Marshal(t)
		if err != nil {
			return fmt.Errorf("runtime: submit: %w", err)
		}
		m.subMu.Lock()
		m.submitted++
		m.subMu.Unlock()
		select {
		case wc.out <- frame:
			return nil
		case <-wc.gone:
			// Worker died while we were blocked; try another.
			continue
		case <-m.stop:
			return ErrStopped
		}
	}
}

// handleResult is the sink path: latency feedback plus the reorder buffer
// (§IV-C "Reordering Service").
func (m *Master) handleResult(wc *workerConn, payload []byte) {
	meta, tb, err := wire.DecodeResult(payload)
	if err != nil {
		return
	}
	now := time.Now()
	latency := now.Sub(time.Unix(0, meta.EmitNanos))
	if latency < 0 {
		latency = 0
	}
	m.routerMu.Lock()
	_ = m.router.ObserveAck(wc.id, latency, time.Duration(meta.ProcNanos), now.Sub(m.start))
	m.routerMu.Unlock()

	res, err := tuple.Unmarshal(tb)
	if err != nil {
		return
	}
	m.deliver(Result{Tuple: res, Latency: latency, Worker: wc.id})
}

// deliver plays results in sequence order, skipping when the reorder
// buffer overflows.
func (m *Master) deliver(r Result) {
	var plays []Result
	m.sinkMu.Lock()
	m.arrived++
	if r.Tuple.SeqNo >= m.nextPlay {
		m.reorder[r.Tuple.SeqNo] = &pendingResult{res: r}
	}
	for {
		if pr, ok := m.reorder[m.nextPlay]; ok {
			delete(m.reorder, m.nextPlay)
			plays = append(plays, pr.res)
			m.played++
			m.nextPlay++
			continue
		}
		if len(m.reorder) >= m.rcap {
			min := ^uint64(0)
			for seq := range m.reorder {
				if seq < min {
					min = seq
				}
			}
			m.skipped += int64(min - m.nextPlay)
			m.nextPlay = min
			continue
		}
		break
	}
	m.sinkMu.Unlock()
	if m.cfg.OnResult != nil {
		for _, p := range plays {
			m.cfg.OnResult(p)
		}
	}
}

// Close stops the master: workers receive Stop, connections close, and
// all goroutines drain.
func (m *Master) Close() error {
	m.once.Do(func() {
		close(m.stop)
		_ = m.ln.Close()
		m.workersMu.Lock()
		conns := make([]*workerConn, 0, len(m.workers))
		for _, wc := range m.workers {
			conns = append(conns, wc)
		}
		m.workersMu.Unlock()
		for _, wc := range conns {
			wc.writeMu.Lock()
			_ = wire.WriteFrame(wc.conn, wire.FrameStop, nil)
			wc.writeMu.Unlock()
			_ = wc.conn.Close()
		}
		m.wg.Wait()
	})
	return nil
}
