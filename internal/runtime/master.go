// Package runtime implements Swing's live execution mode: a master thread
// that hosts the application's source and sink, and worker threads on
// other devices that each run a vertical slice of the operator pipeline
// (paper §IV-B,C). The same routing logic evaluated in simulation
// (internal/routing) decides, per tuple, which worker receives it; TCP
// flow control supplies the backpressure the algorithm reacts to.
//
// Topology: one duplex connection per worker carries deployment control,
// the downstream tuple stream and the upstream result/ACK stream. Workers
// may join at any time (the master keeps accepting) and leave abruptly
// (a broken connection removes them from the routing table and traffic
// re-routes), matching §IV-C "Handling Joining and Leaving".
package runtime

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
	"math/rand/v2"
)

// Result is one in-order playback delivery from the master's sink.
type Result struct {
	// Tuple is the final result tuple.
	Tuple *tuple.Tuple
	// Latency is end-to-end: submit to sink arrival.
	Latency time.Duration
	// Worker is the device that processed the frame.
	Worker string
}

// MasterConfig configures StartMaster.
type MasterConfig struct {
	// App is the application to coordinate.
	App *apps.App
	// Policy selects the resource-management algorithm (default LRS).
	Policy routing.PolicyKind
	// Routing optionally overrides routing parameters.
	Routing *routing.Config
	// ListenAddr is the control/data listen address (default ":0").
	ListenAddr string
	// Transport defaults to TCP.
	Transport transport.Transport
	// OutboxCap bounds the per-worker send queue in tuples (default 16).
	OutboxCap int
	// ReorderBuffer is the sink reorder timespan (default 1 s).
	ReorderBuffer time.Duration
	// OnResult, if set, receives in-order playback deliveries.
	OnResult func(Result)
	// RetryDeadline bounds how long after first submission a tuple may
	// still be retransmitted when its worker dies; older tuples are shed,
	// mirroring the reorder buffer's skip semantics for stale frames
	// (default 3 s).
	RetryDeadline time.Duration
	// MaxAttempts bounds total transmission attempts per tuple, the first
	// submission included (default 3).
	MaxAttempts int
	// Seed drives the router's weighted-random draws (default 1).
	Seed int64
	// Logger defaults to slog.Default.
	Logger *slog.Logger
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.Policy == 0 {
		c.Policy = routing.LRS
	}
	if c.ListenAddr == "" {
		c.ListenAddr = ":0"
	}
	if c.Transport == nil {
		c.Transport = transport.TCP{}
	}
	if c.OutboxCap == 0 {
		c.OutboxCap = 16
	}
	if c.ReorderBuffer == 0 {
		c.ReorderBuffer = time.Second
	}
	if c.RetryDeadline == 0 {
		c.RetryDeadline = 3 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// workerConn is the master's handle on one connected worker.
type workerConn struct {
	id   string
	conn net.Conn
	out  chan []byte // serialized FrameTuple payloads
	gone chan struct{}

	mu        sync.Mutex
	writeMu   sync.Mutex
	processed int64
	dropped   int64 // last Stats-reported processor-drop count
}

// Master coordinates a swarm run: accepts workers, routes submitted
// tuples, maintains latency estimates from results, and reorders results
// for playback.
type Master struct {
	cfg MasterConfig
	ln  net.Listener

	routerMu sync.Mutex
	router   *routing.Router

	workersMu sync.Mutex
	workers   map[string]*workerConn

	sinkMu   sync.Mutex
	reorder  map[uint64]*pendingResult
	nextPlay uint64
	rcap     int
	skipped  int64
	played   int64
	arrived  int64

	inflight *inflightTable

	subMu         sync.Mutex
	submitted     int64
	acked         int64
	retransmitted int64
	shed          int64
	workerDropped int64

	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

type pendingResult struct {
	res Result
}

// minReorderCap floors the reorder buffer so degenerate configurations
// (TargetFPS 0, sub-second buffers) still tolerate mild disorder.
const minReorderCap = 8

// Errors.
var (
	ErrStopped   = errors.New("runtime: master stopped")
	ErrNoWorkers = errors.New("runtime: no workers connected")
)

// StartMaster launches the master: it listens for workers and is
// immediately ready for Submit (which fails until a worker joins).
func StartMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	if cfg.App == nil {
		return nil, errors.New("runtime: nil app")
	}
	rc := routing.DefaultConfig(cfg.Policy)
	if cfg.Routing != nil {
		rc = *cfg.Routing
		rc.Policy = cfg.Policy
	}
	router, err := routing.NewRouter(rc, rand.New(rand.NewPCG(uint64(cfg.Seed), 99)))
	if err != nil {
		return nil, err
	}
	ln, err := cfg.Transport.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	rcap := int(cfg.ReorderBuffer.Seconds()*cfg.App.TargetFPS) + 1
	if rcap < minReorderCap {
		// A zero/tiny TargetFPS would collapse the buffer to a single
		// slot, turning every out-of-order arrival into a skip.
		rcap = minReorderCap
	}
	m := &Master{
		cfg:      cfg,
		ln:       ln,
		router:   router,
		workers:  make(map[string]*workerConn),
		reorder:  make(map[uint64]*pendingResult),
		rcap:     rcap,
		inflight: newInflightTable(),
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	m.wg.Add(2)
	go m.acceptLoop()
	go m.reconfigureLoop(rc.ReconfigurePeriod)
	return m, nil
}

// Addr returns the master's listen address for workers to dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Workers returns the connected worker IDs.
func (m *Master) Workers() []string {
	m.workersMu.Lock()
	defer m.workersMu.Unlock()
	out := make([]string, 0, len(m.workers))
	for id := range m.workers {
		out = append(out, id)
	}
	return out
}

// Snapshot returns the router's current per-worker view.
func (m *Master) Snapshot() []routing.Info {
	m.routerMu.Lock()
	defer m.routerMu.Unlock()
	return m.router.Snapshot()
}

// MasterStats summarizes the master's side of a run. The fault-tolerance
// ledger balances exactly: every distinct submitted tuple is eventually
// Acked (a result or drop notice arrived), Shed (abandoned at its retry
// deadline or attempt limit), or still InFlight — never silently lost.
type MasterStats struct {
	// Submitted counts distinct tuples successfully enqueued toward a
	// worker (retransmissions of the same tuple are not re-counted).
	Submitted int64
	// Arrived counts result frames carrying a result tuple.
	Arrived int64
	Played  int64
	Skipped int64
	// Acked counts in-flight entries released by a worker ack (results
	// and drop notices both ack).
	Acked int64
	// Retransmitted counts re-routed transmissions after worker failures.
	Retransmitted int64
	// Shed counts tuples abandoned after a worker failure because their
	// retry deadline or attempt budget was exhausted.
	Shed int64
	// WorkerDropped counts tuples workers discarded on processor errors.
	WorkerDropped int64
	// InFlight is the current routed-but-unacknowledged tuple count.
	InFlight int
}

// Stats returns sink counters.
func (m *Master) Stats() MasterStats {
	m.sinkMu.Lock()
	defer m.sinkMu.Unlock()
	m.subMu.Lock()
	defer m.subMu.Unlock()
	return MasterStats{
		Submitted:     m.submitted,
		Arrived:       m.arrived,
		Played:        m.played,
		Skipped:       m.skipped,
		Acked:         m.acked,
		Retransmitted: m.retransmitted,
		Shed:          m.shed,
		WorkerDropped: m.workerDropped,
		InFlight:      m.inflight.size(),
	}
}

// acceptLoop admits workers for the life of the master. Transient Accept
// errors (a failed handshake, a momentarily exhausted fd table) are
// retried with backoff rather than abandoning the listener — exiting here
// would permanently lock every future worker out of the swarm. Only a
// closed listener or a stopped master ends the loop.
func (m *Master) acceptLoop() {
	defer m.wg.Done()
	const maxAcceptBackoff = time.Second
	backoff := 5 * time.Millisecond
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			select {
			case <-m.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) || errors.Is(err, transport.ErrClosed) {
				return
			}
			m.cfg.Logger.Warn("swing master: accept (will retry)", "err", err, "backoff", backoff)
			select {
			case <-time.After(backoff):
			case <-m.stop:
				return
			}
			if backoff *= 2; backoff > maxAcceptBackoff {
				backoff = maxAcceptBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handleWorker(conn)
		}()
	}
}

// handleWorker performs the join workflow (paper §IV-B steps 2-3):
// receive Hello, deploy the operator units, start, then serve the
// connection until it breaks.
func (m *Master) handleWorker(conn net.Conn) {
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameHello {
		_ = conn.Close()
		return
	}
	var hello wire.Hello
	if err := wire.DecodeJSON(payload, &hello); err != nil || hello.DeviceID == "" {
		_ = conn.Close()
		return
	}
	if hello.App != m.cfg.App.Name() {
		m.cfg.Logger.Warn("swing master: app mismatch", "worker", hello.DeviceID, "app", hello.App)
		_ = conn.Close()
		return
	}
	wc := &workerConn{
		id:   hello.DeviceID,
		conn: conn,
		out:  make(chan []byte, m.cfg.OutboxCap),
		gone: make(chan struct{}),
	}

	// Deploy: every worker activates the full operator pipeline (the
	// vertical-slice deployment of Figure 3).
	deploy := wire.Deploy{Units: m.cfg.App.Graph.Operators(), ReportEveryMillis: 1000}
	db, err := wire.EncodeJSON(deploy)
	if err != nil {
		_ = conn.Close()
		return
	}
	if err := wire.WriteFrame(conn, wire.FrameDeploy, db); err != nil {
		_ = conn.Close()
		return
	}
	if err := wire.WriteFrame(conn, wire.FrameStart, nil); err != nil {
		_ = conn.Close()
		return
	}

	m.workersMu.Lock()
	if _, dup := m.workers[wc.id]; dup {
		m.workersMu.Unlock()
		m.cfg.Logger.Warn("swing master: duplicate worker id", "worker", wc.id)
		_ = conn.Close()
		return
	}
	m.workers[wc.id] = wc
	m.workersMu.Unlock()

	m.routerMu.Lock()
	err = m.router.AddDownstream(wc.id)
	m.routerMu.Unlock()
	if err != nil {
		m.cfg.Logger.Warn("swing master: register worker", "worker", wc.id, "err", err)
	}
	m.cfg.Logger.Info("swing master: worker joined", "worker", wc.id)

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.writeLoop(wc)
	}()
	m.readLoop(wc) // returns when the connection breaks
	m.dropWorker(wc)
}

func (m *Master) writeLoop(wc *workerConn) {
	for {
		select {
		case frame := <-wc.out:
			wc.writeMu.Lock()
			err := wire.WriteFrame(wc.conn, wire.FrameTuple, frame)
			wc.writeMu.Unlock()
			if err != nil {
				return
			}
		case <-wc.gone:
			return
		case <-m.stop:
			return
		}
	}
}

func (m *Master) readLoop(wc *workerConn) {
	for {
		typ, payload, err := wire.ReadFrame(wc.conn)
		if err != nil {
			return
		}
		switch typ {
		case wire.FrameResult:
			m.handleResult(wc, payload)
		case wire.FrameStats:
			var st wire.Stats
			if err := wire.DecodeJSON(payload, &st); err == nil {
				wc.mu.Lock()
				wc.processed = st.Processed
				wc.dropped = st.Dropped
				wc.mu.Unlock()
			}
		default:
			// Ignore unexpected frames from workers.
		}
	}
}

// dropWorker handles an abrupt leave: remove from the routing table so
// traffic re-routes immediately (§IV-C), then recover the worker's
// un-acked tuples — each is retransmitted to a surviving worker or shed
// at its deadline, never silently lost.
func (m *Master) dropWorker(wc *workerConn) {
	m.workersMu.Lock()
	if m.workers[wc.id] != wc {
		m.workersMu.Unlock()
		return
	}
	delete(m.workers, wc.id)
	m.workersMu.Unlock()

	close(wc.gone)
	_ = wc.conn.Close()

	m.routerMu.Lock()
	if m.router.Has(wc.id) {
		_ = m.router.RemoveDownstream(wc.id)
	}
	m.routerMu.Unlock()
	m.cfg.Logger.Info("swing master: worker left", "worker", wc.id)

	if orphans := m.inflight.takeWorker(wc.id); len(orphans) > 0 {
		// Resubmission can block on surviving workers' backpressure, so
		// it runs off the connection goroutine.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.retransmitAll(wc.id, orphans)
		}()
	}
}

// retransmitAll re-routes a dead worker's un-acked tuples. A tuple past
// its retry deadline or attempt budget — or with no surviving worker to
// take it — is shed and accounted, the streaming analogue of the reorder
// buffer skipping a stale frame.
func (m *Master) retransmitAll(from string, orphans []*inflightEntry) {
	for _, e := range orphans {
		var reason string
		switch {
		case int(e.attempt)+1 >= m.cfg.MaxAttempts:
			reason = "attempts exhausted"
		case time.Now().After(e.deadline):
			reason = "deadline passed"
		default:
			if err := m.submit(e.t, e.attempt+1, e.deadline); err != nil {
				reason = err.Error()
			}
		}
		if reason != "" {
			m.subMu.Lock()
			m.shed++
			m.subMu.Unlock()
			m.cfg.Logger.Info("swing master: shed tuple",
				"tuple", e.t.ID, "seq", e.t.SeqNo, "worker", from, "reason", reason)
		}
	}
}

func (m *Master) reconfigureLoop(period time.Duration) {
	defer m.wg.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	var lastSubmitted int64
	for {
		select {
		case <-ticker.C:
			m.subMu.Lock()
			cur := m.submitted
			m.subMu.Unlock()
			lambda := float64(cur-lastSubmitted) / period.Seconds()
			lastSubmitted = cur
			m.routerMu.Lock()
			m.router.Reconfigure(lambda)
			m.routerMu.Unlock()
		case <-m.stop:
			return
		}
	}
}

// Submit routes one tuple into the swarm. It blocks when the chosen
// worker's send queue is full (TCP backpressure) and returns ErrNoWorkers
// when the swarm is empty. The tuple is tracked until a worker
// acknowledges it; if its worker dies first it is retransmitted to a
// survivor or shed at its retry deadline.
func (m *Master) Submit(t *tuple.Tuple) error {
	return m.submit(t, 0, time.Now().Add(m.cfg.RetryDeadline))
}

// submit is the routing core behind Submit and retransmission. attempt 0
// is the first transmission and counts into the submitted total that
// feeds the Λ estimate; retransmissions (attempt > 0) are tracked
// separately so retried traffic cannot inflate the input-rate measurement
// that drives Worker Selection.
func (m *Master) submit(t *tuple.Tuple, attempt uint8, deadline time.Time) error {
	for tries := 0; ; tries++ {
		select {
		case <-m.stop:
			return ErrStopped
		default:
		}
		m.routerMu.Lock()
		id, err := m.router.RouteAvoiding(func(id string) bool {
			m.workersMu.Lock()
			wc, ok := m.workers[id]
			m.workersMu.Unlock()
			return !ok || len(wc.out) == cap(wc.out)
		})
		m.routerMu.Unlock()
		if err != nil {
			return ErrNoWorkers
		}
		m.workersMu.Lock()
		wc, ok := m.workers[id]
		m.workersMu.Unlock()
		if !ok {
			if tries > 8 {
				return ErrNoWorkers
			}
			continue // routed to a worker that just left; re-route
		}
		t.EmitNanos = time.Now().UnixNano()
		t.Attempt = attempt
		frame, err := tuple.Marshal(t)
		if err != nil {
			return fmt.Errorf("runtime: submit: %w", err)
		}
		// Track before enqueueing so the tuple is never in a send queue
		// without an owner; an ack arriving immediately after the send
		// always finds the entry.
		m.inflight.track(t.ID, &inflightEntry{t: t, worker: id, attempt: attempt, deadline: deadline})
		select {
		case wc.out <- frame:
			m.subMu.Lock()
			if attempt == 0 {
				m.submitted++
			} else {
				m.retransmitted++
			}
			m.subMu.Unlock()
			return nil
		case <-wc.gone:
			// Worker died while we were blocked. If the drop path already
			// claimed the entry its retransmitter owns the tuple now — it
			// entered the system, so count this attempt; otherwise
			// reclaim it and re-route ourselves.
			if _, ours := m.inflight.takeIf(t.ID, id); !ours {
				m.subMu.Lock()
				if attempt == 0 {
					m.submitted++
				}
				m.subMu.Unlock()
				return nil
			}
			continue
		case <-m.stop:
			m.inflight.takeIf(t.ID, id)
			return ErrStopped
		}
	}
}

// handleResult is the sink path: release the in-flight entry, fold the
// latency feedback into the router, then reorder for playback (§IV-C
// "Reordering Service"). Ack-only frames (no tuple bytes) stop here: the
// worker consumed the tuple without producing a result, and counting the
// ack keeps the ledger balanced and the latency estimate fresh.
func (m *Master) handleResult(wc *workerConn, payload []byte) {
	meta, tb, err := wire.DecodeResult(payload)
	if err != nil {
		return
	}
	if m.inflight.ack(meta.TupleID) {
		m.subMu.Lock()
		m.acked++
		m.subMu.Unlock()
	}
	if meta.Dropped {
		m.subMu.Lock()
		m.workerDropped++
		m.subMu.Unlock()
	}
	now := time.Now()
	latency := now.Sub(time.Unix(0, meta.EmitNanos))
	if latency < 0 {
		latency = 0
	}
	m.routerMu.Lock()
	_ = m.router.ObserveAck(wc.id, latency, time.Duration(meta.ProcNanos), now.Sub(m.start))
	m.routerMu.Unlock()

	if len(tb) == 0 {
		return // ack-only: dropped or filtered out downstream
	}
	res, err := tuple.Unmarshal(tb)
	if err != nil {
		return
	}
	m.deliver(Result{Tuple: res, Latency: latency, Worker: wc.id})
}

// deliver plays results in sequence order, skipping when the reorder
// buffer overflows.
func (m *Master) deliver(r Result) {
	var plays []Result
	m.sinkMu.Lock()
	m.arrived++
	if r.Tuple.SeqNo >= m.nextPlay {
		m.reorder[r.Tuple.SeqNo] = &pendingResult{res: r}
	}
	for {
		if pr, ok := m.reorder[m.nextPlay]; ok {
			delete(m.reorder, m.nextPlay)
			plays = append(plays, pr.res)
			m.played++
			m.nextPlay++
			continue
		}
		if len(m.reorder) >= m.rcap {
			min := ^uint64(0)
			for seq := range m.reorder {
				if seq < min {
					min = seq
				}
			}
			m.skipped += int64(min - m.nextPlay)
			m.nextPlay = min
			continue
		}
		break
	}
	m.sinkMu.Unlock()
	if m.cfg.OnResult != nil {
		for _, p := range plays {
			m.cfg.OnResult(p)
		}
	}
}

// Close stops the master: workers receive Stop, connections close, and
// all goroutines drain.
func (m *Master) Close() error {
	m.once.Do(func() {
		close(m.stop)
		_ = m.ln.Close()
		m.workersMu.Lock()
		conns := make([]*workerConn, 0, len(m.workers))
		for _, wc := range m.workers {
			conns = append(conns, wc)
		}
		m.workersMu.Unlock()
		for _, wc := range conns {
			wc.writeMu.Lock()
			_ = wire.WriteFrame(wc.conn, wire.FrameStop, nil)
			wc.writeMu.Unlock()
			_ = wc.conn.Close()
		}
		m.wg.Wait()
	})
	return nil
}
