// Package runtime implements Swing's live execution mode: a master thread
// that hosts the application's source and sink, and worker threads on
// other devices that each run a vertical slice of the operator pipeline
// (paper §IV-B,C). The same routing logic evaluated in simulation
// (internal/routing) decides, per tuple, which worker receives it; TCP
// flow control supplies the backpressure the algorithm reacts to.
//
// Topology: one duplex connection per worker carries deployment control,
// the downstream tuple stream and the upstream result/ACK stream. Workers
// may join at any time (the master keeps accepting) and leave abruptly
// (a broken connection removes them from the routing table and traffic
// re-routes), matching §IV-C "Handling Joining and Leaving".
package runtime

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/obs"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
	"math/rand/v2"
)

// Result is one in-order playback delivery from the master's sink.
type Result struct {
	// Tuple is the final result tuple.
	Tuple *tuple.Tuple
	// Latency is end-to-end: submit to sink arrival.
	Latency time.Duration
	// Worker is the device that processed the frame.
	Worker string
}

// MasterConfig configures StartMaster.
type MasterConfig struct {
	// App is the application to coordinate.
	App *apps.App
	// Policy selects the resource-management algorithm (default LRS).
	Policy routing.PolicyKind
	// Routing optionally overrides routing parameters.
	Routing *routing.Config
	// ListenAddr is the control/data listen address (default ":0").
	ListenAddr string
	// Transport defaults to TCP.
	Transport transport.Transport
	// OutboxCap bounds the per-worker send queue in tuples (default 16).
	OutboxCap int
	// Parallelism is the processor-pool width deployed to every worker:
	// how many tuples a worker may process concurrently. Zero deploys the
	// worker-side default (GOMAXPROCS on the worker device). Results are
	// returned in arrival order regardless of pool width.
	Parallelism int
	// AckLinger is the worker-side ack/result batching window deployed to
	// every worker: a completed result may wait up to this long to share
	// one result-batch frame with its successors, trading up to AckLinger
	// of added latency for fewer upstream writes. Zero disables lingering
	// (workers still batch results that are already queued back-to-back).
	AckLinger time.Duration
	// ReorderBuffer is the sink reorder timespan (default 1 s).
	ReorderBuffer time.Duration
	// OnResult, if set, receives in-order playback deliveries.
	OnResult func(Result)
	// RetryDeadline bounds how long after first submission a tuple may
	// still be retransmitted when its worker dies; older tuples are shed,
	// mirroring the reorder buffer's skip semantics for stale frames
	// (default 3 s).
	RetryDeadline time.Duration
	// MaxAttempts bounds total transmission attempts per tuple, the first
	// submission included (default 3).
	MaxAttempts int
	// Heartbeat is the liveness ping period per worker connection. Zero
	// disables the failure detector: a hung worker then lingers until its
	// TCP link actually breaks, the pre-liveness behavior.
	Heartbeat time.Duration
	// SuspectAfter is how long a worker may stay silent (no pong, result
	// or stats frame) before it is marked suspect (default 3×Heartbeat).
	SuspectAfter time.Duration
	// DeadAfter is the silence after which a worker is declared dead and
	// evicted exactly like a broken link: connection closed, in-flight
	// backlog retransmitted to survivors (default 6×Heartbeat).
	DeadAfter time.Duration
	// BreakerThreshold opens a worker's circuit breaker after this many
	// consecutive failures (ack timeouts or processor-error drops); the
	// router stops selecting the worker until a half-open probe succeeds.
	// Zero disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks traffic before
	// admitting the single half-open probe tuple (default 2 s).
	BreakerCooldown time.Duration
	// BreakerAckTimeout ages in-flight tuples: one unacknowledged for
	// longer than this counts as a failure against its worker's breaker.
	// Zero disables the timeout sweep (drops alone then drive breakers).
	BreakerAckTimeout time.Duration
	// InflightHighWater is the admission-control bound on the in-flight
	// table. At or above it, Submit sheds oldest-first (counted in
	// ShedOverload) and never blocks the caller. Zero disables admission
	// control, restoring pure TCP-backpressure blocking.
	InflightHighWater int
	// OpDeadline is the per-tuple processing deadline deployed to every
	// worker: an operator chain that has not returned within it is
	// abandoned by the worker's watchdog and the tuple reported as a
	// deadline drop notice, so one hung operator costs a tuple, not the
	// worker. Zero disables the watchdog (chains run inline).
	OpDeadline time.Duration
	// PoisonAttempts arms poison-tuple quarantine: a tuple whose drop
	// notices burned this many DISTINCT workers is shed as ShedPoison
	// instead of being bounced around the swarm — and only the first
	// burned worker's breaker is charged, so a poison tuple cannot trip
	// the breakers of the healthy workers it visits. Zero disables
	// quarantine: a drop notice then simply acks the tuple (the
	// pre-quarantine behavior).
	PoisonAttempts int
	// HedgeAfter arms hedged retransmits for stragglers: an un-acked tuple
	// older than max(HedgeAfter, 2× its worker's recent p95 ack latency)
	// is speculatively duplicated to a second worker. First result wins
	// (the sink's dedup keeps delivery at-most-once); the duplicate is
	// counted in the ledger's Hedged column. Zero disables hedging.
	HedgeAfter time.Duration
	// JournalPath enables master crash recovery: every tuple lifecycle
	// event (submit, retransmit, ack, shed) is appended to a write-ahead
	// journal at this path, and StartMaster recovers state — ledger
	// counters, warm routing estimates, the un-acked backlog — from the
	// journal plus checkpoint of a previous incarnation before listening.
	// Empty disables journaling (pre-recovery behavior).
	JournalPath string
	// CheckpointPath is the state snapshot beside the journal (default
	// JournalPath + ".ckpt").
	CheckpointPath string
	// CheckpointEvery is the period of checkpoint + journal compaction
	// (default 10 s; < 0 disables periodic checkpoints — one is still
	// written at recovery and on Close).
	CheckpointEvery time.Duration
	// Fsync selects the journal's flush-to-stable-storage policy (default
	// FsyncInterval; see FsyncMode).
	Fsync FsyncMode
	// FsyncEvery is the FsyncInterval flush period (default 100 ms).
	FsyncEvery time.Duration
	// ReplicateAddr enables hot-standby replication: a listener at this
	// address accepts standby masters that tail the write-ahead journal
	// live (checkpoint base image + streamed record batches). Requires
	// JournalPath — replication streams the journal, so there must be
	// one. Empty disables the replication plane.
	ReplicateAddr string
	// ReplicatePingEvery is the primary→standby liveness probe period on
	// the replication link (default 100 ms). The standby arms its
	// takeover timer on ping silence, so this must be well under the
	// standby's TakeoverAfter.
	ReplicatePingEvery time.Duration
	// HelloTimeout bounds the join handshake: a connection that has not
	// completed hello/deploy/start within it is closed, so a half-open
	// TCP connect cannot pin a registration goroutine (default 5 s;
	// < 0 disables the deadline).
	HelloTimeout time.Duration
	// MaxPendingHandshakes caps concurrent connections inside the join
	// handshake; excess connects are refused immediately (default 32;
	// < 0 removes the cap).
	MaxPendingHandshakes int
	// Shards is the hot-state fan-out: the in-flight ledger, the
	// cross-epoch dedup set and the write-ahead journal are each split
	// into this many independently locked shards/segments, keyed by
	// hashed tuple ID. Rounded up to a power of two and capped at 128;
	// zero or negative defaults to GOMAXPROCS at startup. One shard
	// reproduces the pre-sharding layout (including the single-file
	// journal).
	Shards int
	// StatusAddr enables the observability plane: an HTTP listener at
	// this address (host:port; ":0" picks a free port, see StatusAddr())
	// serving /statusz (HTML dashboard; ?format=json for the same data as
	// JSON), /status.json, and /events — the ring-buffered event log of
	// evictions, breaker trips, shed bursts and epoch changes. The
	// endpoint and the periodic status log line render the same
	// StatusSnapshot, so they can never disagree. Empty disables the
	// listener (events are still recorded).
	StatusAddr string
	// StatusPprof additionally mounts net/http/pprof's profiling handlers
	// under /debug/pprof/ on the StatusAddr listener, so a live soak can
	// be profiled with go tool pprof without a separate server. No effect
	// without StatusAddr.
	StatusPprof bool
	// Seed drives the router's weighted-random draws (default 1).
	Seed int64
	// Logger defaults to slog.Default.
	Logger *slog.Logger
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.Policy == 0 {
		c.Policy = routing.LRS
	}
	if c.ListenAddr == "" {
		c.ListenAddr = ":0"
	}
	if c.Transport == nil {
		c.Transport = transport.TCP{}
	}
	if c.OutboxCap == 0 {
		c.OutboxCap = 16
	}
	if c.ReorderBuffer == 0 {
		c.ReorderBuffer = time.Second
	}
	if c.RetryDeadline == 0 {
		c.RetryDeadline = 3 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = goruntime.GOMAXPROCS(0)
	}
	c.Shards = ceilPow2(c.Shards)
	if c.Heartbeat > 0 {
		if c.SuspectAfter == 0 {
			c.SuspectAfter = 3 * c.Heartbeat
		}
		if c.DeadAfter == 0 {
			c.DeadAfter = 6 * c.Heartbeat
		}
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.JournalPath != "" {
		if c.CheckpointPath == "" {
			c.CheckpointPath = c.JournalPath + ".ckpt"
		}
		if c.CheckpointEvery == 0 {
			c.CheckpointEvery = 10 * time.Second
		}
		if c.FsyncEvery == 0 {
			c.FsyncEvery = 100 * time.Millisecond
		}
	}
	if c.ReplicateAddr != "" && c.ReplicatePingEvery == 0 {
		c.ReplicatePingEvery = 100 * time.Millisecond
	}
	if c.HelloTimeout == 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.MaxPendingHandshakes == 0 {
		c.MaxPendingHandshakes = 32
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// outFrame is one queued write toward a worker: tuples from Submit and
// liveness pings from the monitor share the send queue. When the payload
// lives in a pooled buffer, buf carries it so the writer can return it to
// the pool once the bytes are coalesced into the outgoing batch.
type outFrame struct {
	typ     wire.FrameType
	payload []byte
	buf     *wire.Buf
}

// release returns the frame's pooled payload buffer, if any.
func (f outFrame) release() { f.buf.Release() }

// workerConn is the master's handle on one connected worker.
type workerConn struct {
	id   string
	conn net.Conn
	out  chan outFrame
	// slots is the send-queue occupancy semaphore: every enqueue onto out
	// first takes a token, and the writer returns tokens only after the
	// frame's bytes are written. Backpressure checks read len(slots), not
	// len(out) — the coalescing writer drains out into its batch buffer
	// long before the peer consumed anything, so channel length alone
	// would report an idle queue on a stalled link.
	slots chan struct{}
	gone  chan struct{}

	// Estimate batching: the ACK path banks each result's delay samples
	// here instead of taking the router lock per tuple; flushEstimates
	// periodically folds every worker's batch into the router in one EWMA
	// step (routing.Router.ObserveBatch). Sums are banked before ackN so
	// a flush that observes n samples has their sums in full; the
	// remaining skew (a sample split across two flushes) only nudges two
	// consecutive batch means, it never loses a sample.
	ackN    atomic.Int64
	ackLat  atomic.Int64 // summed end-to-end latency, nanos
	ackProc atomic.Int64 // summed worker-reported processing, nanos

	// lat is a fixed ring of recent end-to-end ack latencies feeding the
	// hedging threshold (its own lock; written per ack only when hedging
	// is armed).
	lat latRing

	mu         sync.Mutex
	writeMu    sync.Mutex
	processed  int64
	dropped    int64 // last Stats-reported processor-drop count
	queueLen   int   // last Stats-reported input queue length
	reconnects int64 // last Stats-reported rejoin count
	panics     int64 // last Stats-reported sandbox-recovered panic count
	deadlined  int64 // last Stats-reported watchdog-abandoned count

	// Liveness (guarded by mu): lastHeard is the arrival time of the most
	// recent frame of any kind; health is the failure detector's verdict.
	lastHeard time.Time
	health    healthState
	pingSeq   uint64

	// br is this worker's circuit breaker (guarded by mu).
	br breaker
}

// noteHeard refreshes the liveness timestamp on any inbound frame.
func (wc *workerConn) noteHeard(now time.Time) {
	wc.mu.Lock()
	wc.lastHeard = now
	wc.mu.Unlock()
}

// Master coordinates a swarm run: accepts workers, routes submitted
// tuples, maintains latency estimates from results, and reorders results
// for playback.
type Master struct {
	cfg MasterConfig
	ln  net.Listener

	// router state is RCU-published: routerMu serializes the writers
	// (reconfigure, membership changes, estimate flushes), each of which
	// republishes table — the immutable snapshot the lock-free Submit
	// path routes against.
	routerMu sync.Mutex
	router   *routing.Router
	table    atomic.Pointer[routing.Table]

	// workers is a copy-on-write map: readers (Submit, the ACK path, the
	// monitor) Load it lock-free; workersMu serializes the writers
	// (admit, drop), which install a fresh copy.
	workersMu sync.Mutex
	workers   atomic.Pointer[map[string]*workerConn]

	sinkMu   sync.Mutex
	reorder  map[uint64]Result
	nextPlay uint64
	rcap     int
	skipped  int64
	played   int64
	arrived  int64

	// inflight carries both the routed-but-unacked entries and the
	// fault-tolerance ledger, sharded by hashed tuple ID; counters move
	// in the same shard critical section as the entries they describe.
	inflight *inflightTable

	workerDropped atomic.Int64
	evicted       atomic.Int64
	readopted     atomic.Int64
	nextSeq       atomic.Uint64

	// Per-reason drop accounting (worker notices, classified by the wire
	// reason code) plus the filtered count — legitimate empty pipelines.
	dropErrors    atomic.Int64
	dropPanics    atomic.Int64
	dropDeadlines atomic.Int64
	filtered      atomic.Int64

	// pickSeq drives Submit's weighted-random draws: a shared splitmix64
	// counter, so concurrent submitters draw without locks or per-caller
	// rng state.
	pickSeq atomic.Uint64

	// Batched-dataplane counters: SubmitBatch calls that took the batched
	// fast path, tuples dispatched inside FrameTupleBatch frames, and the
	// frames themselves (frames ≤ tuples; the gap measures coalescing).
	batchSubmits atomic.Int64
	batchTuples  atomic.Int64
	batchFrames  atomic.Int64

	// Crash recovery (immutable after StartMaster returns, except
	// generation, which only the single-threaded checkpointer advances —
	// atomically, so status sampling can read it without the journal
	// locks).
	epoch      uint64
	generation atomic.Uint64
	journal    *journalSet
	// recoveredAcked is the cross-epoch sink dedup set: tuple IDs the
	// previous incarnation acknowledged whose straggler results must be
	// dropped, never replayed to the sink. Read-only after recovery.
	recoveredAcked *dedupSet
	recovered      int64

	// rep is the hot-standby replication plane, nil unless ReplicateAddr
	// is configured.
	rep *replicator

	// handshakes caps concurrent join handshakes (nil = uncapped).
	handshakes chan struct{}

	// events is the ring-buffered observability log (always allocated);
	// statusSrv is the HTTP endpoint, nil unless StatusAddr is set.
	events    *obs.EventLog
	statusSrv *obs.Server

	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// minReorderCap floors the reorder buffer so degenerate configurations
// (TargetFPS 0, sub-second buffers) still tolerate mild disorder.
const minReorderCap = 8

// Errors.
var (
	ErrStopped   = errors.New("runtime: master stopped")
	ErrNoWorkers = errors.New("runtime: no workers connected")
	// ErrReconnectExhausted is a worker's terminal failure: its reconnect
	// attempt budget ran out without rejoining the master.
	ErrReconnectExhausted = errors.New("runtime: reconnect attempts exhausted")
	// ErrStaleMaster reports a worker's epoch fence firing: the dialed
	// master is an older incarnation than the one that last deployed the
	// worker — a zombie primary outlived by its promoted standby.
	ErrStaleMaster = errors.New("runtime: master incarnation older than last joined epoch")
)

// StartMaster launches the master: it listens for workers and is
// immediately ready for Submit (which fails until a worker joins).
func StartMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	if cfg.App == nil {
		return nil, errors.New("runtime: nil app")
	}
	rc := routing.DefaultConfig(cfg.Policy)
	if cfg.Routing != nil {
		rc = *cfg.Routing
		rc.Policy = cfg.Policy
	}
	router, err := routing.NewRouter(rc, rand.New(rand.NewPCG(uint64(cfg.Seed), 99)))
	if err != nil {
		return nil, err
	}
	ln, err := cfg.Transport.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	rcap := int(cfg.ReorderBuffer.Seconds()*cfg.App.TargetFPS) + 1
	if rcap < minReorderCap {
		// A zero/tiny TargetFPS would collapse the buffer to a single
		// slot, turning every out-of-order arrival into a skip.
		rcap = minReorderCap
	}
	m := &Master{
		cfg:      cfg,
		ln:       ln,
		router:   router,
		reorder:  make(map[uint64]Result),
		rcap:     rcap,
		inflight: newInflightTable(cfg.Shards),
		epoch:    1,
		events:   obs.NewEventLog(256),
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	empty := make(map[string]*workerConn)
	m.workers.Store(&empty)
	m.table.Store(router.Table())
	m.pickSeq.Store(uint64(cfg.Seed))
	if cfg.MaxPendingHandshakes > 0 {
		m.handshakes = make(chan struct{}, cfg.MaxPendingHandshakes)
	}
	if cfg.JournalPath != "" {
		if err := m.initRecovery(); err != nil {
			_ = ln.Close()
			return nil, err
		}
	}
	if cfg.ReplicateAddr != "" {
		if m.journal == nil {
			_ = ln.Close()
			return nil, errors.New("runtime: ReplicateAddr requires JournalPath (replication streams the journal)")
		}
		rep, err := startReplicator(m)
		if err != nil {
			_ = ln.Close()
			_ = m.journal.close()
			return nil, err
		}
		m.rep = rep
	}
	if cfg.StatusAddr != "" {
		var opts []obs.ServeOption
		if cfg.StatusPprof {
			opts = append(opts, obs.WithPprof())
		}
		srv, err := obs.Serve(cfg.StatusAddr, m.StatusSnapshot, m.events, opts...)
		if err != nil {
			_ = ln.Close()
			if m.rep != nil {
				m.rep.close()
			}
			if m.journal != nil {
				_ = m.journal.close()
			}
			return nil, err
		}
		m.statusSrv = srv
	}
	m.wg.Add(2)
	go m.acceptLoop()
	go m.reconfigureLoop(rc.ReconfigurePeriod)
	if cfg.Heartbeat > 0 || cfg.BreakerAckTimeout > 0 || cfg.HedgeAfter > 0 {
		m.wg.Add(1)
		go m.monitorLoop()
	}
	if m.journal != nil && cfg.CheckpointEvery > 0 {
		m.wg.Add(1)
		go m.checkpointLoop()
	}
	return m, nil
}

// workerMap returns the current copy-on-write worker map for lock-free
// reads. The map itself is immutable; mutations install a fresh copy
// under workersMu.
func (m *Master) workerMap() map[string]*workerConn {
	return *m.workers.Load()
}

// withRouter runs f with the router locked, then publishes a fresh
// immutable snapshot for the lock-free Submit path. Every mutation that
// can change routing (membership, reconfigure, seeding) goes through
// here so the published table never lags the router.
func (m *Master) withRouter(f func(r *routing.Router)) {
	m.routerMu.Lock()
	f(m.router)
	t := m.router.Table()
	m.routerMu.Unlock()
	m.table.Store(t)
}

// estimateFlushEvery is the cadence at which banked per-worker ACK
// samples fold into the router (plus on demand from Stats/Snapshot and
// before every reconfigure), bounding estimate staleness to well under
// the 1 s reconfigure period that consumes them.
const estimateFlushEvery = 50 * time.Millisecond

// flushEstimates folds every worker's banked ACK samples into the router
// in one batched EWMA step per worker. The router lock is taken only
// when at least one worker has samples, so an idle master flushes for
// free. No table republish: routing weights change only on recompute
// (reconfigure or membership), which republishes through withRouter.
func (m *Master) flushEstimates(now time.Time) {
	locked := false
	for _, wc := range m.workerMap() {
		n := wc.ackN.Swap(0)
		if n == 0 {
			continue
		}
		lat := time.Duration(wc.ackLat.Swap(0) / n)
		proc := time.Duration(wc.ackProc.Swap(0) / n)
		if !locked {
			m.routerMu.Lock()
			locked = true
		}
		// Unknown downstream: the worker left between banking and flush;
		// its parked warm estimate already covers re-joins.
		_ = m.router.ObserveBatch(wc.id, lat, proc, n, now.Sub(m.start))
	}
	if locked {
		m.routerMu.Unlock()
	}
}

// pickU turns the shared splitmix64 counter into a uniform draw in
// [0, 1) for the snapshot's weighted-random routing — deterministic for
// a given seed and draw index, and lock-free for concurrent submitters.
func (m *Master) pickU() float64 {
	return float64(mix64(m.pickSeq.Add(1))>>11) * (1.0 / (1 << 53))
}

// initRecovery rebuilds the previous incarnation's state from checkpoint
// plus journal segments, persists a fresh checkpoint under the new epoch,
// and opens a new journal generation. It runs before the listener admits
// anyone, so re-joining workers always see the final epoch and warm
// estimates.
func (m *Master) initRecovery() error {
	rs, err := recoverState(m.cfg.JournalPath, m.cfg.CheckpointPath)
	if err != nil {
		return err
	}
	m.epoch = rs.prevEpoch + 1
	m.generation.Store(rs.generation + 1)
	m.recoveredAcked = newDedupSet(m.cfg.Shards, rs.acked)
	c := rs.counters
	m.inflight.seedLedger(&c)
	m.workerDropped.Store(c.WorkerDropped)
	m.dropErrors.Store(c.DropErrors)
	m.dropPanics.Store(c.DropPanics)
	m.dropDeadlines.Store(c.DropDeadlines)
	m.filtered.Store(c.Filtered)
	m.evicted.Store(c.Evicted)
	m.readopted.Store(c.Readopted)
	m.arrived, m.played, m.skipped = c.Arrived, c.Played, c.Skipped
	m.nextPlay = c.NextPlay
	m.nextSeq.Store(c.NextSeq)
	if len(rs.estimates) > 0 {
		m.withRouter(func(r *routing.Router) { r.SeedEstimates(rs.estimates) })
	}
	if rs.journalTruncated {
		m.cfg.Logger.Warn("swing master: truncated torn journal tail",
			"path", m.cfg.JournalPath)
	}
	// The un-acked backlog re-enters the in-flight table under a pseudo
	// worker named for the dead incarnation; once a worker joins (or the
	// retry deadline passes) it flows through the normal retransmit path,
	// keeping the ledger invariant across the crash.
	if len(rs.pending) > 0 {
		now := time.Now()
		from := fmt.Sprintf("crashed-epoch-%d", rs.prevEpoch)
		for id, e := range rs.pending {
			e.worker = from
			e.deadline = now.Add(m.cfg.RetryDeadline)
			e.sentAt = now
			m.inflight.track(id, e)
		}
		m.recovered = int64(len(rs.pending))
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.resubmitRecovered(from)
		}()
	}
	st := m.snapshotState()
	if err := saveCheckpoint(m.cfg.CheckpointPath, st); err != nil {
		return err
	}
	js, err := openJournalSet(m.cfg.JournalPath, m.cfg.Shards, m.epoch, m.generation.Load(), m.cfg.Fsync, m.cfg.FsyncEvery)
	if err != nil {
		return err
	}
	m.journal = js
	if rs.prevEpoch > 0 {
		m.events.Record(obs.EventEpoch, "",
			fmt.Sprintf("recovered from epoch %d", rs.prevEpoch), m.recovered)
		m.cfg.Logger.Info("swing master: recovered from crash",
			"epoch", m.epoch, "backlog", m.recovered,
			"submitted", c.Submitted, "acked", c.Acked,
			"estimates", len(rs.estimates))
	}
	return nil
}

// resubmitRecovered waits for the first worker of the new incarnation,
// then funnels the recovered backlog through the normal retransmit path.
// If no worker joins before the backlog's fresh retry deadline,
// retransmitAll sheds it there — accounted, never silently lost.
func (m *Master) resubmitRecovered(from string) {
	deadline := time.Now().Add(m.cfg.RetryDeadline)
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if len(m.workerMap()) > 0 || time.Now().After(deadline) {
			break
		}
		select {
		case <-ticker.C:
		case <-m.stop:
			// Backlog stays in the in-flight table; the final checkpoint
			// persists it as pending for the next incarnation.
			return
		}
	}
	if orphans := m.inflight.takeWorker(from); len(orphans) > 0 {
		m.retransmitAll(from, orphans)
	}
}

// Addr returns the master's listen address for workers to dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Workers returns the connected worker IDs.
func (m *Master) Workers() []string {
	ws := m.workerMap()
	out := make([]string, 0, len(ws))
	for id := range ws {
		out = append(out, id)
	}
	return out
}

// Snapshot returns the router's current per-worker view, with any banked
// ACK samples folded in first so callers observe estimates no staler
// than their own reads.
func (m *Master) Snapshot() []routing.Info {
	m.flushEstimates(time.Now())
	m.routerMu.Lock()
	defer m.routerMu.Unlock()
	return m.router.Snapshot()
}

// MasterStats summarizes the master's side of a run. The fault-tolerance
// ledger balances exactly: every distinct submitted tuple is eventually
// Acked (a result or drop notice arrived), Shed (abandoned at its retry
// deadline or attempt limit), or still InFlight — never silently lost.
type MasterStats struct {
	// Submitted counts distinct tuples successfully enqueued toward a
	// worker (retransmissions of the same tuple are not re-counted).
	Submitted int64
	// Arrived counts result frames carrying a result tuple.
	Arrived int64
	Played  int64
	Skipped int64
	// Acked counts in-flight entries released by a worker ack (results
	// and drop notices both ack).
	Acked int64
	// Retransmitted counts re-routed transmissions after worker failures.
	Retransmitted int64
	// Shed counts tuples abandoned after a worker failure because their
	// retry deadline or attempt budget was exhausted, plus tuples shed by
	// admission control (the ShedOverload subset), keeping the ledger
	// invariant Acked + Shed + InFlight == Submitted.
	Shed int64
	// ShedOverload is the subset of Shed caused by Submit-side admission
	// control: the in-flight high-water mark or a saturated swarm
	// (Λ > Σμ) shed the tuple oldest-first instead of blocking Submit.
	ShedOverload int64
	// Retransmitting counts tuples a dead worker orphaned that the
	// retransmit path has claimed but not yet re-routed or shed. They are
	// outside InFlight, and the exact ledger identity is
	// Acked + Shed + InFlight + Retransmitting == Submitted.
	Retransmitting int64
	// WorkerDropped counts tuples workers discarded on processor errors.
	WorkerDropped int64
	// DropErrors / DropPanics / DropDeadlines break WorkerDropped down by
	// the typed reason on each drop notice (legacy notices with no reason
	// count as errors). Filtered counts tuples a pipeline stage
	// legitimately discarded — acked, not dropped.
	DropErrors    int64
	DropPanics    int64
	DropDeadlines int64
	Filtered      int64
	// ShedPoison is the quarantine subset of Shed: tuples abandoned after
	// failing on PoisonAttempts distinct workers.
	ShedPoison int64
	// Hedged counts stragglers speculatively duplicated to a second
	// worker. A hedge duplicates a dispatch, not a tuple, so it annotates
	// the ledger without extending the balance.
	Hedged int64
	// Evicted counts hung workers the failure detector removed: their
	// connection was alive but silent past DeadAfter.
	Evicted int64
	// Epoch is the master incarnation number: 1 for a fresh start, one
	// more than the recovered epoch after each crash-recovery restart.
	Epoch uint64
	// Readopted counts workers from a previous incarnation re-admitted
	// after a master restart (their Hello carried an older epoch).
	Readopted int64
	// Recovered counts un-acked backlog tuples rebuilt from the journal
	// and checkpoint at startup.
	Recovered int64
	// InFlight is the current routed-but-unacknowledged tuple count.
	InFlight int
	// SubmitBatches counts SubmitBatch calls that took the batched fast
	// path (len > 1); BatchedTuples counts tuples dispatched inside
	// FrameTupleBatch frames, and BatchFrames the frames themselves —
	// BatchedTuples / BatchFrames is the realized coalescing factor.
	SubmitBatches int64
	BatchedTuples int64
	BatchFrames   int64
	// Workers is the per-worker liveness view, sorted by ID.
	Workers []WorkerStatus
}

// WorkerStatus is one worker's health as the master sees it: failure
// detector state, circuit breaker position, and the worker's own last
// self-report — enough to explain why a suspect/dead or breaker
// transition happened.
type WorkerStatus struct {
	ID string
	// Health is the failure detector state: healthy, suspect or dead.
	Health string
	// Silence is how long the worker has been quiet (any frame counts).
	Silence time.Duration
	// Breaker is the circuit state: closed, open, half-open — or "off"
	// when breakers are disabled.
	Breaker string
	// BreakerOpens counts this connection's cumulative open transitions.
	BreakerOpens int64
	// QueueLen, Processed, Dropped and Reconnects mirror the worker's
	// latest Stats self-report (Processed/Dropped are cumulative across
	// the device's reconnects).
	QueueLen   int
	Processed  int64
	Dropped    int64
	Reconnects int64
	// Panics / Deadlined are the worker's sandbox counters: operator
	// panics recovered per-tuple, and tuples cut off by the processing
	// deadline watchdog.
	Panics    int64
	Deadlined int64
}

// Stats returns the ledger, sink counters and the per-worker liveness
// view. The ledger fields come from one consistent cross-shard sample
// (every shard locked at once), so the invariant
// Acked + Shed + InFlight == Submitted holds in every returned snapshot
// even while Submit and ACK traffic races on other cores — the one
// documented exception being a dead worker's backlog mid-retransmit.
// Banked ACK samples are flushed first, so a caller that observes
// Acked == n also observes all n samples in the router's estimates.
func (m *Master) Stats() MasterStats {
	m.flushEstimates(time.Now())
	led, inflight := m.inflight.ledgerSnapshot()
	st := MasterStats{
		Submitted:      led.submitted,
		Acked:          led.acked,
		Retransmitted:  led.retransmitted,
		Shed:           led.shed,
		ShedOverload:   led.shedOverload,
		ShedPoison:     led.shedPoison,
		Hedged:         led.hedged,
		Retransmitting: led.orphaned,
		WorkerDropped:  m.workerDropped.Load(),
		DropErrors:     m.dropErrors.Load(),
		DropPanics:     m.dropPanics.Load(),
		DropDeadlines:  m.dropDeadlines.Load(),
		Filtered:       m.filtered.Load(),
		Evicted:        m.evicted.Load(),
		Epoch:          m.epoch,
		Readopted:      m.readopted.Load(),
		Recovered:      m.recovered,
		InFlight:       inflight,
		SubmitBatches:  m.batchSubmits.Load(),
		BatchedTuples:  m.batchTuples.Load(),
		BatchFrames:    m.batchFrames.Load(),
	}
	m.sinkMu.Lock()
	st.Arrived, st.Played, st.Skipped = m.arrived, m.played, m.skipped
	m.sinkMu.Unlock()
	now := time.Now()
	for _, wc := range m.workerMap() {
		wc.mu.Lock()
		ws := WorkerStatus{
			ID:           wc.id,
			Health:       wc.health.String(),
			Silence:      now.Sub(wc.lastHeard),
			Breaker:      "off",
			BreakerOpens: wc.br.opens,
			QueueLen:     wc.queueLen,
			Processed:    wc.processed,
			Dropped:      wc.dropped,
			Reconnects:   wc.reconnects,
			Panics:       wc.panics,
			Deadlined:    wc.deadlined,
		}
		if wc.br.enabled() {
			ws.Breaker = wc.br.state.String()
		}
		wc.mu.Unlock()
		st.Workers = append(st.Workers, ws)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

// acceptLoop admits workers for the life of the master. Transient Accept
// errors (a failed handshake, a momentarily exhausted fd table) are
// retried with backoff rather than abandoning the listener — exiting here
// would permanently lock every future worker out of the swarm. Only a
// closed listener or a stopped master ends the loop.
func (m *Master) acceptLoop() {
	defer m.wg.Done()
	const maxAcceptBackoff = time.Second
	backoff := 5 * time.Millisecond
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			select {
			case <-m.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) || errors.Is(err, transport.ErrClosed) {
				return
			}
			m.cfg.Logger.Warn("swing master: accept (will retry)", "err", err, "backoff", backoff)
			select {
			case <-time.After(backoff):
			case <-m.stop:
				return
			}
			if backoff *= 2; backoff > maxAcceptBackoff {
				backoff = maxAcceptBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handleWorker(conn)
		}()
	}
}

// handleWorker admits one connection through the bounded join handshake,
// then serves it until it breaks.
func (m *Master) handleWorker(conn net.Conn) {
	if m.handshakes != nil {
		select {
		case m.handshakes <- struct{}{}:
		default:
			// The pending-handshake cap is full: refuse immediately rather
			// than pin another goroutine on a possibly half-open connection.
			m.cfg.Logger.Warn("swing master: handshake cap reached, refusing connection",
				"cap", cap(m.handshakes))
			_ = conn.Close()
			return
		}
	}
	wc, ok := m.admitWorker(conn)
	if m.handshakes != nil {
		<-m.handshakes
	}
	if !ok {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.writeLoop(wc)
	}()
	m.readLoop(wc) // returns when the connection breaks
	m.dropWorker(wc)
}

// admitWorker performs the join workflow (paper §IV-B steps 2-3) under
// the hello deadline: receive Hello, deploy the operator units, start,
// and register the worker. A connection that stalls anywhere in the
// handshake is closed when the deadline fires, so half-open connects
// cannot pin registration goroutines.
func (m *Master) admitWorker(conn net.Conn) (*workerConn, bool) {
	if m.cfg.HelloTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(m.cfg.HelloTimeout))
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.FrameHello {
		_ = conn.Close()
		return nil, false
	}
	var hello wire.Hello
	if err := wire.DecodeJSON(payload, &hello); err != nil || hello.DeviceID == "" {
		_ = conn.Close()
		return nil, false
	}
	if hello.App != m.cfg.App.Name() {
		m.cfg.Logger.Warn("swing master: app mismatch", "worker", hello.DeviceID, "app", hello.App)
		_ = conn.Close()
		return nil, false
	}
	if m.journal != nil && hello.Epoch > m.epoch {
		// The worker was joined to a later incarnation than this one — we
		// are the stale master (a zombie that survived its replacement).
		// Refusing beats adopting a worker the real master owns.
		m.cfg.Logger.Warn("swing master: refusing worker from a newer incarnation",
			"worker", hello.DeviceID, "workerEpoch", hello.Epoch, "epoch", m.epoch)
		_ = conn.Close()
		return nil, false
	}
	readopted := hello.Epoch != 0 && hello.Epoch < m.epoch
	wc := &workerConn{
		id:        hello.DeviceID,
		conn:      conn,
		out:       make(chan outFrame, m.cfg.OutboxCap),
		slots:     make(chan struct{}, m.cfg.OutboxCap),
		gone:      make(chan struct{}),
		lastHeard: time.Now(),
		br: breaker{
			threshold: m.cfg.BreakerThreshold,
			cooldown:  m.cfg.BreakerCooldown,
		},
	}

	// Deploy: every worker activates the full operator pipeline (the
	// vertical-slice deployment of Figure 3). The epoch tells a
	// re-adopted worker which incarnation owns it now.
	deploy := wire.Deploy{
		Units:             m.cfg.App.Graph.Operators(),
		ReportEveryMillis: 1000,
		Epoch:             m.epoch,
		Parallelism:       m.cfg.Parallelism,
		AckLingerMicros:   m.cfg.AckLinger.Microseconds(),
		OpDeadlineMillis:  m.cfg.OpDeadline.Milliseconds(),
	}
	db, err := wire.EncodeJSON(deploy)
	if err != nil {
		_ = conn.Close()
		return nil, false
	}
	if err := wire.WriteFrame(conn, wire.FrameDeploy, db); err != nil {
		_ = conn.Close()
		return nil, false
	}
	if err := wire.WriteFrame(conn, wire.FrameStart, nil); err != nil {
		_ = conn.Close()
		return nil, false
	}

	m.workersMu.Lock()
	cur := m.workerMap()
	if _, dup := cur[wc.id]; dup {
		m.workersMu.Unlock()
		m.cfg.Logger.Warn("swing master: duplicate worker id", "worker", wc.id)
		_ = conn.Close()
		return nil, false
	}
	next := make(map[string]*workerConn, len(cur)+1)
	for id, c := range cur {
		next[id] = c
	}
	next[wc.id] = wc
	m.workers.Store(&next)
	m.workersMu.Unlock()

	if m.cfg.HelloTimeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}

	m.withRouter(func(r *routing.Router) { err = r.AddDownstream(wc.id) })
	if err != nil {
		m.cfg.Logger.Warn("swing master: register worker", "worker", wc.id, "err", err)
	}
	if readopted {
		m.readopted.Add(1)
		m.events.Record(obs.EventReadopted, wc.id,
			fmt.Sprintf("from epoch %d", hello.Epoch), 0)
		m.cfg.Logger.Info("swing master: re-adopted worker from previous incarnation",
			"worker", wc.id, "workerEpoch", hello.Epoch, "epoch", m.epoch)
	} else {
		m.events.Record(obs.EventWorkerJoin, wc.id, "", 0)
		m.cfg.Logger.Info("swing master: worker joined", "worker", wc.id)
	}
	return wc, true
}

// sendFlushBytes caps how many coalesced frame bytes the per-connection
// writer packs into one Write call; past it the batch flushes even while
// more frames wait, bounding both the scratch buffer and the latency a
// queued liveness ping can sit behind tuple traffic.
const sendFlushBytes = 256 << 10

// slowWriteThreshold decides when a peer is congested: a Write that takes
// longer than this was absorbed by the peer's backpressure, not its
// bandwidth. The writer then stops coalescing — a multi-frame batch
// written to a stalled link would hold every frame's queue slot for the
// whole (long) write, turning the steady one-slot-per-service-time
// trickle the router's backpressure signal relies on into rare bursts
// that can block a Submit for seconds.
const slowWriteThreshold = 2 * time.Millisecond

// writeLoop drains the worker's send queue, coalescing every frame
// already waiting into one buffer flushed with a single Write call —
// on TCP, one syscall and one segment train instead of one per frame.
// A slow peer therefore costs one blocked writer goroutine, never the
// submitters or the monitor, which enqueue and move on; and a ping
// enqueued behind a burst of tuples rides the same flush rather than
// waiting out per-frame writes.
func (m *Master) writeLoop(wc *workerConn) {
	scratch := wire.GetBuf(0)
	defer scratch.Release()
	congested := false
	for {
		select {
		case f := <-wc.out:
			nframes := 1
			buf := m.appendOut(wc, scratch.B[:0], f)
			if !congested {
			coalesce:
				for len(buf) < sendFlushBytes {
					select {
					case f = <-wc.out:
						nframes++
						buf = m.appendOut(wc, buf, f)
					default:
						break coalesce // queue idle: flush what we have
					}
				}
			}
			scratch.B = buf
			var err error
			if len(buf) > 0 {
				begin := time.Now()
				wc.writeMu.Lock()
				_, err = wc.conn.Write(buf)
				wc.writeMu.Unlock()
				congested = time.Since(begin) > slowWriteThreshold
			}
			if err != nil {
				return // tokens stay taken: the connection is dead
			}
			// Only now that the bytes are written do the batch's queue
			// slots free up — a stalled peer keeps reading as "full" to
			// the router even while its frames sit in the batch buffer.
			for i := 0; i < nframes; i++ {
				<-wc.slots
			}
		case <-wc.gone:
			return
		case <-m.stop:
			return
		}
	}
}

// appendOut encodes one queued frame onto the coalescing buffer and
// releases its pooled payload. An oversized frame is dropped (AppendFrame
// leaves dst untouched): its tuple resurfaces through the retry path
// instead of poisoning the connection.
func (m *Master) appendOut(wc *workerConn, dst []byte, f outFrame) []byte {
	out, err := wire.AppendFrame(dst, f.typ, f.payload)
	f.release()
	if err != nil {
		m.cfg.Logger.Warn("swing master: dropping unsendable frame",
			"worker", wc.id, "type", f.typ, "err", err)
		return dst
	}
	return out
}

func (m *Master) readLoop(wc *workerConn) {
	// One closure per connection, reused across batch frames, so decoding
	// a batch costs no per-frame allocation.
	onEntry := func(entry []byte) error {
		m.handleResult(wc, entry)
		return nil
	}
	for {
		typ, buf, err := wire.ReadFrameBuf(wc.conn)
		if err != nil {
			return
		}
		var payload []byte
		if buf != nil {
			payload = buf.B
		}
		// Any frame is proof of life for the failure detector; pongs exist
		// so even an idle link produces them.
		wc.noteHeard(time.Now())
		switch typ {
		case wire.FrameResult:
			m.handleResult(wc, payload)
		case wire.FrameResultBatch:
			if err := wire.DecodeResultBatch(payload, onEntry); err != nil {
				m.cfg.Logger.Warn("swing master: bad result batch",
					"worker", wc.id, "err", err)
			}
		case wire.FrameStats:
			var st wire.Stats
			if err := wire.DecodeJSON(payload, &st); err == nil {
				wc.mu.Lock()
				wc.processed = st.Processed
				wc.dropped = st.Dropped
				wc.queueLen = st.QueueLen
				wc.reconnects = st.Reconnects
				wc.panics = st.Panics
				wc.deadlined = st.Deadlined
				wc.mu.Unlock()
			}
		case wire.FramePong:
			// lastHeard is already refreshed above; the echo payload is
			// not otherwise needed.
		default:
			// Ignore unexpected frames from workers.
		}
		// handleResult copies what it keeps (owned tuple decode), so the
		// frame buffer can return to the pool here.
		buf.Release()
	}
}

// monitorLoop is the failure detector and breaker sweeper: each tick it
// pings every worker, advances health states from observed silence,
// evicts workers that crossed DeadAfter, and charges breakers for
// in-flight tuples stuck past the ack timeout.
func (m *Master) monitorLoop() {
	defer m.wg.Done()
	period := m.cfg.Heartbeat
	if period <= 0 {
		// Breaker-only mode: sweep ack timeouts without heartbeats.
		period = 100 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			if m.cfg.Heartbeat > 0 {
				m.checkWorkers(now)
			}
			if m.cfg.BreakerAckTimeout > 0 {
				for id, n := range m.inflight.sweepTimeouts(now, m.cfg.BreakerAckTimeout) {
					m.chargeBreaker(id, n, now)
				}
			}
			if m.cfg.HedgeAfter > 0 {
				m.hedgeSweep(now)
			}
		case <-m.stop:
			return
		}
	}
}

// checkWorkers pings every worker and advances its health state. Pings
// are enqueued without blocking: on a backed-up link the queue is already
// full of traffic the worker is not consuming, which is exactly the
// silence the detector measures — a blocked ping would only stall the
// monitor.
func (m *Master) checkWorkers(now time.Time) {
	for _, wc := range m.workerMap() {
		wc.mu.Lock()
		wc.pingSeq++
		ping := wire.Ping{Seq: wc.pingSeq, SentNanos: now.UnixNano()}
		prev := wc.health
		silence := now.Sub(wc.lastHeard)
		next := nextHealth(prev, silence, m.cfg.SuspectAfter, m.cfg.DeadAfter)
		wc.health = next
		wc.mu.Unlock()
		if pb, err := wire.EncodeJSON(ping); err == nil {
			select {
			case wc.slots <- struct{}{}:
				wc.out <- outFrame{typ: wire.FramePing, payload: pb}
			default: // queue full: the silence clock is already running
			}
		}
		if next == prev {
			continue
		}
		switch next {
		case healthSuspect:
			m.events.Record(obs.EventSuspect, wc.id, "silence "+silence.String(), 0)
			m.cfg.Logger.Warn("swing master: worker suspect", "worker", wc.id,
				"silence", silence)
		case healthHealthy:
			m.events.Record(obs.EventRecovered, wc.id, "", 0)
			m.cfg.Logger.Info("swing master: worker recovered", "worker", wc.id)
		case healthDead:
			m.evicted.Add(1)
			m.events.Record(obs.EventEvicted, wc.id, "silence "+silence.String(), 0)
			m.cfg.Logger.Warn("swing master: evicting hung worker", "worker", wc.id,
				"silence", silence)
			// Closing the connection funnels the eviction through the
			// same dropWorker path as a broken link: the routing table
			// sheds the worker and its backlog retransmits to survivors.
			_ = wc.conn.Close()
		}
	}
}

// chargeBreaker records n ack-timeout failures against a worker's
// breaker, logging open transitions.
func (m *Master) chargeBreaker(id string, n int, now time.Time) {
	wc, ok := m.workerMap()[id]
	if !ok {
		return // worker already gone; its backlog is being retransmitted
	}
	wc.mu.Lock()
	prev := wc.br.state
	for i := 0; i < n; i++ {
		wc.br.onFailure(now)
	}
	next := wc.br.state
	wc.mu.Unlock()
	if prev != breakerOpen && next == breakerOpen {
		m.events.Record(obs.EventBreakerOpen, id, "ack timeouts", int64(n))
		m.cfg.Logger.Warn("swing master: breaker opened", "worker", id,
			"timeouts", n, "ackTimeout", m.cfg.BreakerAckTimeout)
	}
}

// dropWorker handles an abrupt leave: remove from the routing table so
// traffic re-routes immediately (§IV-C), then recover the worker's
// un-acked tuples — each is retransmitted to a surviving worker or shed
// at its deadline, never silently lost.
func (m *Master) dropWorker(wc *workerConn) {
	m.workersMu.Lock()
	cur := m.workerMap()
	if cur[wc.id] != wc {
		m.workersMu.Unlock()
		return
	}
	next := make(map[string]*workerConn, len(cur))
	for id, c := range cur {
		if c != wc {
			next[id] = c
		}
	}
	m.workers.Store(&next)
	m.workersMu.Unlock()

	close(wc.gone)
	_ = wc.conn.Close()

	m.withRouter(func(r *routing.Router) {
		if r.Has(wc.id) {
			_ = r.RemoveDownstream(wc.id)
		}
	})
	m.events.Record(obs.EventWorkerLeft, wc.id, "", 0)
	m.cfg.Logger.Info("swing master: worker left", "worker", wc.id)

	if orphans := m.inflight.takeWorker(wc.id); len(orphans) > 0 {
		// Resubmission can block on surviving workers' backpressure, so
		// it runs off the connection goroutine.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.retransmitAll(wc.id, orphans)
		}()
	}
}

// retransmitAll re-routes a dead worker's un-acked tuples. A tuple past
// its retry deadline or attempt budget — or with no surviving worker to
// take it — is shed and accounted, the streaming analogue of the reorder
// buffer skipping a stale frame.
func (m *Master) retransmitAll(from string, orphans []*inflightEntry) {
	var resent, shed int64
	for _, e := range orphans {
		var reason string
		switch {
		case int(e.attempt)+1 >= m.cfg.MaxAttempts:
			reason = "attempts exhausted"
		case time.Now().After(e.deadline):
			reason = "deadline passed"
		default:
			if err := m.submit(e.t, e.attempt+1, e.deadline, e.failedOn); err != nil {
				reason = err.Error()
			} else {
				resent++
			}
		}
		if reason != "" {
			shed++
			m.inflight.shedOrphan(e.t.ID)
			m.journalShed(e.t.ID, false)
			m.cfg.Logger.Info("swing master: shed tuple",
				"tuple", e.t.ID, "seq", e.t.SeqNo, "worker", from, "reason", reason)
		}
	}
	if resent > 0 {
		m.events.Record(obs.EventRetransmit, from, "backlog re-routed", resent)
	}
	if shed > 0 {
		m.events.Record(obs.EventShed, from, "retry budget exhausted", shed)
	}
}

func (m *Master) reconfigureLoop(period time.Duration) {
	defer m.wg.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	flush := time.NewTicker(estimateFlushEvery)
	defer flush.Stop()
	var lastSubmitted int64
	for {
		select {
		case <-flush.C:
			m.flushEstimates(time.Now())
		case <-ticker.C:
			led, _ := m.inflight.ledgerSnapshot()
			lambda := float64(led.submitted-lastSubmitted) / period.Seconds()
			lastSubmitted = led.submitted
			// Fold the freshest banked samples before recomputing, so the
			// new table reflects every ACK up to this tick.
			m.flushEstimates(time.Now())
			m.withRouter(func(r *routing.Router) { r.Reconfigure(lambda) })
		case <-m.stop:
			return
		}
	}
}

// Submit routes one tuple into the swarm. With admission control off
// (InflightHighWater 0) it blocks when the chosen worker's send queue is
// full (TCP backpressure); with it on, Submit never blocks — overload
// sheds the oldest in-flight tuples instead, counted in ShedOverload.
// It returns ErrNoWorkers when the swarm is empty or every worker's
// breaker is open. The tuple is tracked until a worker acknowledges it;
// if its worker dies first it is retransmitted to a survivor or shed at
// its retry deadline.
func (m *Master) Submit(t *tuple.Tuple) error {
	return m.submit(t, 0, time.Now().Add(m.cfg.RetryDeadline), nil)
}

// submitBatchMaxBytes caps one FrameTupleBatch payload: a group bound
// for one worker is split into frames of at most this many tuple bytes,
// which keeps the pooled frame buffer recyclable (below wire's pooling
// cap) and matches the writer's coalescing flush threshold — a bigger
// frame would not cut syscalls further, only add queue latency.
const submitBatchMaxBytes = 256 << 10

// SubmitBatch routes a slice of fresh tuples into the swarm as one
// dataplane operation: the routing snapshot is loaded once, ledger
// inserts take one lock per touched in-flight shard, journal records
// land under one group-commit entry per touched segment, and tuples
// bound for the same worker coalesce into FrameTupleBatch frames — one
// queue slot, one header and one Write per frame instead of per tuple.
//
// Per-tuple semantics are preserved: every sequence number is burned,
// admission shedding runs once up front, breaker admission is checked
// per tuple, and any tuple the snapshot cannot place (no worker, full
// queue, refused breaker, enqueue race) falls back to the per-tuple
// path with its steering loop. Retransmission, hedging and poison
// quarantine keep operating per tuple on re-dispatch; Submit is the
// batch-of-one special case of this path. Returns ErrStopped if the
// master shuts down mid-batch (tuples not yet dispatched stay
// untracked, exactly as per-tuple Submit leaves them), otherwise the
// first per-tuple routing error while the rest of the batch proceeds.
func (m *Master) SubmitBatch(ts []*tuple.Tuple) error {
	switch len(ts) {
	case 0:
		return nil
	case 1:
		return m.Submit(ts[0])
	}
	deadline := time.Now().Add(m.cfg.RetryDeadline)
	for _, t := range ts {
		for {
			cur := m.nextSeq.Load()
			if t.SeqNo < cur || m.nextSeq.CompareAndSwap(cur, t.SeqNo+1) {
				break
			}
		}
	}
	if m.cfg.InflightHighWater > 0 {
		m.admissionShed()
	}
	m.batchSubmits.Add(1)

	// One routing pass against one snapshot and one worker map, grouping
	// tuples by destination. Breaker admission stays per tuple so a
	// half-open breaker still meters probes one at a time; anything the
	// snapshot cannot place falls to the slow list.
	table := m.table.Load()
	workers := m.workerMap()
	now := time.Now()
	groups := make(map[*workerConn][]*tuple.Tuple, 8)
	var order []*workerConn
	var slow []*tuple.Tuple
	skip := func(id string) bool {
		wc, ok := workers[id]
		return !ok || len(wc.slots) == cap(wc.slots)
	}
	for _, t := range ts {
		id, err := table.Pick(m.pickU(), skip)
		if err != nil {
			slow = append(slow, t)
			continue
		}
		wc, ok := workers[id]
		if !ok {
			slow = append(slow, t)
			continue
		}
		wc.mu.Lock()
		wasOpen := wc.br.state == breakerOpen
		admitted := wc.br.allow(now)
		wc.mu.Unlock()
		if !admitted {
			slow = append(slow, t)
			continue
		}
		if wasOpen {
			m.events.Record(obs.EventBreakerProbe, id, "half-open probe admitted", 0)
		}
		if _, seen := groups[wc]; !seen {
			order = append(order, wc)
		}
		groups[wc] = append(groups[wc], t)
	}

	var firstErr error
	for _, wc := range order {
		if err := m.dispatchGroup(wc, groups[wc], deadline); err != nil {
			if errors.Is(err, ErrStopped) {
				// Groups not yet dispatched were never journaled or
				// tracked; like per-tuple Submit on stop, their tuples
				// leave only burned sequence numbers behind.
				return err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, t := range slow {
		if err := m.submitFrom(t, 0, deadline, nil, false); err != nil {
			if errors.Is(err, ErrStopped) {
				return err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// dispatchGroup ships one batch's tuples bound for a single worker:
// write-ahead records first (one group commit per touched segment),
// then ledger inserts (one lock per touched shard), then the tuples
// packed into FrameTupleBatch frames of at most submitBatchMaxBytes,
// each enqueued as one outFrame holding one queue slot. Tuples that
// cannot be enqueued are reclaimed and re-routed per tuple; their
// journal records already exist, so the fallback skips journaling.
func (m *Master) dispatchGroup(wc *workerConn, group []*tuple.Tuple, deadline time.Time) error {
	now := time.Now()
	stamp := now.UnixNano()
	for _, t := range group {
		t.EmitNanos = stamp
		t.Attempt = 0
	}
	// Journal before tracking or enqueueing — the same write-ahead order
	// as the per-tuple path: once a tuple can reach a worker, its record
	// must already exist. appendSubmitBatch regroups the slice by segment
	// in place; intra-batch order is not significant (the sink reorders
	// by sequence number, recovery merges by journal sequence).
	if m.journal != nil {
		if err := m.journal.appendSubmitBatch(group); err != nil {
			m.cfg.Logger.Warn("swing master: journal append", "err", err)
		}
	}
	// One backing block for the whole batch's entries: a batch's tuples
	// retire together in the common case, so per-entry allocations would
	// only fragment the heap. A straggler pins its batch's block (a few
	// KiB) until the last entry releases — a fine trade for 1 allocation
	// where there were len(group).
	block := make([]inflightEntry, len(group))
	entries := make([]*inflightEntry, len(group))
	for i, t := range group {
		block[i] = inflightEntry{t: t, worker: wc.id, attempt: 0, deadline: deadline, sentAt: now}
		entries[i] = &block[i]
	}
	m.inflight.trackSubmitBatch(entries)

	var (
		firstErr error
		batch    wire.TupleBatch
		cur      *tuple.Tuple
	)
	appendCur := func(dst []byte) ([]byte, error) { return tuple.AppendMarshal(dst, cur) }
	chunk := make([]*tuple.Tuple, 0, len(group))
	i := 0
	for i < len(group) {
		fb := wire.GetBuf(0)
		batch.SetBuf(fb.B)
		chunk = chunk[:0]
		for i < len(group) && batch.Size() < submitBatchMaxBytes {
			cur = group[i]
			i++
			start := batch.Begin()
			if err := batch.Append(appendCur); err != nil {
				// Unmarshalable tuple: it is journaled and tracked, so
				// un-count it rather than strand an entry nothing sends.
				batch.Cancel(start)
				m.inflight.reclaim(cur.ID, wc.id)
				if firstErr == nil {
					firstErr = fmt.Errorf("runtime: submit: %w", err)
				}
				continue
			}
			batch.End(start)
			chunk = append(chunk, cur)
		}
		payload := batch.Payload()
		if payload == nil {
			fb.Release()
			continue
		}
		fb.B = payload // recover the (possibly reallocated) backing
		if err := m.enqueueBatchFrame(wc, fb, chunk, deadline); err != nil {
			if errors.Is(err, ErrStopped) {
				for _, t := range group[i:] {
					m.inflight.reclaim(t.ID, wc.id)
				}
				return err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// enqueueBatchFrame enqueues one packed FrameTupleBatch toward wc,
// taking one queue slot for the whole frame — the slot semaphore counts
// frames, matching the writer's one-Write-per-frame cost and the shaped
// transport's per-frame loss unit. On a full queue (admission mode) or
// a dead worker the frame's tuples are reclaimed and re-routed per
// tuple; on master stop they are reclaimed and ErrStopped returned.
func (m *Master) enqueueBatchFrame(wc *workerConn, fb *wire.Buf, chunk []*tuple.Tuple, deadline time.Time) error {
	if m.cfg.InflightHighWater > 0 {
		select {
		case wc.slots <- struct{}{}:
		default:
			fb.Release()
			return m.redispatchChunk(wc, chunk, deadline)
		}
	} else {
		select {
		case wc.slots <- struct{}{}:
		case <-wc.gone:
			fb.Release()
			return m.redispatchChunk(wc, chunk, deadline)
		case <-m.stop:
			fb.Release()
			for _, t := range chunk {
				m.inflight.reclaim(t.ID, wc.id)
			}
			return ErrStopped
		}
	}
	wc.out <- outFrame{typ: wire.FrameTupleBatch, payload: fb.B, buf: fb}
	m.noteDispatchedN(wc, len(chunk))
	m.batchFrames.Add(1)
	m.batchTuples.Add(int64(len(chunk)))
	return nil
}

// redispatchChunk re-routes a frame's tuples after a failed enqueue:
// each is reclaimed (un-counting the dispatch) and re-submitted through
// the per-tuple path, which steers to another worker, blocks or sheds
// per the admission mode. A tuple whose entry a dead worker's drop path
// already claimed belongs to the retransmitter and is skipped.
func (m *Master) redispatchChunk(wc *workerConn, chunk []*tuple.Tuple, deadline time.Time) error {
	var firstErr error
	for _, t := range chunk {
		if _, ours := m.inflight.reclaim(t.ID, wc.id); !ours {
			continue
		}
		if err := m.submitFrom(t, 0, deadline, nil, true); err != nil {
			if errors.Is(err, ErrStopped) {
				return err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// noteDispatchedN is noteDispatched for a batch frame: one lock, n
// probe-slot claims, pairing each admitted tuple's br.allow with its
// dispatch.
func (m *Master) noteDispatchedN(wc *workerConn, n int) {
	wc.mu.Lock()
	for i := 0; i < n; i++ {
		wc.br.noteDispatch()
	}
	wc.mu.Unlock()
}

// admissionShed is Submit-side overload protection, run before a fresh
// tuple is routed. Two triggers: the in-flight table crossing its
// high-water mark, and the router reporting Λ > Σμ infeasibility while
// the table holds at least one outbox worth of backlog. Victims leave
// the in-flight table for the Shed column (ShedOverload subset), so the
// ledger invariant Acked + Shed + InFlight == Submitted is untouched; a
// straggler ack for a shed tuple finds no entry and is ignored.
func (m *Master) admissionShed() {
	size := m.inflight.size()
	var victims []*inflightEntry
	if hw := m.cfg.InflightHighWater; hw > 0 && size >= hw {
		victims = m.inflight.shedOldest(size - hw + 1)
	} else if size >= m.cfg.OutboxCap && m.routerOverloaded() {
		victims = m.inflight.shedOldest(1)
	}
	for _, e := range victims {
		m.journalShed(e.t.ID, true)
		m.cfg.Logger.Info("swing master: shed tuple",
			"tuple", e.t.ID, "seq", e.t.SeqNo, "worker", e.worker, "reason", "overload")
	}
	if len(victims) > 0 {
		m.events.Record(obs.EventShed, "", "overload", int64(len(victims)))
	}
}

func (m *Master) routerOverloaded() bool {
	return m.table.Load().Overloaded()
}

// submit is the routing core behind Submit and retransmission. attempt 0
// is the first transmission and counts into the submitted total that
// feeds the Λ estimate; retransmissions (attempt > 0) are tracked
// separately so retried traffic cannot inflate the input-rate measurement
// that drives Worker Selection. avoid lists workers this tuple already
// burned (poison-quarantine attempt history); routing steers around them
// and the list is carried onto the new in-flight entry.
func (m *Master) submit(t *tuple.Tuple, attempt uint8, deadline time.Time, avoid []string) error {
	return m.submitFrom(t, attempt, deadline, avoid, false)
}

// submitFrom is submit with the write-ahead state made explicit:
// journaled marks a tuple whose submit record was already appended by
// SubmitBatch's group commit, so a fallback re-route here must not
// append a second one (recovery would double-count it).
func (m *Master) submitFrom(t *tuple.Tuple, attempt uint8, deadline time.Time, avoid []string, journaled bool) error {
	if attempt == 0 {
		// nextSeq is the source-resumption high-water mark: every sequence
		// number handed to Submit is burned, successful or not, so a
		// restarted source never reuses one.
		for {
			cur := m.nextSeq.Load()
			if t.SeqNo < cur || m.nextSeq.CompareAndSwap(cur, t.SeqNo+1) {
				break
			}
		}
		if m.cfg.InflightHighWater > 0 {
			m.admissionShed()
		}
	}
	// refused collects workers whose breaker rejected this tuple, so
	// probing re-draws steer around them; the snapshot's weighted mode
	// ignores avoid by design, hence the bounded-retry loop. Routing runs
	// against the RCU-published table — no lock on this path.
	var refused map[string]bool
	for tries := 0; ; tries++ {
		select {
		case <-m.stop:
			return ErrStopped
		default:
		}
		workers := m.workerMap()
		id, err := m.table.Load().Pick(m.pickU(), func(id string) bool {
			if refused[id] {
				return true
			}
			for _, a := range avoid {
				if a == id {
					return true
				}
			}
			wc, ok := workers[id]
			return !ok || len(wc.slots) == cap(wc.slots)
		})
		if err != nil {
			return ErrNoWorkers
		}
		wc, ok := workers[id]
		if !ok {
			if tries > 8 {
				return ErrNoWorkers
			}
			continue // routed to a worker that just left; re-route
		}
		now := time.Now()
		wc.mu.Lock()
		wasOpen := wc.br.state == breakerOpen
		admitted := wc.br.allow(now)
		wc.mu.Unlock()
		if admitted && wasOpen {
			m.events.Record(obs.EventBreakerProbe, id, "half-open probe admitted", 0)
		}
		if !admitted {
			if refused == nil {
				refused = make(map[string]bool)
			}
			refused[id] = true
			if tries > 8 {
				return ErrNoWorkers
			}
			continue // breaker open: steer to another worker
		}
		t.EmitNanos = now.UnixNano()
		t.Attempt = attempt
		// Encode into a pooled buffer; ownership passes to the writer
		// goroutine on enqueue, which releases it after coalescing.
		fb := wire.GetBuf(0)
		frame, err := tuple.AppendMarshal(fb.B[:0], t)
		if err != nil {
			fb.Release()
			return fmt.Errorf("runtime: submit: %w", err)
		}
		fb.B = frame
		// Journal before tracking or enqueueing: once the tuple can reach
		// a worker, the write-ahead record must already exist, or a crash
		// here would lose the tuple silently instead of retransmitting it.
		if m.journal != nil && !journaled {
			journaled = true
			m.journalDispatch(t, attempt)
		}
		// Track before enqueueing so the tuple is never in a send queue
		// without an owner; an ack arriving immediately after the send
		// always finds the entry. trackSubmit counts the attempt in the
		// owning shard's ledger inside the same critical section as the
		// insert; a failed enqueue below un-counts via reclaim, so the
		// ledger never observes a tracked-but-uncounted tuple.
		m.inflight.trackSubmit(t.ID, &inflightEntry{
			t: t, worker: id, attempt: attempt, deadline: deadline, sentAt: now,
			failedOn: avoid,
		})
		if m.cfg.InflightHighWater > 0 {
			// Admission-control mode: never block the caller. A full queue
			// reclaims the entry and re-routes; when nowhere can take the
			// tuple it is counted submitted-then-shed so the ledger still
			// accounts for it.
			select {
			case wc.slots <- struct{}{}:
				wc.out <- outFrame{typ: wire.FrameTuple, payload: frame, buf: fb}
				m.noteDispatched(wc)
				return nil
			default:
				fb.Release()
				if _, ours := m.inflight.reclaim(t.ID, id); !ours {
					// The worker died and its drop path claimed the entry;
					// the retransmitter owns the tuple now and the attempt
					// stays counted.
					return nil
				}
				if tries > 8 {
					m.inflight.shedUntracked(t.ID, attempt)
					m.journalShed(t.ID, true)
					m.events.Record(obs.EventShed, id, "all queues full", 1)
					m.cfg.Logger.Info("swing master: shed tuple",
						"tuple", t.ID, "seq", t.SeqNo, "reason", "all queues full")
					return nil
				}
				continue
			}
		}
		select {
		case wc.slots <- struct{}{}:
			wc.out <- outFrame{typ: wire.FrameTuple, payload: frame, buf: fb}
			m.noteDispatched(wc)
			return nil
		case <-wc.gone:
			fb.Release()
			// Worker died while we were blocked. If the drop path already
			// claimed the entry its retransmitter owns the tuple now — it
			// entered the system, so the attempt stays counted; otherwise
			// reclaim it (un-counting) and re-route ourselves.
			if _, ours := m.inflight.reclaim(t.ID, id); !ours {
				return nil
			}
			continue
		case <-m.stop:
			fb.Release()
			m.inflight.reclaim(t.ID, id)
			return ErrStopped
		}
	}
}

// noteDispatched claims the breaker's half-open probe slot when one is
// pending. The ledger counting that used to live here moved into
// inflightTable.trackSubmit, fused with the shard insert.
func (m *Master) noteDispatched(wc *workerConn) {
	wc.mu.Lock()
	wc.br.noteDispatch()
	wc.mu.Unlock()
}

// journalDispatch logs a dispatch to the write-ahead journal: the full
// tuple on the first attempt, an id+attempt resend record after. Append
// failures are logged, not fatal — the master keeps serving with recovery
// degraded rather than stalling the stream on a sick disk.
func (m *Master) journalDispatch(t *tuple.Tuple, attempt uint8) {
	var err error
	if attempt == 0 {
		err = m.journal.appendSubmit(t)
	} else {
		err = m.journal.appendResend(t.ID, attempt)
	}
	if err != nil {
		m.cfg.Logger.Warn("swing master: journal append", "err", err)
	}
}

// journalAck logs a worker acknowledgment (no-op without a journal).
// It reports whether the ack record was durably appended — the signal
// the sink path uses to decide whether semi-sync replication applies.
func (m *Master) journalAck(id uint64) bool {
	if m.journal == nil {
		return false
	}
	if err := m.journal.appendAck(id); err != nil {
		m.cfg.Logger.Warn("swing master: journal append", "err", err)
		return false
	}
	return true
}

// journalShed logs an abandoned tuple (no-op without a journal).
func (m *Master) journalShed(id uint64, overload bool) {
	if m.journal == nil {
		return
	}
	if err := m.journal.appendShed(id, overload); err != nil {
		m.cfg.Logger.Warn("swing master: journal append", "err", err)
	}
}

// snapshotState captures a checkpoint body from the live counters. The
// caller must either hold the journal lock (checkpointNow) or otherwise
// exclude journal appends (initRecovery, Close after goroutines drain) so
// the snapshot and the journal generation stay consistent.
func (m *Master) snapshotState() *checkpointState {
	st := &checkpointState{
		Version:    checkpointVersion,
		Epoch:      m.epoch,
		Generation: m.generation.Load(),
	}
	led, _ := m.inflight.ledgerSnapshot()
	st.Submitted, st.Acked, st.Retransmitted = led.submitted, led.acked, led.retransmitted
	st.Shed, st.ShedOverload = led.shed, led.shedOverload
	st.ShedPoison, st.Hedged = led.shedPoison, led.hedged
	st.WorkerDropped = m.workerDropped.Load()
	st.DropErrors, st.DropPanics = m.dropErrors.Load(), m.dropPanics.Load()
	st.DropDeadlines, st.Filtered = m.dropDeadlines.Load(), m.filtered.Load()
	st.Evicted, st.Readopted = m.evicted.Load(), m.readopted.Load()
	st.NextSeq = m.nextSeq.Load()
	m.sinkMu.Lock()
	st.Arrived, st.Played, st.Skipped, st.NextPlay = m.arrived, m.played, m.skipped, m.nextPlay
	m.sinkMu.Unlock()
	// Flush banked ack samples so the persisted estimates include every
	// acknowledged tuple's latency, then read under routerMu.
	m.flushEstimates(time.Now())
	m.routerMu.Lock()
	for id, est := range m.router.Estimates() {
		st.Estimates = append(st.Estimates, ckptEstimate{
			ID:              id,
			LatencyNanos:    int64(est.Latency),
			ProcessingNanos: int64(est.Processing),
			Samples:         est.Samples,
		})
	}
	m.routerMu.Unlock()
	sort.Slice(st.Estimates, func(i, j int) bool { return st.Estimates[i].ID < st.Estimates[j].ID })
	for _, e := range m.inflight.snapshotEntries() {
		b, err := tuple.Marshal(e.t)
		if err != nil {
			continue
		}
		st.Pending = append(st.Pending, ckptPending{
			Tuple:   base64.StdEncoding.EncodeToString(b),
			Attempt: e.attempt,
		})
	}
	return st
}

// checkpointNow snapshots state to the checkpoint file and rotates the
// journal to the next generation. The journal lock is held across both so
// no lifecycle event lands in the old generation after the snapshot —
// such an event would be double-counted on recovery.
func (m *Master) checkpointNow() error {
	return m.checkpointAnd(nil)
}

// checkpointAnd is checkpointNow with a hook: fn (if non-nil) runs while
// every journal segment lock is still held, after the rotation succeeded,
// with the new generation and the persisted checkpoint body. The
// replicator attaches standbys through it — rotation empties every
// segment, so a subscriber registered inside this window sees the
// checkpoint image plus exactly the record bytes flushed after it, with
// nothing missing and nothing doubled.
func (m *Master) checkpointAnd(fn func(epoch, generation uint64, body []byte)) error {
	if m.journal == nil {
		return nil
	}
	m.journal.lockAll()
	defer m.journal.unlockAll()
	// Wait out any group-commit flush in flight on every segment so the
	// file handles are stable and every returned append is on disk before
	// the snapshot.
	m.journal.quiesceAllLocked()
	gen := m.generation.Load() + 1
	st := m.snapshotState()
	st.Generation = gen
	body, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("runtime: encode checkpoint: %w", err)
	}
	if err := saveCheckpointBytes(m.cfg.CheckpointPath, body); err != nil {
		return err
	}
	if err := m.journal.rotateAllLocked(m.epoch, gen); err != nil {
		return err
	}
	m.generation.Store(gen)
	if fn != nil {
		fn(m.epoch, gen, body)
	}
	return nil
}

// checkpointLoop periodically compacts the journal into a checkpoint.
func (m *Master) checkpointLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := m.checkpointNow(); err != nil {
				m.cfg.Logger.Warn("swing master: checkpoint", "err", err)
			}
		case <-m.stop:
			return
		}
	}
}

// Epoch returns this incarnation's number: 1 for a fresh master, one more
// than the recovered epoch after a crash-recovery restart.
func (m *Master) Epoch() uint64 { return m.epoch }

// NextSeq returns the first unused source sequence number. A restarted
// master's frame source should resume from here so recovered and new
// tuples never share a sequence slot in the reorder buffer.
func (m *Master) NextSeq() uint64 {
	return m.nextSeq.Load()
}

// handleResult is the sink path: release the in-flight entry, fold the
// latency feedback into the router, then reorder for playback (§IV-C
// "Reordering Service"). Ack-only frames (no tuple bytes) stop here: the
// worker consumed the tuple without producing a result, and counting the
// ack keeps the ledger balanced and the latency estimate fresh.
func (m *Master) handleResult(wc *workerConn, payload []byte) {
	meta, tb, err := wire.DecodeResult(payload)
	if err != nil {
		return
	}
	if m.recoveredAcked.has(meta.TupleID) {
		// Straggler from a previous incarnation: the old master already
		// acked (and possibly played) this tuple before it crashed.
		// Dropping the duplicate keeps the sink at-most-once across epochs.
		return
	}
	now := time.Now()
	latency := now.Sub(time.Unix(0, meta.EmitNanos))
	if latency < 0 {
		latency = 0
	}
	// Bank the latency sample before the ledger ack: anyone who observes
	// Acked == n through Stats (which flushes banked samples first) is then
	// guaranteed the router estimates already include all n samples.
	wc.ackLat.Add(int64(latency))
	wc.ackProc.Add(meta.ProcNanos)
	wc.ackN.Add(1)
	if m.cfg.HedgeAfter > 0 {
		wc.lat.add(latency)
	}
	if meta.Dropped && m.cfg.PoisonAttempts > 0 {
		// Quarantine mode: a drop notice is a failed attempt, not an ack —
		// the tuple either re-dispatches to a worker it has not burned or
		// is quarantined after PoisonAttempts distinct workers.
		m.workerDropped.Add(1)
		m.countDrop(meta.Reason)
		m.handlePoisonDrop(wc, meta)
		return
	}
	if m.inflight.ack(meta.TupleID) {
		// Journal the ack before the result can reach the sink: a crash
		// between the two drops the frame (at-most-once) rather than
		// replaying an already-played frame after restart. With a standby
		// attached, also hold the result until the ack record is in every
		// mirror — otherwise a failover could lose the ack and the promoted
		// master would redeliver a frame this incarnation already played.
		if m.journalAck(meta.TupleID) && m.rep != nil {
			m.rep.waitFlushed()
		}
	}
	if meta.Dropped {
		m.workerDropped.Add(1)
		m.countDrop(meta.Reason)
		// A processor-error drop is a breaker failure: the worker is
		// reachable but not producing results.
		m.chargeDropBreaker(wc)
	} else {
		if meta.Reason == wire.DropFiltered {
			m.filtered.Add(1)
		}
		wc.mu.Lock()
		prev := wc.br.state
		wc.br.onSuccess()
		closed := prev == breakerHalfOpen
		wc.mu.Unlock()
		if closed {
			m.events.Record(obs.EventBreakerClose, wc.id, "probe succeeded", 0)
			m.cfg.Logger.Info("swing master: breaker closed", "worker", wc.id,
				"reason", "probe succeeded")
		}
	}
	if len(tb) == 0 {
		return // ack-only: dropped or filtered out downstream
	}
	res, err := tuple.Unmarshal(tb)
	if err != nil {
		return
	}
	m.deliver(Result{Tuple: res, Latency: latency, Worker: wc.id})
}

// deliver plays results in sequence order, skipping when the reorder
// buffer overflows. The common case — an in-order arrival releasing
// exactly one play — avoids the slice entirely.
func (m *Master) deliver(r Result) {
	var (
		first  Result
		extra  []Result
		nplays int
	)
	m.sinkMu.Lock()
	m.arrived++
	if r.Tuple.SeqNo >= m.nextPlay {
		m.reorder[r.Tuple.SeqNo] = r
	}
	for {
		if pr, ok := m.reorder[m.nextPlay]; ok {
			delete(m.reorder, m.nextPlay)
			if nplays == 0 {
				first = pr
			} else {
				extra = append(extra, pr)
			}
			nplays++
			m.played++
			m.nextPlay++
			continue
		}
		if len(m.reorder) >= m.rcap {
			min := ^uint64(0)
			for seq := range m.reorder {
				if seq < min {
					min = seq
				}
			}
			m.skipped += int64(min - m.nextPlay)
			m.nextPlay = min
			continue
		}
		break
	}
	m.sinkMu.Unlock()
	if m.cfg.OnResult != nil && nplays > 0 {
		m.cfg.OnResult(first)
		for _, p := range extra {
			m.cfg.OnResult(p)
		}
	}
}

// Close stops the master: workers receive Stop, connections close, all
// goroutines drain, and — when journaling — a final checkpoint folds the
// quiesced state so the next incarnation restarts without journal replay.
func (m *Master) Close() error {
	m.once.Do(func() {
		close(m.stop)
		_ = m.ln.Close()
		if m.statusSrv != nil {
			_ = m.statusSrv.Close()
		}
		for _, wc := range m.workerMap() {
			wc.writeMu.Lock()
			_ = wire.WriteFrame(wc.conn, wire.FrameStop, nil)
			wc.writeMu.Unlock()
			_ = wc.conn.Close()
		}
		m.wg.Wait()
		if m.rep != nil {
			m.rep.close()
		}
		if m.journal != nil {
			if err := m.checkpointNow(); err != nil {
				m.cfg.Logger.Warn("swing master: final checkpoint", "err", err)
			}
			_ = m.journal.close()
		}
	})
	return nil
}

// Crash tears the master down the way a process kill would: the listener
// and connections close and goroutines drain, but no Stop frames are sent
// and no final checkpoint is written. Recovery tests and the chaos
// nemesis restart from exactly the on-disk state an abrupt termination
// leaves behind.
func (m *Master) Crash() {
	m.once.Do(func() {
		close(m.stop)
		_ = m.ln.Close()
		if m.statusSrv != nil {
			_ = m.statusSrv.Close()
		}
		for _, wc := range m.workerMap() {
			_ = wc.conn.Close()
		}
		m.wg.Wait()
		if m.rep != nil {
			// A real SIGKILL severs the replication link too; the standby
			// notices the silence and arms its takeover timer.
			m.rep.close()
		}
		if m.journal != nil {
			// Close without checkpointing; the already-written bytes
			// survive the same way they would a SIGKILL.
			_ = m.journal.close()
		}
	})
}
