package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// TestBatchedDispatchReducesDownstreamFrames drives the batched submit
// path end-to-end over a counter-instrumented (fault-free) transport:
// every tuple of every batch must come back acked and played exactly
// once, and the wire counters must prove batching actually happened —
// many tuples per FrameTupleBatch, far fewer downstream frames than
// tuples.
func TestBatchedDispatchReducesDownstreamFrames(t *testing.T) {
	mem := transport.NewMem()
	mf := transport.WithFaults(mem, transport.FaultConfig{})
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "master",
		Transport:  mf,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	src := apps.NewFrameSource(600, 7)
	const batches, per = 5, 24
	const n = batches * per
	for b := 0; b < batches; b++ {
		batch := make([]*tuple.Tuple, per)
		for i := range batch {
			batch[i] = src.Next()
		}
		if err := m.SubmitBatch(batch); err != nil {
			t.Fatalf("SubmitBatch %d: %v", b, err)
		}
	}
	waitFor(t, 15*time.Second, func() bool {
		st := m.Stats()
		return st.Acked == n && st.InFlight == 0
	}, "all acked")

	st := m.Stats()
	if st.SubmitBatches != batches {
		t.Fatalf("SubmitBatches = %d, want %d", st.SubmitBatches, batches)
	}
	if st.BatchedTuples != n {
		t.Fatalf("BatchedTuples = %d, want %d (single worker: every tuple batches)", st.BatchedTuples, n)
	}
	if st.BatchFrames == 0 || st.BatchFrames >= st.BatchedTuples {
		t.Fatalf("BatchFrames = %d for %d tuples: no coalescing", st.BatchFrames, st.BatchedTuples)
	}
	// Wire-level proof via the transport counters: every tuple crossed
	// the link, carried by far fewer frames than tuples.
	if got := mf.TuplesWritten(); got != n {
		t.Fatalf("TuplesWritten = %d, want %d", got, n)
	}
	// Deploy + Start + pings + batch frames; without batching the tuple
	// traffic alone would contribute n frames.
	if frames := mf.FramesWritten(); frames > int64(n/2) {
		t.Fatalf("FramesWritten = %d for %d tuples: batching too weak", frames, n)
	}
	t.Logf("downstream: %d tuples in %d batch frames (%d total frames written)",
		st.BatchedTuples, st.BatchFrames, mf.FramesWritten())

	// Exactly-once delivery survives the batched path.
	seen := make(map[uint64]bool)
	for _, r := range col.snapshot() {
		if seen[r.Tuple.SeqNo] {
			t.Fatalf("seq %d delivered twice", r.Tuple.SeqNo)
		}
		seen[r.Tuple.SeqNo] = true
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct results, want %d", len(seen), n)
	}
}

// TestLedgerConsistentUnderConcurrentSubmitBatch is the batched twin of
// TestLedgerConsistentUnderConcurrentSubmit: several goroutines hammer
// SubmitBatch against a sharded master while a sampler reads MasterStats
// concurrently, and every sample must balance exactly. The batched path
// takes one lock per touched shard per batch instead of one per tuple,
// so a torn multi-shard insert would surface here.
func TestLedgerConsistentUnderConcurrentSubmitBatch(t *testing.T) {
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	mem := transport.NewMem()
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.RR,
		ListenAddr: "master",
		Transport:  mem,
		Shards:     8,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	for i := 0; i < 4; i++ {
		startTestWorker(t, mem, m, fmt.Sprintf("w%d", i), 1)
	}
	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 4 }, "workers join")

	const (
		submitters = 4
		perBatch   = 25
		batches    = 12
		total      = submitters * perBatch * batches
	)
	var wg sync.WaitGroup
	stopSampling := make(chan struct{})
	var samples atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			st := m.Stats()
			samples.Add(1)
			if !ledgerBalanced(st) {
				t.Errorf("torn ledger sample: submitted=%d acked=%d shed=%d inFlight=%d retransmitting=%d",
					st.Submitted, st.Acked, st.Shed, st.InFlight, st.Retransmitting)
				return
			}
		}
	}()
	errs := make(chan error, submitters)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]*tuple.Tuple, perBatch)
				for i := range batch {
					batch[i] = frameTuple(uint64(s*perBatch*batches + b*perBatch + i))
				}
				if err := m.SubmitBatch(batch); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	waitFor(t, 15*time.Second, func() bool {
		return m.Stats().Acked == int64(total)
	}, "all tuples acked")
	close(stopSampling)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if samples.Load() == 0 {
		t.Fatal("sampler never ran")
	}
	st := m.Stats()
	if st.Submitted != int64(total) || !ledgerBalanced(st) {
		t.Fatalf("final ledger: %+v", st)
	}
	if st.SubmitBatches != submitters*batches {
		t.Fatalf("SubmitBatches = %d, want %d", st.SubmitBatches, submitters*batches)
	}
}

// toggleLossScenario shapes link 0 with total loss while armed and
// passes everything else untouched — a deterministic handle on "this
// worker's downlink eats every data frame right now".
type toggleLossScenario struct{ lossy *atomic.Bool }

func (s toggleLossScenario) Name() string { return "toggle-loss" }
func (s toggleLossScenario) ShapeAt(link int, _ time.Duration) transport.Shape {
	if link == 0 && s.lossy.Load() {
		return transport.Shape{Loss: 1}
	}
	return transport.Shape{}
}

// TestSubmitBatchShapedLossRecovery pins the batch dataplane's loss
// semantics end-to-end: a shaped link drops whole FrameTupleBatch frames
// (every tuple inside vanishes together), the lost tuples sit in-flight
// — not silently gone — and the containment machinery (hedged
// re-dispatch to the healthy worker) recovers each one. The ledger ends
// balanced with every tuple acked exactly once.
func TestSubmitBatchShapedLossRecovery(t *testing.T) {
	mem := transport.NewMem()
	var lossy atomic.Bool
	shaped := transport.WithShaping(mem, toggleLossScenario{&lossy}, 3)
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.RR,
		ListenAddr: "master",
		Transport:  shaped, // shapes the downlink of accepted conns
		OnResult:   col.add,
		HedgeAfter: 30 * time.Millisecond,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	// Join order fixes link numbering: "unlucky" is link 0.
	startTestWorker(t, mem, m, "unlucky", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "unlucky joins")
	startTestWorker(t, mem, m, "healthy", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "healthy joins")

	lossy.Store(true)
	src := apps.NewFrameSource(600, 9)
	const n = 24
	batch := make([]*tuple.Tuple, n)
	for i := range batch {
		batch[i] = src.Next()
	}
	if err := m.SubmitBatch(batch); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}

	// Everything lands despite link 0 eating its whole share of the
	// batch: hedged duplicates reach the healthy worker.
	waitFor(t, 15*time.Second, func() bool {
		st := m.Stats()
		return st.Acked == n && st.InFlight == 0
	}, "ledger recovers from batch loss")
	lossy.Store(false)

	st := m.Stats()
	if !ledgerBalanced(st) {
		t.Fatalf("unbalanced ledger after recovery: %+v", st)
	}
	if st.Hedged == 0 {
		t.Fatalf("no hedged dispatches despite total loss on link 0: %+v", st)
	}
	r := shaped.Report()
	if len(r.Links) == 0 || r.Links[0].Dropped == 0 {
		t.Fatalf("shaping report shows no dropped frames on link 0: %+v", r)
	}
	seen := make(map[uint64]bool)
	for _, res := range col.snapshot() {
		if seen[res.Tuple.SeqNo] {
			t.Fatalf("seq %d delivered twice despite hedged recovery", res.Tuple.SeqNo)
		}
		seen[res.Tuple.SeqNo] = true
	}
}

// TestSubmitBatchProcessorDrops routes a batch containing poison and
// filtered tuples through the batched dataplane: drop notices and
// filter acks must flow back exactly as on the per-tuple path, leaving
// the ledger balanced with the drops attributed.
func TestSubmitBatchProcessorDrops(t *testing.T) {
	mem := transport.NewMem()
	app := poisonApp(t)
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "master",
		Transport:  mem,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	const good, poisoned, filtered = 10, 4, 3
	var batch []*tuple.Tuple
	seq := uint64(0)
	add := func(field string) {
		tp := tuple.New(seq, seq)
		seq++
		tp.Set("x", tuple.Int64(1))
		if field != "" {
			tp.Set(field, tuple.Bool(true))
		}
		batch = append(batch, tp)
	}
	for i := 0; i < good; i++ {
		add("")
	}
	for i := 0; i < poisoned; i++ {
		add("poison")
	}
	for i := 0; i < filtered; i++ {
		add("filter")
	}
	if err := m.SubmitBatch(batch); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}

	total := int64(good + poisoned + filtered)
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return st.Acked == total && st.InFlight == 0
	}, "every batched tuple acked, including drops and filtered")
	st := m.Stats()
	if st.WorkerDropped != poisoned {
		t.Fatalf("WorkerDropped = %d, want %d", st.WorkerDropped, poisoned)
	}
	if st.Arrived != good {
		t.Fatalf("Arrived = %d, want %d (only real results deliver)", st.Arrived, good)
	}
	if st.SubmitBatches != 1 || st.BatchedTuples != total {
		t.Fatalf("batch counters = %d batches / %d tuples, want 1 / %d",
			st.SubmitBatches, st.BatchedTuples, total)
	}
}
