package runtime

import (
	"fmt"
	"os"
	goruntime "runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// envInt reads an integer benchmark knob from the environment.
func envInt(name string, def int) int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

// throughputApp is a passthrough pipeline with small (600 B) frames: the
// many-worker benchmark measures the master's coordination ceiling —
// routing draws, in-flight tracking, ledger counters, ack handling — not
// payload memcpy, so frames are kept far below the 6 KiB facerec size.
func throughputApp(b *testing.B) *apps.App {
	b.Helper()
	g, err := graph.NewBuilder("throughput").
		Source("src").
		Operator("echo",
			graph.WithWork(0.001),
			graph.WithProcessor(func() graph.Processor {
				return graph.ProcessorFunc(func(em graph.Emitter, t *tuple.Tuple) error {
					return em.Emit(t)
				})
			})).
		Sink("sink").
		Chain("src", "echo", "sink").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	// TargetFPS sizes the sink reorder buffer (rcap = ReorderBuffer×FPS):
	// at throughput-bench rates a video-sized 25-slot buffer would skip-
	// thrash on the wild cross-submitter disorder, so the buffer is sized
	// for the measured rate.
	return &apps.App{Graph: g, FrameBytes: 600, TargetFPS: 100_000, TotalWork: 0.001}
}

// throughputTuples pre-builds n tuples sharing one payload slice so tuple
// construction stays out of the measured window.
func throughputTuples(n int, firstSeq uint64) []*tuple.Tuple {
	payload := make([]byte, 600)
	out := make([]*tuple.Tuple, n)
	for i := range out {
		t := tuple.New(firstSeq+uint64(i), firstSeq+uint64(i))
		t.Set("frame", tuple.Bytes(payload))
		out[i] = t
	}
	return out
}

// BenchmarkManyWorkerThroughput is the aggregate-throughput ceiling: many
// in-proc workers (SWING_BENCH_WORKERS, default 1000) served by one
// master over the in-memory transport while several goroutines
// (SWING_BENCH_SUBMITTERS, default 8) Submit concurrently. The reported
// tuples/sec metric is submitted-to-acked round trips completed per
// wall-clock second — the number that must scale with cores, tracked in
// BENCH_PR6.json. RR routing keeps every worker in the table so the
// measurement is the hot-state path, not worker-selection warmup.
//
// Run it fixed-count so each round's worker-swarm setup cost stays out of
// the comparison:
//
// SWING_BENCH_SUBMIT_BATCH (default 1 = per-tuple Submit) switches the
// submitters to SubmitBatch in chunks of that size, exercising the
// batched spine end to end on the identical swarm — the A/B behind
// BENCH_PR10.json is this benchmark with the knob off versus at 64.
//
//	go test -run=NONE -bench=ManyWorkerThroughput -benchtime=30000x ./internal/runtime
func BenchmarkManyWorkerThroughput(b *testing.B) {
	nWorkers := envInt("SWING_BENCH_WORKERS", 1000)
	nSubmitters := envInt("SWING_BENCH_SUBMITTERS", 8)
	submitBatch := envInt("SWING_BENCH_SUBMIT_BATCH", 1)

	app := throughputApp(b)
	mem := transport.NewMem()
	m, err := StartMaster(MasterConfig{
		App:                  app,
		Policy:               routing.RR,
		ListenAddr:           "bench-master",
		Transport:            mem,
		OutboxCap:            64,
		MaxPendingHandshakes: 256,
		Logger:               quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	var wg sync.WaitGroup
	workers := make([]*Worker, nWorkers)
	errs := make(chan error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := StartWorker(WorkerConfig{
				DeviceID:   fmt.Sprintf("bw-%04d", i),
				MasterAddr: m.Addr(),
				App:        app,
				Transport:  mem,
				QueueCap:   64,
				Logger:     quietLogger(),
			})
			if err != nil {
				errs <- err
				return
			}
			workers[i] = w
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	defer func() {
		for _, w := range workers {
			if w != nil {
				_ = w.Close()
			}
		}
	}()
	for len(m.Workers()) < nWorkers {
		goruntime.Gosched()
	}

	// Warm the dataplane: every queue, pool and estimate path touched once
	// before the timer starts.
	warm := 1024
	for _, t := range throughputTuples(warm, 0) {
		if err := m.Submit(t); err != nil {
			b.Fatal(err)
		}
	}
	waitAcked := func(want int64) {
		for m.Stats().Acked < want {
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitAcked(int64(warm))

	// Pre-split the measured tuples across submitters, IDs disjoint.
	batches := make([][]*tuple.Tuple, nSubmitters)
	per := b.N / nSubmitters
	next := uint64(warm)
	for i := range batches {
		n := per
		if i == nSubmitters-1 {
			n = b.N - per*(nSubmitters-1)
		}
		batches[i] = throughputTuples(n, next)
		next += uint64(n)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for _, batch := range batches {
		wg.Add(1)
		go func(batch []*tuple.Tuple) {
			defer wg.Done()
			if submitBatch > 1 {
				for i := 0; i < len(batch); i += submitBatch {
					end := i + submitBatch
					if end > len(batch) {
						end = len(batch)
					}
					if err := m.SubmitBatch(batch[i:end]); err != nil {
						errs <- err
						return
					}
				}
				return
			}
			for _, t := range batch {
				if err := m.Submit(t); err != nil {
					errs <- err
					return
				}
			}
		}(batch)
	}
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	// Every tuple must complete its round trip inside the measured window:
	// the ceiling is submit-to-ack, not enqueue rate.
	waitAcked(int64(warm + b.N))
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")

	st := m.Stats()
	if st.Shed != 0 || st.Retransmitted != 0 {
		b.Fatalf("benchmark run was not clean: %+v", st)
	}
	if !ledgerBalanced(st) {
		b.Fatalf("ledger unbalanced at quiescence: %+v", st)
	}
}
