package runtime

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateJournalFuzzCorpus regenerates the checked-in seed corpus
// for FuzzJournalRecord. Run manually with SWING_GEN_CORPUS=1.
func TestGenerateJournalFuzzCorpus(t *testing.T) {
	if os.Getenv("SWING_GEN_CORPUS") == "" {
		t.Skip("set SWING_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalRecord")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	emit := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	meta := make([]byte, 16)
	binary.LittleEndian.PutUint64(meta[0:8], 2)
	binary.LittleEndian.PutUint64(meta[8:16], 5)
	id := binary.LittleEndian.AppendUint64(nil, 77)
	emit("seed_meta", encodeJournalRecord(recMeta, meta))
	emit("seed_ack", encodeJournalRecord(recAck, id))
	emit("seed_shed", encodeJournalRecord(recShed, append(id, 1)))
	torn := encodeJournalRecord(recAck, id)
	emit("seed_torn", torn[:len(torn)-2])
	emit("seed_oversize", []byte{0xff, 0xff, 0xff, 0xff, byte(recSubmit)})
}
