//go:build !race

package runtime

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
