package runtime

import (
	goruntime "runtime"
	"sync/atomic"
	"testing"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// benchApp is a passthrough pipeline (source → echo → sink): the operator
// emits its input tuple unchanged, so the benchmark measures framework
// dataplane overhead — framing, queues, acks, reordering — rather than
// app kernel cost.
func benchApp(b *testing.B) *apps.App {
	b.Helper()
	g, err := graph.NewBuilder("benchapp").
		Source("src").
		Operator("echo",
			graph.WithWork(0.001),
			graph.WithProcessor(func() graph.Processor {
				return graph.ProcessorFunc(func(em graph.Emitter, t *tuple.Tuple) error {
					return em.Emit(t)
				})
			})).
		Sink("sink").
		Chain("src", "echo", "sink").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	return &apps.App{Graph: g, FrameBytes: 6000, TargetFPS: 24, TotalWork: 0.001}
}

// benchTuples pre-builds n tuples sharing one payload slice, so tuple
// construction does not pollute the measured dataplane allocations.
func benchTuples(n int, firstSeq uint64) []*tuple.Tuple {
	payload := make([]byte, 6000)
	out := make([]*tuple.Tuple, n)
	for i := range out {
		t := tuple.New(firstSeq+uint64(i), firstSeq+uint64(i))
		t.Set("frame", tuple.Bytes(payload))
		out[i] = t
	}
	return out
}

// BenchmarkLiveRoundTrip measures the full live dataplane: Submit on the
// master, one worker processing over the in-memory transport, the ack
// releasing the in-flight entry, and in-order sink delivery. allocs/op is
// the per-tuple framework overhead the LRS latency estimates ride on.
func BenchmarkLiveRoundTrip(b *testing.B) {
	app := benchApp(b)
	mem := transport.NewMem()
	var played atomic.Int64
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "bench-master",
		Transport:  mem,
		OutboxCap:  256,
		OnResult:   func(Result) { played.Add(1) },
		Logger:     quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "bench-worker",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		QueueCap:   256,
		Logger:     quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = w.Close() }()

	const warm = 32
	for _, t := range benchTuples(warm, 0) {
		if err := m.Submit(t); err != nil {
			b.Fatal(err)
		}
	}
	for played.Load() < warm {
		goruntime.Gosched()
	}

	tuples := benchTuples(b.N, warm)
	b.ReportAllocs()
	b.ResetTimer()
	for _, t := range tuples {
		if err := m.Submit(t); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for every submitted tuple's ack so the measured window covers
	// the full round trip, not just the enqueue.
	want := int64(warm + b.N)
	for played.Load() < want {
		goruntime.Gosched()
	}
	b.StopTimer()
}

// BenchmarkJournalAppendFsyncAlways measures the Submit-path journal cost
// under the strictest durability mode, with concurrent appenders — the
// case group commit exists for: many Submits coalescing into one
// write+fsync.
func BenchmarkJournalAppendFsyncAlways(b *testing.B) {
	j, err := openJournal(b.TempDir()+"/bench.journal", 1, 1, FsyncAlways, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = j.close() }()
	t := tuple.New(1, 1)
	t.Set("frame", tuple.Bytes(make([]byte, 6000)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := j.appendSubmit(t); err != nil {
				b.Fatal(err)
			}
		}
	})
}
