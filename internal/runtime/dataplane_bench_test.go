package runtime

import (
	"fmt"
	goruntime "runtime"
	"sync/atomic"
	"testing"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// benchApp is a passthrough pipeline (source → echo → sink): the operator
// emits its input tuple unchanged, so the benchmark measures framework
// dataplane overhead — framing, queues, acks, reordering — rather than
// app kernel cost.
func benchApp(tb testing.TB) *apps.App {
	tb.Helper()
	g, err := graph.NewBuilder("benchapp").
		Source("src").
		Operator("echo",
			graph.WithWork(0.001),
			graph.WithProcessor(func() graph.Processor {
				return graph.ProcessorFunc(func(em graph.Emitter, t *tuple.Tuple) error {
					return em.Emit(t)
				})
			})).
		Sink("sink").
		Chain("src", "echo", "sink").
		Build()
	if err != nil {
		tb.Fatal(err)
	}
	return &apps.App{Graph: g, FrameBytes: 6000, TargetFPS: 24, TotalWork: 0.001}
}

// benchTuples pre-builds n tuples sharing one payload slice, so tuple
// construction does not pollute the measured dataplane allocations.
func benchTuples(n int, firstSeq uint64) []*tuple.Tuple {
	payload := make([]byte, 6000)
	out := make([]*tuple.Tuple, n)
	for i := range out {
		t := tuple.New(firstSeq+uint64(i), firstSeq+uint64(i))
		t.Set("frame", tuple.Bytes(payload))
		out[i] = t
	}
	return out
}

// BenchmarkLiveRoundTrip measures the full live dataplane: Submit on the
// master, one worker processing over the in-memory transport, the ack
// releasing the in-flight entry, and in-order sink delivery. allocs/op is
// the per-tuple framework overhead the LRS latency estimates ride on.
func BenchmarkLiveRoundTrip(b *testing.B) {
	app := benchApp(b)
	mem := transport.NewMem()
	var played atomic.Int64
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "bench-master",
		Transport:  mem,
		OutboxCap:  256,
		OnResult:   func(Result) { played.Add(1) },
		Logger:     quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "bench-worker",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		QueueCap:   256,
		Logger:     quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = w.Close() }()

	const warm = 32
	for _, t := range benchTuples(warm, 0) {
		if err := m.Submit(t); err != nil {
			b.Fatal(err)
		}
	}
	for played.Load() < warm {
		goruntime.Gosched()
	}

	tuples := benchTuples(b.N, warm)
	b.ReportAllocs()
	b.ResetTimer()
	for _, t := range tuples {
		if err := m.Submit(t); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for every submitted tuple's ack so the measured window covers
	// the full round trip, not just the enqueue.
	want := int64(warm + b.N)
	for played.Load() < want {
		goruntime.Gosched()
	}
	b.StopTimer()
}

// benchSwarm boots the bench master/worker pair used by the round-trip
// benchmarks and returns the master plus the played counter.
func benchSwarm(b *testing.B) (*Master, *atomic.Int64) {
	b.Helper()
	app := benchApp(b)
	mem := transport.NewMem()
	var played atomic.Int64
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "bench-master",
		Transport:  mem,
		OutboxCap:  256,
		OnResult:   func(Result) { played.Add(1) },
		Logger:     quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = m.Close() })
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "bench-worker",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		QueueCap:   256,
		Logger:     quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = w.Close() })
	return m, &played
}

// BenchmarkLiveRoundTripBatch is BenchmarkLiveRoundTrip's batched twin:
// the same echo round trip, submitted 64 tuples per SubmitBatch call so
// the whole spine — routing pass, ledger insert, frame build, queue
// slot, worker decode, result batch — amortizes per batch instead of
// per tuple. Compare its ns/op and allocs/op directly against
// BenchmarkLiveRoundTrip; the delta is what batching buys.
func BenchmarkLiveRoundTripBatch(b *testing.B) {
	m, played := benchSwarm(b)
	const warm = 32
	if err := m.SubmitBatch(benchTuples(warm, 0)); err != nil {
		b.Fatal(err)
	}
	for played.Load() < warm {
		goruntime.Gosched()
	}

	const per = 64
	tuples := benchTuples(b.N, warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < len(tuples); i += per {
		end := i + per
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := m.SubmitBatch(tuples[i:end]); err != nil {
			b.Fatal(err)
		}
	}
	want := int64(warm + b.N)
	for played.Load() < want {
		goruntime.Gosched()
	}
	b.StopTimer()
}

// BenchmarkSubmitBatch sweeps the coalescing factor: the same round
// trip at batch sizes 16/64/256, reporting per-tuple cost. The curve
// flattening out is the point where per-frame overhead has fully
// amortized and per-tuple work (marshal, ledger, processing) dominates.
func BenchmarkSubmitBatch(b *testing.B) {
	for _, per := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", per), func(b *testing.B) {
			m, played := benchSwarm(b)
			const warm = 32
			if err := m.SubmitBatch(benchTuples(warm, 0)); err != nil {
				b.Fatal(err)
			}
			for played.Load() < warm {
				goruntime.Gosched()
			}
			tuples := benchTuples(b.N, warm)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < len(tuples); i += per {
				end := i + per
				if end > len(tuples) {
					end = len(tuples)
				}
				if err := m.SubmitBatch(tuples[i:end]); err != nil {
					b.Fatal(err)
				}
			}
			want := int64(warm + b.N)
			for played.Load() < want {
				goruntime.Gosched()
			}
			b.StopTimer()
		})
	}
}

// TestBatchRoundTripAllocs pins the batched dataplane's allocation
// budget: a full 64-tuple SubmitBatch round trip (submit, dispatch,
// worker decode + process, ack, in-order delivery) must average
// strictly under 4 allocations per tuple — the per-tuple path's PR 5
// figure — across every goroutine involved. Regressing this means a
// per-tuple cost crept back into a per-batch path.
func TestBatchRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceiling holds for production builds only")
	}
	if goruntime.GOMAXPROCS(0) > 1 {
		// AllocsPerRun counts every goroutine's allocations; beyond one
		// core, unrelated scheduler-parallel work pollutes the figure.
		t.Skip("alloc accounting is only stable at GOMAXPROCS=1")
	}
	app := benchApp(t)
	mem := transport.NewMem()
	var played atomic.Int64
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.LRS,
		ListenAddr: "bench-master",
		Transport:  mem,
		OutboxCap:  256,
		OnResult:   func(Result) { played.Add(1) },
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "bench-worker",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		QueueCap:   256,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })

	const per, runs, warm = 64, 20, 32
	for _, tp := range benchTuples(warm, 0) {
		if err := m.Submit(tp); err != nil {
			t.Fatal(err)
		}
	}
	for played.Load() < warm {
		goruntime.Gosched()
	}
	// Tuples for every run (AllocsPerRun calls f runs+1 times) are built
	// ahead so construction stays out of the measured window; each call
	// consumes the next fresh batch.
	tuples := benchTuples((runs+1)*per, warm)
	next := 0
	want := int64(warm)
	allocs := testing.AllocsPerRun(runs, func() {
		batch := tuples[next : next+per]
		next += per
		if err := m.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		want += per
		for played.Load() < want {
			goruntime.Gosched()
		}
	})
	perTuple := allocs / per
	t.Logf("batched round trip: %.2f allocs/tuple (%.0f per %d-tuple batch)", perTuple, allocs, per)
	if perTuple >= 4.0 {
		t.Fatalf("batched round trip costs %.2f allocs/tuple, want strictly < 4 (the per-tuple figure)", perTuple)
	}
}

// BenchmarkJournalAppendFsyncAlways measures the Submit-path journal cost
// under the strictest durability mode, with concurrent appenders — the
// case group commit exists for: many Submits coalescing into one
// write+fsync.
func BenchmarkJournalAppendFsyncAlways(b *testing.B) {
	j, err := openJournal(b.TempDir()+"/bench.journal", 1, 1, FsyncAlways, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = j.close() }()
	t := tuple.New(1, 1)
	t.Set("frame", tuple.Bytes(make([]byte, 6000)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := j.appendSubmit(t); err != nil {
				b.Fatal(err)
			}
		}
	})
}
