package runtime

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/swingframework/swing/internal/tuple"
)

// FuzzJournalRecord throws arbitrary bytes at the journal record reader.
// Recovery replays whatever a crash left on disk, so the reader must
// never panic or over-allocate: every input either yields a record that
// round-trips through the encoder byte-for-byte, or fails cleanly with
// io.EOF / errTornRecord.
func FuzzJournalRecord(f *testing.F) {
	// Seed with one well-formed record of every type the journal writes.
	meta := make([]byte, 16)
	binary.LittleEndian.PutUint64(meta[0:8], 2)  // epoch
	binary.LittleEndian.PutUint64(meta[8:16], 5) // generation
	id := binary.LittleEndian.AppendUint64(nil, 77)
	tb, err := tuple.Marshal(frameTuple(77))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodeJournalRecord(recMeta, meta))
	f.Add(encodeJournalRecord(recSubmit, tb))
	f.Add(encodeJournalRecord(recResend, append(id, 2)))
	f.Add(encodeJournalRecord(recAck, id))
	f.Add(encodeJournalRecord(recShed, append(id, 1)))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(recSubmit)}) // length beyond maxJournalRecord
	// A torn tail: a valid record with its checksum cut off.
	whole := encodeJournalRecord(recAck, id)
	f.Add(whole[:len(whole)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readJournalRecord(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, errTornRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		enc := encodeJournalRecord(typ, payload)
		typ2, payload2, err := readJournalRecord(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed record: (%d, %x) -> (%d, %x)",
				typ, payload, typ2, payload2)
		}
		// The reader consumed a prefix of data; that prefix must equal the
		// canonical encoding (the format has exactly one encoding per
		// record).
		if !bytes.Equal(data[:len(enc)], enc) {
			t.Fatalf("accepted prefix differs from canonical encoding")
		}
	})
}
