package runtime

import (
	"net"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/transport"
)

// TestHelloTimeoutEvictsSilentConn verifies the join handshake is
// bounded: a connection that never sends its hello is closed at the
// hello timeout and does not wedge the accept path for real workers.
func TestHelloTimeoutEvictsSilentConn(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:          app,
		ListenAddr:   "master",
		Transport:    mem,
		HelloTimeout: 60 * time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	conn, err := mem.Dial(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// Stall: send nothing. The master must hang up, not us timing out.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf [1]byte
	_, err = conn.Read(buf[:])
	if err == nil {
		t.Fatal("silent connection received data instead of being closed")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("master never closed the silent connection within 2s")
	}

	// The accept path is unharmed: a real worker still joins.
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "worker joins after evicted conn")
}

// TestHandshakeAdmissionCap verifies the cap on concurrent pending
// handshakes: with the single slot held by a stalled connection, a join
// attempt is refused outright; once the hello timeout frees the slot,
// joining succeeds.
func TestHandshakeAdmissionCap(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:                  app,
		ListenAddr:           "master",
		Transport:            mem,
		HelloTimeout:         250 * time.Millisecond,
		MaxPendingHandshakes: 1,
		Logger:               quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	stalled, err := mem.Dial(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stalled.Close() }()
	// Give the accept loop time to hand the conn to a handshake goroutine
	// so the single slot is definitely occupied.
	time.Sleep(50 * time.Millisecond)

	join := func() (*Worker, error) {
		return StartWorker(WorkerConfig{
			DeviceID:   "capped",
			MasterAddr: m.Addr(),
			App:        app,
			Transport:  mem,
			Logger:     quietLogger(),
		})
	}
	if w, err := join(); err == nil {
		_ = w.Close()
		t.Fatal("join succeeded while the handshake slot was full")
	}

	// The stalled conn times out, the slot frees, and a retry gets in.
	var w *Worker
	waitFor(t, 3*time.Second, func() bool {
		got, err := join()
		if err != nil {
			return false
		}
		w = got
		return true
	}, "join after handshake slot frees")
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "capped worker registered")
}
