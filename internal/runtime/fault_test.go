package runtime

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
	"github.com/swingframework/swing/internal/wire"
)

// startFaultyWorker joins a worker whose link is fault-injected.
func startFaultyWorker(t *testing.T, mem *transport.Mem, m *Master, id string, fc transport.FaultConfig) *Worker {
	t.Helper()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	w, err := StartWorker(WorkerConfig{
		DeviceID:   id,
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  transport.WithFaults(mem, fc),
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker(%s): %v", id, err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// TestRetransmitOnWorkerDeath kills a worker mid-stream and checks the
// fault-tolerance ledger: the dead worker's un-acked tuples are
// re-routed to the survivor (or shed at their deadline), no tuple is
// silently lost, and no result is played twice.
func TestRetransmitOnWorkerDeath(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m := startTestMaster(t, mem, col)
	startTestWorker(t, mem, m, "w1", 1)
	// w2's connection dies after 3 written frames (hello + ~2 result
	// batches — batching packs many acks per frame): mid-stream, with
	// tuples still queued on the link and in its input queue.
	startFaultyWorker(t, mem, m, "w2", transport.FaultConfig{Seed: 11, BreakAfterFrames: 3})
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 2 }, "workers join")

	src := apps.NewFrameSource(600, 7)
	const n = 80
	for i := 0; i < n; i++ {
		if err := m.Submit(src.Next()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}

	// Traffic re-routes: the broken worker leaves the routing table.
	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 1 }, "dead worker dropped")

	// Zero silent loss: every submitted tuple ends acked or shed, and
	// the in-flight table drains.
	waitFor(t, 15*time.Second, func() bool {
		st := m.Stats()
		return st.Acked+st.Shed == n && st.InFlight == 0
	}, "ledger balances (acked+shed == submitted, nothing in flight)")

	st := m.Stats()
	if st.Submitted != n {
		t.Fatalf("Submitted = %d, want %d (retries must not re-count)", st.Submitted, n)
	}
	if st.Retransmitted == 0 {
		t.Fatalf("no retransmissions despite mid-stream worker death: %+v", st)
	}
	// No result is delivered twice.
	seen := make(map[uint64]bool)
	for _, r := range col.snapshot() {
		if seen[r.Tuple.SeqNo] {
			t.Fatalf("seq %d delivered twice", r.Tuple.SeqNo)
		}
		seen[r.Tuple.SeqNo] = true
	}
}

// TestDeadlineShedding pins the retry deadline to (effectively) zero: a
// dead worker's backlog must be shed and accounted, not retried.
func TestDeadlineShedding(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:           app,
		ListenAddr:    "master",
		Transport:     mem,
		RetryDeadline: time.Nanosecond,
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	// Break after hello + the first result batch, leaving a backlog on
	// the link (result batching acks many tuples per frame, so a higher
	// threshold would let the whole stream complete before the break).
	startFaultyWorker(t, mem, m, "w1", transport.FaultConfig{Seed: 3, BreakAfterFrames: 2})
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "worker joins")

	src := apps.NewFrameSource(600, 7)
	submitted := 0
	for i := 0; i < 40; i++ {
		if err := m.Submit(src.Next()); err != nil {
			break // worker died and nothing survives it
		}
		submitted++
	}
	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 0 }, "worker death")
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return st.Acked+st.Shed == int64(submitted) && st.InFlight == 0
	}, "backlog shed")
	st := m.Stats()
	if st.Retransmitted != 0 {
		t.Fatalf("expired tuples were retransmitted: %+v", st)
	}
	if st.Shed == 0 {
		t.Fatalf("nothing shed despite worker death with backlog: %+v", st)
	}
}

// TestWorkerReconnects breaks a worker's link mid-stream and checks it
// rejoins through backoff (including surviving injected dial failures)
// and resumes processing.
func TestWorkerReconnects(t *testing.T) {
	mem := transport.NewMem()
	col := &resultCollector{}
	m := startTestMaster(t, mem, col)
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "flaky",
		MasterAddr: m.Addr(),
		App:        app,
		// Every session dies after 6 frames; the first redial is also
		// rejected, exercising the backoff path. Counters are per
		// connection, so the rejoined session starts fresh.
		Transport: &failNthDial{
			Transport: transport.WithFaults(mem, transport.FaultConfig{Seed: 5, BreakAfterFrames: 6}),
			n:         2,
		},
		Reconnect:        true,
		ReconnectBackoff: 5 * time.Millisecond,
		Seed:             5,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatalf("StartWorker: %v", err)
	}
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "initial join")

	src := apps.NewFrameSource(600, 7)
	deadline := time.Now().Add(10 * time.Second)
	for w.Reconnects() < 2 && time.Now().Before(deadline) {
		_ = m.Submit(src.Next()) // ErrNoWorkers between sessions is expected
		time.Sleep(2 * time.Millisecond)
	}
	if w.Reconnects() < 2 {
		t.Fatalf("worker reconnected %d times, want >= 2", w.Reconnects())
	}
	// The rejoined worker is routable and processing again.
	processedAtRejoin := w.Processed()
	waitFor(t, 5*time.Second, func() bool {
		if len(m.Workers()) == 0 {
			return false
		}
		_ = m.Submit(src.Next())
		return w.Processed() > processedAtRejoin
	}, "processing resumes after rejoin")
}

// fakeMaster accepts one worker, completes the hello/deploy/start
// handshake, then vanishes without a Stop frame: an abrupt master death,
// as opposed to Master.Close's clean shutdown.
func fakeMaster(t *testing.T, mem *transport.Mem, addr string, app *apps.App) {
	t.Helper()
	ln, err := mem.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.FrameHello {
			return
		}
		db, err := wire.EncodeJSON(wire.Deploy{Units: app.Graph.Operators(), ReportEveryMillis: 1000})
		if err != nil {
			return
		}
		_ = wire.WriteFrame(conn, wire.FrameDeploy, db)
		_ = wire.WriteFrame(conn, wire.FrameStart, nil)
		_ = conn.Close() // abrupt: no FrameStop
		_ = ln.Close()   // address released: every redial fails
	}()
}

// TestWorkerReconnectAttemptsExhausted bounds the rejoin budget: when the
// master vanishes for good (abruptly, with no clean Stop) the worker
// retries its budget and shuts down instead of spinning forever.
func TestWorkerReconnectAttemptsExhausted(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	fakeMaster(t, mem, "fake-master", app)
	w, err := StartWorker(WorkerConfig{
		DeviceID:          "orphan",
		MasterAddr:        "fake-master",
		App:               app,
		Transport:         mem,
		Reconnect:         true,
		ReconnectBackoff:  time.Millisecond,
		ReconnectAttempts: 3,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })

	errCh := make(chan error, 1)
	go func() { errCh <- w.Wait() }()
	select {
	case err := <-errCh:
		// Giving up must be reported as a terminal error, not a silent
		// exit: callers (swingd) distinguish it from a clean stop.
		if !errors.Is(err, ErrReconnectExhausted) {
			t.Fatalf("Wait() = %v, want ErrReconnectExhausted", err)
		}
		if !errors.Is(w.Err(), ErrReconnectExhausted) {
			t.Fatalf("Err() = %v, want ErrReconnectExhausted", w.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not give up after exhausting reconnect attempts")
	}
}

// poisonApp builds a single-operator app whose processor fails on tuples
// carrying a "poison" field and filters (without error) tuples carrying a
// "filter" field.
func poisonApp(t *testing.T) *apps.App {
	t.Helper()
	g, err := graph.NewBuilder("poison").
		Source("source").
		Operator("op",
			graph.WithWork(0.01),
			graph.WithProcessor(func() graph.Processor {
				return graph.ProcessorFunc(func(em graph.Emitter, tp *tuple.Tuple) error {
					if _, err := tp.Get("poison"); err == nil {
						return errors.New("poisoned tuple")
					}
					if _, err := tp.Get("filter"); err == nil {
						return nil // swallow: stage emits nothing
					}
					out := tuple.New(tp.ID, tp.SeqNo)
					out.EmitNanos = tp.EmitNanos
					out.Set(apps.FieldResult, tuple.String("ok"))
					return em.Emit(out)
				})
			})).
		Sink("sink").
		Chain("source", "op", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &apps.App{Graph: g, FrameBytes: 64, TargetFPS: 24, TotalWork: 0.01}
}

// TestProcessorDropsReported checks that processor errors and filtered
// tuples are acked rather than silently discarded: the master's ledger
// stays balanced and the drop count is surfaced in MasterStats.
func TestProcessorDropsReported(t *testing.T) {
	mem := transport.NewMem()
	app := poisonApp(t)
	col := &resultCollector{}
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "master",
		Transport:  mem,
		OnResult:   col.add,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	w, err := StartWorker(WorkerConfig{
		DeviceID:   "w1",
		MasterAddr: m.Addr(),
		App:        app,
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(m.Workers()) == 1 }, "join")

	const good, poisoned, filtered = 10, 4, 3
	seq := uint64(0)
	submit := func(field string) {
		tp := tuple.New(seq, seq)
		seq++
		tp.Set("x", tuple.Int64(1))
		if field != "" {
			tp.Set(field, tuple.Bool(true))
		}
		if err := m.Submit(tp); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	for i := 0; i < good; i++ {
		submit("")
	}
	for i := 0; i < poisoned; i++ {
		submit("poison")
	}
	for i := 0; i < filtered; i++ {
		submit("filter")
	}

	total := int64(good + poisoned + filtered)
	waitFor(t, 5*time.Second, func() bool {
		st := m.Stats()
		return st.Acked == total && st.InFlight == 0
	}, "every tuple acked, including drops and filtered")
	st := m.Stats()
	if st.WorkerDropped != poisoned {
		t.Fatalf("WorkerDropped = %d, want %d", st.WorkerDropped, poisoned)
	}
	if w.Dropped() != poisoned {
		t.Fatalf("worker Dropped() = %d, want %d", w.Dropped(), poisoned)
	}
	if st.Arrived != good {
		t.Fatalf("Arrived = %d, want %d (only real results deliver)", st.Arrived, good)
	}
}

// TestReorderCapFloor: a zero TargetFPS must not collapse the reorder
// buffer to one slot.
func TestReorderCapFloor(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	app.TargetFPS = 0
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "master",
		Transport:  mem,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	if m.rcap < minReorderCap {
		t.Fatalf("rcap = %d, want >= %d", m.rcap, minReorderCap)
	}
	// Out-of-order arrivals within the floor are buffered, not skipped.
	m.deliver(Result{Tuple: tuple.New(1, 1)})
	m.deliver(Result{Tuple: tuple.New(2, 2)})
	m.deliver(Result{Tuple: tuple.New(0, 0)})
	st := m.Stats()
	if st.Skipped != 0 || st.Played != 3 {
		t.Fatalf("stats = %+v, want 3 played and 0 skipped", st)
	}
}

// failNthDial rejects exactly the n-th Dial (1-indexed), delegating all
// others — targets one specific redial without touching the initial join.
type failNthDial struct {
	transport.Transport
	n     int32
	dials int32
}

func (f *failNthDial) Dial(addr string) (net.Conn, error) {
	if atomic.AddInt32(&f.dials, 1) == f.n {
		return nil, errors.New("injected redial failure")
	}
	return f.Transport.Dial(addr)
}

// flakyAcceptTransport fails the first N Accept calls with a transient
// error before delegating.
type flakyAcceptTransport struct {
	transport.Transport
	fails int32
}

func (f *flakyAcceptTransport) Listen(addr string) (net.Listener, error) {
	ln, err := f.Transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{Listener: ln, fails: &f.fails}, nil
}

type flakyListener struct {
	net.Listener
	fails *int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if atomic.AddInt32(l.fails, -1) >= 0 {
		return nil, errors.New("transient accept failure")
	}
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTransientError: a spurious Accept error must not
// permanently lock new workers out of the swarm.
func TestAcceptLoopSurvivesTransientError(t *testing.T) {
	mem := transport.NewMem()
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMaster(MasterConfig{
		App:        app,
		ListenAddr: "master",
		Transport:  &flakyAcceptTransport{Transport: mem, fails: 3},
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	startTestWorker(t, mem, m, "w1", 1)
	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 1 },
		"worker joins despite transient accept errors")
}
