package runtime

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

func TestCeilPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{17, 32}, {64, 64}, {128, 128}, {129, 128}, {100000, 128},
	}
	for _, c := range cases {
		if got := ceilPow2(c.in); got != c.want {
			t.Errorf("ceilPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestShardsFlagNormalization(t *testing.T) {
	// Zero (the flag default) floors to GOMAXPROCS rounded up to a power
	// of two; explicit values round up and clamp to maxShards.
	def := MasterConfig{}.withDefaults()
	if want := ceilPow2(goruntime.GOMAXPROCS(0)); def.Shards != want {
		t.Errorf("default Shards = %d, want %d", def.Shards, want)
	}
	if got := (MasterConfig{Shards: 6}).withDefaults().Shards; got != 8 {
		t.Errorf("Shards 6 normalized to %d, want 8", got)
	}
	if got := (MasterConfig{Shards: 9999}).withDefaults().Shards; got != maxShards {
		t.Errorf("Shards 9999 normalized to %d, want %d", got, maxShards)
	}
	if got := (MasterConfig{Shards: -1}).withDefaults().Shards; got < 1 {
		t.Errorf("Shards -1 normalized to %d, want >= 1", got)
	}
}

// TestLedgerConsistentUnderConcurrentSubmit hammers a sharded master from
// several submitters while a sampler reads MasterStats concurrently: every
// sample must satisfy Acked + Shed + InFlight == Submitted exactly. With
// stable workers (no deaths, so no retransmit transient) any torn read of
// the per-shard counters would surface as an unbalanced sample.
func TestLedgerConsistentUnderConcurrentSubmit(t *testing.T) {
	app, err := apps.FaceRecognition()
	if err != nil {
		t.Fatal(err)
	}
	mem := transport.NewMem()
	m, err := StartMaster(MasterConfig{
		App:        app,
		Policy:     routing.RR,
		ListenAddr: "master",
		Transport:  mem,
		Shards:     8,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	for i := 0; i < 4; i++ {
		startTestWorker(t, mem, m, fmt.Sprintf("w%d", i), 1)
	}
	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 4 }, "workers join")

	const (
		submitters = 4
		perSub     = 300
	)
	var wg sync.WaitGroup
	stopSampling := make(chan struct{})
	var samples, torn atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			st := m.Stats()
			samples.Add(1)
			if !ledgerBalanced(st) {
				torn.Add(1)
				t.Errorf("torn ledger sample: submitted=%d acked=%d shed=%d inFlight=%d",
					st.Submitted, st.Acked, st.Shed, st.InFlight)
				return
			}
		}
	}()
	errs := make(chan error, submitters)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				seq := uint64(s*perSub + i)
				if err := m.Submit(frameTuple(seq)); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	waitFor(t, 15*time.Second, func() bool {
		return m.Stats().Acked == int64(submitters*perSub)
	}, "all tuples acked")
	close(stopSampling)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if samples.Load() == 0 {
		t.Fatal("sampler never ran")
	}
	st := m.Stats()
	if st.Submitted != int64(submitters*perSub) || !ledgerBalanced(st) {
		t.Fatalf("final ledger: %+v", st)
	}
}

// TestSegmentedJournalRecoveryMergesByEpochSeq writes interleaved lifecycle
// records across four journal segments through a journalSet, then recovers:
// the merge must reassemble the global (epoch, seq) order so acks and sheds
// land after the submits they release, whichever segment each hashed to.
func TestSegmentedJournalRecoveryMergesByEpochSeq(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wal")
	js, err := openJournalSet(jpath, 4, 1, 0, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for id := uint64(1); id <= n; id++ {
		if err := js.appendSubmit(frameTuple(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Ack the even IDs, shed ID 1, resend ID 3 — records hash to arbitrary
	// segments but carry the set-wide sequence.
	for id := uint64(2); id <= n; id += 2 {
		if err := js.appendAck(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.appendShed(1, true); err != nil {
		t.Fatal(err)
	}
	if err := js.appendResend(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := js.close(); err != nil {
		t.Fatal(err)
	}
	if segs := listJournalSegments(jpath); len(segs) != 4 {
		t.Fatalf("segments on disk = %d (%v), want 4", len(segs), segs)
	}

	rs, err := recoverState(jpath, filepath.Join(dir, "wal.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if rs.counters.Submitted != n {
		t.Errorf("Submitted = %d, want %d", rs.counters.Submitted, n)
	}
	if rs.counters.Acked != n/2 {
		t.Errorf("Acked = %d, want %d", rs.counters.Acked, n/2)
	}
	if rs.counters.Shed != 1 || rs.counters.ShedOverload != 1 {
		t.Errorf("Shed = %d (overload %d), want 1 (1)", rs.counters.Shed, rs.counters.ShedOverload)
	}
	if rs.counters.Retransmitted != 1 {
		t.Errorf("Retransmitted = %d, want 1", rs.counters.Retransmitted)
	}
	// Pending = odd IDs minus the shed one.
	if want := n/2 - 1; len(rs.pending) != want {
		t.Errorf("pending = %d, want %d", len(rs.pending), want)
	}
	if e, ok := rs.pending[3]; !ok || e.attempt != 1 {
		t.Errorf("pending[3] = %+v, want attempt 1", e)
	}
	if _, ok := rs.pending[1]; ok {
		t.Error("shed tuple 1 still pending")
	}
	if len(rs.acked) != n/2 {
		t.Errorf("dedup set = %d IDs, want %d", len(rs.acked), n/2)
	}
}

// TestSegmentedJournalRecoveryTornTailOneSegment tears the tail of exactly
// one segment: recovery must truncate that segment's torn record only and
// keep every intact record from the other segments.
func TestSegmentedJournalRecoveryTornTailOneSegment(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wal")
	js, err := openJournalSet(jpath, 4, 1, 0, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for id := uint64(1); id <= n; id++ {
		if err := js.appendSubmit(frameTuple(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.close(); err != nil {
		t.Fatal(err)
	}

	// Find a segment holding at least one submit and cut into its last
	// record, simulating a crash mid-append on that writer alone.
	segs := listJournalSegments(jpath)
	var victim string
	var victimRecs int
	for _, p := range segs {
		sr, err := replaySegment(p)
		if err != nil {
			t.Fatal(err)
		}
		if sr != nil && len(sr.recs) > 0 {
			victim, victimRecs = p, len(sr.recs)
			break
		}
	}
	if victim == "" {
		t.Fatal("no segment received a submit")
	}
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	rs, err := recoverState(jpath, filepath.Join(dir, "wal.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !rs.journalTruncated {
		t.Error("torn tail not reported")
	}
	// Exactly one record (the torn one) is lost; its tuple was never
	// journaled complete, so it is simply absent from the backlog.
	if want := n - 1; len(rs.pending) != want || rs.counters.Submitted != int64(want) {
		t.Errorf("pending=%d submitted=%d after one-segment tear, want %d",
			len(rs.pending), rs.counters.Submitted, want)
	}
	// The victim segment kept its intact prefix.
	sr, err := replaySegment(victim)
	if err != nil {
		t.Fatal(err)
	}
	if sr == nil || len(sr.recs) != victimRecs-1 {
		t.Errorf("victim segment replays %d records after truncation, want %d",
			len(sr.recs), victimRecs-1)
	}
}

// TestSegmentedJournalRecoverySkipsStaleGeneration leaves one segment at an
// older generation (a crash mid-rotation) and confirms its records are
// gated out individually while current-generation segments still replay.
func TestSegmentedJournalRecoverySkipsStaleGeneration(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wal")

	// Segment 1 is stale: generation 1, holding a submit the checkpoint at
	// generation 2 already folded in. Segments 0 and 2 are current.
	stale, err := openJournal(segmentPath(jpath, 1), 1, 1, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.appendSubmit(frameTuple(1001)); err != nil {
		t.Fatal(err)
	}
	if err := stale.close(); err != nil {
		t.Fatal(err)
	}
	for i, id := range map[int]uint64{0: 1, 2: 2} {
		j, err := openJournal(segmentPath(jpath, i), 1, 2, FsyncNever, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.appendSubmit(frameTuple(id)); err != nil {
			t.Fatal(err)
		}
		if err := j.close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := saveCheckpoint(filepath.Join(dir, "wal.ckpt"), &checkpointState{
		Version: checkpointVersion, Epoch: 1, Generation: 2,
		Submitted: 10, Acked: 10,
	}); err != nil {
		t.Fatal(err)
	}

	rs, err := recoverState(jpath, filepath.Join(dir, "wal.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if rs.generation != 2 {
		t.Errorf("generation = %d, want 2", rs.generation)
	}
	if _, ok := rs.pending[1001]; ok {
		t.Error("stale-generation segment replayed; tuple 1001 double-counted")
	}
	if len(rs.pending) != 2 {
		t.Errorf("pending = %d, want 2 (current-generation submits)", len(rs.pending))
	}
	// 10 checkpointed + 2 replayed submits.
	if rs.counters.Submitted != 12 {
		t.Errorf("Submitted = %d, want 12", rs.counters.Submitted)
	}
}

// TestJournalSetSharedSequence confirms records drawn concurrently across
// segments carry unique set-wide sequence numbers — the property the
// (epoch, seq) merge depends on.
func TestJournalSetSharedSequence(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wal")
	js, err := openJournalSet(jpath, 4, 1, 0, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		per     = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = js.appendAck(uint64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if err := js.close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, p := range listJournalSegments(jpath) {
		sr, err := replaySegment(p)
		if err != nil {
			t.Fatal(err)
		}
		if sr == nil {
			continue
		}
		for _, r := range sr.recs {
			if seen[r.seq] {
				t.Fatalf("sequence %d appears twice across segments", r.seq)
			}
			seen[r.seq] = true
		}
	}
	if len(seen) != writers*per {
		t.Fatalf("recovered %d sequenced records, want %d", len(seen), writers*per)
	}
}

// TestLegacySingleFileJournalRecovers replays a v1-format single-file
// journal (16-byte meta, no sequence stamps) under the segmented recovery
// path: file order is its global order.
func TestLegacySingleFileJournalRecovers(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wal")

	// Hand-write a v1 journal: meta without the format word, lifecycle
	// records without sequence prefixes.
	var raw []byte
	meta := make([]byte, 0, 16)
	meta = binary.LittleEndian.AppendUint64(meta, 1) // epoch
	meta = binary.LittleEndian.AppendUint64(meta, 0) // generation
	raw = append(raw, encodeJournalRecord(recMeta, meta)...)
	for id := uint64(1); id <= 3; id++ {
		tb, err := tuple.Marshal(frameTuple(id))
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, encodeJournalRecord(recSubmit, tb)...)
	}
	ack := binary.LittleEndian.AppendUint64(nil, 2)
	raw = append(raw, encodeJournalRecord(recAck, ack)...)
	if err := os.WriteFile(jpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rs, err := recoverState(jpath, filepath.Join(dir, "wal.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if rs.counters.Submitted != 3 || rs.counters.Acked != 1 {
		t.Errorf("v1 replay: submitted=%d acked=%d, want 3/1", rs.counters.Submitted, rs.counters.Acked)
	}
	if len(rs.pending) != 2 {
		t.Errorf("v1 replay pending = %d, want 2", len(rs.pending))
	}
}
