package apps

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/tuple"
)

// collectEmitter captures emitted tuples for test assertions.
type collectEmitter struct {
	out []*tuple.Tuple
}

func (c *collectEmitter) Emit(t *tuple.Tuple) error {
	c.out = append(c.out, t)
	return nil
}

var _ graph.Emitter = (*collectEmitter)(nil)

func TestFaceRecognitionGraph(t *testing.T) {
	app, err := FaceRecognition()
	if err != nil {
		t.Fatalf("FaceRecognition: %v", err)
	}
	if app.Name() != "facerec" {
		t.Fatalf("Name = %q", app.Name())
	}
	if app.FrameBytes != 6000 {
		t.Fatalf("FrameBytes = %d, want 6000 (paper §VI-A)", app.FrameBytes)
	}
	if app.TargetFPS != 24 {
		t.Fatalf("TargetFPS = %v, want 24", app.TargetFPS)
	}
	if app.TotalWork != 1.0 {
		t.Fatalf("TotalWork = %v, want 1.0 (Table I calibration unit)", app.TotalWork)
	}
	path, err := app.Graph.Path()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"source", "detect", "recognize", "display"}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestVoiceTranslationGraph(t *testing.T) {
	app, err := VoiceTranslation()
	if err != nil {
		t.Fatalf("VoiceTranslation: %v", err)
	}
	if app.FrameBytes != 72000 {
		t.Fatalf("FrameBytes = %d, want 72000 (paper §VI-A)", app.FrameBytes)
	}
	if app.TotalWork <= 1.0 {
		t.Fatalf("TotalWork = %v, want > 1.0 (heavier than face rec)", app.TotalWork)
	}
	path, err := app.Graph.Path()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
}

func TestAppsReturnsBoth(t *testing.T) {
	all, err := Apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("%d apps", len(all))
	}
}

func TestFrameSourceDeterministic(t *testing.T) {
	a := NewFrameSource(6000, 7)
	b := NewFrameSource(6000, 7)
	for i := 0; i < 5; i++ {
		ta, tb := a.Next(), b.Next()
		if !ta.Equal(tb) {
			t.Fatalf("frame %d differs between same-seed sources", i)
		}
		if ta.ID != uint64(i) || ta.SeqNo != uint64(i) {
			t.Fatalf("frame identity = %d/%d, want %d", ta.ID, ta.SeqNo, i)
		}
		fb, err := ta.MustBytes(FieldFrame)
		if err != nil {
			t.Fatal(err)
		}
		if len(fb) != 6000 {
			t.Fatalf("frame size = %d", len(fb))
		}
	}
	if a.Generated() != 5 {
		t.Fatalf("Generated = %d", a.Generated())
	}
	c := NewFrameSource(6000, 8)
	if c.Next().Equal(NewFrameSource(6000, 7).Next()) {
		t.Fatal("different seeds produce identical frames")
	}
}

func TestFrameContentsVary(t *testing.T) {
	s := NewFrameSource(64, 1)
	f1, err := s.Next().MustBytes(FieldFrame)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Next().MustBytes(FieldFrame)
	if err != nil {
		t.Fatal(err)
	}
	if FrameDigest(f1) == FrameDigest(f2) {
		t.Fatal("consecutive frames identical")
	}
}

func TestFaceDetectorPipeline(t *testing.T) {
	src := NewFrameSource(6000, 42)
	frame := src.Next()
	frame.EmitNanos = 12345

	var det collectEmitter
	if err := (&FaceDetector{}).ProcessData(&det, frame); err != nil {
		t.Fatalf("detect: %v", err)
	}
	if len(det.out) != 1 {
		t.Fatalf("detector emitted %d tuples", len(det.out))
	}
	face := det.out[0]
	if face.ID != frame.ID || face.EmitNanos != 12345 {
		t.Fatal("detector dropped tuple identity/timestamp")
	}
	fb, err := face.MustBytes(FieldFace)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 2100 { // 35% of 6000
		t.Fatalf("face region = %d bytes, want 2100", len(fb))
	}

	var rec collectEmitter
	if err := (&FaceRecognizer{}).ProcessData(&rec, face); err != nil {
		t.Fatalf("recognize: %v", err)
	}
	name, err := rec.out[0].MustString(FieldResult)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range knownNames {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("recognized %q not in database", name)
	}
}

func TestFaceDetectorRejectsBadTuple(t *testing.T) {
	bad := tuple.New(1, 1)
	bad.Set("unrelated", tuple.Int64(5))
	var em collectEmitter
	if err := (&FaceDetector{}).ProcessData(&em, bad); err == nil {
		t.Fatal("detector accepted tuple without frame")
	}
	if err := (&FaceRecognizer{}).ProcessData(&em, bad); err == nil {
		t.Fatal("recognizer accepted tuple without face")
	}
}

func TestVoicePipeline(t *testing.T) {
	src := NewFrameSource(72000, 9)
	audio := src.Next()

	var rec collectEmitter
	if err := (&SpeechRecognizer{}).ProcessData(&rec, audio); err != nil {
		t.Fatalf("speech recognize: %v", err)
	}
	text, err := rec.out[0].MustString(FieldText)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(text)) != 2 {
		t.Fatalf("recognized text = %q, want two words", text)
	}

	var tr collectEmitter
	if err := (&Translator{}).ProcessData(&tr, rec.out[0]); err != nil {
		t.Fatalf("translate: %v", err)
	}
	result, err := tr.out[0].MustString(FieldResult)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(result)) != 2 {
		t.Fatalf("translated = %q", result)
	}
}

func TestTranslateText(t *testing.T) {
	cases := []struct{ in, want string }{
		{"hello world", "hola mundo"},
		{"bob friend", "roberto amigo"},
		{"unknown token", "unknown token"},
		{"", ""},
		{"  hello  ", "hola"},
	}
	for _, c := range cases {
		if got := translateText(c.in); got != c.want {
			t.Errorf("translateText(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRecognizeNameStable(t *testing.T) {
	b := []byte("some face bytes")
	if recognizeName(b) != recognizeName(b) {
		t.Fatal("recognition not deterministic")
	}
}

func TestBurnScalesWithWork(t *testing.T) {
	payload := make([]byte, 1000)
	// More work must not be faster; just verify it runs and returns a
	// content-dependent digest.
	d1 := Burn(payload, 0.01)
	payload[0] = 1
	d2 := Burn(payload, 0.01)
	if d1 == d2 {
		t.Fatal("digest ignores payload")
	}
	if Burn(nil, 0.01) == 0 {
		t.Fatal("nil payload digest is zero")
	}
	if Burn(payload, 0) != 0x9e3779b97f4a7c15 {
		t.Fatal("zero work changed accumulator")
	}
}

// TestDetectorOutputSmallerProperty: the detector always shrinks payloads
// (its OutputScale contract with the network model).
func TestDetectorOutputSmallerProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := NewFrameSource(6000, seed)
		frame := src.Next()
		var em collectEmitter
		if err := (&FaceDetector{}).ProcessData(&em, frame); err != nil {
			return false
		}
		in, err := frame.MustBytes(FieldFrame)
		if err != nil {
			return false
		}
		out, err := em.out[0].MustBytes(FieldFace)
		if err != nil {
			return false
		}
		return len(out) < len(in) && len(out) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBurnOneWorkUnit(b *testing.B) {
	payload := make([]byte, 6000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Burn(payload, 1.0)
	}
}
