// Package apps defines the two sensing applications the paper evaluates
// (§VI-A): face recognition on a 24 FPS video stream of 6.0 kB frames and
// voice translation on a stream of 72.0 kB audio frames.
//
// The paper's OpenCV / PocketSphinx / Apertium kernels are replaced by
// synthetic compute kernels with calibrated cost: the routing layer
// observes only processing delays and tuple sizes, so a kernel that burns
// the same work per tuple exercises the identical code paths (see
// DESIGN.md, substitutions). In simulated mode the cost is charged in
// work units against device capability profiles; in real mode the kernels
// burn actual CPU.
package apps

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/tuple"
)

// Field names used by the app tuples.
const (
	FieldFrame  = "frame"  // raw video/audio payload
	FieldFace   = "face"   // cropped face region (detector output)
	FieldText   = "text"   // recognized text (speech recognizer output)
	FieldResult = "result" // final result string at the sink
)

// App bundles an application graph with its workload parameters.
type App struct {
	// Graph is the validated dataflow graph.
	Graph *graph.Graph
	// FrameBytes is the source tuple payload size.
	FrameBytes int
	// TargetFPS is the input rate the app must sustain (paper: the
	// programmer-declared performance requirement).
	TargetFPS float64
	// TotalWork is the per-tuple compute cost summed over all operator
	// units, in work units (1.0 ≡ one face-recognition frame).
	TotalWork float64
}

// Name returns the application name.
func (a *App) Name() string { return a.Graph.Name() }

// Face-recognition stage parameters. The full pipeline costs 1.0 work
// units per frame — the unit in which device capabilities are calibrated
// against Table I.
const (
	faceFrameBytes    = 6000 // 400x226 px frame (§VI-A)
	faceDetectWork    = 0.45
	faceRecognizeWork = 0.55
	faceTargetFPS     = 24 // smooth video playback (§I)
)

// Voice-translation stage parameters: heavier frames (72 kB) and ~1.1x
// the compute of face recognition per tuple, matching the paper's
// relatively lower achieved FPS in Figure 4.
const (
	voiceFrameBytes    = 72000
	voiceRecognizeWork = 0.7
	voiceTranslateWork = 0.4
	voiceTargetFPS     = 24
)

// FaceRecognition composes the paper's four-unit face-recognition app:
// source (camera) → detect → recognize → display.
func FaceRecognition() (*App, error) {
	g, err := graph.NewBuilder("facerec").
		Source("source").
		Operator("detect",
			graph.WithWork(faceDetectWork),
			graph.WithOutputScale(0.35), // cropped face region
			graph.WithProcessor(func() graph.Processor { return &FaceDetector{} })).
		Operator("recognize",
			graph.WithWork(faceRecognizeWork),
			graph.WithOutputScale(0.01), // a name string
			graph.WithProcessor(func() graph.Processor { return &FaceRecognizer{} })).
		Sink("display").
		Chain("source", "detect", "recognize", "display").
		Build()
	if err != nil {
		return nil, fmt.Errorf("compose facerec: %w", err)
	}
	return &App{
		Graph:      g,
		FrameBytes: faceFrameBytes,
		TargetFPS:  faceTargetFPS,
		TotalWork:  faceDetectWork + faceRecognizeWork,
	}, nil
}

// VoiceTranslation composes the paper's voice-translation app: source
// (microphone) → recognize speech → translate → display.
func VoiceTranslation() (*App, error) {
	g, err := graph.NewBuilder("voicetrans").
		Source("source").
		Operator("recognize",
			graph.WithWork(voiceRecognizeWork),
			graph.WithOutputScale(0.002), // English words
			graph.WithProcessor(func() graph.Processor { return &SpeechRecognizer{} })).
		Operator("translate",
			graph.WithWork(voiceTranslateWork),
			graph.WithOutputScale(1.0), // Spanish words
			graph.WithProcessor(func() graph.Processor { return &Translator{} })).
		Sink("display").
		Chain("source", "recognize", "translate", "display").
		Build()
	if err != nil {
		return nil, fmt.Errorf("compose voicetrans: %w", err)
	}
	return &App{
		Graph:      g,
		FrameBytes: voiceFrameBytes,
		TargetFPS:  voiceTargetFPS,
		TotalWork:  voiceRecognizeWork + voiceTranslateWork,
	}, nil
}

// Apps returns both evaluation applications.
func Apps() ([]*App, error) {
	fr, err := FaceRecognition()
	if err != nil {
		return nil, err
	}
	vt, err := VoiceTranslation()
	if err != nil {
		return nil, err
	}
	return []*App{fr, vt}, nil
}

// FrameSource generates synthetic sensor frames with deterministic,
// seed-dependent content: stand-ins for the paper's recorded video/audio
// files.
type FrameSource struct {
	frameBytes int
	seed       uint64
	next       uint64
}

// NewFrameSource returns a generator of frames of the given size.
func NewFrameSource(frameBytes int, seed uint64) *FrameSource {
	return &FrameSource{frameBytes: frameBytes, seed: seed}
}

// Next produces the next frame tuple. Frame IDs and sequence numbers
// increase monotonically from 0.
func (s *FrameSource) Next() *tuple.Tuple {
	id := s.next
	s.next++
	payload := make([]byte, s.frameBytes)
	// Cheap xorshift fill: deterministic content that differs per frame.
	x := s.seed ^ (id+1)*0x9e3779b97f4a7c15
	for i := 0; i+8 <= len(payload); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.LittleEndian.PutUint64(payload[i:], x)
	}
	t := tuple.New(id, id)
	t.Set(FieldFrame, tuple.Bytes(payload))
	return t
}

// Generated reports how many frames have been produced.
func (s *FrameSource) Generated() uint64 { return s.next }

// SeekTo positions the source so the next frame has the given sequence
// number. A master restarted from a checkpoint resumes its source here:
// frame content stays deterministic per (seed, id), so the stream
// continues exactly where the crashed incarnation left off without ever
// reusing a sequence slot.
func (s *FrameSource) SeekTo(seq uint64) {
	if seq > s.next {
		s.next = seq
	}
}

// knownNames is the face database of the synthetic recognizer.
var knownNames = []string{
	"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
}

// recognizeName deterministically maps payload bytes to a database name,
// so results are stable for testing.
func recognizeName(b []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return knownNames[h.Sum64()%uint64(len(knownNames))]
}

// spanish is the toy dictionary of the synthetic translator.
var spanish = map[string]string{
	"alice": "alicia", "bob": "roberto", "carol": "carolina",
	"dave": "david", "erin": "erina", "frank": "francisco",
	"grace": "graciela", "heidi": "heidi",
	"hello": "hola", "world": "mundo", "friend": "amigo",
}

// translateWord maps an English token to Spanish, passing through unknown
// words (as rule-based translators do).
func translateWord(w string) string {
	if t, ok := spanish[w]; ok {
		return t
	}
	return w
}
