package apps

import (
	"fmt"
	"hash/fnv"

	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/tuple"
)

// burnIterationsPerWork calibrates real-mode CPU burn: how many rounds of
// the arithmetic kernel equal one work unit. On commodity hardware one
// work unit lands in the tens of milliseconds — the same order as the
// paper's phones — but absolute speed does not matter: the routing layer
// adapts to whatever it measures.
const burnIterationsPerWork = 400_000

// Burn performs `work` work units of real CPU computation over the
// payload and returns a digest so the compiler cannot elide the loop.
func Burn(payload []byte, work float64) uint64 {
	iters := int(work * burnIterationsPerWork)
	var acc uint64 = 0x9e3779b97f4a7c15
	n := len(payload)
	for i := 0; i < iters; i++ {
		if n > 0 {
			acc ^= uint64(payload[i%n])
		}
		acc = acc*6364136223846793005 + 1442695040888963407
		acc ^= acc >> 29
	}
	return acc
}

// FaceDetector is the real-mode processor for the "detect" unit: it scans
// the frame (burning detect-stage work) and emits a cropped face region.
type FaceDetector struct{}

var _ graph.Processor = (*FaceDetector)(nil)

// ProcessData implements graph.Processor.
func (d *FaceDetector) ProcessData(em graph.Emitter, t *tuple.Tuple) error {
	frame, err := t.MustBytes(FieldFrame)
	if err != nil {
		return fmt.Errorf("detect: %w", err)
	}
	digest := Burn(frame, faceDetectWork)
	// "Crop" a deterministic face region: 35% of the frame starting at a
	// content-dependent offset.
	size := len(frame) * 35 / 100
	if size == 0 {
		size = 1
	}
	off := 0
	if len(frame) > size {
		off = int(digest % uint64(len(frame)-size))
	}
	face := make([]byte, size)
	copy(face, frame[off:])
	out := tuple.New(t.ID, t.SeqNo)
	out.EmitNanos = t.EmitNanos
	out.Set(FieldFace, tuple.Bytes(face))
	return em.Emit(out)
}

// FaceRecognizer is the real-mode processor for the "recognize" unit: it
// matches the face region against the name database.
type FaceRecognizer struct{}

var _ graph.Processor = (*FaceRecognizer)(nil)

// ProcessData implements graph.Processor.
func (r *FaceRecognizer) ProcessData(em graph.Emitter, t *tuple.Tuple) error {
	face, err := t.MustBytes(FieldFace)
	if err != nil {
		return fmt.Errorf("recognize: %w", err)
	}
	Burn(face, faceRecognizeWork)
	out := tuple.New(t.ID, t.SeqNo)
	out.EmitNanos = t.EmitNanos
	out.Set(FieldResult, tuple.String(recognizeName(face)))
	return em.Emit(out)
}

// SpeechRecognizer is the real-mode processor for the voice app's
// "recognize" unit: audio in, English text out.
type SpeechRecognizer struct{}

var _ graph.Processor = (*SpeechRecognizer)(nil)

// ProcessData implements graph.Processor.
func (r *SpeechRecognizer) ProcessData(em graph.Emitter, t *tuple.Tuple) error {
	audio, err := t.MustBytes(FieldFrame)
	if err != nil {
		return fmt.Errorf("speech recognize: %w", err)
	}
	Burn(audio, voiceRecognizeWork)
	// Deterministically "hear" two words from the audio content.
	h := fnv.New64a()
	_, _ = h.Write(audio)
	sum := h.Sum64()
	w1 := knownNames[sum%uint64(len(knownNames))]
	w2 := [...]string{"hello", "world", "friend"}[(sum>>8)%3]
	out := tuple.New(t.ID, t.SeqNo)
	out.EmitNanos = t.EmitNanos
	out.Set(FieldText, tuple.String(w1+" "+w2))
	return em.Emit(out)
}

// Translator is the real-mode processor for the "translate" unit: English
// text in, Spanish text out.
type Translator struct{}

var _ graph.Processor = (*Translator)(nil)

// ProcessData implements graph.Processor.
func (tr *Translator) ProcessData(em graph.Emitter, t *tuple.Tuple) error {
	text, err := t.MustString(FieldText)
	if err != nil {
		return fmt.Errorf("translate: %w", err)
	}
	Burn([]byte(text), voiceTranslateWork)
	out := tuple.New(t.ID, t.SeqNo)
	out.EmitNanos = t.EmitNanos
	out.Set(FieldResult, tuple.String(translateText(text)))
	return em.Emit(out)
}

// translateText translates a whitespace-separated English phrase.
func translateText(text string) string {
	var out []byte
	start := 0
	flush := func(end int) {
		if end > start {
			if len(out) > 0 {
				out = append(out, ' ')
			}
			out = append(out, translateWord(text[start:end])...)
		}
	}
	for i := 0; i < len(text); i++ {
		if text[i] == ' ' {
			flush(i)
			start = i + 1
		}
	}
	flush(len(text))
	return string(out)
}

// FrameDigest is a helper for tests and examples: a stable digest of a
// frame payload.
func FrameDigest(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}
