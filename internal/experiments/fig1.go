package experiments

import (
	"fmt"
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/routing"
)

// Fig1Series is one device's delay-over-time trace (paper Figure 1).
type Fig1Series struct {
	Device string
	// Points sample total per-frame delay (ms) against the frame's sink
	// arrival time.
	Points []metrics.Point
	// FinalDelayMs is the mean delay over the last second of the run.
	FinalDelayMs float64
	// InitialDelayMs is the mean delay over the first second.
	InitialDelayMs float64
}

// Fig1Result carries all per-device traces.
type Fig1Result struct {
	Series []Fig1Series
}

// RunFig1 reproduces Figure 1: each device alone receives a 24 FPS face
// recognition stream; none keeps up, so per-frame total delay builds over
// the 5-second window.
func RunFig1(opt Options) (*Fig1Result, error) {
	opt = opt.withDefaults(5 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	out := &Fig1Result{}
	for _, id := range workerIDs {
		cfg := core.Config{
			Seed:         opt.Seed,
			App:          app,
			Policy:       routing.RR,
			Duration:     opt.Duration,
			SourceDevice: "A",
			Workers:      []string{id},
			Profiles:     device.TestbedProfiles(),
			// Figure 1 shows unbounded queue growth: disable shedding.
			SourceBacklogCap: 1 << 20,
			QueueCap:         1 << 20,
			KeepFrameRecords: true,
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		s := Fig1Series{Device: id}
		var first, last metrics.Summary
		for _, f := range res.Frames {
			ms := float64(f.Latency) / float64(time.Millisecond)
			s.Points = append(s.Points, metrics.Point{At: f.SinkAt, Value: ms})
			if f.SinkAt < time.Second {
				first.Observe(ms)
			}
			if f.SinkAt > opt.Duration-time.Second {
				last.Observe(ms)
			}
		}
		s.InitialDelayMs = first.Mean()
		s.FinalDelayMs = last.Mean()
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Fig1 renders the Figure 1 reproduction.
func Fig1(opt Options) (*Report, error) {
	res, err := RunFig1(opt)
	if err != nil {
		return nil, err
	}
	t := newPaperTable("Total delay per frame under sustained 24 FPS load",
		"Phone", "Delay @1s (ms)", "Delay @end (ms)", "Growth")
	for _, s := range res.Series {
		growth := "-"
		if s.InitialDelayMs > 0 {
			growth = fmt.Sprintf("%.1fx", s.FinalDelayMs/s.InitialDelayMs)
		}
		t.AddRow(s.Device, s.InitialDelayMs, s.FinalDelayMs, growth)
	}
	return &Report{
		ID:     "Figure 1",
		Title:  "Delay per frame when processed on different phones at 24 FPS load",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"delays build up rapidly on every device because none sustains 24 FPS;" +
				" the fastest (H) degrades slowest, the slowest (E) fastest",
		},
	}, nil
}
