package experiments

import (
	"fmt"
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/routing"
)

// Fig8Policy is one policy's tuple-ordering trace (paper Figure 8).
type Fig8Policy struct {
	Policy routing.PolicyKind
	// Arrivals are (sink arrival time, frame seq) points — the gray
	// scatter of Figure 8.
	Arrivals []metrics.Point
	// Playback are (playback time, frame seq) points after the 1-second
	// reorder buffer — the solid line.
	Playback []metrics.Point
	// Inversions counts arrival pairs out of sequence order, a scalar
	// measure of scatter.
	Inversions int
	// Skipped counts frames the reorder buffer gave up on.
	Skipped int64
	// Played counts frames played in order.
	Played int
}

// Fig8Result carries every policy's trace.
type Fig8Result struct {
	Policies []Fig8Policy
}

// RunFig8 reproduces Figure 8: a 15-second face-recognition run per
// policy, recording the arrival timing of each result at the sink and its
// playback time after the 24-frame (1 s) reorder buffer.
func RunFig8(opt Options) (*Fig8Result, error) {
	opt = opt.withDefaults(15 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{}
	for _, p := range routing.Policies() {
		cfg := core.TestbedConfig(app, p, opt.Seed, opt.Duration)
		cfg.KeepFrameRecords = true
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		fp := Fig8Policy{Policy: p, Skipped: res.SkippedByReorder}
		var lastSeq uint64
		first := true
		for _, f := range res.Frames {
			fp.Arrivals = append(fp.Arrivals, metrics.Point{At: f.SinkAt, Value: float64(f.Seq)})
			if !first && f.Seq < lastSeq {
				fp.Inversions++
			}
			first = false
			lastSeq = f.Seq
			if f.PlayAt > 0 {
				fp.Played++
				fp.Playback = append(fp.Playback, metrics.Point{At: f.PlayAt, Value: float64(f.Seq)})
			}
		}
		out.Policies = append(out.Policies, fp)
	}
	return out, nil
}

// Fig8 renders the Figure 8 reproduction.
func Fig8(opt Options) (*Report, error) {
	res, err := RunFig8(opt)
	if err != nil {
		return nil, err
	}
	t := newPaperTable("Frame ordering at the sink (15 s run, 24-frame reorder buffer)",
		"Policy", "Delivered", "Out-of-order pairs", "Played in order", "Skipped by buffer")
	for _, fp := range res.Policies {
		t.AddRow(fp.Policy.String(), len(fp.Arrivals), fp.Inversions, fp.Played, fp.Skipped)
	}
	return &Report{
		ID:     "Figure 8",
		Title:  "Ordering of frames: arrivals vs reorder-buffer playback",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"LRS produces the smoothest playback: selection shrinks latency" +
				" variance, so few frames arrive out of order or miss the buffer",
			fmt.Sprintf("series lengths: %d policies with full (time, seq) scatter data"+
				" available programmatically via RunFig8", len(res.Policies)),
		},
	}, nil
}
