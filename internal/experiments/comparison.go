package experiments

import (
	"fmt"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/routing"
)

// Comparison holds the policy-comparison runs that Figures 4-7 share: five
// policies times two applications on the standard testbed (§VI-B).
type Comparison struct {
	// Results[app][policy] is the run result.
	Results map[string]map[routing.PolicyKind]*core.Result
	// Apps lists application names in presentation order.
	Apps []string
}

// RunComparison executes all ten runs (memoizing nothing: each run takes
// tens of milliseconds). Runs are independent — each owns a private
// seeded engine — so they fan out across the executor's worker pool;
// every run writes into its own pre-assigned slot, keeping the result
// byte-identical to the serial path.
func RunComparison(opt Options) (*Comparison, error) {
	opt = opt.withDefaults(300 * time.Second)
	all, err := apps.Apps()
	if err != nil {
		return nil, err
	}
	pols := routing.Policies()
	slots := make([][]*core.Result, len(all))
	jobs := make([]Job, 0, len(all)*len(pols))
	for ai, app := range all {
		slots[ai] = make([]*core.Result, len(pols))
		for pi, p := range pols {
			jobs = append(jobs, func() error {
				res, err := runTestbed(app, p, opt)
				if err != nil {
					return err
				}
				slots[ai][pi] = res
				return nil
			})
		}
	}
	if err := opt.executor().Run(jobs); err != nil {
		return nil, err
	}
	cmp := &Comparison{Results: make(map[string]map[routing.PolicyKind]*core.Result)}
	for ai, app := range all {
		cmp.Apps = append(cmp.Apps, app.Name())
		byPolicy := make(map[routing.PolicyKind]*core.Result, len(pols))
		for pi, p := range pols {
			byPolicy[p] = slots[ai][pi]
		}
		cmp.Results[app.Name()] = byPolicy
	}
	return cmp, nil
}

// Get returns the result for an app/policy pair.
func (c *Comparison) Get(app string, p routing.PolicyKind) (*core.Result, error) {
	byPolicy, ok := c.Results[app]
	if !ok {
		return nil, fmt.Errorf("experiments: no results for app %q", app)
	}
	res, ok := byPolicy[p]
	if !ok {
		return nil, fmt.Errorf("experiments: no result for %s/%s", app, p)
	}
	return res, nil
}

// Fig4 renders average throughput plus min/max/mean/variance of per-frame
// latency for every policy and app (paper Figure 4).
func Fig4(opt Options) (*Report, error) {
	cmp, err := RunComparison(opt)
	if err != nil {
		return nil, err
	}
	return Fig4From(cmp)
}

// Fig4From renders Figure 4 from an existing comparison.
func Fig4From(cmp *Comparison) (*Report, error) {
	var tables []*metrics.Table
	var notes []string
	for _, app := range cmp.Apps {
		t := newPaperTable(fmt.Sprintf("%s: system throughput and per-frame latency", appTitle(app)),
			"Policy", "Throughput (FPS)", "Lat mean (ms)", "Lat min (ms)", "Lat max (ms)", "Lat stddev (ms)")
		for _, p := range routing.Policies() {
			res, err := cmp.Get(app, p)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.String(), res.ThroughputFPS, res.Latency.Mean(),
				res.Latency.Min(), res.Latency.Max(), res.Latency.Stddev())
		}
		tables = append(tables, t)
	}
	fr, err := cmp.Get("facerec", routing.LRS)
	if err != nil {
		return nil, err
	}
	rr, err := cmp.Get("facerec", routing.RR)
	if err != nil {
		return nil, err
	}
	notes = append(notes, fmt.Sprintf(
		"face recognition: LRS delivers %.1fx the throughput of RR at %.1fx lower"+
			" mean latency (paper: 2.7x and 6.7x)",
		fr.ThroughputFPS/rr.ThroughputFPS, rr.Latency.Mean()/fr.Latency.Mean()))
	return &Report{
		ID:     "Figure 4",
		Title:  "Throughput and latency of data routing methods",
		Tables: tables,
		Notes:  notes,
	}, nil
}

// Fig5 renders per-device CPU usage and source input rates (paper
// Figure 5).
func Fig5(opt Options) (*Report, error) {
	cmp, err := RunComparison(opt)
	if err != nil {
		return nil, err
	}
	return Fig5From(cmp)
}

// Fig5From renders Figure 5 from an existing comparison.
func Fig5From(cmp *Comparison) (*Report, error) {
	var tables []*metrics.Table
	for _, app := range cmp.Apps {
		cpu := newPaperTable(fmt.Sprintf("%s: per-device CPU usage (%%)", appTitle(app)),
			append([]string{"Policy"}, workerIDs...)...)
		in := newPaperTable(fmt.Sprintf("%s: input frame rate from source (FPS)", appTitle(app)),
			append([]string{"Policy"}, workerIDs...)...)
		for _, p := range routing.Policies() {
			res, err := cmp.Get(app, p)
			if err != nil {
				return nil, err
			}
			cpuRow := []any{p.String()}
			inRow := []any{p.String()}
			for _, id := range workerIDs {
				d := res.Devices[id]
				cpuRow = append(cpuRow, d.CPUUtil*100)
				inRow = append(inRow, d.SourceInputFPS)
			}
			cpu.AddRow(cpuRow...)
			in.AddRow(inRow...)
		}
		tables = append(tables, cpu, in)
	}
	return &Report{
		ID:     "Figure 5",
		Title:  "Resource usage and input data rate of each device",
		Tables: tables,
		Notes: []string{
			"RR spreads input evenly; P* policies keep feeding fast-but-weakly-" +
				"connected B; L* policies starve weak-signal devices B, C, D;" +
				" *S policies concentrate load on a selected subset",
		},
	}, nil
}

// Fig6 renders per-device and aggregate power (paper Figure 6).
func Fig6(opt Options) (*Report, error) {
	cmp, err := RunComparison(opt)
	if err != nil {
		return nil, err
	}
	return Fig6From(cmp)
}

// Fig6From renders Figure 6 from an existing comparison.
func Fig6From(cmp *Comparison) (*Report, error) {
	var tables []*metrics.Table
	for _, app := range cmp.Apps {
		t := newPaperTable(fmt.Sprintf("%s: estimated power per device (W, CPU+WiFi)", appTitle(app)),
			append(append([]string{"Policy"}, workerIDs...), "Aggregate")...)
		for _, p := range routing.Policies() {
			res, err := cmp.Get(app, p)
			if err != nil {
				return nil, err
			}
			row := []any{p.String()}
			for _, id := range workerIDs {
				row = append(row, res.Devices[id].TotalPowerW())
			}
			row = append(row, res.AggregatePowerW)
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return &Report{
		ID:     "Figure 6",
		Title:  "Energy consumption of each device",
		Tables: tables,
		Notes: []string{
			"power follows the paper's utilisation model: idle-subtracted CPU" +
				" power plus transfer-rate-scaled Wi-Fi power; PRS is the most" +
				" frugal because it uses only the fastest, most efficient devices",
		},
	}, nil
}

// Fig7 renders energy efficiency in FPS per Watt (paper Figure 7).
func Fig7(opt Options) (*Report, error) {
	cmp, err := RunComparison(opt)
	if err != nil {
		return nil, err
	}
	return Fig7From(cmp)
}

// Fig7From renders Figure 7 from an existing comparison.
func Fig7From(cmp *Comparison) (*Report, error) {
	t := newPaperTable("Energy efficiency of routing schemes (FPS per Watt)",
		"Policy", "Face Recognition", "Voice Translation")
	for _, p := range routing.Policies() {
		row := []any{p.String()}
		for _, app := range cmp.Apps {
			res, err := cmp.Get(app, p)
			if err != nil {
				return nil, err
			}
			row = append(row, res.FPSPerWatt)
		}
		t.AddRow(row...)
	}
	return &Report{
		ID:     "Figure 7",
		Title:  "Efficiency of routing schemes",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"worker selection (*S) improves efficiency; LRS is the only policy" +
				" that also meets the real-time input rate",
		},
	}, nil
}

func appTitle(name string) string {
	switch name {
	case "facerec":
		return "Face Recognition"
	case "voicetrans":
		return "Voice Translation"
	default:
		return name
	}
}
