package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestExecutorRunsAllJobs(t *testing.T) {
	for _, par := range []int{0, 1, 3, 100} {
		var ran atomic.Int64
		jobs := make([]Job, 20)
		for i := range jobs {
			jobs[i] = func() error {
				ran.Add(1)
				return nil
			}
		}
		if err := (Executor{Parallelism: par}).Run(jobs); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if got := ran.Load(); got != 20 {
			t.Fatalf("parallelism %d: ran %d of 20 jobs", par, got)
		}
	}
}

func TestExecutorFirstErrorInOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	jobs := []Job{
		func() error { return nil },
		func() error { time.Sleep(20 * time.Millisecond); return errA },
		func() error { return errB },
	}
	if err := (Executor{Parallelism: 3}).Run(jobs); !errors.Is(err, errA) {
		t.Fatalf("error = %v, want first-in-order %v", err, errA)
	}
}

func TestExecutorEmpty(t *testing.T) {
	if err := (Executor{}).Run(nil); err != nil {
		t.Fatalf("empty job list: %v", err)
	}
}

// TestComparisonParallelDeterminism is the regression gate for the
// executor: the parallel comparison must be deep-equal to the serial one,
// because every run owns a private seeded engine and a private result
// slot. Two seeds guard against a lucky coincidence on one.
func TestComparisonParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 20260805} {
		opt := Options{Seed: seed, Duration: 30 * time.Second}
		opt.Parallelism = 1
		serial, err := RunComparison(opt)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		opt.Parallelism = 4
		parallel, err := RunComparison(opt)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: parallel comparison diverges from serial", seed)
		}
	}
}

// TestAblationsParallelDeterminism asserts the same property for the
// sweep harness, which fans out at two levels (sweeps and points).
func TestAblationsParallelDeterminism(t *testing.T) {
	opt := Options{Seed: 11, Duration: 20 * time.Second}
	opt.Parallelism = 1
	serial, err := RunAblationProbe(opt)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	opt.Parallelism = 4
	parallel, err := RunAblationProbe(opt)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel ablation diverges from serial:\n%+v\n%+v", serial, parallel)
	}
}

func BenchmarkComparisonParallel(b *testing.B) {
	for _, par := range []int{1, 0} {
		name := "serial"
		if par == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := Options{Seed: 42, Duration: 60 * time.Second, Parallelism: par}
				if _, err := RunComparison(opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
