package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/routing"
)

// Short experiment options keep the suite fast; shape assertions tolerate
// the shorter horizons.
func quick() Options { return Options{Seed: 42, Duration: 60 * time.Second} }

func TestTable1MatchesPaperDelays(t *testing.T) {
	res, err := RunTable1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(res.Rows))
	}
	for _, r := range res.Rows {
		rel := (r.DelayMs - r.PaperDelay) / r.PaperDelay
		if rel < -0.1 || rel > 0.1 {
			t.Errorf("%s: measured %v ms vs paper %v ms (%.0f%% off)",
				r.Device, r.DelayMs, r.PaperDelay, rel*100)
		}
		// No device sustains 24 FPS (the paper's premise).
		if r.Throughput >= 24 {
			t.Errorf("%s sustains %v FPS; none should reach 24", r.Device, r.Throughput)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s throughput %v", r.Device, r.Throughput)
		}
	}
}

func TestFig1DelaysBuildUp(t *testing.T) {
	res, err := RunFig1(Options{Seed: 42, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 8 {
		t.Fatalf("%d series", len(res.Series))
	}
	byDev := map[string]Fig1Series{}
	for _, s := range res.Series {
		byDev[s.Device] = s
		if s.FinalDelayMs < 1.5*s.InitialDelayMs {
			t.Errorf("%s: delay did not build (%.0f -> %.0f ms)",
				s.Device, s.InitialDelayMs, s.FinalDelayMs)
		}
	}
	// The slowest phone (E) degrades faster than the fastest (H).
	if byDev["E"].FinalDelayMs < 1.4*byDev["H"].FinalDelayMs {
		t.Errorf("E final %v not >> H final %v",
			byDev["E"].FinalDelayMs, byDev["H"].FinalDelayMs)
	}
}

func TestFig2Decomposition(t *testing.T) {
	res, err := RunFig2(Options{Seed: 42, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Signal: transmission delay grows monotonically good -> fair -> bad.
	if !(res.Signal[0].TransmissionMs < res.Signal[1].TransmissionMs &&
		res.Signal[1].TransmissionMs < res.Signal[2].TransmissionMs) {
		t.Errorf("transmission not monotone in signal: %+v", res.Signal)
	}
	// Processing stays roughly flat across signal levels.
	if res.Signal[2].ProcessingMs > 2*res.Signal[0].ProcessingMs {
		t.Errorf("processing moved with signal: %+v", res.Signal)
	}
	// CPU load: processing grows.
	if !(res.CPULoad[0].ProcessingMs < res.CPULoad[1].ProcessingMs &&
		res.CPULoad[1].ProcessingMs < res.CPULoad[2].ProcessingMs) {
		t.Errorf("processing not monotone in CPU load: %+v", res.CPULoad)
	}
	// Input rate: queuing grows and dominates at 20 FPS (B does ~10).
	if !(res.Rate[0].QueuingMs < res.Rate[2].QueuingMs) {
		t.Errorf("queuing not growing with rate: %+v", res.Rate)
	}
	if res.Rate[2].QueuingMs < res.Rate[2].ProcessingMs {
		t.Errorf("queuing %v should dominate processing %v at saturation",
			res.Rate[2].QueuingMs, res.Rate[2].ProcessingMs)
	}
}

func TestComparisonFigure4Claims(t *testing.T) {
	cmp, err := RunComparison(Options{Seed: 42, Duration: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	fr := cmp.Results["facerec"]
	lrs, rr := fr[routing.LRS], fr[routing.RR]
	thrGain := lrs.ThroughputFPS / rr.ThroughputFPS
	latGain := rr.Latency.Mean() / lrs.Latency.Mean()
	if thrGain < 1.8 {
		t.Errorf("LRS/RR throughput gain %.2fx; paper reports 2.7x", thrGain)
	}
	if latGain < 4 {
		t.Errorf("RR/LRS latency ratio %.2fx; paper reports 6.7x", latGain)
	}
	// LRS meets the target on face recognition.
	if !lrs.MeetsTarget(24, 0.05) {
		t.Errorf("LRS throughput %v misses target", lrs.ThroughputFPS)
	}
	// Voice translation: LRS still dominates RR.
	vt := cmp.Results["voicetrans"]
	if vt[routing.LRS].ThroughputFPS < 3*vt[routing.RR].ThroughputFPS {
		t.Errorf("voice LRS %v not >> RR %v",
			vt[routing.LRS].ThroughputFPS, vt[routing.RR].ThroughputFPS)
	}
	// Worker selection saves energy (Figure 6/7 claim): PRS draws less
	// power than the non-selective LR while doing comparable-or-less
	// work, and selection lifts efficiency over the unselected variants.
	if fr[routing.PRS].AggregatePowerW >= fr[routing.LR].AggregatePowerW {
		t.Errorf("PRS power %v not below LR %v",
			fr[routing.PRS].AggregatePowerW, fr[routing.LR].AggregatePowerW)
	}
	if fr[routing.PRS].FPSPerWatt <= fr[routing.PR].FPSPerWatt {
		t.Errorf("PRS efficiency %v not above PR %v",
			fr[routing.PRS].FPSPerWatt, fr[routing.PR].FPSPerWatt)
	}
	if fr[routing.LRS].FPSPerWatt <= fr[routing.RR].FPSPerWatt {
		t.Errorf("LRS efficiency %v not above RR %v",
			fr[routing.LRS].FPSPerWatt, fr[routing.RR].FPSPerWatt)
	}
}

func TestFig8OrderingShape(t *testing.T) {
	res, err := RunFig8(Options{Seed: 42, Duration: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[routing.PolicyKind]Fig8Policy{}
	for _, fp := range res.Policies {
		byPolicy[fp.Policy] = fp
		if len(fp.Arrivals) == 0 {
			t.Fatalf("%s: no arrivals", fp.Policy)
		}
	}
	lrs, rr := byPolicy[routing.LRS], byPolicy[routing.RR]
	// LRS delivers more frames with smoother playback than RR: a larger
	// fraction of its delivered frames make it through the reorder
	// buffer in time.
	if len(lrs.Arrivals) <= len(rr.Arrivals) {
		t.Errorf("LRS delivered %d <= RR %d", len(lrs.Arrivals), len(rr.Arrivals))
	}
	lrsPlayed := float64(lrs.Played) / float64(len(lrs.Arrivals))
	rrPlayed := float64(rr.Played) / float64(len(rr.Arrivals))
	if lrsPlayed <= rrPlayed {
		t.Errorf("LRS played fraction %.3f not above RR %.3f", lrsPlayed, rrPlayed)
	}
	if lrs.Played == 0 {
		t.Error("LRS played nothing")
	}
}

func TestFig9JoinLeave(t *testing.T) {
	res, err := RunFig9(Options{Seed: 42, Duration: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinAfter < res.JoinBefore+3 {
		t.Errorf("join: before %v after %v; want a clear lift", res.JoinBefore, res.JoinAfter)
	}
	if res.FramesLost == 0 || res.FramesLost > 60 {
		t.Errorf("leave lost %d frames; want a small positive number (paper: 13)", res.FramesLost)
	}
	if res.RecoveredWithin > 5*time.Second {
		t.Errorf("recovery took %v; want seconds (paper: ~1 s)", res.RecoveredWithin)
	}
	if res.LeaveAfter <= 0 {
		t.Error("no post-leave throughput")
	}
}

func TestFig10Mobility(t *testing.T) {
	res, err := RunFig10(Options{Seed: 42, Duration: 180 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gGood := res.EpochMeans[0]["G"]
	gBad := res.EpochMeans[2]["G"]
	if gBad > gGood/2 {
		t.Errorf("G's load did not collapse: good %v bad %v", gGood, gBad)
	}
	othersGood := res.EpochMeans[0]["B"] + res.EpochMeans[0]["H"]
	othersBad := res.EpochMeans[2]["B"] + res.EpochMeans[2]["H"]
	if othersBad <= othersGood {
		t.Errorf("load did not shift: others good %v bad %v", othersGood, othersBad)
	}
	// Overall throughput holds up within 25% of the good-signal epoch.
	if res.OverallMeans[2] < 0.75*res.OverallMeans[0] {
		t.Errorf("overall collapsed: good %v bad %v", res.OverallMeans[0], res.OverallMeans[2])
	}
}

func TestRunDispatch(t *testing.T) {
	for _, name := range Names() {
		opt := quick()
		// Keep the slowest ones shorter in this smoke pass.
		switch name {
		case "fig1":
			opt.Duration = 3 * time.Second
		case "fig2":
			opt.Duration = 15 * time.Second
		case "fig8":
			opt.Duration = 10 * time.Second
		case "fig10":
			opt.Duration = 90 * time.Second
		}
		rep, err := Run(name, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.ID == "" || len(rep.Tables) == 0 {
			t.Fatalf("%s: empty report", name)
		}
		out := rep.String()
		if !strings.Contains(out, rep.ID) {
			t.Fatalf("%s: report missing ID header", name)
		}
	}
	if _, err := Run("nonsense", quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestComparisonGetErrors(t *testing.T) {
	empty := &Comparison{}
	if _, err := empty.Get("facerec", routing.LRS); err == nil {
		t.Fatal("empty comparison returned a result")
	}
}
