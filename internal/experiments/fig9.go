package experiments

import (
	"fmt"
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/routing"
)

// Fig9Result carries the join and leave timelines (paper Figure 9).
type Fig9Result struct {
	// Join: B and D compute; G joins at JoinAt.
	JoinThroughput *metrics.Series
	JoinAt         time.Duration
	JoinBefore     float64 // mean FPS in the 10 s before the join
	JoinAfter      float64 // mean FPS from 5 s after the join to the end

	// Leave: B, G, H compute; G is killed at LeaveAt.
	LeaveThroughput *metrics.Series
	LeaveAt         time.Duration
	LeaveBefore     float64
	LeaveAfter      float64
	FramesLost      int64
	// RecoveredWithin is the time from the leave until windowed
	// throughput first returns to 90% of its post-leave steady state.
	RecoveredWithin time.Duration
}

// RunFig9 reproduces Figure 9's two scenarios.
func RunFig9(opt Options) (*Fig9Result, error) {
	opt = opt.withDefaults(60 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{}

	// Joining: start with B, D; G joins mid-run.
	joinAt := opt.Duration / 2
	cfgJoin := core.Config{
		Seed:         opt.Seed,
		App:          app,
		Policy:       routing.LRS,
		Duration:     opt.Duration,
		SourceDevice: "A",
		Workers:      []string{"B", "D"},
		Profiles:     device.TestbedProfiles(),
		Script:       []core.ScriptEvent{{At: joinAt, Action: core.ActionJoin, Device: "G"}},
	}
	resJoin, err := core.Run(cfgJoin)
	if err != nil {
		return nil, err
	}
	out.JoinThroughput = resJoin.Throughput
	out.JoinAt = joinAt
	out.JoinBefore = resJoin.Throughput.MeanBetween(joinAt-10*time.Second, joinAt)
	out.JoinAfter = resJoin.Throughput.MeanBetween(joinAt+5*time.Second, opt.Duration)

	// Leaving: B, G, H; G killed mid-run.
	leaveAt := opt.Duration / 2
	cfgLeave := core.Config{
		Seed:         opt.Seed,
		App:          app,
		Policy:       routing.LRS,
		Duration:     opt.Duration,
		SourceDevice: "A",
		Workers:      []string{"B", "G", "H"},
		Profiles:     device.TestbedProfiles(),
		Script:       []core.ScriptEvent{{At: leaveAt, Action: core.ActionLeave, Device: "G"}},
	}
	resLeave, err := core.Run(cfgLeave)
	if err != nil {
		return nil, err
	}
	out.LeaveThroughput = resLeave.Throughput
	out.LeaveAt = leaveAt
	out.LeaveBefore = resLeave.Throughput.MeanBetween(leaveAt-10*time.Second, leaveAt)
	out.LeaveAfter = resLeave.Throughput.MeanBetween(leaveAt+5*time.Second, opt.Duration)
	out.FramesLost = resLeave.LostOnLeave

	// Recovery time: first sample after the leave reaching 90% of the
	// post-leave steady state.
	target := 0.9 * out.LeaveAfter
	out.RecoveredWithin = opt.Duration - leaveAt
	for _, pt := range resLeave.Throughput.Points() {
		if pt.At > leaveAt && pt.Value >= target {
			out.RecoveredWithin = pt.At - leaveAt
			break
		}
	}
	return out, nil
}

// Fig9 renders the Figure 9 reproduction.
func Fig9(opt Options) (*Report, error) {
	res, err := RunFig9(opt)
	if err != nil {
		return nil, err
	}
	t := newPaperTable("Throughput across membership changes (LRS, face recognition)",
		"Scenario", "Before (FPS)", "After (FPS)", "Frames lost", "Recovery")
	t.AddRow("G joins B,D", res.JoinBefore, res.JoinAfter, 0, "< 1 s")
	t.AddRow("G leaves B,G,H", res.LeaveBefore, res.LeaveAfter, res.FramesLost,
		fmt.Sprintf("%.1f s", res.RecoveredWithin.Seconds()))

	tl := newPaperTable("Join timeline (1 s windows around the event)",
		"t (s)", "Throughput (FPS)")
	for _, pt := range res.JoinThroughput.Points() {
		if pt.At >= res.JoinAt-5*time.Second && pt.At <= res.JoinAt+5*time.Second {
			tl.AddRow(pt.At.Seconds(), pt.Value)
		}
	}
	tl2 := newPaperTable("Leave timeline (1 s windows around the event)",
		"t (s)", "Throughput (FPS)")
	for _, pt := range res.LeaveThroughput.Points() {
		if pt.At >= res.LeaveAt-5*time.Second && pt.At <= res.LeaveAt+5*time.Second {
			tl2.AddRow(pt.At.Seconds(), pt.Value)
		}
	}
	return &Report{
		ID:     "Figure 9",
		Title:  "Throughput changes when a device joins or leaves",
		Tables: []*metrics.Table{t, tl, tl2},
		Notes: []string{
			"a joining device lifts throughput within about a second; an abrupt" +
				" leave loses the frames in flight to the departed device (paper:" +
				" 13) and recovers once upstreams detect the broken link and reroute",
		},
	}, nil
}
