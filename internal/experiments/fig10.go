package experiments

import (
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/netem"
	"github.com/swingframework/swing/internal/routing"
)

// Fig10Result carries the mobility experiment (paper Figure 10): B, G, H
// compute under LRS while G's user walks from strong signal to weak.
type Fig10Result struct {
	// Overall is the system throughput over time.
	Overall *metrics.Series
	// PerDevice maps device ID to its source-input rate over time.
	PerDevice map[string]*metrics.Series
	// EpochMeans[epoch][device] is the mean input FPS per signal epoch
	// (0: good, 1: fair, 2: bad).
	EpochMeans []map[string]float64
	// OverallMeans is mean system throughput per epoch.
	OverallMeans []float64
	// Epochs are the epoch boundaries.
	Epochs []time.Duration
}

// RunFig10 reproduces Figure 10. The paper uses one minute per location;
// the default run scales the same three epochs over Duration.
func RunFig10(opt Options) (*Fig10Result, error) {
	opt = opt.withDefaults(180 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	third := opt.Duration / 3
	walk, err := netem.NewWalk([]netem.Epoch{
		{Until: third, RSSI: netem.RSSIGood},
		{Until: 2 * third, RSSI: netem.RSSIFair},
		{Until: opt.Duration, RSSI: netem.RSSIBad},
	})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Seed:         opt.Seed,
		App:          app,
		Policy:       routing.LRS,
		Duration:     opt.Duration,
		SourceDevice: "A",
		Workers:      []string{"B", "G", "H"},
		Profiles:     device.TestbedProfiles(),
		Mobility:     map[string]netem.Mobility{"G": walk},
		// Three devices cannot sustain 24 FPS; the paper's Figure 10
		// shows ~20 FPS overall. Use 20 so rerouting (not raw capacity)
		// dominates the shape.
		InputFPS: 20,
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig10Result{
		Overall:   res.Throughput,
		PerDevice: res.SourceInput,
		Epochs:    []time.Duration{third, 2 * third, opt.Duration},
	}
	prev := time.Duration(0)
	for _, end := range out.Epochs {
		// Skip the first 5 s of each epoch: adaptation transient.
		from := prev + 5*time.Second
		em := make(map[string]float64, 3)
		for _, id := range []string{"B", "G", "H"} {
			em[id] = res.SourceInput[id].MeanBetween(from, end)
		}
		out.EpochMeans = append(out.EpochMeans, em)
		out.OverallMeans = append(out.OverallMeans, res.Throughput.MeanBetween(from, end))
		prev = end
	}
	return out, nil
}

// Fig10 renders the Figure 10 reproduction.
func Fig10(opt Options) (*Report, error) {
	res, err := RunFig10(opt)
	if err != nil {
		return nil, err
	}
	t := newPaperTable("Load by signal epoch as G walks good → fair → bad (LRS)",
		"Epoch", "Overall (FPS)", "B (FPS)", "G (FPS)", "H (FPS)")
	labels := []string{"good (> -30 dBm)", "fair (-70..-60 dBm)", "bad (-80..-70 dBm)"}
	for i, em := range res.EpochMeans {
		t.AddRow(labels[i], res.OverallMeans[i], em["B"], em["G"], em["H"])
	}
	return &Report{
		ID:     "Figure 10",
		Title:  "Throughput and load changes when a device moves",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"as G's signal weakens, LRS shifts its share to B and H; overall" +
				" throughput dips briefly and recovers",
		},
	}, nil
}
