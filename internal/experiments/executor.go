package experiments

import (
	"runtime"
	"sync"
)

// Job is one unit of executor work: typically a single seeded simulation
// run that writes its result into a caller-owned slot.
type Job func() error

// Executor fans independent experiment runs out across a bounded worker
// pool. Every run owns a private seeded sim.Engine and writes into its own
// pre-assigned result slot, so execution order cannot influence results:
// the parallel output is byte-identical to the serial path, just faster.
type Executor struct {
	// Parallelism bounds how many jobs run concurrently. Zero (or
	// negative) selects GOMAXPROCS; one runs every job serially on the
	// calling goroutine.
	Parallelism int
}

// Run executes all jobs and blocks until they finish. When several jobs
// fail it returns the error of the earliest job in submission order, so
// the reported failure is deterministic regardless of scheduling.
func (x Executor) Run(jobs []Job) error {
	par := x.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(jobs) {
		par = len(jobs)
	}
	if par <= 1 {
		for _, job := range jobs {
			if err := job(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, job := range jobs {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() {
				<-sem
				wg.Done()
			}()
			errs[i] = job()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
