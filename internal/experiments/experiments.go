// Package experiments regenerates every table and figure of the paper's
// evaluation (§III and §VI) on the simulated nine-device testbed. Each
// harness configures internal/core, runs it, and renders the same rows or
// series the paper reports, plus structured results for programmatic
// checks (bench_test.go asserts the published shape on them).
//
// Index (see DESIGN.md §4 for the full mapping):
//
//	Table1  — per-device processing delay and throughput
//	Fig1    — single-device delay buildup at 24 FPS
//	Fig2    — delay decomposition vs signal / CPU load / input rate
//	Fig4    — throughput and latency per policy, both apps
//	Fig5    — per-device CPU usage and source input rate per policy
//	Fig6    — per-device and aggregate power per policy
//	Fig7    — energy efficiency (FPS/Watt) per policy
//	Fig8    — tuple arrival order and reorder-buffer playback
//	Fig9    — throughput timeline across join and leave events
//	Fig10   — throughput and per-device load under mobility
package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/routing"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives all randomness. Zero selects 42.
	Seed int64
	// Duration overrides the experiment's default measured length.
	Duration time.Duration
	// Parallelism bounds how many independent simulation runs execute
	// concurrently inside multi-run harnesses (the policy comparison and
	// the ablation sweeps). Zero selects GOMAXPROCS; one forces the
	// serial path. Results are identical either way: each run owns a
	// private seeded engine.
	Parallelism int
}

// executor returns the worker pool configured by these options.
func (o Options) executor() Executor {
	return Executor{Parallelism: o.Parallelism}
}

func (o Options) withDefaults(defaultDur time.Duration) Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Duration == 0 {
		o.Duration = defaultDur
	}
	return o
}

// Report is a rendered experiment: one or more tables plus notes
// comparing the measured shape against the paper.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Notes  []string
}

// String renders the report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// workerIDs is the Table I worker order.
var workerIDs = []string{"B", "C", "D", "E", "F", "G", "H", "I"}

func faceApp() (*apps.App, error) { return apps.FaceRecognition() }

// runTestbed runs one policy on the paper's standard testbed setup.
func runTestbed(app *apps.App, p routing.PolicyKind, opt Options) (*core.Result, error) {
	cfg := core.TestbedConfig(app, p, opt.Seed, opt.Duration)
	res, err := core.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("run %s/%s: %w", app.Name(), p, err)
	}
	return res, nil
}

// Names of all experiments, in paper order, for CLI listing.
func Names() []string {
	return []string{
		"intro", "table1", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "cloudlet", "ablations",
	}
}

// Run dispatches an experiment by name.
func Run(name string, opt Options) (*Report, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "intro":
		return Intro(opt)
	case "table1":
		return Table1(opt)
	case "fig1":
		return Fig1(opt)
	case "fig2":
		return Fig2(opt)
	case "fig4":
		return Fig4(opt)
	case "fig5":
		return Fig5(opt)
	case "fig6":
		return Fig6(opt)
	case "fig7":
		return Fig7(opt)
	case "fig8":
		return Fig8(opt)
	case "fig9":
		return Fig9(opt)
	case "fig10":
		return Fig10(opt)
	case "cloudlet":
		return Cloudlet(opt)
	case "ablations":
		results, err := Ablations(opt)
		if err != nil {
			return nil, err
		}
		return RenderAblations(results), nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
}

// RunAll runs the named experiments through the executor and returns their
// reports in name order. Each experiment is seeded independently, so
// concurrent execution returns exactly what a serial loop would.
func RunAll(names []string, opt Options) ([]*Report, error) {
	reports := make([]*Report, len(names))
	jobs := make([]Job, len(names))
	for i, name := range names {
		jobs[i] = func() error {
			rep, err := Run(name, opt)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			reports[i] = rep
			return nil
		}
	}
	if err := opt.executor().Run(jobs); err != nil {
		return nil, err
	}
	return reports, nil
}
