package experiments

import (
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/netem"
	"github.com/swingframework/swing/internal/routing"
)

// CloudletRow is one deployment mode's outcome.
type CloudletRow struct {
	Mode          string
	ThroughputFPS float64
	LatencyMeanMs float64
	MobilePowerW  float64 // power drawn from phone batteries only
}

// CloudletResult compares deployment modes (extension experiment; the
// paper mentions cloudlet mode in §II without evaluating it).
type CloudletResult struct {
	Rows []CloudletRow
}

// RunCloudlet compares three deployments of face recognition under LRS:
// the phone swarm alone, a single cloudlet alone, and the hybrid where the
// cloudlet joins the swarm as one more worker. The interesting questions
// are whether LRS exploits the cloudlet without special-casing it and what
// happens to phone battery drain.
func RunCloudlet(opt Options) (*CloudletResult, error) {
	opt = opt.withDefaults(120 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	profiles := device.TestbedProfiles()
	profiles["X"] = device.CloudletProfile("X")

	mobilePower := func(res *core.Result) float64 {
		total := 0.0
		for id, d := range res.Devices {
			if id == "X" {
				continue
			}
			total += d.TotalPowerW()
		}
		return total
	}

	out := &CloudletResult{}
	modes := []struct {
		name    string
		workers []string
	}{
		{"phone swarm (8 devices)", device.WorkerIDs()},
		{"cloudlet only", []string{"X"}},
		{"hybrid (swarm + cloudlet)", append(append([]string{}, device.WorkerIDs()...), "X")},
	}
	for _, m := range modes {
		cfg := core.Config{
			Seed:         opt.Seed,
			App:          app,
			Policy:       routing.LRS,
			Duration:     opt.Duration,
			SourceDevice: "A",
			Workers:      m.workers,
			Profiles:     profiles,
			Mobility: map[string]netem.Mobility{
				"B": netem.Static(netem.RSSIBad),
				"C": netem.Static(netem.RSSIBad),
				"D": netem.Static(netem.RSSIBad),
			},
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, CloudletRow{
			Mode:          m.name,
			ThroughputFPS: res.ThroughputFPS,
			LatencyMeanMs: res.Latency.Mean(),
			MobilePowerW:  mobilePower(res),
		})
	}
	return out, nil
}

// Cloudlet renders the cloudlet-mode comparison.
func Cloudlet(opt Options) (*Report, error) {
	res, err := RunCloudlet(opt)
	if err != nil {
		return nil, err
	}
	t := newPaperTable("Deployment modes under LRS (face recognition, 24 FPS target)",
		"Mode", "Throughput (FPS)", "Lat mean (ms)", "Phone battery draw (W)")
	for _, r := range res.Rows {
		t.AddRow(r.Mode, r.ThroughputFPS, r.LatencyMeanMs, r.MobilePowerW)
	}
	return &Report{
		ID:     "Cloudlet",
		Title:  "Cloudlet mode (extension; paper §II mentions it without evaluation)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"LRS folds the cloudlet in with no special cases: its low measured" +
				" latency attracts the stream, phones offload and their battery" +
				" draw collapses",
		},
	}, nil
}
