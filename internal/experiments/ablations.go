package experiments

import (
	"fmt"
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/routing"
)

// AblationRow is one parameter point of a design-choice sweep.
type AblationRow struct {
	Label         string
	ThroughputFPS float64
	LatencyMeanMs float64
	LatencyStddev float64
	PowerW        float64
	Skipped       int64
}

// AblationResult is one complete sweep.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

func ablationRun(app string, cfg core.Config, label string) (AblationRow, error) {
	res, err := core.Run(cfg)
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation %s/%s: %w", app, label, err)
	}
	return AblationRow{
		Label:         label,
		ThroughputFPS: res.ThroughputFPS,
		LatencyMeanMs: res.Latency.Mean(),
		LatencyStddev: res.Latency.Stddev(),
		PowerW:        res.AggregatePowerW,
		Skipped:       res.SkippedByReorder,
	}, nil
}

// sweepPoint is one parameter setting of an ablation sweep.
type sweepPoint struct {
	label string
	cfg   core.Config
}

// runSweep executes a sweep's parameter points through the executor.
// Every point is an independent seeded run writing into its own row, so
// row order — and every value in it — matches the serial path exactly.
func runSweep(name, app string, points []sweepPoint, opt Options) (*AblationResult, error) {
	rows := make([]AblationRow, len(points))
	jobs := make([]Job, len(points))
	for i, pt := range points {
		jobs[i] = func() error {
			row, err := ablationRun(app, pt.cfg, pt.label)
			if err != nil {
				return err
			}
			rows[i] = row
			return nil
		}
	}
	if err := opt.executor().Run(jobs); err != nil {
		return nil, err
	}
	return &AblationResult{Name: name, Rows: rows}, nil
}

// RunAblationRouting compares the paper's weighted-random per-tuple
// routing against deterministic smooth-weighted round-robin (§V-A
// discusses the probabilistic choice).
func RunAblationRouting(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults(120 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, det := range []bool{false, true} {
		cfg := core.TestbedConfig(app, routing.LRS, opt.Seed, opt.Duration)
		rc := routing.DefaultConfig(routing.LRS)
		rc.Deterministic = det
		cfg.Routing = &rc
		label := "weighted-random"
		if det {
			label = "deterministic-swrr"
		}
		points = append(points, sweepPoint{label: label, cfg: cfg})
	}
	return runSweep("routing draw: weighted random vs deterministic SWRR", app.Name(), points, opt)
}

// RunAblationProbe sweeps the probe cadence: how often upstreams switch
// to round-robin to refresh estimates of unselected workers (§V-B).
func RunAblationProbe(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults(120 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, every := range []int{0, 2, 5, 15} {
		cfg := core.TestbedConfig(app, routing.LRS, opt.Seed, opt.Duration)
		rc := routing.DefaultConfig(routing.LRS)
		rc.ProbeEvery = every
		cfg.Routing = &rc
		label := fmt.Sprintf("every %d rounds", every)
		if every == 0 {
			label = "no probing"
		}
		points = append(points, sweepPoint{label: label, cfg: cfg})
	}
	return runSweep("probe cadence (reconfigure rounds between probes)", app.Name(), points, opt)
}

// RunAblationEWMA sweeps the latency-estimate smoothing factor.
func RunAblationEWMA(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults(120 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, alpha := range []float64{0.05, 0.3, 0.7, 1.0} {
		cfg := core.TestbedConfig(app, routing.LRS, opt.Seed, opt.Duration)
		rc := routing.DefaultConfig(routing.LRS)
		rc.Alpha = alpha
		cfg.Routing = &rc
		points = append(points, sweepPoint{label: fmt.Sprintf("alpha=%.2f", alpha), cfg: cfg})
	}
	return runSweep("latency EWMA smoothing factor", app.Name(), points, opt)
}

// RunAblationReorder sweeps the sink reorder-buffer timespan (the paper
// engineers it to 1 s, §VI-B "Tuple Order").
func RunAblationReorder(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults(120 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, span := range []time.Duration{
		125 * time.Millisecond, 500 * time.Millisecond, time.Second, 4 * time.Second,
	} {
		cfg := core.TestbedConfig(app, routing.LRS, opt.Seed, opt.Duration)
		cfg.ReorderBuffer = span
		points = append(points, sweepPoint{label: span.String(), cfg: cfg})
	}
	return runSweep("sink reorder buffer timespan", app.Name(), points, opt)
}

// RunAblationHeadroom sweeps Worker Selection's over-provisioning margin
// (the paper selects the exact minimum, h = 0).
func RunAblationHeadroom(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults(120 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, h := range []float64{0, 0.1, 0.25, 0.5} {
		cfg := core.TestbedConfig(app, routing.LRS, opt.Seed, opt.Duration)
		rc := routing.DefaultConfig(routing.LRS)
		rc.Headroom = h
		cfg.Routing = &rc
		points = append(points, sweepPoint{label: fmt.Sprintf("h=%.2f", h), cfg: cfg})
	}
	return runSweep("worker-selection headroom (select until sum mu >= (1+h) lambda)", app.Name(), points, opt)
}

// Ablations runs every design-choice sweep, fanning the sweeps out across
// the executor (each sweep's points fan out in turn).
func Ablations(opt Options) ([]*AblationResult, error) {
	runs := []func(Options) (*AblationResult, error){
		RunAblationRouting,
		RunAblationProbe,
		RunAblationEWMA,
		RunAblationReorder,
		RunAblationHeadroom,
	}
	out := make([]*AblationResult, len(runs))
	jobs := make([]Job, len(runs))
	for i, f := range runs {
		jobs[i] = func() error {
			r, err := f(opt)
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		}
	}
	if err := opt.executor().Run(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderAblations builds a report from sweep results.
func RenderAblations(results []*AblationResult) *Report {
	rep := &Report{
		ID:    "Ablations",
		Title: "Design-choice sweeps (LRS, face recognition)",
	}
	for _, r := range results {
		t := newPaperTable(r.Name, "Setting", "Throughput (FPS)", "Lat mean (ms)", "Lat stddev (ms)", "Power (W)", "Skipped")
		for _, row := range r.Rows {
			t.AddRow(row.Label, row.ThroughputFPS, row.LatencyMeanMs, row.LatencyStddev, row.PowerW, row.Skipped)
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep
}
