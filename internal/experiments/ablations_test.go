package experiments

import (
	"strings"
	"testing"
	"time"
)

func ablOpt() Options { return Options{Seed: 42, Duration: 60 * time.Second} }

func TestAblationRouting(t *testing.T) {
	res, err := RunAblationRouting(ablOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The deterministic variant must not lose meaningful throughput vs
	// the paper's probabilistic draw.
	wr, det := res.Rows[0], res.Rows[1]
	if det.ThroughputFPS < 0.9*wr.ThroughputFPS {
		t.Fatalf("SWRR %v FPS vs weighted random %v", det.ThroughputFPS, wr.ThroughputFPS)
	}
	if wr.ThroughputFPS < 22 {
		t.Fatalf("weighted random below target: %v", wr.ThroughputFPS)
	}
}

func TestAblationProbe(t *testing.T) {
	res, err := RunAblationProbe(ablOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Probing is cheap: every cadence (and none) sustains the target
		// on the static testbed. Its value shows under dynamics.
		if row.ThroughputFPS < 21 {
			t.Errorf("%s: throughput %v", row.Label, row.ThroughputFPS)
		}
	}
}

func TestAblationEWMA(t *testing.T) {
	res, err := RunAblationEWMA(ablOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.ThroughputFPS < 20 {
			t.Errorf("%s: throughput %v", row.Label, row.ThroughputFPS)
		}
	}
}

func TestAblationReorder(t *testing.T) {
	res, err := RunAblationReorder(ablOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Smaller reorder buffers skip more frames.
	smallest, largest := res.Rows[0], res.Rows[len(res.Rows)-1]
	if smallest.Skipped <= largest.Skipped {
		t.Fatalf("skips not decreasing with buffer size: %d (125ms) vs %d (4s)",
			smallest.Skipped, largest.Skipped)
	}
}

func TestAblationHeadroom(t *testing.T) {
	res, err := RunAblationHeadroom(ablOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Zero headroom (the paper's choice) already meets the target.
	if res.Rows[0].ThroughputFPS < 22 {
		t.Fatalf("h=0 throughput %v", res.Rows[0].ThroughputFPS)
	}
	// More headroom never reduces throughput materially.
	for _, row := range res.Rows[1:] {
		if row.ThroughputFPS < res.Rows[0].ThroughputFPS-2 {
			t.Errorf("%s: throughput %v below h=0's %v",
				row.Label, row.ThroughputFPS, res.Rows[0].ThroughputFPS)
		}
	}
}

func TestAblationsRender(t *testing.T) {
	results, err := Ablations(ablOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d sweeps", len(results))
	}
	rep := RenderAblations(results)
	out := rep.String()
	for _, want := range []string{"probe", "EWMA", "reorder", "headroom", "SWRR"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestIntroBatteryClaim(t *testing.T) {
	res, err := RunIntro(Options{Seed: 42, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Paper §I: battery exhausted in "about two hours" with "40% of
		// the energy consumed by computation". Accept 1-3.5 h and
		// 30-60% across the heterogeneous fleet.
		if r.BatteryLife < time.Hour || r.BatteryLife > 3*time.Hour+30*time.Minute {
			t.Errorf("%s: battery life %v, want ~2h", r.Device, r.BatteryLife)
		}
		if r.ComputeShare < 0.30 || r.ComputeShare > 0.60 {
			t.Errorf("%s: compute share %.2f, want ~0.4", r.Device, r.ComputeShare)
		}
		// No phone sustains the 24 FPS workload alone (§I Figure 1).
		if r.SustainedFPS >= 24 {
			t.Errorf("%s sustains %v FPS solo", r.Device, r.SustainedFPS)
		}
	}
}

func TestCloudletExtension(t *testing.T) {
	res, err := RunCloudlet(Options{Seed: 42, Duration: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	swarm, cloudlet, hybrid := res.Rows[0], res.Rows[1], res.Rows[2]
	// All three modes meet the target — the cloudlet needs no special
	// handling from LRS.
	for _, r := range res.Rows {
		if r.ThroughputFPS < 22.8 {
			t.Errorf("%s: throughput %v", r.Mode, r.ThroughputFPS)
		}
	}
	// The cloudlet slashes latency and phone battery draw.
	if cloudlet.LatencyMeanMs > swarm.LatencyMeanMs/5 {
		t.Errorf("cloudlet latency %v not << swarm %v",
			cloudlet.LatencyMeanMs, swarm.LatencyMeanMs)
	}
	if hybrid.MobilePowerW > swarm.MobilePowerW/2 {
		t.Errorf("hybrid phone draw %v not well below swarm-only %v",
			hybrid.MobilePowerW, swarm.MobilePowerW)
	}
	if cloudlet.MobilePowerW > 0.5 {
		t.Errorf("cloudlet-only phone draw %v should be near zero", cloudlet.MobilePowerW)
	}
}
