package experiments

import (
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/routing"
)

// Table1Row is one device's measured heterogeneity (paper Table I).
type Table1Row struct {
	Device     string
	Model      string
	DelayMs    float64 // mean per-frame processing delay, queuing excluded
	Throughput float64 // sustained FPS when fed 24 FPS
	PaperDelay float64 // the paper's measured value, for the report
}

// Table1Result carries the measured rows.
type Table1Result struct {
	Rows []Table1Row
}

// paperTable1Delays are the published Table I processing delays (ms).
var paperTable1Delays = map[string]float64{
	"B": 92.9, "C": 121.6, "D": 167.7, "E": 463.4,
	"F": 166.4, "G": 82.2, "H": 71.3, "I": 78.0,
}

// RunTable1 reproduces Table I: device A streams 24 FPS face-recognition
// frames to each worker in isolation; the worker's mean processing delay
// (queuing excluded) and sustained throughput are measured.
func RunTable1(opt Options) (*Table1Result, error) {
	opt = opt.withDefaults(60 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	profiles := device.TestbedProfiles()
	out := &Table1Result{}
	for _, id := range workerIDs {
		cfg := core.Config{
			Seed:         opt.Seed,
			App:          app,
			Policy:       routing.RR, // single downstream: policy is moot
			Duration:     opt.Duration,
			SourceDevice: "A",
			Workers:      []string{id},
			Profiles:     profiles,
			// Table I measures pure processing delay with queuing
			// excluded; thermal throttling and noise are disabled so the
			// measurement isolates hardware capability, as the paper's
			// overnight isolated runs do.
			ThermalFactor:  -1,
			ProcNoiseSigma: -1,
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table1Row{
			Device:     id,
			Model:      profiles[id].Model,
			DelayMs:    res.Processing.Mean(),
			Throughput: res.ThroughputFPS,
			PaperDelay: paperTable1Delays[id],
		})
	}
	return out, nil
}

// Table1 renders the Table I reproduction.
func Table1(opt Options) (*Report, error) {
	res, err := RunTable1(opt)
	if err != nil {
		return nil, err
	}
	t := newPaperTable("Per-device face-recognition performance at 24 FPS offered load",
		"Phone", "Model", "Processing Delay (ms)", "Paper (ms)", "Throughput (FPS)")
	for _, r := range res.Rows {
		t.AddRow(r.Device, r.Model, r.DelayMs, r.PaperDelay, r.Throughput)
	}
	return &Report{
		ID:     "Table I",
		Title:  "Performance Heterogeneity",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"capability profiles are calibrated to the paper's measured delays;" +
				" throughput is the sustained delivery rate under 24 FPS offered load",
		},
	}, nil
}

func newPaperTable(title string, headers ...string) *metrics.Table {
	return metrics.NewTable(title, headers...)
}
