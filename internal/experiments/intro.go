package experiments

import (
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/routing"
)

// Peripheral power draw of a phone running a camera-based sensing app
// with the screen on, which the capability profiles do not model because
// the swarm experiments keep worker screens off. The intro scenario —
// one user running the whole app on her own phone — pays for them.
const (
	screenW = 1.1
	cameraW = 0.45
)

// IntroRow is one device's solo-operation battery economics.
type IntroRow struct {
	Device string
	// SustainedFPS is what the device alone delivers (cf. 24 needed).
	SustainedFPS float64
	// TotalW is the mean total draw: idle + compute + Wi-Fi + screen +
	// camera.
	TotalW float64
	// ComputeShare is the fraction of energy spent on computation.
	ComputeShare float64
	// BatteryLife is the estimated time to exhaust a full battery.
	BatteryLife time.Duration
}

// IntroResult carries the single-device battery analysis.
type IntroResult struct {
	Rows []IntroRow
}

// RunIntro reproduces the introduction's motivating measurement: running
// the face-recognition app continuously on a single phone "exhausts a
// fully charged phone battery in about two hours, with 40% of the energy
// consumed by computation".
func RunIntro(opt Options) (*IntroResult, error) {
	opt = opt.withDefaults(60 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	profiles := device.TestbedProfiles()
	out := &IntroResult{}
	for _, id := range workerIDs {
		cfg := core.Config{
			Seed:         opt.Seed,
			App:          app,
			Policy:       routing.RR,
			Duration:     opt.Duration,
			SourceDevice: "A",
			Workers:      []string{id},
			Profiles:     profiles,
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		prof := profiles[id]
		d := res.Devices[id]
		// The solo scenario runs capture + compute on one device: charge
		// the full stack. d.CPUPowerW is the dynamic compute draw.
		computeW := d.CPUPowerW
		totalW := prof.Power.CPUIdleW + computeW + d.WiFiPowerW + screenW + cameraW
		life := time.Duration(prof.Power.BatteryWh / totalW * float64(time.Hour))
		out.Rows = append(out.Rows, IntroRow{
			Device:       id,
			SustainedFPS: res.ThroughputFPS,
			TotalW:       totalW,
			ComputeShare: computeW / totalW,
			BatteryLife:  life,
		})
	}
	return out, nil
}

// Intro renders the introduction's battery-exhaustion analysis.
func Intro(opt Options) (*Report, error) {
	res, err := RunIntro(opt)
	if err != nil {
		return nil, err
	}
	t := newPaperTable("Continuous on-device face recognition (solo, screen on)",
		"Phone", "Sustained FPS", "Total draw (W)", "Compute share", "Battery life")
	for _, r := range res.Rows {
		t.AddRow(r.Device, r.SustainedFPS, r.TotalW,
			r.ComputeShare, r.BatteryLife.Round(time.Minute).String())
	}
	return &Report{
		ID:     "Intro",
		Title:  "Single-device battery exhaustion (paper §I: ~2 hours, ~40% on computation)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"screen and camera draw use era-typical constants (1.1 W + 0.45 W);" +
				" the paper's claim is reproduced when compute lands near 40% of" +
				" total energy and lifetime near two hours",
		},
	}, nil
}
