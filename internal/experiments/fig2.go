package experiments

import (
	"time"

	"github.com/swingframework/swing/internal/core"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/metrics"
	"github.com/swingframework/swing/internal/netem"
	"github.com/swingframework/swing/internal/routing"
)

// Fig2Row is one scenario's delay decomposition (paper Figure 2).
type Fig2Row struct {
	Scenario       string
	Level          string
	TransmissionMs float64
	ProcessingMs   float64
	QueuingMs      float64
}

// Fig2Result carries the three scenario sweeps.
type Fig2Result struct {
	Signal  []Fig2Row // good / fair / bad Wi-Fi
	CPULoad []Fig2Row // 20% / 60% / 95% background CPU
	Rate    []Fig2Row // 5 / 10 / 20 FPS input
}

// RunFig2 reproduces Figure 2: A sends face-recognition frames to B under
// three controlled variations, and per-frame delay is decomposed into
// transmission, processing and queuing components.
func RunFig2(opt Options) (*Fig2Result, error) {
	opt = opt.withDefaults(30 * time.Second)
	app, err := faceApp()
	if err != nil {
		return nil, err
	}
	base := func() core.Config {
		return core.Config{
			Seed:         opt.Seed,
			App:          app,
			Policy:       routing.LRS,
			Duration:     opt.Duration,
			SourceDevice: "A",
			Workers:      []string{"B"},
			Profiles:     device.TestbedProfiles(),
			InputFPS:     5,
		}
	}
	decompose := func(scenario, level string, cfg core.Config) (Fig2Row, error) {
		res, err := core.Run(cfg)
		if err != nil {
			return Fig2Row{}, err
		}
		return Fig2Row{
			Scenario:       scenario,
			Level:          level,
			TransmissionMs: res.Transmission.Mean(),
			ProcessingMs:   res.Processing.Mean(),
			QueuingMs:      res.Queuing.Mean(),
		}, nil
	}

	out := &Fig2Result{}
	for _, sc := range []struct {
		level string
		rssi  netem.RSSI
	}{
		{"Good", netem.RSSIGood},
		{"Fair", netem.RSSIFair},
		{"Bad", netem.RSSIBad},
	} {
		cfg := base()
		// A light 1 FPS probe stream isolates per-frame transmission
		// delay from link saturation (the input-rate sweep below covers
		// queuing effects).
		cfg.InputFPS = 1
		cfg.Mobility = map[string]netem.Mobility{"B": netem.Static(sc.rssi)}
		row, err := decompose("signal", sc.level, cfg)
		if err != nil {
			return nil, err
		}
		out.Signal = append(out.Signal, row)
	}
	for _, sc := range []struct {
		level string
		load  float64
	}{
		{"20%", 0.2},
		{"60%", 0.6},
		{"95%", 0.95}, // the paper's 100% point; a saturated core still
		// makes slow progress
	} {
		cfg := base()
		cfg.BackgroundLoad = map[string]float64{"B": sc.load}
		row, err := decompose("cpu", sc.level, cfg)
		if err != nil {
			return nil, err
		}
		out.CPULoad = append(out.CPULoad, row)
	}
	for _, fps := range []float64{5, 10, 20} {
		cfg := base()
		cfg.InputFPS = fps
		row, err := decompose("rate", formatFPS(fps), cfg)
		if err != nil {
			return nil, err
		}
		out.Rate = append(out.Rate, row)
	}
	return out, nil
}

func formatFPS(f float64) string {
	switch f {
	case 5:
		return "5 FPS"
	case 10:
		return "10 FPS"
	case 20:
		return "20 FPS"
	default:
		return "FPS"
	}
}

// Fig2 renders the Figure 2 reproduction.
func Fig2(opt Options) (*Report, error) {
	res, err := RunFig2(opt)
	if err != nil {
		return nil, err
	}
	render := func(title string, rows []Fig2Row) *metrics.Table {
		t := newPaperTable(title, "Level", "Transmission (ms)", "Processing (ms)", "Queuing (ms)")
		for _, r := range rows {
			t.AddRow(r.Level, r.TransmissionMs, r.ProcessingMs, r.QueuingMs)
		}
		return t
	}
	return &Report{
		ID:    "Figure 2",
		Title: "Decomposition of delays in remote face-recognition processing",
		Tables: []*metrics.Table{
			render("Wi-Fi signal strength (A sends a 1 FPS probe stream to B)", res.Signal),
			render("Background CPU usage on B", res.CPULoad),
			render("Input data rate", res.Rate),
		},
		Notes: []string{
			"signal strength primarily moves transmission delay; CPU usage moves" +
				" processing delay; input rate moves queuing delay",
		},
	}, nil
}
