package routing

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Table is an immutable snapshot of one router's routing table, built by
// Router.Table and published RCU-style (the runtime swaps an
// atomic.Pointer[Table] on every reconfigure or membership change). Pick
// is safe for unlimited concurrent callers without any lock on the
// weighted-random and round-robin paths: the selection, weights and
// cumulative-weight slices are frozen at build time, and the only mutable
// state — the shared probe budget and the round-robin cursor — is atomic.
// The deterministic SWRR ablation alone takes a small internal mutex
// (credit accounting is inherently sequential).
//
// A Table never observes later estimate updates: the router folds those
// in (ObserveBatch) and the next published snapshot carries the new
// weights. Un-consumed probe budget migrates from the live snapshot to
// its successor via Router.Table, so a mid-window rebuild does not
// re-arm probing.
type Table struct {
	policy        PolicyKind
	deterministic bool
	overloaded    bool

	selected []string  // routing targets, frozen
	weights  []float64 // parallel to selected; sums to 1
	cum      []float64 // cumulative weights for binary-search draws
	order    []string  // every downstream, for probe round-robin

	probeLeft atomic.Int64
	probeIdx  atomic.Uint64
	rrIdx     atomic.Uint64

	swrrMu      sync.Mutex
	swrrCredits []float64
}

// Table builds an immutable snapshot of the current routing table. The
// caller must serialize Table with the router's other methods (the usual
// single-writer discipline); the returned snapshot itself is free of that
// requirement. Probe budget left un-consumed in the previously built
// snapshot carries into the new one, unless Reconfigure re-armed probing
// in between — then the fresh window wins.
func (r *Router) Table() *Table {
	if r.lastTable != nil && !r.probeArmed {
		if rem := r.lastTable.probeLeft.Load(); rem < int64(r.probeLeft) {
			r.probeLeft = int(max(rem, 0))
		}
	}
	r.probeArmed = false
	t := &Table{
		policy:        r.cfg.Policy,
		deterministic: r.cfg.Deterministic,
		overloaded:    r.infeasible,
		selected:      append([]string(nil), r.selected...),
		weights:       append([]float64(nil), r.weights...),
		cum:           append([]float64(nil), r.cum...),
		order:         append([]string(nil), r.order...),
	}
	if t.deterministic {
		t.swrrCredits = make([]float64, len(t.selected))
	}
	t.probeLeft.Store(int64(r.probeLeft))
	r.lastTable = t
	return t
}

// Empty reports whether the snapshot has no routable downstream.
func (t *Table) Empty() bool { return len(t.order) == 0 }

// Overloaded mirrors Router.Overloaded at snapshot time.
func (t *Table) Overloaded() bool { return t.overloaded }

// Size returns the number of downstreams the snapshot routes over.
func (t *Table) Size() int { return len(t.order) }

// Pick chooses the downstream for one tuple. u must be uniform in [0, 1)
// (the caller owns randomness so the snapshot stays lock-free); avoid is
// the congestion hint honored only during probe mode, exactly like
// Router.RouteAvoiding. Concurrent callers share the probe budget and the
// round-robin cursor atomically.
func (t *Table) Pick(u float64, avoid func(id string) bool) (string, error) {
	if len(t.selected) == 0 {
		return "", ErrNoDownstream
	}
	if t.probeLeft.Load() > 0 {
		if id, ok := t.pickProbe(avoid); ok {
			return id, nil
		}
	}
	switch {
	case t.policy == RR:
		return t.selected[int((t.rrIdx.Add(1)-1)%uint64(len(t.selected)))], nil
	case t.deterministic:
		return t.pickSWRR(), nil
	default:
		return t.pickWeighted(u), nil
	}
}

// pickProbe claims one probe slot and cycles the full downstream set,
// skipping avoided entries. A false return means the budget was already
// drained by concurrent picks — or every downstream is congested, which
// abandons the window (Store 0) the way Router.RouteAvoiding does.
func (t *Table) pickProbe(avoid func(id string) bool) (string, bool) {
	if t.probeLeft.Add(-1) < 0 {
		// Lost the race for the last slot. The counter may drift below
		// zero under heavy contention; Pick's Load()>0 gate keeps the
		// drift bounded and a fresh snapshot resets it.
		return "", false
	}
	for tries := 0; tries < len(t.order); tries++ {
		id := t.order[int((t.probeIdx.Add(1)-1)%uint64(len(t.order)))]
		if avoid != nil && avoid(id) {
			continue
		}
		return id, true
	}
	t.probeLeft.Store(0)
	return "", false
}

// pickWeighted resolves a uniform draw against the cumulative-weight
// table by binary search — the lock-free fast path under Submit.
func (t *Table) pickWeighted(u float64) string {
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u < t.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return t.selected[lo]
}

// pickSWRR is smooth weighted round-robin over the snapshot's frozen
// weights (the deterministic ablation); credits are per-snapshot.
func (t *Table) pickSWRR() string {
	t.swrrMu.Lock()
	defer t.swrrMu.Unlock()
	best := 0
	for i := range t.selected {
		t.swrrCredits[i] += t.weights[i]
		if t.swrrCredits[i] > t.swrrCredits[best] {
			best = i
		}
	}
	t.swrrCredits[best]--
	return t.selected[best]
}

// ObserveBatch folds n accumulated ACKs for one downstream in a single
// EWMA step, using the batch means: the closed form of n consecutive
// Observe calls with the same sample,
//
//	est' = (1-α)^n·est + (1-(1-α)^n)·mean
//
// This is the estimate-update half of the RCU submit path: ACK handlers
// bank sums and counts in per-connection atomics instead of taking the
// router lock per tuple, and a periodic flush folds each worker's batch
// here before the next snapshot is built.
func (r *Router) ObserveBatch(id string, latency, processing time.Duration, n int64, now time.Duration) error {
	if n <= 0 {
		return nil
	}
	d, ok := r.downs[id]
	if !ok {
		return ErrUnknownDownstream
	}
	e := &d.est
	if e.Samples == 0 {
		e.Latency, e.Processing = latency, processing
	} else {
		decay := math.Pow(1-r.cfg.Alpha, float64(n))
		e.Latency = time.Duration(decay*float64(e.Latency) + (1-decay)*float64(latency))
		e.Processing = time.Duration(decay*float64(e.Processing) + (1-decay)*float64(processing))
	}
	e.Samples += n
	e.LastUpdate = now
	return nil
}
