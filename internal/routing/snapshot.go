package routing

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Table is an immutable snapshot of one router's routing table, built by
// Router.Table and published RCU-style (the runtime swaps an
// atomic.Pointer[Table] on every reconfigure or membership change). Pick
// is safe for unlimited concurrent callers without any lock on the
// weighted-random and round-robin paths: the selection, weights and
// cumulative-weight slices are frozen at build time, and the only mutable
// state — the shared probe budget and the round-robin cursor — is atomic.
// The deterministic SWRR ablation alone takes a small internal mutex
// (credit accounting is inherently sequential).
//
// A Table never observes later estimate updates: the router folds those
// in (ObserveBatch) and the next published snapshot carries the new
// weights. Un-consumed probe budget migrates from the live snapshot to
// its successor via Router.Table, so a mid-window rebuild does not
// re-arm probing.
type Table struct {
	policy        PolicyKind
	deterministic bool
	overloaded    bool

	selected []string  // routing targets, frozen
	weights  []float64 // parallel to selected; sums to 1
	cum      []float64 // cumulative weights for binary-search draws
	order    []string  // every downstream, for probe round-robin

	probeLeft atomic.Int64
	probeIdx  atomic.Uint64
	rrIdx     atomic.Uint64

	// next points at the successor snapshot that inherited this one's
	// un-consumed probe budget (set by Router.Table before the budget is
	// claimed). Window abandonment follows the chain so that "every
	// downstream is congested" kills the logical probe window wherever its
	// remaining budget currently lives, instead of resurrecting a drained
	// counter a concurrent rebuild already migrated. Snapshots whose budget
	// came from a fresh Reconfigure arm are deliberately not linked.
	// abandoned latches once the window is given up; it is monotonic, so
	// a migration racing with abandonment can never revive the window by
	// overwriting probeLeft.
	next      atomic.Pointer[Table]
	abandoned atomic.Bool

	swrrMu      sync.Mutex
	swrrCredits []float64
}

// Table builds an immutable snapshot of the current routing table. The
// caller must serialize Table with the router's other methods (the usual
// single-writer discipline); the returned snapshot itself is free of that
// requirement. Probe budget left un-consumed in the previously built
// snapshot carries into the new one, unless Reconfigure re-armed probing
// in between — then the fresh window wins.
func (r *Router) Table() *Table {
	t := &Table{
		policy:        r.cfg.Policy,
		deterministic: r.cfg.Deterministic,
		overloaded:    r.infeasible,
		selected:      append([]string(nil), r.selected...),
		weights:       append([]float64(nil), r.weights...),
		cum:           append([]float64(nil), r.cum...),
		order:         append([]string(nil), r.order...),
	}
	if t.deterministic {
		t.swrrCredits = make([]float64, len(t.selected))
	}
	if r.lastTable != nil && !r.probeArmed {
		// Migrate the previous snapshot's un-consumed budget. Link the
		// successor first, then atomically claim the remainder with Swap:
		// an abandonment racing on the old snapshot either zeroes the
		// budget before the Swap (we migrate 0) or walks the chain into
		// this snapshot after it (abandonProbes re-loads next after its
		// stores, so a walk that misses the link happened entirely before
		// the Swap and already drained the budget we would have claimed).
		// Either way the budget is spent at most once, and the abandoned
		// latch below makes the kill stick even if the Store under it
		// lands after a chained zeroing.
		r.lastTable.next.Store(t)
		rem := max(r.lastTable.probeLeft.Swap(0), 0)
		if rem < int64(r.probeLeft) {
			r.probeLeft = int(rem)
		}
	}
	r.probeArmed = false
	t.probeLeft.Store(int64(r.probeLeft))
	r.lastTable = t
	return t
}

// Empty reports whether the snapshot has no routable downstream.
func (t *Table) Empty() bool { return len(t.order) == 0 }

// Overloaded mirrors Router.Overloaded at snapshot time.
func (t *Table) Overloaded() bool { return t.overloaded }

// Size returns the number of downstreams the snapshot routes over.
func (t *Table) Size() int { return len(t.order) }

// Pick chooses the downstream for one tuple. u must be uniform in [0, 1)
// (the caller owns randomness so the snapshot stays lock-free); avoid is
// the congestion hint honored only during probe mode, exactly like
// Router.RouteAvoiding. Concurrent callers share the probe budget and the
// round-robin cursor atomically.
func (t *Table) Pick(u float64, avoid func(id string) bool) (string, error) {
	if len(t.selected) == 0 {
		return "", ErrNoDownstream
	}
	if t.probeLeft.Load() > 0 {
		if id, ok := t.pickProbe(avoid); ok {
			return id, nil
		}
	}
	switch {
	case t.policy == RR:
		return t.selected[int((t.rrIdx.Add(1)-1)%uint64(len(t.selected)))], nil
	case t.deterministic:
		return t.pickSWRR(), nil
	default:
		return t.pickWeighted(u), nil
	}
}

// pickProbe claims one probe slot and cycles the full downstream set,
// skipping avoided entries. A false return means the budget was already
// drained by concurrent picks — or every downstream is congested, which
// abandons the window the way Router.RouteAvoiding does.
func (t *Table) pickProbe(avoid func(id string) bool) (string, bool) {
	// CAS-decrement: the counter can never go below zero, so the total
	// number of successful claims is bounded by the armed budget even
	// under arbitrary contention (a blind Add(-1) after a Load()>0 gate
	// lets losers drive it negative).
	for {
		left := t.probeLeft.Load()
		if left <= 0 || t.abandoned.Load() {
			return "", false
		}
		if t.probeLeft.CompareAndSwap(left, left-1) {
			break
		}
	}
	for tries := 0; tries < len(t.order); tries++ {
		id := t.order[int((t.probeIdx.Add(1)-1)%uint64(len(t.order)))]
		if avoid != nil && avoid(id) {
			continue
		}
		return id, true
	}
	t.abandonProbes()
	return "", false
}

// abandonProbes ends the probe window on this snapshot and on every
// successor that inherited its budget. The abandoned latch is set before
// the counter is zeroed and next is re-loaded only after both stores, so
// a migration racing with the walk either finds the budget already
// drained or is reached through the chain — a window abandoned under one
// snapshot stays abandoned across rebuilds. Fresh windows armed by
// Reconfigure live in unlinked snapshots and are unaffected.
func (t *Table) abandonProbes() {
	for tb := t; tb != nil; tb = tb.next.Load() {
		tb.abandoned.Store(true)
		tb.probeLeft.Store(0)
	}
}

// ProbeLeft reports the probe budget remaining in this snapshot; it is
// never negative and reads zero once the window is drained or abandoned.
func (t *Table) ProbeLeft() int64 {
	if t.abandoned.Load() {
		return 0
	}
	return max(t.probeLeft.Load(), 0)
}

// pickWeighted resolves a uniform draw against the cumulative-weight
// table by binary search — the lock-free fast path under Submit.
func (t *Table) pickWeighted(u float64) string {
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u < t.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return t.selected[lo]
}

// pickSWRR is smooth weighted round-robin over the snapshot's frozen
// weights (the deterministic ablation); credits are per-snapshot.
func (t *Table) pickSWRR() string {
	t.swrrMu.Lock()
	defer t.swrrMu.Unlock()
	best := 0
	for i := range t.selected {
		t.swrrCredits[i] += t.weights[i]
		if t.swrrCredits[i] > t.swrrCredits[best] {
			best = i
		}
	}
	t.swrrCredits[best]--
	return t.selected[best]
}

// ObserveBatch folds n accumulated ACKs for one downstream in a single
// EWMA step, using the batch means: the closed form of n consecutive
// Observe calls with the same sample,
//
//	est' = (1-α)^n·est + (1-(1-α)^n)·mean
//
// This is the estimate-update half of the RCU submit path: ACK handlers
// bank sums and counts in per-connection atomics instead of taking the
// router lock per tuple, and a periodic flush folds each worker's batch
// here before the next snapshot is built.
func (r *Router) ObserveBatch(id string, latency, processing time.Duration, n int64, now time.Duration) error {
	if n <= 0 {
		return nil
	}
	d, ok := r.downs[id]
	if !ok {
		return ErrUnknownDownstream
	}
	e := &d.est
	rem := n
	if e.Samples == 0 {
		// Seed exactly as Estimate.Observe's first-sample path does — the
		// first banked sample becomes the estimate — then fold the
		// remaining n−1 through the closed form below. Structurally
		// mirroring the per-sample path keeps ObserveBatch(n) identical to
		// n consecutive Observe calls from a cold estimator, so banked-ACK
		// flushing cannot skew warm-up estimates.
		e.Latency, e.Processing = latency, processing
		rem--
	}
	if rem > 0 {
		decay := math.Pow(1-r.cfg.Alpha, float64(rem))
		e.Latency = time.Duration(decay*float64(e.Latency) + (1-decay)*float64(latency))
		e.Processing = time.Duration(decay*float64(e.Processing) + (1-decay)*float64(processing))
	}
	e.Samples += n
	e.LastUpdate = now
	return nil
}
