// Package routing implements Swing's distributed resource-management
// algorithms (paper §V): per-upstream latency estimation from timestamped
// ACKs, Worker Selection, and probabilistic data routing. It provides the
// paper's LRS algorithm (Latency-based Routing with worker Selection) and
// the four comparison policies of §VI-B:
//
//	RR  — round-robin over all downstreams (the data-center default)
//	PR  — processing-delay-based probabilistic routing, no selection
//	LR  — latency-based probabilistic routing, no selection
//	PRS — processing-delay-based routing with Worker Selection
//	LRS — latency-based routing with Worker Selection (Swing's policy)
//
// The package is pure control logic with no goroutines or I/O: both the
// discrete-event swarm simulator (internal/core) and the live runtime
// (internal/runtime) drive the same Router, so the algorithm evaluated in
// simulation is exactly the code deployed on devices.
package routing

import (
	"errors"
	"fmt"
	"strings"
)

// PolicyKind selects a resource-management policy.
type PolicyKind uint8

// The five policies compared in the paper's evaluation.
const (
	RR PolicyKind = iota + 1
	PR
	LR
	PRS
	LRS
)

// Policies lists all policy kinds in the paper's presentation order.
func Policies() []PolicyKind { return []PolicyKind{RR, PR, LR, PRS, LRS} }

// String names the policy as the paper does.
func (p PolicyKind) String() string {
	switch p {
	case RR:
		return "RR"
	case PR:
		return "PR"
	case LR:
		return "LR"
	case PRS:
		return "PRS"
	case LRS:
		return "LRS"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// UsesLatency reports whether routing weights derive from end-to-end
// latency (L*) rather than processing delay only (P*).
func (p PolicyKind) UsesLatency() bool { return p == LR || p == LRS }

// UsesSelection reports whether the policy applies Worker Selection (*S).
func (p PolicyKind) UsesSelection() bool { return p == PRS || p == LRS }

// Valid reports whether p is a known policy.
func (p PolicyKind) Valid() bool { return p >= RR && p <= LRS }

// ErrUnknownPolicy is returned by ParsePolicy for unrecognized names.
var ErrUnknownPolicy = errors.New("routing: unknown policy")

// ParsePolicy resolves a policy name (case-insensitive).
func ParsePolicy(s string) (PolicyKind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "RR":
		return RR, nil
	case "PR":
		return PR, nil
	case "LR":
		return LR, nil
	case "PRS":
		return PRS, nil
	case "LRS":
		return LRS, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownPolicy, s)
	}
}
