package routing

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"
)

// benchRouter builds a router with n downstreams that all have live
// estimates, reconfigured once so the routing table is populated.
func benchRouter(b *testing.B, n int, det bool) *Router {
	b.Helper()
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 0 // steady-state routing, no probe windows
	cfg.Deterministic = det
	r, err := NewRouter(cfg, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		if err := r.AddDownstream(id); err != nil {
			b.Fatal(err)
		}
		lat := time.Duration(20+7*i) * time.Millisecond
		if err := r.ObserveAck(id, lat, lat/2, 0); err != nil {
			b.Fatal(err)
		}
	}
	r.Reconfigure(24)
	return r
}

func BenchmarkRouterRoute(b *testing.B) {
	r := benchRouter(b, 8, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouterReconfigure(b *testing.B) {
	r := benchRouter(b, 8, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reconfigure(24)
	}
}

func BenchmarkRouterSnapshot(b *testing.B) {
	r := benchRouter(b, 8, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func BenchmarkRouterSnapshotAppend(b *testing.B) {
	r := benchRouter(b, 8, false)
	var buf []Info
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendSnapshot(buf[:0])
	}
}
