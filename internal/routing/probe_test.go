package routing

import (
	"testing"
	"time"
)

// TestProbeSkipsCongestedTargets: probe-mode routing honors the
// congestion hint so probes never block on saturated links (the behaviour
// the voice-translation workload depends on).
func TestProbeSkipsCongestedTargets(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 1
	cfg.ProbeTuples = 4
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"good1", "good2", "jammed"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
		feed(t, r, id, 100*time.Millisecond, 100*time.Millisecond)
	}
	r.Reconfigure(10) // enters probe mode (ProbeEvery=1)
	if !r.Probing() {
		t.Fatal("not probing")
	}
	avoid := func(id string) bool { return id == "jammed" }
	for i := 0; i < 4; i++ {
		id, err := r.RouteAvoiding(avoid)
		if err != nil {
			t.Fatal(err)
		}
		if id == "jammed" {
			t.Fatal("probe routed to a congested target")
		}
	}
}

// TestProbeGivesUpWhenAllCongested: when every downstream reports
// congestion, the probe window is abandoned and normal routing resumes
// (which may then block — correct TCP semantics for policy traffic).
func TestProbeGivesUpWhenAllCongested(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 1
	cfg.ProbeTuples = 4
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
		feed(t, r, id, 100*time.Millisecond, 100*time.Millisecond)
	}
	r.Reconfigure(10)
	if !r.Probing() {
		t.Fatal("not probing")
	}
	id, err := r.RouteAvoiding(func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if id != "a" && id != "b" {
		t.Fatalf("routed to %q", id)
	}
	if r.Probing() {
		t.Fatal("probe window not abandoned")
	}
}

// TestRouteNilAvoidEqualsRoute: Route is RouteAvoiding(nil).
func TestRouteNilAvoidEqualsRoute(t *testing.T) {
	a, err := NewRouter(DefaultConfig(LR), testRNG())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRouter(DefaultConfig(LR), testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Router{a, b} {
		for _, id := range []string{"x", "y", "z"} {
			if err := r.AddDownstream(id); err != nil {
				t.Fatal(err)
			}
			feed(t, r, id, 100*time.Millisecond, 100*time.Millisecond)
		}
		r.Reconfigure(10)
	}
	for i := 0; i < 200; i++ {
		ida, err := a.Route()
		if err != nil {
			t.Fatal(err)
		}
		idb, err := b.RouteAvoiding(nil)
		if err != nil {
			t.Fatal(err)
		}
		if ida != idb {
			t.Fatalf("diverged at %d: %s vs %s", i, ida, idb)
		}
	}
}

// TestProbeCountsAcrossWindows: probe tuples decrement only when actually
// routed, and fresh reconfigurations top the window back up.
func TestProbeCountsAcrossWindows(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 1
	cfg.ProbeTuples = 3
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
		feed(t, r, id, 100*time.Millisecond, 100*time.Millisecond)
	}
	r.Reconfigure(10)
	for i := 0; i < 3; i++ {
		if !r.Probing() {
			t.Fatalf("probe ended after %d tuples, want 3", i)
		}
		if _, err := r.Route(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Probing() {
		t.Fatal("probe window did not close")
	}
	r.Reconfigure(10)
	if !r.Probing() {
		t.Fatal("next reconfigure did not reopen the probe window")
	}
}
