package routing

import (
	"time"
)

// Estimate holds the per-downstream delay estimates an upstream maintains
// (paper §V-B). Latency is the full round measured via ACK timestamps:
// network transmission + downstream queuing + processing (the ACK return
// itself is negligible). Processing is the downstream-reported pure
// processing delay, which the P* policies use.
type Estimate struct {
	// Latency is the EWMA of end-to-end tuple latency.
	Latency time.Duration
	// Processing is the EWMA of downstream processing delay.
	Processing time.Duration
	// Samples counts ACKs folded into the estimate.
	Samples int64
	// LastUpdate is the (virtual or wall) time of the latest ACK.
	LastUpdate time.Duration
}

// HasSample reports whether at least one ACK has been observed.
func (e Estimate) HasSample() bool { return e.Samples > 0 }

// ServiceRate converts a latency-class delay into tuples/second (μ = 1/L).
func rateOf(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(time.Second) / float64(d)
}

// LatencyRate returns μ_i computed from end-to-end latency.
func (e Estimate) LatencyRate() float64 { return rateOf(e.Latency) }

// ProcessingRate returns μ_i computed from processing delay only.
func (e Estimate) ProcessingRate() float64 { return rateOf(e.Processing) }

// ewma folds a new sample into an exponential moving average.
func ewma(prev, sample time.Duration, alpha float64, first bool) time.Duration {
	if first {
		return sample
	}
	return time.Duration(alpha*float64(sample) + (1-alpha)*float64(prev))
}

// Observe folds an ACK's measurements into the estimate.
func (e *Estimate) Observe(latency, processing time.Duration, alpha float64, now time.Duration) {
	first := e.Samples == 0
	e.Latency = ewma(e.Latency, latency, alpha, first)
	e.Processing = ewma(e.Processing, processing, alpha, first)
	e.Samples++
	e.LastUpdate = now
}
