package routing

import (
	"errors"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTableEmpty(t *testing.T) {
	r := newTestRouter(t, LRS)
	tbl := r.Table()
	if !tbl.Empty() || tbl.Size() != 0 {
		t.Fatal("empty router produced non-empty table")
	}
	if _, err := tbl.Pick(0.5, nil); !errors.Is(err, ErrNoDownstream) {
		t.Fatalf("Pick on empty table: %v", err)
	}
}

func TestTableRRCyclesEvenly(t *testing.T) {
	cfg := DefaultConfig(RR)
	cfg.ProbeEvery = 0
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B", "C", "D"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	tbl := r.Table()
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		id, err := tbl.Pick(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	for _, id := range []string{"B", "C", "D"} {
		if counts[id] != 100 {
			t.Fatalf("table RR counts = %v", counts)
		}
	}
}

// TestTableWeightedMatchesWeights draws through the snapshot's lock-free
// weighted path and checks the empirical split tracks the frozen weights.
func TestTableWeightedMatchesWeights(t *testing.T) {
	cfg := DefaultConfig(LR)
	cfg.ProbeEvery = 0
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fast", "slow"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, r, "fast", 10*time.Millisecond, 5*time.Millisecond)
	feed(t, r, "slow", 40*time.Millisecond, 20*time.Millisecond)
	r.Reconfigure(0)
	tbl := r.Table()
	tbl.probeLeft.Store(0) // isolate the weighted path

	want := map[string]float64{}
	for i, id := range tbl.selected {
		want[id] = tbl.weights[i]
	}
	rng := rand.New(rand.NewPCG(7, 9))
	const n = 20000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		id, err := tbl.Pick(rng.Float64(), nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	for id, w := range want {
		got := float64(counts[id]) / n
		if math.Abs(got-w) > 0.02 {
			t.Errorf("%s: empirical share %.3f, weight %.3f", id, got, w)
		}
	}
	if counts["fast"] <= counts["slow"] {
		t.Errorf("fast worker not preferred: %v", counts)
	}
}

// TestTableProbeBudgetMigrates rebuilds the snapshot mid-probe-window: the
// un-consumed budget must carry over rather than re-arm, and a Reconfigure
// must re-arm a fresh window.
func TestTableProbeBudgetMigrates(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 1 // every reconfigure arms a probe window
	cfg.ProbeTuples = 8
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B", "C"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	r.Reconfigure(0) // arms an 8-tuple probe window
	tbl := r.Table()
	if got := tbl.probeLeft.Load(); got != 8 {
		t.Fatalf("armed budget = %d, want 8", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := tbl.Pick(0.5, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-window rebuild (e.g. a membership change): 3 slots remain.
	tbl2 := r.Table()
	if got := tbl2.probeLeft.Load(); got != 3 {
		t.Fatalf("migrated budget = %d, want 3", got)
	}
	// Reconfigure re-arms; the fresh window wins over the stale remainder.
	r.Reconfigure(0)
	tbl3 := r.Table()
	if got := tbl3.probeLeft.Load(); got != 8 {
		t.Fatalf("re-armed budget = %d, want 8", got)
	}
}

// TestTablePickConcurrent hammers one snapshot from many goroutines — the
// lock-free guarantee the Submit path depends on. Run with -race.
func TestTablePickConcurrent(t *testing.T) {
	cfg := DefaultConfig(LRS)
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B", "C", "D", "E"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	r.Reconfigure(0)
	tbl := r.Table()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 11))
			for i := 0; i < 2000; i++ {
				if _, err := tbl.Pick(rng.Float64(), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestObserveBatchMatchesRepeatedObserve checks the closed-form batched
// EWMA equals n successive per-sample updates with the batch mean.
func TestObserveBatchMatchesRepeatedObserve(t *testing.T) {
	mk := func() *Router {
		r, err := NewRouter(DefaultConfig(LRS), testRNG())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.AddDownstream("B"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	single, batched := mk(), mk()
	// Seed both with an initial estimate, then apply 7 samples of the same
	// value — one at a time vs. one batch.
	if err := single.ObserveAck("B", 20*time.Millisecond, 10*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := batched.ObserveBatch("B", 20*time.Millisecond, 10*time.Millisecond, 1, 0); err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := 0; i < n; i++ {
		if err := single.ObserveAck("B", 50*time.Millisecond, 25*time.Millisecond, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.ObserveBatch("B", 50*time.Millisecond, 25*time.Millisecond, n, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	es, eb := single.Estimates()["B"], batched.Estimates()["B"]
	if es.Samples != eb.Samples {
		t.Fatalf("samples: single %d, batched %d", es.Samples, eb.Samples)
	}
	if d := math.Abs(float64(es.Latency - eb.Latency)); d > float64(10*time.Microsecond) {
		t.Errorf("latency drift %v: single %v, batched %v", time.Duration(d), es.Latency, eb.Latency)
	}
	if d := math.Abs(float64(es.Processing - eb.Processing)); d > float64(10*time.Microsecond) {
		t.Errorf("processing drift %v: single %v, batched %v", time.Duration(d), es.Processing, eb.Processing)
	}
	if err := batched.ObserveBatch("nope", time.Millisecond, time.Millisecond, 1, 0); !errors.Is(err, ErrUnknownDownstream) {
		t.Errorf("unknown downstream err = %v", err)
	}
}

// TestTableProbeBudgetNeverNegative hammers pickProbe from many goroutines
// against one armed window while a sampler watches the counter: the total
// number of successful probe claims must equal the armed budget exactly,
// and the CAS-decrement loop must never let the counter go below zero
// (the old blind Add(-1) let losers drive it arbitrarily negative).
func TestTableProbeBudgetNeverNegative(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 1
	cfg.ProbeTuples = 64
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B", "C", "D", "E"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	r.Reconfigure(0)
	tbl := r.Table()

	done := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if got := tbl.probeLeft.Load(); got < 0 {
				t.Errorf("probe budget went negative: %d", got)
				return
			}
		}
	}()

	var claims atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, ok := tbl.pickProbe(nil); ok {
					claims.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	sampler.Wait()
	if got := claims.Load(); got != 64 {
		t.Fatalf("probe claims = %d, want exactly the armed budget 64", got)
	}
	if got := tbl.probeLeft.Load(); got != 0 {
		t.Fatalf("drained budget = %d, want 0", got)
	}
	if got := tbl.ProbeLeft(); got != 0 {
		t.Fatalf("ProbeLeft() = %d, want 0", got)
	}
}

// TestTableAbandonSurvivesRebuild abandons a probe window (every
// downstream congested) while the avoid callback itself triggers a
// snapshot rebuild that migrates the remaining budget — the historical
// resurrection bug: Store(0) on the old snapshot landed after the budget
// had already moved, so the "abandoned" window lived on in the successor.
// Abandonment must follow the migration chain; a window re-armed by
// Reconfigure must stay immune to stale abandonments.
func TestTableAbandonSurvivesRebuild(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 1
	cfg.ProbeTuples = 8
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B", "C"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	r.Reconfigure(0)
	t1 := r.Table()

	var t2 *Table
	avoidAll := func(id string) bool {
		if t2 == nil {
			t2 = r.Table() // mid-scan rebuild migrates the window
		}
		return true
	}
	// The pick claims a slot, finds every downstream congested, and
	// abandons the window; it must still route via the policy path.
	if _, err := t1.Pick(0.5, avoidAll); err != nil {
		t.Fatal(err)
	}
	if t2 == nil {
		t.Fatal("avoid callback never ran: probe path not taken")
	}
	if got := t2.ProbeLeft(); got != 0 {
		t.Fatalf("abandoned window resurrected in successor: budget %d, want 0", got)
	}
	if _, ok := t2.pickProbe(nil); ok {
		t.Fatal("successor handed out a probe from an abandoned window")
	}

	// Reconfigure arms a fresh window in an unlinked snapshot: stale
	// abandonments of the dead chain must not reach it.
	r.Reconfigure(0)
	t3 := r.Table()
	if got := t3.ProbeLeft(); got != 8 {
		t.Fatalf("re-armed budget = %d, want 8", got)
	}
	t1.abandonProbes()
	if got := t3.ProbeLeft(); got != 8 {
		t.Fatalf("stale abandonment clipped a fresh window: budget %d, want 8", got)
	}
}

// TestObserveBatchFreshSeedEquivalence pins the cold-start contract: for a
// fresh estimator (Samples == 0), ObserveBatch(n) must land exactly where
// n consecutive Observe calls with the batch mean land — first sample
// seeds, the rest fold through the EWMA — for n ∈ {1, 2, 10}, including a
// warm follow-up batch at a different value.
func TestObserveBatchFreshSeedEquivalence(t *testing.T) {
	mk := func() *Router {
		r, err := NewRouter(DefaultConfig(LRS), testRNG())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.AddDownstream("B"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	check := func(n int64, single, batched *Router) {
		t.Helper()
		es, eb := single.Estimates()["B"], batched.Estimates()["B"]
		if es.Samples != eb.Samples {
			t.Fatalf("n=%d: samples single %d, batched %d", n, es.Samples, eb.Samples)
		}
		if d := math.Abs(float64(es.Latency - eb.Latency)); d > float64(time.Microsecond) {
			t.Errorf("n=%d: latency drift %v (single %v, batched %v)", n, time.Duration(d), es.Latency, eb.Latency)
		}
		if d := math.Abs(float64(es.Processing - eb.Processing)); d > float64(time.Microsecond) {
			t.Errorf("n=%d: processing drift %v (single %v, batched %v)", n, time.Duration(d), es.Processing, eb.Processing)
		}
	}
	for _, n := range []int64{1, 2, 10} {
		single, batched := mk(), mk()
		for i := int64(0); i < n; i++ {
			if err := single.ObserveAck("B", 30*time.Millisecond, 12*time.Millisecond, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := batched.ObserveBatch("B", 30*time.Millisecond, 12*time.Millisecond, n, 0); err != nil {
			t.Fatal(err)
		}
		check(n, single, batched)
		// Warm continuation: a second batch at a new value must also track.
		for i := int64(0); i < n; i++ {
			if err := single.ObserveAck("B", 55*time.Millisecond, 21*time.Millisecond, time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		if err := batched.ObserveBatch("B", 55*time.Millisecond, 21*time.Millisecond, n, time.Millisecond); err != nil {
			t.Fatal(err)
		}
		check(n, single, batched)
	}
}
