package routing

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Config parameterizes a Router. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Policy selects the resource-management algorithm.
	Policy PolicyKind
	// Alpha is the EWMA smoothing factor for delay estimates in (0, 1].
	Alpha float64
	// ReconfigurePeriod is how often the routing table is recomputed
	// from fresh estimates (paper: every 1 s).
	ReconfigurePeriod time.Duration
	// ProbeEvery makes every Nth reconfiguration enter probe mode, in
	// which the next ProbeTuples tuples round-robin across *all*
	// downstreams so unselected workers keep fresh estimates (§V-B).
	// Zero disables probing.
	ProbeEvery int
	// ProbeTuples is the probe-mode length in tuples.
	ProbeTuples int
	// Headroom over-provisions Worker Selection: select until
	// Σμ ≥ (1+Headroom)·Λ. The paper uses zero headroom.
	Headroom float64
	// Deterministic switches probabilistic routing to smooth weighted
	// round-robin (an ablation; the paper uses weighted random draws).
	Deterministic bool
}

// DefaultConfig returns the paper's operating parameters for a policy.
func DefaultConfig(p PolicyKind) Config {
	return Config{
		Policy:            p,
		Alpha:             0.3,
		ReconfigurePeriod: time.Second,
		ProbeEvery:        5,
		ProbeTuples:       8,
	}
}

// Validate checks config invariants.
func (c Config) Validate() error {
	if !c.Policy.Valid() {
		return fmt.Errorf("routing: invalid policy %d", c.Policy)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("routing: alpha %v outside (0,1]", c.Alpha)
	}
	if c.ReconfigurePeriod <= 0 {
		return fmt.Errorf("routing: non-positive reconfigure period %v", c.ReconfigurePeriod)
	}
	if c.ProbeEvery < 0 || c.ProbeTuples < 0 {
		return errors.New("routing: negative probe parameters")
	}
	if c.Headroom < 0 {
		return fmt.Errorf("routing: negative headroom %v", c.Headroom)
	}
	return nil
}

// downState is the router's bookkeeping for one downstream function unit.
type downState struct {
	id  string
	est Estimate
	// swrrCredit accumulates weight for deterministic smooth weighted
	// round-robin.
	swrrCredit float64
}

// Router executes one upstream function unit's share of the distributed
// algorithm: it maintains delay estimates for its downstream units,
// periodically recomputes the routing table (selection + weights), and
// answers per-tuple routing queries.
//
// Router is not safe for concurrent use; the runtime serializes access per
// upstream (matching the paper's one-router-per-upstream-thread design).
type Router struct {
	cfg Config
	rng *rand.Rand

	downs map[string]*downState
	order []string // insertion order, for deterministic iteration

	// warm holds checkpointed estimates from a previous incarnation of the
	// coordinator, applied when the matching downstream re-joins so the
	// router resumes routing on measured rates instead of re-learning from
	// scratch (master crash recovery). Entries are consumed on use.
	warm map[string]Estimate

	// Routing table (recomputed on Reconfigure).
	selected []string
	weights  []float64 // parallel to selected; sums to 1
	cum      []float64 // cumulative weights, for binary-search draws

	// selWeight mirrors selected→weight for O(1) Snapshot lookups; it is
	// rebuilt in recompute so per-tick snapshots allocate nothing.
	selWeight map[string]float64

	// Scratch buffers reused across recomputes so the per-second
	// reconfigure path stops allocating in steady state.
	candScratch []cand
	rateScratch []float64

	rrIdx      int
	rounds     int
	probeLeft  int
	probeIdx   int
	lastLambda float64
	infeasible bool

	// lastTable is the most recently built immutable snapshot (see
	// snapshot.go); Table consults it to migrate un-consumed probe budget
	// into the next snapshot. probeArmed marks that Reconfigure opened a
	// fresh probe window since the last snapshot, which must not be
	// clipped by the (drained) budget of the previous one.
	lastTable  *Table
	probeArmed bool
}

// Errors returned by Router operations.
var (
	ErrDupDownstream     = errors.New("routing: downstream already present")
	ErrUnknownDownstream = errors.New("routing: unknown downstream")
	ErrNoDownstream      = errors.New("routing: no downstream available")
)

// NewRouter returns a Router for the given config using rng for
// probabilistic draws. rng must not be shared concurrently.
func NewRouter(cfg Config, rng *rand.Rand) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("routing: nil rng")
	}
	return &Router{
		cfg:       cfg,
		rng:       rng,
		downs:     make(map[string]*downState),
		selWeight: make(map[string]float64),
	}, nil
}

// Policy returns the router's policy kind.
func (r *Router) Policy() PolicyKind { return r.cfg.Policy }

// AddDownstream registers a new downstream unit. It becomes routable at
// the next Reconfigure — or immediately if no routing table exists yet.
// This is the paper's join path: the master activates function units on a
// joining device and upstreams add its thread ID to their routing tables.
func (r *Router) AddDownstream(id string) error {
	if id == "" {
		return errors.New("routing: empty downstream id")
	}
	if _, dup := r.downs[id]; dup {
		return fmt.Errorf("%w: %q", ErrDupDownstream, id)
	}
	d := &downState{id: id}
	if est, ok := r.warm[id]; ok {
		// A re-adopted worker resumes with its checkpointed estimate; new
		// ACKs fold into it through the usual EWMA.
		d.est = est
		delete(r.warm, id)
	}
	r.downs[id] = d
	r.order = append(r.order, id)
	// Fold the newcomer into the live table right away so it receives
	// traffic within one reconfigure period ("within a second of G's
	// arrival, throughput rises", §VI-C). It starts with no estimate and
	// is treated optimistically by recompute.
	r.recompute(r.lastLambda)
	return nil
}

// RemoveDownstream drops a downstream (device left or link broke) and
// immediately recomputes the routing table so no further tuples route to
// it (§IV-C "Handling Joining and Leaving").
func (r *Router) RemoveDownstream(id string) error {
	d, ok := r.downs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDownstream, id)
	}
	if d.est.Samples > 0 {
		// Park the estimate: a worker that drops and rejoins (or rejoins a
		// restarted master that checkpointed this table) resumes warm
		// instead of re-probing from scratch.
		if r.warm == nil {
			r.warm = make(map[string]Estimate, 1)
		}
		r.warm[id] = d.est
	}
	delete(r.downs, id)
	for i, d := range r.order {
		if d == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.recompute(r.lastLambda)
	return nil
}

// Downstreams returns the registered downstream IDs in insertion order.
func (r *Router) Downstreams() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Has reports whether the downstream is registered.
func (r *Router) Has(id string) bool {
	_, ok := r.downs[id]
	return ok
}

// SeedEstimates primes the router with per-downstream estimates from a
// previous incarnation (crash recovery). Each estimate is applied — once —
// when a downstream with a matching ID joins; IDs that never re-join
// simply age out with the map. Downstreams already registered are updated
// in place.
func (r *Router) SeedEstimates(ests map[string]Estimate) {
	if len(ests) == 0 {
		return
	}
	if r.warm == nil {
		r.warm = make(map[string]Estimate, len(ests))
	}
	for id, est := range ests {
		if d, ok := r.downs[id]; ok {
			d.est = est
			continue
		}
		r.warm[id] = est
	}
	r.recompute(r.lastLambda)
}

// SeededEstimate reports the warm estimate waiting for a downstream that
// has not re-joined yet (crash-recovery introspection).
func (r *Router) SeededEstimate(id string) (Estimate, bool) {
	est, ok := r.warm[id]
	return est, ok
}

// Estimates returns a copy of every known estimate keyed by ID — the
// export side of checkpointing. Warm estimates still waiting for their
// worker to re-join are included, so checkpoints survive crash-restart
// cycles shorter than a worker's reconnect backoff.
func (r *Router) Estimates() map[string]Estimate {
	out := make(map[string]Estimate, len(r.downs)+len(r.warm))
	for id, est := range r.warm {
		out[id] = est
	}
	for id, d := range r.downs {
		out[id] = d.est
	}
	return out
}

// ObserveAck folds a downstream ACK into its delay estimates. latency is
// the upstream-measured end-to-end delay (now − tuple emit timestamp);
// processing is the downstream-reported processing delay.
func (r *Router) ObserveAck(id string, latency, processing time.Duration, now time.Duration) error {
	d, ok := r.downs[id]
	if !ok {
		// The downstream may have just been removed; late ACKs are
		// expected and ignored.
		return fmt.Errorf("%w: %q", ErrUnknownDownstream, id)
	}
	d.est.Observe(latency, processing, r.cfg.Alpha, now)
	return nil
}

// Estimate returns the current estimate for a downstream.
func (r *Router) Estimate(id string) (Estimate, error) {
	d, ok := r.downs[id]
	if !ok {
		return Estimate{}, fmt.Errorf("%w: %q", ErrUnknownDownstream, id)
	}
	return d.est, nil
}

// Reconfigure recomputes the routing table from current estimates, given
// the measured input tuple rate lambda (Λ). The runtime calls this every
// ReconfigurePeriod.
func (r *Router) Reconfigure(lambda float64) {
	r.rounds++
	if r.cfg.ProbeEvery > 0 && r.rounds%r.cfg.ProbeEvery == 0 {
		r.probeLeft = r.cfg.ProbeTuples
		r.probeArmed = true
	}
	r.recompute(lambda)
}

// rateFor returns the service-rate estimate the policy uses for a
// downstream. Downstreams with no samples are treated optimistically with
// an infinite rate so they are tried first (and measured) before being
// relied upon.
func (r *Router) rateFor(d *downState) float64 {
	if !d.est.HasSample() {
		return float64(1<<62) / float64(time.Second)
	}
	if r.cfg.Policy.UsesLatency() {
		return d.est.LatencyRate()
	}
	return d.est.ProcessingRate()
}

// cand is one downstream candidate during table recomputation.
type cand struct {
	id   string
	rate float64
}

// recompute rebuilds selection, weights and the cumulative-weight table.
// It runs every reconfigure period per upstream, so it draws entirely on
// the router's reusable scratch buffers and allocates nothing in steady
// state.
func (r *Router) recompute(lambda float64) {
	r.lastLambda = lambda
	r.selected = r.selected[:0]
	r.weights = r.weights[:0]
	r.cum = r.cum[:0]
	clear(r.selWeight)
	defer func() {
		for i, id := range r.selected {
			r.selWeight[id] = r.weights[i]
		}
	}()
	if len(r.order) == 0 {
		return
	}
	if r.cfg.Policy == RR {
		// Round-robin routes over all downstreams with equal weight.
		r.selected = append(r.selected, r.order...)
		w := 1 / float64(len(r.selected))
		for range r.selected {
			r.weights = append(r.weights, w)
		}
		return
	}

	cands := r.candScratch[:0]
	for _, id := range r.order {
		cands = append(cands, cand{id: id, rate: r.rateFor(r.downs[id])})
	}
	r.candScratch = cands
	// Stable insertion sort by descending service rate; ties keep
	// insertion order, which keeps runs deterministic. Downstream sets
	// are small (the paper's testbed has eight workers), so this beats
	// sort.SliceStable and avoids its closure/interface allocations.
	for i := 1; i < len(cands); i++ {
		x := cands[i]
		j := i - 1
		for j >= 0 && cands[j].rate < x.rate {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = x
	}

	chosen := cands
	r.infeasible = false
	if r.cfg.Policy.UsesSelection() && lambda > 0 {
		// Worker Selection: the minimum prefix with Σμ ≥ (1+h)·Λ. If the
		// constraint is infeasible, all downstreams are selected (§V-A)
		// and the infeasibility itself is surfaced via Overloaded so the
		// runtime can shed instead of letting Submit back up. Unsampled
		// downstreams carry an optimistic (effectively infinite) rate, so
		// a swarm is never declared overloaded while unmeasured capacity
		// remains.
		target := lambda * (1 + r.cfg.Headroom)
		sum := 0.0
		cut := len(cands)
		for i, c := range cands {
			sum += c.rate
			if sum >= target {
				cut = i + 1
				break
			}
		}
		r.infeasible = sum < target
		chosen = cands[:cut]
	}

	// Routing weights p_i ∝ μ_i over the selected set (§V-A "Data
	// Routing"). Unsampled downstreams (infinite rate) would swallow the
	// whole distribution, so they are capped at the best sampled rate —
	// or share equally when nothing is sampled yet.
	best := 0.0
	for _, c := range chosen {
		if r.downs[c.id].est.HasSample() && c.rate > best {
			best = c.rate
		}
	}
	total := 0.0
	rates := r.rateScratch[:0]
	for _, c := range chosen {
		rate := c.rate
		if !r.downs[c.id].est.HasSample() {
			if best > 0 {
				rate = best
			} else {
				rate = 1
			}
		}
		rates = append(rates, rate)
		total += rate
	}
	r.rateScratch = rates
	acc := 0.0
	for i, c := range chosen {
		w := rates[i] / total
		acc += w
		r.selected = append(r.selected, c.id)
		r.weights = append(r.weights, w)
		r.cum = append(r.cum, acc)
	}
}

// Selected returns the IDs in the current routing table and their weights.
func (r *Router) Selected() ([]string, []float64) {
	ids, ws := r.AppendSelected(nil, nil)
	return ids, ws
}

// AppendSelected appends the current routing table to the given slices
// and returns them, letting per-tick callers reuse their buffers instead
// of allocating fresh copies every sample.
func (r *Router) AppendSelected(ids []string, ws []float64) ([]string, []float64) {
	return append(ids, r.selected...), append(ws, r.weights...)
}

// Probing reports whether the router is currently in probe mode.
func (r *Router) Probing() bool { return r.probeLeft > 0 }

// Overloaded reports whether the last recompute found Worker Selection
// infeasible: even with every downstream selected, the measured input
// rate Λ exceeds the swarm's estimated service capacity Σμ. This is the
// saturation signal behind the runtime's Submit-side admission control.
// Always false for policies without selection.
func (r *Router) Overloaded() bool { return r.infeasible }

// Route picks the downstream for the next tuple. During probe mode it
// cycles all downstreams round-robin; otherwise it follows the policy
// (cyclic for RR, weighted draw for the probabilistic policies).
func (r *Router) Route() (string, error) {
	return r.RouteAvoiding(nil)
}

// RouteAvoiding is Route with a congestion hint: during probe mode,
// downstreams for which avoid reports true (typically: their send queue is
// already full) are skipped rather than probed — a backed-up connection is
// itself a fresh signal, and blocking the upstream on a probe would stall
// the pipeline. Outside probe mode the hint is ignored: policy-routed
// traffic experiences normal backpressure.
func (r *Router) RouteAvoiding(avoid func(id string) bool) (string, error) {
	if len(r.order) == 0 {
		return "", ErrNoDownstream
	}
	if len(r.selected) == 0 {
		r.recompute(r.lastLambda)
	}
	if r.probeLeft > 0 {
		for tries := 0; tries < len(r.order); tries++ {
			id := r.order[r.probeIdx%len(r.order)]
			r.probeIdx++
			if avoid != nil && avoid(id) {
				continue
			}
			r.probeLeft--
			return id, nil
		}
		// Every downstream is congested; give up on this probe window
		// and route normally.
		r.probeLeft = 0
	}
	switch {
	case r.cfg.Policy == RR:
		id := r.selected[r.rrIdx%len(r.selected)]
		r.rrIdx++
		return id, nil
	case r.cfg.Deterministic:
		return r.routeSWRR(), nil
	default:
		return r.routeWeightedRandom(), nil
	}
}

// routeWeightedRandom draws a downstream with probability equal to its
// routing weight (the paper's per-tuple weighted random number, §V-A),
// resolved against the precomputed cumulative-weight table by binary
// search: the first bucket whose cumulative weight exceeds the draw.
func (r *Router) routeWeightedRandom() string {
	u := r.rng.Float64()
	lo, hi := 0, len(r.cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u < r.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return r.selected[lo]
}

// routeSWRR implements smooth weighted round-robin: each downstream
// accrues credit equal to its weight per tuple; the highest-credit
// downstream is picked and debited. Deterministic ablation of the paper's
// probabilistic routing.
func (r *Router) routeSWRR() string {
	bestIdx := 0
	var best *downState
	for i, id := range r.selected {
		d := r.downs[id]
		d.swrrCredit += r.weights[i]
		if best == nil || d.swrrCredit > best.swrrCredit {
			best, bestIdx = d, i
		}
	}
	best.swrrCredit--
	return r.selected[bestIdx]
}

// Info is a read-only snapshot of one downstream's routing state for
// reports and debugging.
type Info struct {
	ID       string
	Estimate Estimate
	Selected bool
	Weight   float64
}

// Snapshot returns per-downstream routing state in insertion order.
func (r *Router) Snapshot() []Info {
	return r.AppendSnapshot(make([]Info, 0, len(r.order)))
}

// AppendSnapshot appends per-downstream routing state in insertion order
// to dst and returns it. Callers sampling every tick can reuse one Info
// slice across snapshots (dst = buf[:0]) so steady-state sampling does
// not allocate; selection weights resolve through the table maintained
// by recompute rather than a per-call map.
func (r *Router) AppendSnapshot(dst []Info) []Info {
	for _, id := range r.order {
		w, ok := r.selWeight[id]
		dst = append(dst, Info{ID: id, Estimate: r.downs[id].est, Selected: ok, Weight: w})
	}
	return dst
}
