package routing

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func newTestRouter(t *testing.T, p PolicyKind) *Router {
	t.Helper()
	r, err := NewRouter(DefaultConfig(p), testRNG())
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return r
}

// feed gives the downstream a stable latency/processing estimate.
func feed(t *testing.T, r *Router, id string, latency, proc time.Duration) {
	t.Helper()
	for i := 0; i < 20; i++ {
		if err := r.ObserveAck(id, latency, proc, time.Duration(i)*time.Millisecond); err != nil {
			t.Fatalf("ObserveAck(%s): %v", id, err)
		}
	}
}

func TestPolicyParse(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%s) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("lrs"); err != nil {
		t.Error("lowercase not accepted")
	}
	if _, err := ParsePolicy("bogus"); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("err = %v", err)
	}
}

func TestPolicyTraits(t *testing.T) {
	cases := []struct {
		p                  PolicyKind
		latency, selection bool
	}{
		{RR, false, false},
		{PR, false, false},
		{LR, true, false},
		{PRS, false, true},
		{LRS, true, true},
	}
	for _, c := range cases {
		if c.p.UsesLatency() != c.latency || c.p.UsesSelection() != c.selection {
			t.Errorf("%s traits wrong", c.p)
		}
	}
	if PolicyKind(0).Valid() || PolicyKind(9).Valid() {
		t.Error("invalid kinds report Valid")
	}
}

func TestConfigValidate(t *testing.T) {
	ok := DefaultConfig(LRS)
	if err := ok.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Policy = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.ReconfigurePeriod = 0 },
		func(c *Config) { c.ProbeEvery = -1 },
		func(c *Config) { c.ProbeTuples = -1 },
		func(c *Config) { c.Headroom = -0.1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(LRS)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d passed validation", i)
		}
	}
}

func TestNewRouterNilRNG(t *testing.T) {
	if _, err := NewRouter(DefaultConfig(RR), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestAddRemoveDownstream(t *testing.T) {
	r := newTestRouter(t, LRS)
	if err := r.AddDownstream("B"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddDownstream("B"); !errors.Is(err, ErrDupDownstream) {
		t.Fatalf("dup err = %v", err)
	}
	if err := r.AddDownstream(""); err == nil {
		t.Fatal("empty id accepted")
	}
	if !r.Has("B") || r.Has("C") {
		t.Fatal("Has wrong")
	}
	if err := r.RemoveDownstream("C"); !errors.Is(err, ErrUnknownDownstream) {
		t.Fatalf("remove unknown err = %v", err)
	}
	if err := r.RemoveDownstream("B"); err != nil {
		t.Fatal(err)
	}
	if len(r.Downstreams()) != 0 {
		t.Fatal("downstream not removed")
	}
}

func TestRouteNoDownstream(t *testing.T) {
	r := newTestRouter(t, LRS)
	if _, err := r.Route(); !errors.Is(err, ErrNoDownstream) {
		t.Fatalf("err = %v", err)
	}
}

func TestRRCyclesEvenly(t *testing.T) {
	r := newTestRouter(t, RR)
	cfg := DefaultConfig(RR)
	cfg.ProbeEvery = 0 // probing is redundant under RR
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B", "C", "D"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		id, err := r.Route()
		if err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	for _, id := range []string{"B", "C", "D"} {
		if counts[id] != 100 {
			t.Fatalf("RR counts = %v", counts)
		}
	}
}

func TestLatencyRoutingPrefersFast(t *testing.T) {
	r := newTestRouter(t, LR)
	for _, id := range []string{"fast", "slow"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, r, "fast", 100*time.Millisecond, 90*time.Millisecond)
	feed(t, r, "slow", 400*time.Millisecond, 390*time.Millisecond)
	r.Reconfigure(10)

	ids, ws := r.Selected()
	if len(ids) != 2 {
		t.Fatalf("LR selected %v, want both", ids)
	}
	wf := map[string]float64{}
	for i, id := range ids {
		wf[id] = ws[i]
	}
	// p_fast = (1/100)/(1/100 + 1/400) = 0.8
	if math.Abs(wf["fast"]-0.8) > 1e-9 || math.Abs(wf["slow"]-0.2) > 1e-9 {
		t.Fatalf("weights = %v", wf)
	}
}

func TestWeightedRandomMatchesWeights(t *testing.T) {
	r := newTestRouter(t, LR)
	cfg := DefaultConfig(LR)
	cfg.ProbeEvery = 0
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fast", "slow"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, r, "fast", 100*time.Millisecond, 100*time.Millisecond)
	feed(t, r, "slow", 300*time.Millisecond, 300*time.Millisecond)
	r.Reconfigure(10)

	const n = 20000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		id, err := r.Route()
		if err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	// p_fast = 0.75; allow 3 sigma ≈ 0.01.
	frac := float64(counts["fast"]) / n
	if math.Abs(frac-0.75) > 0.015 {
		t.Fatalf("fast fraction = %v, want ~0.75", frac)
	}
}

func TestWorkerSelectionMinimal(t *testing.T) {
	r := newTestRouter(t, LRS)
	// Rates: 10, 8, 5, 2 tuples/s.
	lat := map[string]time.Duration{
		"B": 100 * time.Millisecond,
		"C": 125 * time.Millisecond,
		"D": 200 * time.Millisecond,
		"E": 500 * time.Millisecond,
	}
	for id, l := range lat {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
		feed(t, r, id, l, l)
	}
	// Λ = 12: the two fastest (10 + 8 = 18 ≥ 12) suffice.
	r.Reconfigure(12)
	ids, _ := r.Selected()
	if len(ids) != 2 || ids[0] != "B" || ids[1] != "C" {
		t.Fatalf("selected %v, want [B C]", ids)
	}
	// Λ = 20: need B, C, D (10+8+5 = 23 ≥ 20).
	r.Reconfigure(20)
	ids, _ = r.Selected()
	if len(ids) != 3 {
		t.Fatalf("selected %v, want 3", ids)
	}
	// Λ = 50: infeasible, select all (§V-A).
	r.Reconfigure(50)
	ids, _ = r.Selected()
	if len(ids) != 4 {
		t.Fatalf("selected %v, want all 4", ids)
	}
}

func TestSelectionHeadroom(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.Headroom = 0.5
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for id, l := range map[string]time.Duration{
		"B": 100 * time.Millisecond, // 10/s
		"C": 100 * time.Millisecond, // 10/s
		"D": 100 * time.Millisecond, // 10/s
	} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
		feed(t, r, id, l, l)
	}
	// Λ = 12; with 50% headroom the target is 18, needing two workers.
	r.Reconfigure(12)
	ids, _ := r.Selected()
	if len(ids) != 2 {
		t.Fatalf("selected %v, want 2 with headroom", ids)
	}
}

func TestPRSIgnoresNetworkDelay(t *testing.T) {
	// A downstream with fast processing but a slow network keeps high
	// weight under PRS (the failure mode Figure 4 demonstrates) and low
	// weight under LRS.
	for _, p := range []PolicyKind{PRS, LRS} {
		r := newTestRouter(t, p)
		for _, id := range []string{"weaklink", "good"} {
			if err := r.AddDownstream(id); err != nil {
				t.Fatal(err)
			}
		}
		// weaklink: 80ms processing but 1s latency (bad Wi-Fi).
		feed(t, r, "weaklink", time.Second, 80*time.Millisecond)
		// good: 100ms processing, 120ms latency.
		feed(t, r, "good", 120*time.Millisecond, 100*time.Millisecond)
		r.Reconfigure(9)
		ids, ws := r.Selected()
		w := map[string]float64{}
		for i, id := range ids {
			w[id] = ws[i]
		}
		if p == PRS {
			if w["weaklink"] <= w["good"] {
				t.Errorf("PRS: weaklink weight %v not above good %v", w["weaklink"], w["good"])
			}
		} else {
			if w["weaklink"] >= w["good"] {
				t.Errorf("LRS: weaklink weight %v not below good %v", w["weaklink"], w["good"])
			}
		}
	}
}

func TestProbeModeCyclesAll(t *testing.T) {
	cfg := DefaultConfig(LRS)
	cfg.ProbeEvery = 2
	cfg.ProbeTuples = 6
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B", "C", "E"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, r, "B", 100*time.Millisecond, 100*time.Millisecond)
	feed(t, r, "C", 110*time.Millisecond, 110*time.Millisecond)
	feed(t, r, "E", 5*time.Second, 5*time.Second) // straggler, never selected
	r.Reconfigure(15)
	ids, _ := r.Selected()
	if len(ids) != 2 {
		t.Fatalf("selected %v, want B,C only", ids)
	}
	if r.Probing() {
		t.Fatal("probing after first reconfigure")
	}
	r.Reconfigure(15) // rounds=2 → probe mode
	if !r.Probing() {
		t.Fatal("not probing after ProbeEvery rounds")
	}
	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		id, err := r.Route()
		if err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	if counts["E"] != 2 || counts["B"] != 2 || counts["C"] != 2 {
		t.Fatalf("probe counts = %v, want 2 each", counts)
	}
	if r.Probing() {
		t.Fatal("still probing after ProbeTuples routes")
	}
	// Post-probe routing excludes the straggler again.
	for i := 0; i < 50; i++ {
		id, err := r.Route()
		if err != nil {
			t.Fatal(err)
		}
		if id == "E" {
			t.Fatal("straggler routed outside probe mode")
		}
	}
}

func TestJoinGetsTrafficImmediately(t *testing.T) {
	r := newTestRouter(t, LRS)
	for _, id := range []string{"B", "D"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, r, "B", 100*time.Millisecond, 100*time.Millisecond)
	feed(t, r, "D", 150*time.Millisecond, 150*time.Millisecond)
	r.Reconfigure(30) // infeasible: selects all
	if err := r.AddDownstream("G"); err != nil {
		t.Fatal(err)
	}
	// G has no estimate yet but must receive traffic without waiting for
	// the next reconfigure (paper: joins take effect within a second).
	got := false
	for i := 0; i < 100; i++ {
		id, err := r.Route()
		if err != nil {
			t.Fatal(err)
		}
		if id == "G" {
			got = true
			break
		}
	}
	if !got {
		t.Fatal("joined downstream receives no traffic")
	}
}

func TestLeaveStopsTraffic(t *testing.T) {
	r := newTestRouter(t, LRS)
	for _, id := range []string{"B", "G", "H"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
		feed(t, r, id, 100*time.Millisecond, 100*time.Millisecond)
	}
	r.Reconfigure(30)
	if err := r.RemoveDownstream("G"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id, err := r.Route()
		if err != nil {
			t.Fatal(err)
		}
		if id == "G" {
			t.Fatal("removed downstream still routed")
		}
	}
	// Late ACK from the departed device is rejected but harmless.
	if err := r.ObserveAck("G", time.Second, time.Second, 0); !errors.Is(err, ErrUnknownDownstream) {
		t.Fatalf("late ack err = %v", err)
	}
}

func TestSWRRDeterministicSplit(t *testing.T) {
	cfg := DefaultConfig(LR)
	cfg.Deterministic = true
	cfg.ProbeEvery = 0
	r, err := NewRouter(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fast", "slow"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, r, "fast", 100*time.Millisecond, 100*time.Millisecond) // weight 0.75
	feed(t, r, "slow", 300*time.Millisecond, 300*time.Millisecond) // weight 0.25
	r.Reconfigure(10)
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		id, err := r.Route()
		if err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	if counts["fast"] != 300 || counts["slow"] != 100 {
		t.Fatalf("SWRR counts = %v, want exact 3:1", counts)
	}
}

func TestEstimateEWMA(t *testing.T) {
	var e Estimate
	e.Observe(100*time.Millisecond, 90*time.Millisecond, 0.3, 0)
	if e.Latency != 100*time.Millisecond {
		t.Fatalf("first sample not adopted: %v", e.Latency)
	}
	e.Observe(200*time.Millisecond, 90*time.Millisecond, 0.3, time.Second)
	want := time.Duration(0.3*200e6 + 0.7*100e6)
	if e.Latency != want {
		t.Fatalf("EWMA = %v, want %v", e.Latency, want)
	}
	if e.Samples != 2 || e.LastUpdate != time.Second {
		t.Fatalf("bookkeeping: %+v", e)
	}
}

func TestEstimateRates(t *testing.T) {
	var e Estimate
	if e.LatencyRate() != 0 || e.ProcessingRate() != 0 {
		t.Fatal("zero estimate has nonzero rate")
	}
	e.Observe(100*time.Millisecond, 50*time.Millisecond, 1, 0)
	if math.Abs(e.LatencyRate()-10) > 1e-9 {
		t.Fatalf("LatencyRate = %v", e.LatencyRate())
	}
	if math.Abs(e.ProcessingRate()-20) > 1e-9 {
		t.Fatalf("ProcessingRate = %v", e.ProcessingRate())
	}
}

func TestSnapshot(t *testing.T) {
	r := newTestRouter(t, LRS)
	for _, id := range []string{"B", "E"} {
		if err := r.AddDownstream(id); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, r, "B", 100*time.Millisecond, 90*time.Millisecond)
	feed(t, r, "E", 2*time.Second, 1900*time.Millisecond)
	r.Reconfigure(5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].ID != "B" || !snap[0].Selected || snap[0].Weight <= 0 {
		t.Fatalf("B info = %+v", snap[0])
	}
	if snap[1].ID != "E" || snap[1].Selected {
		t.Fatalf("E info = %+v (straggler must be filtered)", snap[1])
	}
}

// TestWeightsSumToOneProperty: after arbitrary estimate feeds and a
// reconfigure, routing weights always form a probability distribution.
func TestWeightsSumToOneProperty(t *testing.T) {
	f := func(latMs []uint16, lambda uint8) bool {
		if len(latMs) == 0 {
			return true
		}
		if len(latMs) > 12 {
			latMs = latMs[:12]
		}
		r, err := NewRouter(DefaultConfig(LRS), testRNG())
		if err != nil {
			return false
		}
		for i, ms := range latMs {
			id := string(rune('a' + i))
			if err := r.AddDownstream(id); err != nil {
				return false
			}
			lat := time.Duration(int(ms)%2000+1) * time.Millisecond
			r.ObserveAck(id, lat, lat, 0)
		}
		r.Reconfigure(float64(lambda))
		ids, ws := r.Selected()
		if len(ids) == 0 || len(ids) != len(ws) {
			return false
		}
		sum := 0.0
		for _, w := range ws {
			if w < 0 || w > 1 {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSelectionMinimalityProperty: the selected set is the minimal prefix
// meeting the rate target — dropping its slowest member must violate the
// target (unless everything was selected because the target is
// infeasible).
func TestSelectionMinimalityProperty(t *testing.T) {
	f := func(latMs []uint16, lambdaRaw uint8) bool {
		if len(latMs) < 2 {
			return true
		}
		if len(latMs) > 10 {
			latMs = latMs[:10]
		}
		lambda := float64(lambdaRaw%50) + 1
		r, err := NewRouter(DefaultConfig(LRS), testRNG())
		if err != nil {
			return false
		}
		rates := map[string]float64{}
		for i, ms := range latMs {
			id := string(rune('a' + i))
			if err := r.AddDownstream(id); err != nil {
				return false
			}
			lat := time.Duration(int(ms)%3000+50) * time.Millisecond
			r.ObserveAck(id, lat, lat, 0)
			rates[id] = float64(time.Second) / float64(lat)
		}
		r.Reconfigure(lambda)
		ids, _ := r.Selected()
		sum := 0.0
		for _, id := range ids {
			sum += rates[id]
		}
		if len(ids) == len(latMs) {
			return true // either infeasible or genuinely needs all
		}
		if sum < lambda {
			return false // selected set misses the target while more exist
		}
		// Minimality: without the last (slowest) selected worker the
		// target must not be met.
		sumButLast := sum - rates[ids[len(ids)-1]]
		return sumButLast < lambda
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRouteLRS(b *testing.B) {
	r, err := NewRouter(DefaultConfig(LRS), testRNG())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := string(rune('B' + i))
		if err := r.AddDownstream(id); err != nil {
			b.Fatal(err)
		}
		lat := time.Duration(80+17*i) * time.Millisecond
		r.ObserveAck(id, lat, lat, 0)
	}
	r.Reconfigure(24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconfigureLRS(b *testing.B) {
	r, err := NewRouter(DefaultConfig(LRS), testRNG())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := string(rune('B' + i))
		if err := r.AddDownstream(id); err != nil {
			b.Fatal(err)
		}
		lat := time.Duration(80+17*i) * time.Millisecond
		r.ObserveAck(id, lat, lat, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reconfigure(24)
	}
}

// TestOverloadedSignal: the router reports saturation (Λ > Σμ with every
// downstream selected) only when all capacity is measured and genuinely
// insufficient — the runtime's admission control keys off this.
func TestOverloadedSignal(t *testing.T) {
	r := newTestRouter(t, LRS)
	if err := r.AddDownstream("B"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddDownstream("C"); err != nil {
		t.Fatal(err)
	}
	// Unsampled downstreams are optimistically infinite: never overloaded.
	r.Reconfigure(1e6)
	if r.Overloaded() {
		t.Fatal("overloaded with unmeasured downstreams")
	}
	// 100 ms latency each → μ = 10/s per worker, Σμ = 20/s.
	feed(t, r, "B", 100*time.Millisecond, 80*time.Millisecond)
	feed(t, r, "C", 100*time.Millisecond, 80*time.Millisecond)
	r.Reconfigure(15) // feasible: Λ < Σμ
	if r.Overloaded() {
		t.Fatal("overloaded despite Σμ ≥ Λ")
	}
	r.Reconfigure(30) // infeasible: Λ > Σμ = 20
	if !r.Overloaded() {
		t.Fatal("saturation not reported with Λ > Σμ")
	}
	ids, _ := r.Selected()
	if len(ids) != 2 {
		t.Fatalf("infeasible selection chose %d of 2 downstreams", len(ids))
	}
	// Recovery: load drops back under capacity.
	r.Reconfigure(5)
	if r.Overloaded() {
		t.Fatal("overload flag stuck after load dropped")
	}
	// Policies without selection never report overload.
	rr := newTestRouter(t, RR)
	if err := rr.AddDownstream("B"); err != nil {
		t.Fatal(err)
	}
	feed(t, rr, "B", 100*time.Millisecond, 80*time.Millisecond)
	rr.Reconfigure(1e6)
	if rr.Overloaded() {
		t.Fatal("RR reported overload")
	}
}
