// Package obs is the master's observability plane: a pure-data status
// snapshot (serialized as JSON by the HTTP server in server.go), and a
// ring-buffered event log recording the discrete things that happen to a
// swarm — workers joining and leaving, evictions, breaker trips, shed
// bursts, epoch changes.
//
// The package deliberately imports nothing from the rest of the repo:
// the runtime builds Snapshot values and appends Events; obs only holds
// and serves them. One snapshot path feeds both the periodic status log
// line and the HTTP endpoint, so the two can never disagree.
package obs

import (
	"sync"
	"time"
)

// Snapshot is one consistent sample of a master's full observable state.
// All counters are cumulative across master incarnations (the ledger is
// recovered from the journal), except InFlight and Retransmitting, which
// are instantaneous.
type Snapshot struct {
	// TakenAt is the wall-clock sample time.
	TakenAt time.Time `json:"taken_at"`
	// UptimeMillis is time since this master incarnation started.
	UptimeMillis int64 `json:"uptime_millis"`
	// Epoch is the master incarnation number (crash recovery).
	Epoch uint64 `json:"epoch"`

	Ledger  Ledger   `json:"ledger"`
	Sink    Sink     `json:"sink"`
	Routing Routing  `json:"routing"`
	Workers []Worker `json:"workers"`
	// Batch is the batched submit dataplane's counters: present only
	// once a SubmitBatch has taken the batched fast path.
	Batch   *Batch   `json:"batch,omitempty"`
	Journal *Journal `json:"journal,omitempty"`
	// Replication is the hot-standby view: present only on a journaling
	// master with a replication listener.
	Replication *Replication `json:"replication,omitempty"`

	// EventsTotal counts every event ever appended to the log, including
	// those the ring has since overwritten.
	EventsTotal uint64 `json:"events_total"`
}

// Ledger is the fault-tolerance ledger. The invariant
//
//	Submitted == Acked + Shed + InFlight + Retransmitting
//
// holds on every sample: Retransmitting counts tuples taken off a dead
// worker's in-flight table and not yet re-dispatched or shed, which is
// exactly the window where the classic three-term balance transiently
// under-counts.
type Ledger struct {
	Submitted     int64 `json:"submitted"`
	Acked         int64 `json:"acked"`
	Retransmitted int64 `json:"retransmitted"`
	Shed          int64 `json:"shed"`
	ShedOverload  int64 `json:"shed_overload"`
	// ShedPoison is the subset of Shed quarantined after failing on
	// PoisonAttempts distinct workers.
	ShedPoison     int64 `json:"shed_poison,omitempty"`
	InFlight       int   `json:"in_flight"`
	Retransmitting int64 `json:"retransmitting"`
	WorkerDropped  int64 `json:"worker_dropped"`
	// Hedged counts speculative duplicate transmissions of stragglers; a
	// hedge does not create a ledger entry, so it sits outside the balance.
	Hedged  int64 `json:"hedged,omitempty"`
	Evicted int64 `json:"evicted"`
	// Per-reason breakdown of WorkerDropped, plus Filtered: tuples a
	// pipeline stage legitimately discarded (acked, not dropped).
	DropErrors    int64 `json:"drop_errors,omitempty"`
	DropPanics    int64 `json:"drop_panics,omitempty"`
	DropDeadlines int64 `json:"drop_deadlines,omitempty"`
	Filtered      int64 `json:"filtered,omitempty"`
	Readopted     int64 `json:"readopted"`
	Recovered     int64 `json:"recovered"`
	// Balanced reports whether the invariant held when the sample was
	// taken; it is computed by the producer under the ledger locks.
	Balanced bool `json:"balanced"`
}

// CheckBalance recomputes the ledger invariant from the serialized
// counters (what Balanced asserted at sample time).
func (l Ledger) CheckBalance() bool {
	return l.Acked+l.Shed+int64(l.InFlight)+l.Retransmitting == l.Submitted
}

// Batch summarizes the batched submit dataplane: SubmitBatch calls that
// took the fast path, tuples carried inside FrameTupleBatch frames, and
// the frames themselves. Tuples ÷ Frames is the realized coalescing
// factor; tuples routed per-tuple (fallbacks, retransmits, hedges) do
// not count here.
type Batch struct {
	Submits int64 `json:"submits"`
	Tuples  int64 `json:"tuples"`
	Frames  int64 `json:"frames"`
}

// Sink is the play-out side: results arriving from workers, frames played
// in order, and gaps skipped.
type Sink struct {
	Arrived int64 `json:"arrived"`
	Played  int64 `json:"played"`
	Skipped int64 `json:"skipped"`
}

// Routing is the published routing snapshot's aggregate state; the
// per-worker selection and weights live in each Worker entry.
type Routing struct {
	Policy     string `json:"policy"`
	Overloaded bool   `json:"overloaded"`
	// ProbeBudget is the un-consumed budget of the current probe window
	// (zero when not probing).
	ProbeBudget int64 `json:"probe_budget"`
	Probing     bool  `json:"probing"`
}

// Worker is one worker's health, breaker, queue, and routing view.
type Worker struct {
	ID            string `json:"id"`
	Health        string `json:"health"`
	SilenceMillis int64  `json:"silence_millis"`
	Breaker       string `json:"breaker"`
	BreakerOpens  int64  `json:"breaker_opens"`
	QueueLen      int    `json:"queue_len"`
	Processed     int64  `json:"processed"`
	Dropped       int64  `json:"dropped"`
	// Panics / Deadlined are the worker's own sandbox counters: operator
	// panics recovered per-tuple and tuples cut off by the op deadline.
	Panics     int64   `json:"panics,omitempty"`
	Deadlined  int64   `json:"deadlined,omitempty"`
	Reconnects int64   `json:"reconnects"`
	Selected   bool    `json:"selected"`
	Weight     float64 `json:"weight"`
	// LatencyMillis / ProcessingMillis are the router's EWMA estimates.
	LatencyMillis    float64 `json:"latency_millis"`
	ProcessingMillis float64 `json:"processing_millis"`
	Samples          int64   `json:"samples"`
}

// Journal is the write-ahead journal's depth across its shard segments.
type Journal struct {
	Segments   int    `json:"segments"`
	Generation uint64 `json:"generation"`
	// Records counts records appended this incarnation across segments.
	Records int64 `json:"records"`
	// PendingBytes is group-commit buffered data not yet flushed.
	PendingBytes int64 `json:"pending_bytes"`
	// Bytes is the total appended payload across segments.
	Bytes int64 `json:"bytes"`
	// SegmentRecords / SegmentBytes break Records / Bytes down per shard
	// segment, index-aligned.
	SegmentRecords []int64 `json:"segment_records,omitempty"`
	SegmentBytes   []int64 `json:"segment_bytes,omitempty"`
}

// Replication is the primary side of hot-standby journal streaming: its
// role, flush watermark, and each attached standby's acknowledged
// watermark. Watermarks count flushed journal batches (the replication
// tap index), not individual records: lag 0 means every batch the
// primary has flushed is confirmed applied in the standby's mirror.
type Replication struct {
	// Role is "primary" when at least one standby is attached, "solo"
	// when the replication listener is up but nothing is tailing.
	Role string `json:"role"`
	// Seq is the primary's current flush-batch watermark.
	Seq uint64 `json:"seq"`
	// Standbys lists attached replication subscribers.
	Standbys []Standby `json:"standbys,omitempty"`
}

// Standby is one attached replication subscriber as the primary sees it.
type Standby struct {
	ID string `json:"id"`
	// AckedSeq is the standby's last acknowledged applied watermark.
	AckedSeq uint64 `json:"acked_seq"`
	// Lag is Seq − AckedSeq at sample time: how many flushed batches the
	// standby has not yet confirmed applying.
	Lag uint64 `json:"lag"`
	// SilenceMillis is how long since the standby's last ack frame.
	SilenceMillis int64 `json:"silence_millis"`
}

// Event kinds appended by the runtime.
const (
	EventWorkerJoin   = "worker-join"
	EventWorkerLeft   = "worker-left"
	EventReadopted    = "worker-readopted"
	EventSuspect      = "worker-suspect"
	EventRecovered    = "worker-recovered"
	EventEvicted      = "worker-evicted"
	EventBreakerOpen  = "breaker-open"
	EventBreakerProbe = "breaker-half-open"
	EventBreakerClose = "breaker-close"
	EventShed         = "shed"
	EventRetransmit   = "retransmit"
	EventEpoch        = "epoch"
	// Failover events: a standby attaching to / detaching from the
	// primary's replication stream, and a standby promoting itself to
	// primary after the takeover timer fired.
	EventStandbyAttach = "standby-attach"
	EventStandbyDetach = "standby-detach"
	EventPromoted      = "promoted"
	// Failure-containment events: a poison tuple quarantined after burning
	// its attempt budget across distinct workers, and a straggler hedged
	// to a second worker.
	EventQuarantine = "quarantine"
	EventHedge      = "hedge"
)

// Event is one entry of the ring-buffered event log.
type Event struct {
	// Seq numbers events monotonically from 1; gaps at the front of a
	// /events response mean the ring overwrote older entries.
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Worker string    `json:"worker,omitempty"`
	Detail string    `json:"detail,omitempty"`
	// Count sizes burst events (tuples shed, tuples re-routed).
	Count int64 `json:"count,omitempty"`
}

// EventLog is a fixed-capacity ring of the most recent events. Appends
// never block or grow; older entries are overwritten. Safe for
// concurrent use.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever appended; buf[(total-1) % cap] is newest
}

// NewEventLog returns a log retaining the last capacity events
// (minimum 16).
func NewEventLog(capacity int) *EventLog {
	if capacity < 16 {
		capacity = 16
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Append records an event, stamping Seq and, when unset, At.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	e.Seq = l.total
	if e.At.IsZero() {
		e.At = time.Now()
	}
	l.buf[int((l.total-1)%uint64(len(l.buf)))] = e
}

// Record is Append sugar for the runtime's call sites.
func (l *EventLog) Record(kind, worker, detail string, count int64) {
	l.Append(Event{Kind: kind, Worker: worker, Detail: detail, Count: count})
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.total
	capN := uint64(len(l.buf))
	if n > capN {
		n = capN
	}
	out := make([]Event, 0, n)
	for i := l.total - n; i < l.total; i++ {
		out = append(out, l.buf[int(i%capN)])
	}
	return out
}

// Total reports how many events were ever appended.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
