package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogRingWraps(t *testing.T) {
	l := NewEventLog(16)
	for i := 0; i < 40; i++ {
		l.Record(EventShed, "", fmt.Sprintf("burst-%d", i), int64(i))
	}
	if got := l.Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
	evs := l.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(evs))
	}
	for i, e := range evs {
		want := uint64(25 + i) // oldest retained is seq 25 (40-16+1)
		if e.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, want)
		}
		if e.At.IsZero() {
			t.Fatalf("event %d: zero timestamp", i)
		}
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(EventWorkerJoin, "w", "", 0)
				l.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 1600 {
		t.Fatalf("Total = %d, want 1600", got)
	}
}

func testSnapshot() Snapshot {
	s := Snapshot{
		TakenAt:      time.Now(),
		UptimeMillis: 1234,
		Epoch:        2,
		Ledger: Ledger{
			Submitted: 100, Acked: 90, Shed: 5, InFlight: 4, Retransmitting: 1,
		},
		Routing: Routing{Policy: "LRS", ProbeBudget: 3, Probing: true},
		Workers: []Worker{{
			ID: "B", Health: "healthy", Breaker: "closed", Selected: true,
			Weight: 0.75, LatencyMillis: 12.5, Samples: 42,
		}},
		Journal: &Journal{Segments: 2, Records: 10, Bytes: 640},
	}
	s.Ledger.Balanced = s.Ledger.CheckBalance()
	return s
}

func TestLedgerCheckBalance(t *testing.T) {
	l := Ledger{Submitted: 10, Acked: 6, Shed: 2, InFlight: 1, Retransmitting: 1}
	if !l.CheckBalance() {
		t.Fatal("balanced ledger reported unbalanced")
	}
	l.Acked++
	if l.CheckBalance() {
		t.Fatal("unbalanced ledger reported balanced")
	}
}

func TestServerEndpoints(t *testing.T) {
	events := NewEventLog(16)
	events.Record(EventEvicted, "C", "silence 800ms", 0)
	srv, err := Serve("127.0.0.1:0", testSnapshot, events)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, ct := get("/statusz"); !strings.Contains(ct, "text/html") ||
		!strings.Contains(body, "Swing master") || !strings.Contains(body, "worker-evicted") {
		t.Fatalf("dashboard: ct=%q body=%.120q", ct, body)
	}
	for _, path := range []string{"/statusz?format=json", "/status.json"} {
		body, ct := get(path)
		if !strings.Contains(ct, "application/json") {
			t.Fatalf("%s content-type = %q", path, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if snap.Ledger.Submitted != 100 || !snap.Ledger.Balanced || !snap.Ledger.CheckBalance() {
			t.Fatalf("%s: bad ledger %+v", path, snap.Ledger)
		}
		if len(snap.Workers) != 1 || snap.Workers[0].ID != "B" {
			t.Fatalf("%s: bad workers %+v", path, snap.Workers)
		}
	}
	body, _ := get("/events")
	var evs []Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != EventEvicted || evs[0].Worker != "C" {
		t.Fatalf("events = %+v", evs)
	}
	// Accept-header negotiation on /statusz.
	req, _ := http.NewRequest("GET", base+"/statusz", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Accept negotiation gave %q", ct)
	}
}
