package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Server is the observability HTTP endpoint. It serves:
//
//	/statusz       minimal HTML dashboard (auto-refreshing); with
//	               ?format=json (or an Accept: application/json header)
//	               the same Snapshot as JSON
//	/status.json   the Snapshot as JSON, always
//	/events        the retained event-log tail as JSON
//
// Every response is computed from one call to the snapshot source — the
// same function that renders the periodic status log line — so a poll
// always sees an internally consistent sample.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOption customizes the observability endpoint.
type ServeOption func(*serveConfig)

type serveConfig struct {
	pprof bool
}

// WithPprof mounts net/http/pprof's handlers under /debug/pprof/ on the
// same listener, so live soaks can be profiled (CPU, heap, block, mutex)
// against the node that is actually serving traffic. The handlers are
// registered explicitly on the endpoint's private mux — nothing leaks
// onto http.DefaultServeMux.
func WithPprof() ServeOption {
	return func(c *serveConfig) { c.pprof = true }
}

// Serve starts the endpoint on addr (host:port; :0 picks a free port).
// snapshot is invoked once per status request; events may be nil, which
// disables /events.
func Serve(addr string, snapshot func() Snapshot, events *EventLog, opts ...ServeOption) (*Server, error) {
	var sc serveConfig
	for _, o := range opts {
		o(&sc)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	if sc.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		snap := snapshot()
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			writeJSON(w, snap)
			return
		}
		writeDashboard(w, snap, events)
	})
	mux.HandleFunc("/status.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, snapshot())
	})
	if events != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, events.Snapshot())
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/statusz", http.StatusFound)
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// writeDashboard renders the minimal human dashboard: ledger, routing,
// per-worker table, recent events. Static HTML with a meta refresh — no
// scripts, so it works from curl-piped-to-browser and text browsers.
func writeDashboard(w http.ResponseWriter, s Snapshot, events *EventLog) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<meta http-equiv="refresh" content="2">` +
		`<title>swing /statusz</title><style>` +
		`body{font:14px/1.5 monospace;margin:2em;background:#fafafa;color:#222}` +
		`table{border-collapse:collapse;margin:0 0 1.5em}` +
		`td,th{border:1px solid #ccc;padding:2px 9px;text-align:left}` +
		`th{background:#eee}` +
		`.bad{color:#b00020;font-weight:bold}.ok{color:#1a7f37}` +
		`h1{font-size:18px}h2{font-size:15px;margin-bottom:4px}` +
		`</style></head><body>`)
	fmt.Fprintf(&b, "<h1>Swing master &mdash; epoch %d, up %s</h1>", s.Epoch,
		(time.Duration(s.UptimeMillis) * time.Millisecond).Round(time.Second))

	bal, cls := "balanced", "ok"
	if !s.Ledger.Balanced {
		bal, cls = "UNBALANCED", "bad"
	}
	fmt.Fprintf(&b, `<h2>Ledger <span class="%s">(%s)</span></h2>`, cls, bal)
	b.WriteString("<table><tr><th>submitted</th><th>acked</th><th>shed</th><th>shed_overload</th>" +
		"<th>shed_poison</th><th>in_flight</th><th>retransmitting</th><th>retransmitted</th>" +
		"<th>hedged</th><th>dropped</th><th>evicted</th><th>readopted</th><th>recovered</th></tr>")
	fmt.Fprintf(&b, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr></table>",
		s.Ledger.Submitted, s.Ledger.Acked, s.Ledger.Shed, s.Ledger.ShedOverload,
		s.Ledger.ShedPoison, s.Ledger.InFlight, s.Ledger.Retransmitting, s.Ledger.Retransmitted,
		s.Ledger.Hedged, s.Ledger.WorkerDropped, s.Ledger.Evicted, s.Ledger.Readopted, s.Ledger.Recovered)

	over := ""
	if s.Routing.Overloaded {
		over = ` &mdash; <span class="bad">OVERLOADED</span>`
	}
	fmt.Fprintf(&b, "<h2>Routing &mdash; %s%s</h2>", html.EscapeString(s.Routing.Policy), over)
	fmt.Fprintf(&b, "<table><tr><th>probing</th><th>probe_budget</th><th>sink arrived</th><th>played</th><th>skipped</th></tr>"+
		"<tr><td>%v</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr></table>",
		s.Routing.Probing, s.Routing.ProbeBudget, s.Sink.Arrived, s.Sink.Played, s.Sink.Skipped)

	fmt.Fprintf(&b, "<h2>Workers (%d)</h2>", len(s.Workers))
	b.WriteString("<table><tr><th>id</th><th>health</th><th>silence</th><th>breaker</th><th>opens</th>" +
		"<th>queue</th><th>processed</th><th>dropped</th><th>reconnects</th>" +
		"<th>sel</th><th>weight</th><th>latency</th><th>proc</th><th>samples</th></tr>")
	for _, wk := range s.Workers {
		hcls := "ok"
		if wk.Health != "healthy" {
			hcls = "bad"
		}
		sel := ""
		if wk.Selected {
			sel = "✓"
		}
		fmt.Fprintf(&b, `<tr><td>%s</td><td class="%s">%s</td><td>%dms</td><td>%s</td><td>%d</td>`+
			"<td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%.3f</td><td>%.1fms</td><td>%.1fms</td><td>%d</td></tr>",
			html.EscapeString(wk.ID), hcls, html.EscapeString(wk.Health), wk.SilenceMillis,
			html.EscapeString(wk.Breaker), wk.BreakerOpens, wk.QueueLen, wk.Processed,
			wk.Dropped, wk.Reconnects, sel, wk.Weight, wk.LatencyMillis, wk.ProcessingMillis, wk.Samples)
	}
	b.WriteString("</table>")

	if s.Journal != nil {
		j := s.Journal
		fmt.Fprintf(&b, "<h2>Journal</h2><table><tr><th>segments</th><th>generation</th><th>records</th><th>bytes</th><th>pending</th></tr>"+
			"<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr></table>",
			j.Segments, j.Generation, j.Records, j.Bytes, j.PendingBytes)
	}

	if events != nil {
		evs := events.Snapshot()
		fmt.Fprintf(&b, "<h2>Events (%d total, last %d)</h2><table><tr><th>seq</th><th>at</th><th>kind</th><th>worker</th><th>detail</th><th>count</th></tr>",
			s.EventsTotal, len(evs))
		for i := len(evs) - 1; i >= 0; i-- {
			e := evs[i]
			fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>",
				e.Seq, e.At.Format("15:04:05.000"), html.EscapeString(e.Kind),
				html.EscapeString(e.Worker), html.EscapeString(e.Detail), e.Count)
		}
		b.WriteString("</table>")
	}
	b.WriteString(`<p><a href="/status.json">status.json</a> &middot; <a href="/events">events</a> &middot; <a href="/statusz?format=json">statusz?format=json</a></p></body></html>`)
	w.Write([]byte(b.String())) //nolint:errcheck
}
