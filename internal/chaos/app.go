// Package chaos is the seeded nemesis harness: it composes worker churn,
// link shaping, primary crash + standby takeover, and poison/hang tuple
// injection into a deterministic schedule, runs the swarm under that
// schedule on the in-memory transport, and checks the runtime's
// end-to-end invariants on every observability poll — ledger balance,
// cross-epoch at-most-once delivery, no healthy-worker evictions, and
// goroutine-leak-free shutdown.
package chaos

import (
	"errors"
	"fmt"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/tuple"
)

// Tuple fields interpreted by the chaos app's operator. A plain frame
// tuple (none of these set) emits a result like any sensing app; marked
// tuples misbehave in the specific way the nemesis injected.
const (
	// FieldPoison makes the operator panic — the worker sandbox must
	// contain it, and the master must quarantine the tuple after it burns
	// K distinct workers.
	FieldPoison = "chaos_poison"
	// FieldHangMS makes the operator sleep this many milliseconds —
	// finite, so an op-deadline watchdog abandons the tuple but the
	// runner goroutine still drains before shutdown.
	FieldHangMS = "chaos_hang_ms"
	// FieldFail makes the operator return a plain error.
	FieldFail = "chaos_fail"
)

// App builds the single-operator application the nemesis deploys: the
// operator obeys the chaos_* fields above and otherwise echoes a result,
// so every injected fault mode (panic, hang, error, healthy) is reachable
// from the tuple content alone.
func App() (*apps.App, error) {
	g, err := graph.NewBuilder("chaosapp").
		Source("source").
		Operator("op",
			graph.WithWork(0.05),
			graph.WithProcessor(func() graph.Processor { return graph.ProcessorFunc(process) })).
		Sink("sink").
		Chain("source", "op", "sink").
		Build()
	if err != nil {
		return nil, err
	}
	return &apps.App{Graph: g, FrameBytes: 600, TargetFPS: 24, TotalWork: 0.05}, nil
}

func process(em graph.Emitter, tp *tuple.Tuple) error {
	if _, err := tp.Get(FieldPoison); err == nil {
		panic(fmt.Sprintf("chaos: injected poison tuple %d", tp.ID))
	}
	if v, err := tp.Get(FieldHangMS); err == nil {
		if ms, ok := v.AsInt64(); ok && ms > 0 {
			time.Sleep(time.Duration(ms) * time.Millisecond)
		}
	}
	if _, err := tp.Get(FieldFail); err == nil {
		return errors.New("chaos: injected failure")
	}
	out := tuple.New(tp.ID, tp.SeqNo)
	out.EmitNanos = tp.EmitNanos
	out.Set(apps.FieldResult, tuple.String("ok"))
	return em.Emit(out)
}
