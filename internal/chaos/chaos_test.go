package chaos

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// TestScheduleDeterministic pins the reproducibility contract: the same
// (seed, config) must always compose the identical action list, and a
// different seed must not (with overwhelming probability) collide.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Duration: 4 * time.Second, Workers: 5, Churn: true, CrashPrimary: true}
	a := Compose(42, cfg)
	b := Compose(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed composed different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("churn+crash config composed an empty schedule")
	}
	c := Compose(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds composed identical schedules: %v", a)
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not time-ordered: %v", a)
		}
	}
}

// TestNemesisSmoke is the always-on seeded run: poison tuples and hangs
// against a healthy swarm with sandboxing, quarantine and hedging armed.
// Every invariant must hold, and in this controlled setting — no churn,
// no crash — every poison tuple lands in ShedPoison: nothing is delivered
// (the Run invariant), nothing stays in flight (quiescence), and the
// plain shed paths cannot claim a poison-mode drop. Hang tuples quarantine
// the same way (deadline drops burn workers too), so ShedPoison is a
// lower-bounded superset of the injected poison.
func TestNemesisSmoke(t *testing.T) {
	rep, err := Run(Config{
		Seed:           7,
		Duration:       1500 * time.Millisecond,
		Workers:        4,
		PoisonEvery:    20,
		HangEvery:      31,
		PoisonAttempts: 3,
		OpDeadline:     50 * time.Millisecond,
		HedgeAfter:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.PoisonSubmitted == 0 {
		t.Fatal("smoke injected no poison; PoisonEvery misconfigured")
	}
	if rep.Quarantined < rep.PoisonSubmitted {
		t.Fatalf("quarantined %d < %d poison tuples injected", rep.Quarantined, rep.PoisonSubmitted)
	}
	if rep.Delivered == 0 {
		t.Fatal("no healthy tuple reached the sink")
	}
	if rep.Polls == 0 || rep.BalancedPolls != rep.Polls {
		t.Fatalf("ledger balanced on %d/%d polls", rep.BalancedPolls, rep.Polls)
	}
}

// TestNemesisComposedSoak is the full composed schedule from the issue:
// worker churn, link shaping, one primary crash with hot-standby
// takeover, and injected poison — all from one seed. Gated behind
// SWING_SOAK=1 (see scripts/soak.sh).
func TestNemesisComposedSoak(t *testing.T) {
	if os.Getenv("SWING_SOAK") == "" {
		t.Skip("set SWING_SOAK=1 (see scripts/soak.sh) to run the composed nemesis")
	}
	dur := 4 * time.Second
	if s := os.Getenv("SWING_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad SWING_SOAK_SECONDS %q", s)
		}
		dur = time.Duration(secs) * time.Second
	}
	seed := int64(11)
	if s := os.Getenv("SWING_NEMESIS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SWING_NEMESIS_SEED %q", s)
		}
		seed = v
	}
	rep, err := Run(Config{
		Seed:           seed,
		Duration:       dur,
		Workers:        6,
		Churn:          true,
		Shape:          "wifi-degrade:500ms",
		CrashPrimary:   true,
		Dir:            t.TempDir(),
		PoisonEvery:    25,
		HangEvery:      40,
		PoisonAttempts: 3,
		OpDeadline:     60 * time.Millisecond,
		HedgeAfter:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nemesis seed=%d schedule=%v", rep.Seed, rep.Schedule)
	t.Logf("submitted=%d (poison %d) delivered=%d quarantined=%d hedged=%d crashes=%d kills=%d restarts=%d epoch=%d polls=%d",
		rep.Submitted, rep.PoisonSubmitted, rep.Delivered, rep.Quarantined,
		rep.Hedged, rep.Crashes, rep.Kills, rep.Restarts, rep.FinalEpoch, rep.Polls)
	if rep.Failed() {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.Crashes != 1 {
		t.Fatalf("composed schedule executed %d primary crashes, want 1", rep.Crashes)
	}
	if rep.FinalEpoch < 2 {
		t.Fatalf("final epoch %d: standby takeover did not advance the epoch", rep.FinalEpoch)
	}
	if rep.Kills == 0 || rep.Restarts == 0 {
		t.Fatalf("churn did not execute: %d kills, %d restarts", rep.Kills, rep.Restarts)
	}
	if rep.PoisonSubmitted == 0 || rep.Quarantined == 0 {
		t.Fatalf("poison path unexercised: %d injected, %d quarantined",
			rep.PoisonSubmitted, rep.Quarantined)
	}
	if rep.Delivered == 0 {
		t.Fatal("no healthy tuple reached the sink")
	}
}
