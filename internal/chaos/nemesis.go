package chaos

import (
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	stdruntime "runtime"
	"sync"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/routing"
	rt "github.com/swingframework/swing/internal/runtime"
	"github.com/swingframework/swing/internal/transport"
	"github.com/swingframework/swing/internal/tuple"
)

// Config parameterizes one nemesis run. The zero value is not runnable;
// use the defaults applied by Run (Duration 2s, Workers 4, SubmitEvery
// 2ms, PoisonAttempts 3).
type Config struct {
	// Seed drives every random choice — the schedule, link shaping, and
	// frame content. The same Config always produces the same schedule.
	Seed int64
	// Duration is the injection window; quiescence and teardown checks
	// run after it.
	Duration time.Duration
	// Workers is the swarm size.
	Workers int
	// Churn schedules abrupt worker kills with staggered restarts.
	Churn bool
	// Shape is a transport scenario pack spec (transport.ParseScenario)
	// applied to every worker link; "" disables shaping.
	Shape string
	// CrashPrimary schedules one mid-run primary crash; a hot standby
	// must take over. Requires Dir for the journals.
	CrashPrimary bool
	// Dir holds journal + checkpoint files (required with CrashPrimary).
	Dir string
	// PoisonEvery marks every Nth submitted tuple as poison (operator
	// panic); 0 injects none.
	PoisonEvery int
	// HangEvery marks every Nth submitted tuple to hang past OpDeadline;
	// 0 injects none. Set OpDeadline when using this.
	HangEvery int
	// HangMS is how long a hang tuple sleeps (default 150 ms — finite, so
	// abandoned watchdog runners drain before the leak check).
	HangMS int64
	// PoisonAttempts is the master's distinct-worker quarantine budget K.
	PoisonAttempts int
	// OpDeadline is the worker per-tuple processing deadline (0 = off).
	OpDeadline time.Duration
	// HedgeAfter arms straggler hedging at the master (0 = off).
	HedgeAfter time.Duration
	// SubmitEvery paces the source.
	SubmitEvery time.Duration
	// Logger defaults to a discard logger.
	Logger *slog.Logger
}

// Report is what a nemesis run observed. Violations empty means every
// invariant held: the ledger balanced on every poll, no tuple was
// delivered twice across epochs, no poison tuple reached the sink, no
// healthy worker was evicted, the swarm re-converged, and every spawned
// goroutine drained at shutdown.
type Report struct {
	Seed     int64
	Schedule []string
	// Polls counts invariant samples; BalancedPolls how many balanced.
	Polls         int
	BalancedPolls int
	// Submitted counts successful Submit calls (poison included);
	// PoisonSubmitted the poison subset.
	Submitted       int64
	PoisonSubmitted int64
	// Delivered counts distinct tuples played at the sink; Duplicates
	// counts extra deliveries of an already-played tuple (must be 0).
	Delivered  int64
	Duplicates int64
	// Quarantined / Hedged / Panics / Deadlined are the final ledger and
	// worker counters.
	Quarantined int64
	Hedged      int64
	// Crashes / Kills / Restarts count executed nemesis actions.
	Crashes    int
	Kills      int
	Restarts   int
	FinalEpoch uint64
	Violations []string
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Run executes one seeded nemesis schedule against a live swarm on the
// in-memory transport and returns what it observed. Errors are setup
// failures; invariant violations land in the Report instead.
func Run(cfg Config) (*Report, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.SubmitEvery == 0 {
		cfg.SubmitEvery = 2 * time.Millisecond
	}
	if cfg.PoisonAttempts == 0 {
		cfg.PoisonAttempts = 3
	}
	if cfg.HangMS == 0 {
		cfg.HangMS = 150
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.CrashPrimary && cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: CrashPrimary requires Dir for journals")
	}
	app, err := App()
	if err != nil {
		return nil, err
	}
	rep := &Report{Seed: cfg.Seed}
	baseline := stdruntime.NumGoroutine()

	mem := transport.NewMem()
	workerTr := transport.Transport(mem)
	if cfg.Shape != "" {
		scn, err := transport.ParseScenario(cfg.Shape)
		if err != nil {
			return nil, fmt.Errorf("chaos: shape: %w", err)
		}
		workerTr = transport.WithShaping(mem, scn, cfg.Seed)
	}

	// deliveries is the cross-epoch at-most-once ledger: per-tuple play
	// counts surviving master crashes, fed by every incarnation's sink.
	var delivMu sync.Mutex
	deliveries := make(map[uint64]int)
	onResult := func(r rt.Result) {
		delivMu.Lock()
		deliveries[r.Tuple.ID]++
		if deliveries[r.Tuple.ID] == 1 {
			rep.Delivered++
		} else {
			rep.Duplicates++
		}
		delivMu.Unlock()
	}

	masterCfg := rt.MasterConfig{
		App:            app,
		Policy:         routing.LRS,
		ListenAddr:     "chaos-master",
		Transport:      mem,
		Heartbeat:      40 * time.Millisecond,
		SuspectAfter:   500 * time.Millisecond,
		DeadAfter:      5 * time.Second, // shaping stalls must never evict
		RetryDeadline:  10 * time.Second,
		MaxAttempts:    6,
		OpDeadline:     cfg.OpDeadline,
		PoisonAttempts: cfg.PoisonAttempts,
		HedgeAfter:     cfg.HedgeAfter,
		OnResult:       onResult,
		Logger:         cfg.Logger,
	}
	var sb *rt.Standby
	if cfg.CrashPrimary {
		masterCfg.JournalPath = filepath.Join(cfg.Dir, "wal-0")
		masterCfg.CheckpointEvery = 200 * time.Millisecond
		masterCfg.Fsync = rt.FsyncNever
		masterCfg.Shards = 4
		masterCfg.ReplicateAddr = "chaos-rep"
		masterCfg.ReplicatePingEvery = 20 * time.Millisecond
	}
	m, err := rt.StartMaster(masterCfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: start master: %w", err)
	}
	defer func() { _ = m.Close() }()
	if cfg.CrashPrimary {
		sbCfg := masterCfg
		sbCfg.JournalPath = filepath.Join(cfg.Dir, "wal-1")
		sb, err = rt.StartStandby(rt.StandbyConfig{
			ID:            "chaos-standby",
			PrimaryAddr:   "chaos-rep",
			TakeoverAfter: 300 * time.Millisecond,
			RedialBackoff: 20 * time.Millisecond,
			Master:        sbCfg,
			Logger:        cfg.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: start standby: %w", err)
		}
		defer func() {
			if sb != nil {
				_ = sb.Close()
			}
		}()
	}

	workers := make(map[string]*rt.Worker, cfg.Workers)
	startWorker := func(id string) error {
		w, err := rt.StartWorker(rt.WorkerConfig{
			DeviceID:         id,
			MasterAddr:       "chaos-master",
			App:              app,
			Transport:        workerTr,
			Reconnect:        true,
			ReconnectBackoff: 20 * time.Millisecond,
			Logger:           cfg.Logger,
		})
		if err != nil {
			return err
		}
		workers[id] = w
		return nil
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	for i := 0; i < cfg.Workers; i++ {
		if err := startWorker(workerID(i)); err != nil {
			return nil, fmt.Errorf("chaos: start worker: %w", err)
		}
	}
	if !waitUntil(5*time.Second, func() bool { return len(m.Workers()) == cfg.Workers }) {
		return nil, fmt.Errorf("chaos: swarm never assembled")
	}

	schedule := Compose(cfg.Seed, cfg)
	for _, a := range schedule {
		rep.Schedule = append(rep.Schedule, a.String())
	}
	poisonIDs := make(map[uint64]bool)
	src := apps.NewFrameSource(600, uint64(cfg.Seed)+1)

	// Main injection loop: one goroutine fires due schedule actions,
	// paces submissions, and samples the invariants. Ticking at the
	// submit cadence keeps the loop simple; polls run every ~25 ms.
	start := time.Now()
	ticker := time.NewTicker(cfg.SubmitEvery)
	defer ticker.Stop()
	var nextAct int
	var submitted int64
	lastPoll := start
	poll := func() {
		snap := m.StatusSnapshot()
		rep.Polls++
		if snap.Ledger.Balanced {
			rep.BalancedPolls++
		} else {
			rep.violate("ledger unbalanced at poll %d: %+v", rep.Polls, snap.Ledger)
		}
		if snap.Ledger.Evicted > 0 {
			rep.violate("healthy worker evicted (evicted=%d)", snap.Ledger.Evicted)
		}
	}
	for time.Since(start) < cfg.Duration {
		<-ticker.C
		now := time.Now()
		// Fire due nemesis actions.
		for nextAct < len(schedule) && now.Sub(start) >= schedule[nextAct].At {
			a := schedule[nextAct]
			nextAct++
			switch a.Kind {
			case ActKillWorker:
				if w, ok := workers[a.Target]; ok {
					_ = w.Close()
					delete(workers, a.Target)
					rep.Kills++
				}
			case ActRestartWorker:
				if _, ok := workers[a.Target]; !ok {
					if err := startWorker(a.Target); err == nil {
						rep.Restarts++
					} else {
						// Master mid-failover; retry shortly.
						schedule[nextAct-1].At = now.Sub(start) + 100*time.Millisecond
						nextAct--
					}
				}
			case ActCrashPrimary:
				m.Crash()
				rep.Crashes++
				select {
				case <-sb.Promoted():
				case <-time.After(10 * time.Second):
					rep.violate("standby never promoted after primary crash")
					return rep, nil
				}
				if err := sb.Err(); err != nil {
					rep.violate("standby promotion failed: %v", err)
					return rep, nil
				}
				m = sb.Master()
				_ = sb.Close()
				sb = nil
				src.SeekTo(m.NextSeq())
			}
		}
		// Paced submission with deterministic fault marks.
		t := src.Next()
		submitted++
		poison := cfg.PoisonEvery > 0 && submitted%int64(cfg.PoisonEvery) == 0
		if poison {
			t.Set(FieldPoison, tuple.Bool(true))
		} else if cfg.HangEvery > 0 && submitted%int64(cfg.HangEvery) == 0 {
			t.Set(FieldHangMS, tuple.Int64(cfg.HangMS))
		}
		if err := m.Submit(t); err == nil {
			rep.Submitted++
			if poison {
				rep.PoisonSubmitted++
				poisonIDs[t.ID] = true
			}
		}
		if now.Sub(lastPoll) >= 25*time.Millisecond {
			lastPoll = now
			poll()
		}
	}

	// Injection over: fire any pending restarts so the swarm can
	// re-converge, then require quiescence with the ledger balanced.
	for ; nextAct < len(schedule); nextAct++ {
		a := schedule[nextAct]
		if a.Kind == ActRestartWorker {
			if _, ok := workers[a.Target]; !ok {
				if err := startWorker(a.Target); err == nil {
					rep.Restarts++
				}
			}
		}
	}
	if !waitUntil(20*time.Second, func() bool {
		snap := m.StatusSnapshot()
		return snap.Ledger.InFlight == 0 && snap.Ledger.Retransmitting == 0 && snap.Ledger.Balanced
	}) {
		rep.violate("swarm never quiesced: %+v", m.StatusSnapshot().Ledger)
	}
	if !waitUntil(10*time.Second, func() bool { return len(m.Workers()) == cfg.Workers }) {
		rep.violate("routing never re-converged: %d/%d workers", len(m.Workers()), cfg.Workers)
	}
	poll()

	final := m.Stats()
	rep.Quarantined = final.ShedPoison
	rep.Hedged = final.Hedged
	rep.FinalEpoch = final.Epoch
	delivMu.Lock()
	for id := range poisonIDs {
		if deliveries[id] > 0 {
			rep.violate("poison tuple %d reached the sink", id)
		}
	}
	delivMu.Unlock()
	if rep.Duplicates > 0 {
		rep.violate("%d duplicate sink deliveries across epochs", rep.Duplicates)
	}

	// Teardown + leak check: everything the run spawned must drain.
	for id, w := range workers {
		_ = w.Close()
		delete(workers, id)
	}
	if sb != nil {
		_ = sb.Close()
		sb = nil
	}
	_ = m.Close()
	if !waitUntil(15*time.Second, func() bool {
		stdruntime.GC()
		return stdruntime.NumGoroutine() <= baseline+4
	}) {
		rep.violate("goroutine leak: %d live, baseline %d", stdruntime.NumGoroutine(), baseline)
	}
	return rep, nil
}

func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
