package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Action kinds the nemesis can schedule.
const (
	// ActKillWorker closes a worker abruptly (no goodbye); the master's
	// connection-drop path must retransmit its backlog.
	ActKillWorker = "kill-worker"
	// ActRestartWorker starts a fresh worker under the target ID.
	ActRestartWorker = "restart-worker"
	// ActCrashPrimary kills the primary master the way SIGKILL would; the
	// hot standby must take over and re-adopt the swarm.
	ActCrashPrimary = "crash-primary"
)

// Action is one timed nemesis intervention.
type Action struct {
	// At is the offset from run start.
	At time.Duration
	// Kind is one of the Act* constants.
	Kind string
	// Target is the worker ID for kill/restart actions.
	Target string
}

func (a Action) String() string {
	if a.Target == "" {
		return fmt.Sprintf("%s@%s", a.Kind, a.At)
	}
	return fmt.Sprintf("%s(%s)@%s", a.Kind, a.Target, a.At)
}

// Compose derives a deterministic schedule from the seed: the same
// (seed, cfg) always yields the identical action list, so a failing
// nemesis run reproduces from its logged seed alone. Churn kills each
// chosen worker once and restarts it a bounded pause later (the swarm
// never loses more than one worker to churn at a time), and the primary
// crash — when enabled — lands in the middle half of the run, after the
// standby has attached and with time left to verify the takeover.
func Compose(seed int64, cfg Config) []Action {
	rng := rand.New(rand.NewSource(seed))
	var acts []Action
	if cfg.Churn && cfg.Workers > 1 {
		// One kill/restart pair per churn round, round-robin over workers,
		// spread over the run but clear of the final quiescence window.
		rounds := int(cfg.Duration / (800 * time.Millisecond))
		if rounds < 1 {
			rounds = 1
		}
		window := cfg.Duration * 3 / 4
		for i := 0; i < rounds; i++ {
			at := time.Duration(rng.Int63n(int64(window)))
			id := workerID(rng.Intn(cfg.Workers))
			down := 100*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
			acts = append(acts,
				Action{At: at, Kind: ActKillWorker, Target: id},
				Action{At: at + down, Kind: ActRestartWorker, Target: id},
			)
		}
	}
	if cfg.CrashPrimary {
		quarter := cfg.Duration / 4
		at := quarter + time.Duration(rng.Int63n(int64(2*quarter)))
		acts = append(acts, Action{At: at, Kind: ActCrashPrimary})
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	return acts
}

func workerID(i int) string { return fmt.Sprintf("w%d", i) }
