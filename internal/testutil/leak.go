// Package testutil holds small helpers shared across the repo's test
// suites. It may only import the standard library, so any package's tests
// can use it without import cycles.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// leakSlack tolerates background goroutines the runtime itself parks and
// unparks (timer scavenger, GC workers) between the two samples.
const leakSlack = 2

// LeakBaseline samples the live goroutine count before a test spawns the
// subsystem under test. Pair with CheckLeaked after shutdown.
func LeakBaseline() int { return runtime.NumGoroutine() }

// CheckLeaked fails the test unless the live goroutine count returns to
// within a small slack of the baseline before the timeout — the shared
// leak check behind every "goroutines drain after shutdown" assertion.
// On failure it dumps all goroutine stacks, so the leaked goroutine is
// named in the test log rather than left to guesswork.
func CheckLeaked(tb testing.TB, baseline int, timeout time.Duration) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+leakSlack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			tb.Fatalf("goroutine leak: %d live, baseline %d (+%d slack)\n%s",
				n, baseline, leakSlack, buf)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
