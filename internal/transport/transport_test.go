package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func exchange(t *testing.T, tr Transport, addr string) {
	t.Helper()
	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() { _ = ln.Close() }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer func() { _ = conn.Close() }()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := conn.Write([]byte("pong!")); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	conn, err := tr.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("ping!")); err != nil {
		t.Fatalf("client write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(buf) != "pong!" {
		t.Fatalf("got %q", buf)
	}
	wg.Wait()
}

func TestTCPExchange(t *testing.T) {
	exchange(t, TCP{}, "127.0.0.1:0")
}

func TestMemExchange(t *testing.T) {
	exchange(t, NewMem(), "nodeA")
}

func TestMemDialUnknown(t *testing.T) {
	m := NewMem()
	if _, err := m.Dial("ghost"); !errors.Is(err, ErrNoListener) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemDuplicateListen(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("x"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v", err)
	}
	_ = ln.Close()
	// After close the address is free again.
	ln2, err := m.Listen("x")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	_ = ln2.Close()
}

func TestMemEmptyAddr(t *testing.T) {
	m := NewMem()
	if _, err := m.Listen(""); err == nil {
		t.Fatal("empty address accepted")
	}
}

func TestMemCloseUnblocksAccept(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = ln.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept not unblocked by Close")
	}
	// Dialing a closed listener fails.
	if _, err := m.Dial("srv"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestMemDoubleCloseSafe(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemAddr(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("myaddr")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	if ln.Addr().String() != "myaddr" || ln.Addr().Network() != "mem" {
		t.Fatalf("addr = %v/%v", ln.Addr().Network(), ln.Addr().String())
	}
}

func TestMemConcurrentDials(t *testing.T) {
	m := NewMem()
	ln, err := m.Listen("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	const n = 20
	var wg sync.WaitGroup
	accepted := make(chan net.Conn, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	var dialWg sync.WaitGroup
	for i := 0; i < n; i++ {
		dialWg.Add(1)
		go func() {
			defer dialWg.Done()
			c, err := m.Dial("hub")
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			_ = c.Close()
		}()
	}
	dialWg.Wait()
	wg.Wait()
	if len(accepted) != n {
		t.Fatalf("accepted %d, want %d", len(accepted), n)
	}
	for len(accepted) > 0 {
		c := <-accepted
		_ = c.Close()
	}
}
