// Package transport abstracts the byte transport under Swing's live
// runtime so the same master/worker code runs over real TCP sockets on a
// LAN and over in-memory pipes in unit tests.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Transport provides listeners and dialers for a network.
type Transport interface {
	// Listen opens a listener. For TCP, addr is "host:port" (":0" picks
	// a free port); for the in-memory transport it is any unique name.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (net.Conn, error)
}

// TCP is the production transport over net.
//
// Both dialed and accepted connections get TCP_NODELAY set explicitly.
// Go's net package happens to default to no-delay, but the runtime's
// send queues rely on it — they do their own batching (coalescing many
// frames into one write), and Nagle underneath an application-level
// batcher would add a second, uncontrolled delay stage on top of the
// configured linger. Setting it here makes the latency model
// independent of the net package's defaults.
type TCP struct{}

var _ Transport = TCP{}

// setNoDelay disables Nagle on TCP connections; other conn types (e.g.
// a test double) pass through untouched.
func setNoDelay(c net.Conn) net.Conn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return c
}

// Listen implements Transport.
func (TCP) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return tcpListener{l}, nil
}

// tcpListener applies the connection options to accepted connections.
type tcpListener struct {
	net.Listener
}

// Accept implements net.Listener.
func (l tcpListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return setNoDelay(c), nil
}

// Dial implements Transport.
func (TCP) Dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return setNoDelay(c), nil
}

// Mem is an in-process transport: listeners register under string
// addresses and dialing creates a net.Pipe pair. Safe for concurrent use.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

var _ Transport = (*Mem)(nil)

// NewMem returns an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Errors returned by the in-memory transport.
var (
	ErrAddrInUse  = errors.New("transport: address in use")
	ErrNoListener = errors.New("transport: no listener at address")
	ErrClosed     = errors.New("transport: listener closed")
)

// Listen implements Transport.
func (m *Mem) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		return nil, errors.New("transport: empty address")
	}
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &memListener{
		net:    m,
		addr:   memAddr(addr),
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (m *Mem) Dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoListener, addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: %s", ErrClosed, addr)
	}
}

func (m *Mem) drop(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

type memListener struct {
	net    *Mem
	addr   memAddr
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

var _ net.Listener = (*memListener)(nil)

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: %s", ErrClosed, l.addr)
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.drop(string(l.addr))
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return l.addr }
