package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swingframework/swing/internal/netem"
)

// Shape is the instantaneous condition of one link direction: the
// effective goodput the link sustains, a fixed one-way delay, a log-normal
// jitter on each frame's transmission time, and a per-frame loss
// probability. The zero Shape passes traffic through untouched.
type Shape struct {
	// RateBps is the effective application-level goodput in bits/s; each
	// frame is held for size*8/RateBps of transmission time before it is
	// forwarded. Zero or negative disables rate shaping.
	RateBps float64
	// Delay is the fixed one-way propagation/stack latency per frame.
	Delay time.Duration
	// JitterSigma multiplies each frame's transmission time by a draw from
	// a unit-median log-normal, exp(sigma·z): contention and link-layer
	// retransmission variance. Zero disables jitter.
	JitterSigma float64
	// Loss is the probability a frame is silently discarded (the writer
	// still sees success, like a lost datagram). Clamped to [0, 1].
	Loss float64
}

// ShapeFromRSSI derives a link Shape from netem's calibrated 802.11n
// model: the RSSI→goodput curve, the fixed propagation delay, and the
// standard airtime jitter. Loss stays zero — the rate curve already folds
// frame loss into collapsed goodput; explicit Loss is for scenarios that
// want visible gaps on top (e.g. a flash crowd's collisions).
func ShapeFromRSSI(r netem.RSSI) Shape {
	return Shape{
		RateBps:     netem.EffectiveRate(r),
		Delay:       netem.PropagationDelay,
		JitterSigma: netem.TxJitterSigma,
	}
}

// Scenario scripts the shape of every link over experiment time. Links
// are numbered in connection order on the shaped transport (for a shaped
// master, accept order — the order workers joined); since is measured
// from the transport's first use, so all links share one clock.
type Scenario interface {
	Name() string
	ShapeAt(link int, since time.Duration) Shape
}

// scenarioFunc adapts a closure into a Scenario.
type scenarioFunc struct {
	name string
	fn   func(link int, since time.Duration) Shape
}

func (s scenarioFunc) Name() string { return s.name }
func (s scenarioFunc) ShapeAt(link int, since time.Duration) Shape {
	return s.fn(link, since)
}

// defaultLeg is the per-phase duration of the named scenario packs when
// the spec does not override it ("wifi-degrade:500ms" style).
const defaultLeg = 5 * time.Second

// WiFiDegrade is the weak-spot pack: link 0 starts at a strong signal,
// drops to fair after one leg, and to bad after two — the paper's user
// walking from beside the AP into the far room — while every other link
// holds a strong signal. Under LRS the routing weight mass should visibly
// shift off link 0 as its latency estimate inflates.
func WiFiDegrade(leg time.Duration) Scenario {
	if leg <= 0 {
		leg = defaultLeg
	}
	walk, _ := netem.NewWalk([]netem.Epoch{
		{Until: leg, RSSI: netem.RSSIGood},
		{Until: 2 * leg, RSSI: netem.RSSIFair},
		{Until: 3 * leg, RSSI: netem.RSSIBad},
	})
	return scenarioFunc{
		name: "wifi-degrade",
		fn: func(link int, since time.Duration) Shape {
			if link == 0 {
				return ShapeFromRSSI(walk.RSSIAt(since))
			}
			return ShapeFromRSSI(netem.RSSIGood)
		},
	}
}

// MobilityTrace is the walking-user pack: every link cycles good → fair →
// bad with a per-link phase offset of one leg, so at any instant the
// swarm has a mix of signal qualities and the best worker keeps changing
// (paper §VI-C Figure 10).
func MobilityTrace(leg time.Duration) Scenario {
	if leg <= 0 {
		leg = defaultLeg
	}
	cycle := []netem.RSSI{netem.RSSIGood, netem.RSSIFair, netem.RSSIBad}
	return scenarioFunc{
		name: "mobility",
		fn: func(link int, since time.Duration) Shape {
			phase := (int(since/leg) + link) % len(cycle)
			return ShapeFromRSSI(cycle[phase])
		},
	}
}

// FlashCrowd is the contention pack: all links are strong, but during the
// second leg every link simultaneously collapses to a fair signal with 5%
// visible frame loss — a burst of co-channel traffic — then recovers.
func FlashCrowd(leg time.Duration) Scenario {
	if leg <= 0 {
		leg = defaultLeg
	}
	return scenarioFunc{
		name: "flash-crowd",
		fn: func(link int, since time.Duration) Shape {
			if since >= leg && since < 2*leg {
				s := ShapeFromRSSI(netem.RSSIFair)
				s.Loss = 0.05
				return s
			}
			return ShapeFromRSSI(netem.RSSIGood)
		},
	}
}

// ParseScenario resolves a -shape flag spec into a Scenario:
//
//	wifi-degrade[:leg]    link 0 good→fair→bad, others good
//	mobility[:leg]        all links cycle phase-shifted good/fair/bad
//	flash-crowd[:leg]     everyone collapses for the middle leg
//	walk:<rssi>@<until>,...   custom RSSI trace on link 0, others good
//
// leg is a Go duration (default 5s) scaling how long each phase lasts;
// walk's until values are durations from experiment start and rssi values
// are dBm (e.g. "walk:-28@5s,-80@10s").
func ParseScenario(spec string) (Scenario, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "wifi-degrade", "mobility", "flash-crowd":
		leg := defaultLeg
		if arg != "" {
			d, err := time.ParseDuration(arg)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("transport: bad scenario leg %q", arg)
			}
			leg = d
		}
		switch name {
		case "wifi-degrade":
			return WiFiDegrade(leg), nil
		case "mobility":
			return MobilityTrace(leg), nil
		default:
			return FlashCrowd(leg), nil
		}
	case "walk":
		if arg == "" {
			return nil, fmt.Errorf("transport: walk scenario needs epochs")
		}
		var epochs []netem.Epoch
		for _, part := range strings.Split(arg, ",") {
			rs, us, ok := strings.Cut(part, "@")
			if !ok {
				return nil, fmt.Errorf("transport: bad walk epoch %q", part)
			}
			rssi, err := strconv.ParseFloat(rs, 64)
			if err != nil {
				return nil, fmt.Errorf("transport: bad walk RSSI %q", rs)
			}
			until, err := time.ParseDuration(us)
			if err != nil {
				return nil, fmt.Errorf("transport: bad walk time %q", us)
			}
			epochs = append(epochs, netem.Epoch{Until: until, RSSI: netem.RSSI(rssi)})
		}
		walk, err := netem.NewWalk(epochs)
		if err != nil {
			return nil, err
		}
		return scenarioFunc{
			name: "walk",
			fn: func(link int, since time.Duration) Shape {
				if link == 0 {
					return ShapeFromRSSI(walk.RSSIAt(since))
				}
				return ShapeFromRSSI(netem.RSSIGood)
			},
		}, nil
	default:
		return nil, fmt.Errorf("transport: unknown scenario %q", spec)
	}
}

// Shaped wraps an inner Transport and applies a Scenario's per-link
// rate/delay/jitter/loss to every connection it creates, dialed or
// accepted — the live-runtime counterpart of the simulator's netem model.
// Shaping acts on the write side of whole wire frames (same framing
// interpretation as Faulty), so wrapping the master's transport shapes
// its downlink tuple traffic per worker link; ACK traffic returns
// unshaped, which keeps the measured effect attributable to one
// direction.
type Shaped struct {
	inner Transport
	scn   Scenario
	seed  int64

	mu    sync.Mutex
	conns []*shapedConn
	// start is experiment time zero: the first connection's creation, so
	// scripted scenarios begin when traffic can first flow, not when the
	// transport object was built.
	start time.Time
}

var _ Transport = (*Shaped)(nil)

// WithShaping wraps a transport with scenario-driven link shaping. The
// seed drives every link's jitter and loss draws; each link derives its
// own PRNG stream in connection order, so a given (scenario, seed,
// join-order) triple replays identically.
func WithShaping(inner Transport, scn Scenario, seed int64) *Shaped {
	if seed == 0 {
		seed = 1
	}
	return &Shaped{inner: inner, scn: scn, seed: seed}
}

// Listen implements Transport; accepted connections are shaped.
func (s *Shaped) Listen(addr string) (net.Listener, error) {
	ln, err := s.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &shapedListener{Listener: ln, s: s}, nil
}

// Dial implements Transport; the dialed connection is shaped.
func (s *Shaped) Dial(addr string) (net.Conn, error) {
	c, err := s.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return s.wrap(c), nil
}

// wrap assigns the connection the next link index and its PRNG stream.
func (s *Shaped) wrap(c net.Conn) net.Conn {
	s.mu.Lock()
	if len(s.conns) == 0 {
		s.start = time.Now()
	}
	link := len(s.conns)
	sc := &shapedConn{
		Conn: c,
		s:    s,
		link: link,
		rng:  rand.New(rand.NewPCG(uint64(s.seed), uint64(link)+0x5ead)),
	}
	s.conns = append(s.conns, sc)
	s.mu.Unlock()
	return sc
}

// LinkReport is one link's shaping totals.
type LinkReport struct {
	Link    int   `json:"link"`
	Frames  int64 `json:"frames"`
	Dropped int64 `json:"dropped"`
	Bytes   int64 `json:"bytes"`
	// DelayMillis is the total shaping delay injected on this link.
	DelayMillis float64 `json:"delay_millis"`
}

// ShapingReport is the transport's inspectable artifact: what the
// scenario actually did to each link, suitable for archiving next to a
// soak log.
type ShapingReport struct {
	Scenario string       `json:"scenario"`
	Seed     int64        `json:"seed"`
	Links    []LinkReport `json:"links"`
}

// Report snapshots per-link shaping totals in link (connection) order.
func (s *Shaped) Report() ShapingReport {
	s.mu.Lock()
	conns := make([]*shapedConn, len(s.conns))
	copy(conns, s.conns)
	s.mu.Unlock()
	r := ShapingReport{Scenario: s.scn.Name(), Seed: s.seed}
	for _, c := range conns {
		r.Links = append(r.Links, LinkReport{
			Link:        c.link,
			Frames:      c.frames.Load(),
			Dropped:     c.dropped.Load(),
			Bytes:       c.bytes.Load(),
			DelayMillis: float64(c.delayNanos.Load()) / 1e6,
		})
	}
	return r
}

type shapedListener struct {
	net.Listener
	s *Shaped
}

// Accept implements net.Listener.
func (l *shapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.s.wrap(c), nil
}

// Heartbeat frame types, mirrored from the wire package (transport
// deliberately does not import wire — see Faulty). Liveness probes ride
// the same shaped links as data, but they are exempt from the loss draw:
// dropping a ping or pong silently on a lossy link starves the master's
// failure detector of proof-of-life until a healthy-but-unlucky worker
// is suspected and evicted. Real 802.11 retransmits such tiny frames
// almost for free; what loss models here — sustained goodput collapse —
// is already captured by rate/delay/jitter, which heartbeats still pay.
const (
	framePing = 8
	framePong = 9
	// Tuple-bearing frame types, for Faulty's tuple accounting: a single
	// tuple frame and the batch frame whose payload leads with a u32
	// element count.
	frameTuple      = 5
	frameTupleBatch = 16
)

// shapedConn applies the scenario's shape to whole frames on the write
// side; reads pass through untouched.
type shapedConn struct {
	net.Conn
	s    *Shaped
	link int
	rng  *rand.Rand

	mu  sync.Mutex
	buf []byte // bytes of the frame currently being assembled

	frames     atomic.Int64
	dropped    atomic.Int64
	bytes      atomic.Int64
	delayNanos atomic.Int64
}

// Write implements net.Conn. Bytes buffer until a whole frame is
// assembled; each frame is then held for the shape's propagation delay
// plus its jittered transmission time, possibly dropped, and forwarded.
// Holding the frame inside Write is what turns shaping into the TCP-style
// backpressure the router reacts to: a slow link's writer drains slowly,
// its send queue fills, and Submit steers around it.
func (c *shapedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, p...)
	for len(c.buf) >= frameHeaderSize {
		total := frameHeaderSize + int(binary.LittleEndian.Uint32(c.buf[:4]))
		if len(c.buf) < total {
			break
		}
		frame := c.buf[:total]
		shape := c.s.scn.ShapeAt(c.link, time.Since(c.s.startTime()))
		c.frames.Add(1)
		c.bytes.Add(int64(total))
		if d := c.frameDelay(total, shape); d > 0 {
			c.delayNanos.Add(int64(d))
			time.Sleep(d)
		}
		heartbeat := frame[4] == framePing || frame[4] == framePong
		if !heartbeat && shape.Loss > 0 && c.rng.Float64() < shape.Loss {
			c.dropped.Add(1)
		} else if _, err := c.Conn.Write(frame); err != nil {
			return 0, err
		}
		c.buf = c.buf[total:]
	}
	// Like Faulty, a dropped frame's bytes are accounted to the caller:
	// loss models what happens beyond the writer's visibility.
	return len(p), nil
}

// frameDelay computes one frame's shaping delay: fixed propagation plus
// size/rate transmission time scaled by log-normal jitter.
func (c *shapedConn) frameDelay(size int, shape Shape) time.Duration {
	d := shape.Delay
	if shape.RateBps > 0 {
		tx := float64(size*8) / shape.RateBps * float64(time.Second)
		if shape.JitterSigma > 0 {
			tx *= math.Exp(shape.JitterSigma * c.rng.NormFloat64())
		}
		d += time.Duration(tx)
	}
	return d
}

func (s *Shaped) startTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}
