package transport

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/netem"
	"github.com/swingframework/swing/internal/wire"
)

// constScenario shapes every link the same way forever.
type constScenario struct{ shape Shape }

func (c constScenario) Name() string                     { return "const" }
func (c constScenario) ShapeAt(int, time.Duration) Shape { return c.shape }

// testFrame builds one wire-framed message: u32 LE payload length, type
// byte, payload.
func testFrame(typ byte, payload []byte) []byte {
	b := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	b[4] = typ
	copy(b[frameHeaderSize:], payload)
	return b
}

func TestShapedDelaysWholeFrames(t *testing.T) {
	mem := NewMem()
	ln, err := mem.Listen("shaped-delay")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Shape only the dialer's writes: 5 ms fixed delay, fast rate, no
	// jitter or loss, so the elapsed time is deterministic to assert on.
	sh := WithShaping(mem, constScenario{Shape{RateBps: 80e6, Delay: 5 * time.Millisecond}}, 7)

	const frames, payload = 3, 100
	total := frames * (frameHeaderSize + payload)
	got := make(chan []byte, 1)
	go func() {
		server, err := ln.Accept()
		if err != nil {
			return
		}
		defer server.Close()
		buf := make([]byte, total)
		if _, err := io.ReadFull(server, buf); err == nil {
			got <- buf
		}
	}()

	c, err := sh.Dial("shaped-delay")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := testFrame(2, make([]byte, payload))
	begin := time.Now()
	// Split one frame across two writes to exercise reassembly.
	if _, err := c.Write(f[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(f[3:]); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < frames; i++ {
		if _, err := c.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(begin)
	if want := frames * 5 * time.Millisecond; elapsed < want {
		t.Fatalf("elapsed %v, want at least %v of shaping delay", elapsed, want)
	}
	select {
	case buf := <-got:
		if len(buf) != total {
			t.Fatalf("received %d bytes, want %d", len(buf), total)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver timed out")
	}
	r := sh.Report()
	if len(r.Links) != 1 {
		t.Fatalf("links = %d, want 1", len(r.Links))
	}
	l := r.Links[0]
	if l.Frames != frames || l.Dropped != 0 || l.Bytes != int64(total) {
		t.Fatalf("link report %+v", l)
	}
	if l.DelayMillis < 15 {
		t.Fatalf("injected delay %.1fms, want >= 15ms", l.DelayMillis)
	}
	if r.Scenario != "const" || r.Seed != 7 {
		t.Fatalf("report header %+v", r)
	}
}

func TestShapedLossDropsFrames(t *testing.T) {
	mem := NewMem()
	ln, err := mem.Listen("shaped-loss")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	sh := WithShaping(mem, constScenario{Shape{Loss: 1.0}}, 1)
	c, err := sh.Dial("shaped-loss")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if s := <-accepted; s != nil {
			s.Close()
		}
	}()
	f := testFrame(2, []byte("doomed"))
	// Total loss: no bytes ever reach the pipe, so writes cannot block on
	// the unread reader — the frames are swallowed by the shape.
	for i := 0; i < 2; i++ {
		if _, err := c.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	l := sh.Report().Links[0]
	if l.Frames != 2 || l.Dropped != 2 {
		t.Fatalf("link report %+v, want 2 frames all dropped", l)
	}
}

// TestHeartbeatFrameTypesMatchWire pins the locally mirrored ping/pong
// frame type bytes to the wire package's constants: the transport layer
// deliberately does not import wire, so a renumbering there must fail
// here rather than silently re-subjecting heartbeats to the loss draw.
func TestHeartbeatFrameTypesMatchWire(t *testing.T) {
	if framePing != byte(wire.FramePing) || framePong != byte(wire.FramePong) {
		t.Fatalf("heartbeat frame types ping=%d pong=%d drifted from wire %d/%d",
			framePing, framePong, wire.FramePing, wire.FramePong)
	}
}

func TestShapedLossExemptsHeartbeats(t *testing.T) {
	mem := NewMem()
	ln, err := mem.Listen("shaped-hb")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Under total loss, data frames vanish but ping/pong still get
	// through: heartbeats ride the link's control plane, and dropping
	// them would starve the failure detector rather than model goodput
	// collapse (see DESIGN.md §15).
	const hbCount = 3
	got := make(chan []byte, 1)
	go func() {
		server, err := ln.Accept()
		if err != nil {
			return
		}
		defer server.Close()
		buf := make([]byte, hbCount*frameHeaderSize)
		if _, err := io.ReadFull(server, buf); err == nil {
			got <- buf
		}
	}()

	sh := WithShaping(mem, constScenario{Shape{Loss: 1.0}}, 1)
	c, err := sh.Dial("shaped-hb")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Write(testFrame(2, []byte("doomed"))); err != nil {
		t.Fatal(err)
	}
	for _, typ := range []byte{framePing, framePong, framePing} {
		if _, err := c.Write(testFrame(typ, nil)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case buf := <-got:
		for i := 0; i < hbCount; i++ {
			if typ := buf[i*frameHeaderSize+4]; typ != framePing && typ != framePong {
				t.Fatalf("heartbeat %d arrived as frame type %d", i, typ)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeats never arrived: loss must not drop ping/pong")
	}
	l := sh.Report().Links[0]
	if l.Frames != hbCount+1 || l.Dropped != 1 {
		t.Fatalf("link report %+v, want %d frames with only the data frame dropped", l, hbCount+1)
	}
}

func TestParseScenario(t *testing.T) {
	for _, spec := range []string{
		"wifi-degrade", "wifi-degrade:500ms", "mobility", "mobility:1s",
		"flash-crowd", "walk:-28@5s,-80@10s",
	} {
		scn, err := ParseScenario(spec)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", spec, err)
		}
		// Every pack must yield a usable shape for any link at any time.
		s := scn.ShapeAt(3, 42*time.Second)
		if s.RateBps <= 0 {
			t.Fatalf("ParseScenario(%q): zero rate shape %+v", spec, s)
		}
	}
	for _, spec := range []string{
		"", "nope", "wifi-degrade:xyz", "wifi-degrade:-1s",
		"walk:", "walk:-28", "walk:x@5s", "walk:-28@zzz", "walk:-28@5s,-80@5s",
	} {
		if _, err := ParseScenario(spec); err == nil {
			t.Fatalf("ParseScenario(%q): expected error", spec)
		}
	}
}

func TestWiFiDegradeShiftsRate(t *testing.T) {
	scn := WiFiDegrade(time.Second)
	early := scn.ShapeAt(0, 0)
	late := scn.ShapeAt(0, 10*time.Second)
	if late.RateBps >= early.RateBps {
		t.Fatalf("link 0 rate did not degrade: early %.0f late %.0f", early.RateBps, late.RateBps)
	}
	peer := scn.ShapeAt(1, 10*time.Second)
	if peer.RateBps != ShapeFromRSSI(netem.RSSIGood).RateBps {
		t.Fatalf("link 1 should stay strong, got %.0f bps", peer.RateBps)
	}
}
