package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes the fault-injection wrapper. All faults are
// driven by a seeded PRNG, so a given (config, connection-order) pair
// replays identically — tests assert on exact outcomes.
//
// Frame-granular faults (drop, delay, break) interpret the byte stream as
// the wire framing of package wire — a 4-byte little-endian payload
// length, a type byte, then the payload — and act on whole frames, so a
// dropped frame never corrupts the survivors' framing (like a lost
// datagram, not a torn TCP segment).
type FaultConfig struct {
	// Seed drives delay jitter; each connection derives its own stream
	// from it, in connection order. Zero means 1.
	Seed int64
	// DropEveryNth silently discards every Nth frame written through a
	// wrapped connection (the writer sees success). Zero disables.
	DropEveryNth int
	// Delay stalls each frame write by this long before forwarding.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) to each frame's delay.
	Jitter time.Duration
	// BreakAfterFrames closes the underlying connection after this many
	// frames have been written through it (handshake frames count), so a
	// link dies mid-stream at a reproducible point. Zero disables.
	BreakAfterFrames int
	// DialFailures makes the first N Dial calls fail, for exercising
	// reconnect backoff paths. Zero disables.
	DialFailures int
}

// Faulty wraps an inner Transport and injects the configured faults into
// every connection it creates — both dialed connections and connections
// accepted from its listeners. Wrap only the endpoint under test (e.g. one
// worker's transport) to confine the faults to that link.
type Faulty struct {
	inner Transport
	cfg   FaultConfig

	mu          sync.Mutex
	conns       int64
	failedDials int

	framesWritten atomic.Int64
	writeCalls    atomic.Int64
	tuplesWritten atomic.Int64
}

// FramesWritten reports how many whole wire frames have been written
// through all connections of this transport (dropped frames included —
// the writer produced them; the fault swallowed them).
func (f *Faulty) FramesWritten() int64 { return f.framesWritten.Load() }

// WriteCalls reports how many Write calls all connections received.
// With frame coalescing upstream, FramesWritten / WriteCalls measures
// the batching factor — how many frames each would-be syscall carries.
func (f *Faulty) WriteCalls() int64 { return f.writeCalls.Load() }

// TuplesWritten reports how many data tuples have been written through
// all connections: a tuple frame counts one, a tuple-batch frame counts
// its element count. TuplesWritten / FramesWritten exposes downstream
// coalescing — per-tuple dispatch pins it at ≤1, a batched dataplane
// pushes it above.
func (f *Faulty) TuplesWritten() int64 { return f.tuplesWritten.Load() }

var _ Transport = (*Faulty)(nil)

// WithFaults wraps a transport with fault injection.
func WithFaults(inner Transport, cfg FaultConfig) *Faulty {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Faulty{inner: inner, cfg: cfg}
}

// Listen implements Transport; accepted connections are fault-wrapped.
func (f *Faulty) Listen(addr string) (net.Listener, error) {
	ln, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultyListener{Listener: ln, f: f}, nil
}

// Dial implements Transport. The first DialFailures calls fail; later
// calls connect and return a fault-wrapped connection.
func (f *Faulty) Dial(addr string) (net.Conn, error) {
	f.mu.Lock()
	fail := f.failedDials < f.cfg.DialFailures
	if fail {
		f.failedDials++
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("transport: injected dial failure to %s", addr)
	}
	c, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return f.wrap(c), nil
}

// wrap builds the per-connection fault state with its own PRNG stream.
func (f *Faulty) wrap(c net.Conn) net.Conn {
	f.mu.Lock()
	n := f.conns
	f.conns++
	f.mu.Unlock()
	return &faultConn{
		Conn: c,
		f:    f,
		cfg:  f.cfg,
		rng:  rand.New(rand.NewPCG(uint64(f.cfg.Seed), uint64(n)+0x5ea1)),
	}
}

type faultyListener struct {
	net.Listener
	f *Faulty
}

// Accept implements net.Listener.
func (l *faultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.wrap(c), nil
}

// faultConn applies frame-granular write faults over a net.Conn. Reads
// pass through untouched: faults injected on each endpoint's write side
// compose to cover both directions of a duplex link.
type faultConn struct {
	net.Conn
	f   *Faulty
	cfg FaultConfig
	rng *rand.Rand

	mu     sync.Mutex
	buf    []byte // bytes of the frame currently being assembled
	frames int
	broken bool
}

// frameHeaderSize mirrors package wire's framing: u32 payload length +
// type byte.
const frameHeaderSize = 5

// Write implements net.Conn. Bytes are buffered until a whole frame is
// assembled, then the frame is delayed, dropped or forwarded; after
// BreakAfterFrames frames the underlying connection is closed, killing
// the link for both directions.
func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.f.writeCalls.Add(1)
	if c.broken {
		return 0, fmt.Errorf("transport: injected break on %v", c.Conn.LocalAddr())
	}
	c.buf = append(c.buf, p...)
	for len(c.buf) >= frameHeaderSize {
		total := frameHeaderSize + int(binary.LittleEndian.Uint32(c.buf[:4]))
		if len(c.buf) < total {
			break
		}
		frame := c.buf[:total]
		c.frames++
		c.f.framesWritten.Add(1)
		// Tuple accounting mirrors wire: frame type 5 is one tuple, 16 is
		// a tuple batch whose payload leads with a u32 element count.
		switch frame[4] {
		case frameTuple:
			c.f.tuplesWritten.Add(1)
		case frameTupleBatch:
			if total >= frameHeaderSize+4 {
				c.f.tuplesWritten.Add(int64(binary.LittleEndian.Uint32(frame[frameHeaderSize:])))
			}
		}
		if d := c.frameDelay(); d > 0 {
			time.Sleep(d)
		}
		drop := c.cfg.DropEveryNth > 0 && c.frames%c.cfg.DropEveryNth == 0
		if !drop {
			if _, err := c.Conn.Write(frame); err != nil {
				return 0, err
			}
		}
		c.buf = c.buf[total:]
		if c.cfg.BreakAfterFrames > 0 && c.frames >= c.cfg.BreakAfterFrames {
			c.broken = true
			c.buf = nil
			_ = c.Conn.Close()
			break
		}
	}
	// The caller's bytes are accounted for even when a fault swallowed
	// them: a fault models loss beyond the writer's visibility.
	return len(p), nil
}

func (c *faultConn) frameDelay() time.Duration {
	d := c.cfg.Delay
	if c.cfg.Jitter > 0 {
		d += time.Duration(c.rng.Int64N(int64(c.cfg.Jitter)))
	}
	return d
}
