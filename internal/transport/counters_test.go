package transport

import (
	"io"
	"net"
	"syscall"
	"testing"

	"github.com/swingframework/swing/internal/wire"
)

// faultyPair dials a wrapped connection to an echo-less server and
// returns both ends plus the transport for counter assertions.
func faultyPair(t *testing.T, cfg FaultConfig) (*Faulty, net.Conn, net.Conn) {
	t.Helper()
	mem := NewMem()
	f := WithFaults(mem, cfg)
	ln, err := f.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := f.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	server := <-accepted
	t.Cleanup(func() { _ = server.Close() })
	return f, client, server
}

// TestFaultyWriteCounters: one Write call carrying two coalesced frames
// must count as 1 write call and 2 frames — the measurement the
// batching acceptance criterion rides on.
func TestFaultyWriteCounters(t *testing.T) {
	f, client, server := faultyPair(t, FaultConfig{})

	// Drain the server side so pipe writes don't block.
	go func() { _, _ = io.Copy(io.Discard, server) }()

	buf, err := wire.AppendFrame(nil, wire.FrameTuple, []byte("frame-a"))
	if err != nil {
		t.Fatal(err)
	}
	buf, err = wire.AppendFrame(buf, wire.FrameTuple, []byte("frame-b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(buf); err != nil {
		t.Fatal(err)
	}
	if got := f.WriteCalls(); got != 1 {
		t.Fatalf("WriteCalls = %d, want 1", got)
	}
	if got := f.FramesWritten(); got != 2 {
		t.Fatalf("FramesWritten = %d, want 2", got)
	}

	// An unbatched frame via WriteFrame adds one call, one frame.
	if err := wire.WriteFrame(client, wire.FramePing, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.WriteCalls(); got != 2 {
		t.Fatalf("WriteCalls = %d, want 2", got)
	}
	if got := f.FramesWritten(); got != 3 {
		t.Fatalf("FramesWritten = %d, want 3", got)
	}
}

// TestFaultyCountersCountDropped: dropped frames still count as written
// — the writer produced them; the fault swallowed them downstream.
func TestFaultyCountersCountDropped(t *testing.T) {
	f, client, server := faultyPair(t, FaultConfig{DropEveryNth: 2})
	go func() { _, _ = io.Copy(io.Discard, server) }()
	for i := 0; i < 4; i++ {
		if err := wire.WriteFrame(client, wire.FrameTuple, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.FramesWritten(); got != 4 {
		t.Fatalf("FramesWritten = %d, want 4 (drops included)", got)
	}
	if got := f.WriteCalls(); got != 4 {
		t.Fatalf("WriteCalls = %d, want 4", got)
	}
}

// TestTCPNoDelay: both the dialed and the accepted side of a TCP
// connection must have TCP_NODELAY set.
func TestTCPNoDelay(t *testing.T) {
	ln, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer func() { _ = ln.Close() }()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := TCP{}.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	server := <-accepted
	defer func() { _ = server.Close() }()

	for name, c := range map[string]net.Conn{"dialed": client, "accepted": server} {
		tc, ok := c.(*net.TCPConn)
		if !ok {
			t.Fatalf("%s conn is %T, not *net.TCPConn", name, c)
		}
		raw, err := tc.SyscallConn()
		if err != nil {
			t.Fatal(err)
		}
		var val int
		var geterr error
		if err := raw.Control(func(fd uintptr) {
			val, geterr = syscall.GetsockoptInt(int(fd), syscall.IPPROTO_TCP, syscall.TCP_NODELAY)
		}); err != nil {
			t.Fatal(err)
		}
		if geterr != nil {
			t.Skipf("getsockopt unavailable: %v", geterr)
		}
		if val == 0 {
			t.Errorf("%s connection: TCP_NODELAY not set", name)
		}
	}
}
