package transport

import (
	"net"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/wire"
)

// acceptOne accepts a single connection in the background.
func acceptOne(t *testing.T, ln net.Listener) <-chan net.Conn {
	t.Helper()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	return ch
}

// readFrames reads frames from c until it errors, reporting payloads.
func readFrames(c net.Conn) <-chan []byte {
	ch := make(chan []byte, 64)
	go func() {
		defer close(ch)
		for {
			_, payload, err := wire.ReadFrame(c)
			if err != nil {
				return
			}
			ch <- payload
		}
	}()
	return ch
}

func TestFaultyDialFailures(t *testing.T) {
	mem := NewMem()
	f := WithFaults(mem, FaultConfig{DialFailures: 2})
	ln, err := f.Listen("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	for i := 0; i < 2; i++ {
		if _, err := f.Dial("m"); err == nil {
			t.Fatalf("dial %d should have failed", i)
		}
	}
	accepted := acceptOne(t, ln)
	c, err := f.Dial("m")
	if err != nil {
		t.Fatalf("dial after injected failures: %v", err)
	}
	defer func() { _ = c.Close() }()
	select {
	case <-accepted:
	case <-time.After(time.Second):
		t.Fatal("no connection accepted")
	}
}

func TestFaultyBreakAfterFrames(t *testing.T) {
	mem := NewMem()
	f := WithFaults(mem, FaultConfig{BreakAfterFrames: 3})
	ln, err := f.Listen("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	accepted := acceptOne(t, ln)
	c, err := f.Dial("m")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	got := readFrames(server)

	// The first three frames pass, then the connection is dead.
	for i := 0; i < 3; i++ {
		if err := wire.WriteFrame(c, wire.FrameTuple, []byte{byte(i)}); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if err := wire.WriteFrame(c, wire.FrameTuple, []byte{9}); err == nil {
		t.Fatal("write after break succeeded")
	}
	var payloads [][]byte
	for p := range got {
		payloads = append(payloads, p)
	}
	if len(payloads) != 3 {
		t.Fatalf("peer saw %d frames, want 3", len(payloads))
	}
	// The peer's connection is dead too: the break closes the link.
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after break")
	}
}

func TestFaultyDropEveryNth(t *testing.T) {
	mem := NewMem()
	f := WithFaults(mem, FaultConfig{DropEveryNth: 3})
	ln, err := f.Listen("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	accepted := acceptOne(t, ln)
	c, err := f.Dial("m")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	got := readFrames(server)

	const n = 9
	for i := 0; i < n; i++ {
		if err := wire.WriteFrame(c, wire.FrameTuple, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()
	var seen []byte
	for p := range got {
		seen = append(seen, p[0])
	}
	// Frames 3, 6, 9 (1-indexed) are dropped: payloads 2, 5, 8.
	want := []byte{0, 1, 3, 4, 6, 7}
	if len(seen) != len(want) {
		t.Fatalf("peer saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("peer saw %v, want %v", seen, want)
		}
	}
}

func TestFaultyDelay(t *testing.T) {
	mem := NewMem()
	f := WithFaults(mem, FaultConfig{Delay: 30 * time.Millisecond, Jitter: 10 * time.Millisecond, Seed: 7})
	ln, err := f.Listen("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	accepted := acceptOne(t, ln)
	c, err := f.Dial("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	server := <-accepted
	got := readFrames(server)

	begin := time.Now()
	if err := wire.WriteFrame(c, wire.FrameTuple, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("frame never arrived")
	}
	if elapsed := time.Since(begin); elapsed < 30*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 30ms of injected delay", elapsed)
	}
}

// TestFaultyAcceptedConnsWrapped verifies faults also apply to the
// listener side of a wrapped transport.
func TestFaultyAcceptedConnsWrapped(t *testing.T) {
	mem := NewMem()
	f := WithFaults(mem, FaultConfig{BreakAfterFrames: 1})
	ln, err := f.Listen("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	accepted := acceptOne(t, ln)
	// Dial through the raw inner transport: only the accepted side is
	// fault-wrapped.
	c, err := mem.Dial("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	server := <-accepted
	got := readFrames(c)
	if err := wire.WriteFrame(server, wire.FrameStats, []byte("s")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("frame never arrived")
	}
	if err := wire.WriteFrame(server, wire.FrameStats, []byte("s")); err == nil {
		t.Fatal("second frame should hit the injected break")
	}
}

// TestFaultyFrameReassembly checks that header and payload written in
// separate calls (as wire.WriteFrame does) still count as one frame.
func TestFaultyFrameReassembly(t *testing.T) {
	mem := NewMem()
	f := WithFaults(mem, FaultConfig{BreakAfterFrames: 2})
	ln, err := f.Listen("m")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	accepted := acceptOne(t, ln)
	c, err := f.Dial("m")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	got := readFrames(server)

	// Two frames, each delivered byte-by-byte: the fault wrapper must
	// reassemble before counting, breaking only after the second frame.
	frame := []byte{3, 0, 0, 0, byte(wire.FrameTuple), 'a', 'b', 'c'}
	for k := 0; k < 2; k++ {
		for _, b := range frame {
			if _, err := c.Write([]byte{b}); err != nil {
				t.Fatalf("frame %d: %v", k, err)
			}
		}
	}
	var n int
	for range got {
		n++
	}
	if n != 2 {
		t.Fatalf("peer saw %d frames, want 2", n)
	}
	if _, err := c.Write(frame); err == nil {
		t.Fatal("write after break succeeded")
	}
}
