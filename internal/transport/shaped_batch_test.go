package transport

import (
	"io"
	"net"
	"testing"
	"time"

	"github.com/swingframework/swing/internal/wire"
)

// batchFrame builds one FrameTupleBatch wire frame carrying n opaque
// tuple payloads.
func batchFrame(t *testing.T, n int) []byte {
	t.Helper()
	var tb wire.TupleBatch
	for i := 0; i < n; i++ {
		tb.Add([]byte{byte(i), 0xee, 0xff})
	}
	frame, err := wire.AppendFrame(nil, wire.FrameTupleBatch, tb.Payload())
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// shapedPair stacks Shaped over Faulty over Mem and dials one link: the
// Faulty layer (fault-free) counts what the shaper actually forwards.
func shapedPair(t *testing.T, scn Scenario) (*Faulty, net.Conn, net.Conn) {
	t.Helper()
	mem := NewMem()
	f := WithFaults(mem, FaultConfig{})
	sh := WithShaping(f, scn, 7)
	ln, err := sh.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := sh.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	server := <-accepted
	t.Cleanup(func() { _ = server.Close() })
	return f, client, server
}

// TestShapedBatchFrameIsOneWrite pins the batch dataplane's shaping
// unit: a tuple-batch frame, however the caller's writes slice it, is
// reassembled and forwarded as ONE downstream write charged its full
// byte cost — the shaper treats the batch as a single large frame, not
// as its per-tuple parts.
func TestShapedBatchFrameIsOneWrite(t *testing.T) {
	f, client, server := shapedPair(t, constScenario{})
	go func() { _, _ = io.Copy(io.Discard, server) }()

	frame := batchFrame(t, 3)
	// Split the frame across two writes to exercise reassembly.
	if _, err := client.Write(frame[:7]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(frame[7:]); err != nil {
		t.Fatal(err)
	}
	if got := f.WriteCalls(); got != 1 {
		t.Fatalf("inner WriteCalls = %d, want 1 (one shaped forward per batch frame)", got)
	}
	if got := f.FramesWritten(); got != 1 {
		t.Fatalf("inner FramesWritten = %d, want 1", got)
	}
	if got := f.TuplesWritten(); got != 3 {
		t.Fatalf("TuplesWritten = %d, want 3 (batch elements)", got)
	}
}

// TestShapedBatchPaysFullByteCost: rate shaping charges the batch frame
// its whole serialized size, so a batch buys fewer syscalls and headers
// but never a transmission-time discount.
func TestShapedBatchPaysFullByteCost(t *testing.T) {
	// 1 Mbit/s, no fixed delay: transmission time is bytes*8/1e6 seconds.
	_, client, server := shapedPair(t, constScenario{Shape{RateBps: 1e6}})
	go func() { _, _ = io.Copy(io.Discard, server) }()

	frame := batchFrame(t, 200) // ~1.4 KiB -> ~11 ms at 1 Mbit/s
	begin := time.Now()
	if _, err := client.Write(frame); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(begin)
	want := time.Duration(float64(len(frame)*8) / 1e6 * float64(time.Second))
	if elapsed < want {
		t.Fatalf("batch frame of %d bytes held %v, want >= %v (full byte cost)",
			len(frame), elapsed, want)
	}
}

// TestShapedLossDropsWholeBatch: the loss draw is per frame, so a lost
// tuple-batch frame vanishes in one piece — nothing is forwarded to the
// inner transport, and every element inside is gone together (the ledger
// recovers them via the master's retransmit/hedge path, exercised by the
// runtime's shaped-loss test).
func TestShapedLossDropsWholeBatch(t *testing.T) {
	f, client, server := shapedPair(t, constScenario{Shape{Loss: 1}})
	go func() { _, _ = io.Copy(io.Discard, server) }()

	if _, err := client.Write(batchFrame(t, 5)); err != nil {
		t.Fatal(err)
	}
	if got := f.WriteCalls(); got != 0 {
		t.Fatalf("inner WriteCalls = %d, want 0 (lost batch forwards nothing)", got)
	}
	// Heartbeats stay exempt even at loss 1, so liveness survives the
	// same link conditions that eat data batches.
	if err := wire.WriteFrame(client, wire.FramePing, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.FramesWritten(); got != 1 {
		t.Fatalf("inner FramesWritten = %d, want 1 (ping exempt from loss)", got)
	}
}

// TestFaultyTupleCounters: TuplesWritten counts a bare tuple frame as
// one and a batch frame by its element count, while control frames count
// zero — the measurement behind the batching acceptance criterion.
func TestFaultyTupleCounters(t *testing.T) {
	f, client, server := faultyPair(t, FaultConfig{})
	go func() { _, _ = io.Copy(io.Discard, server) }()

	if err := wire.WriteFrame(client, wire.FrameTuple, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(batchFrame(t, 4)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(client, wire.FramePing, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.TuplesWritten(); got != 5 {
		t.Fatalf("TuplesWritten = %d, want 5 (1 tuple + 4 batched, ping excluded)", got)
	}
	if got := f.FramesWritten(); got != 3 {
		t.Fatalf("FramesWritten = %d, want 3", got)
	}
}
