package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameCodec throws arbitrary bytes at the frame reader. The codec
// sits directly on the network, so it must never panic or over-allocate
// on hostile input, and anything it accepts must survive a re-encode /
// re-decode round trip unchanged.
func FuzzFrameCodec(f *testing.F) {
	// Seed with every frame type the protocol speaks, plus edge shapes.
	for typ := FrameHello; typ <= FramePong; typ++ {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, []byte(`{"device_id":"w1","epoch":3}`)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var empty bytes.Buffer
	if err := WriteFrame(&empty, FramePing, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01}) // length far beyond MaxFrameSize
	f.Add([]byte{5, 0, 0, 0, 99, 'h', 'e', 'l', 'l', 'o'})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("accepted frame failed to re-encode: type %d, %d bytes: %v",
				typ, len(payload), err)
		}
		typ2, payload2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed frame: (%d, %x) -> (%d, %x)",
				typ, payload, typ2, payload2)
		}
	})
}
