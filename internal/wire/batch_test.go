package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// countingWriter records how many Write calls it received.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestWriteFrameSingleWrite pins the torn-frame fix: header and payload
// must reach the connection in one Write call, and the byte layout must
// stay the historical u32-length | type | payload.
func TestWriteFrameSingleWrite(t *testing.T) {
	payload := []byte("coalesce me")
	var w countingWriter
	if err := WriteFrame(&w, FrameTuple, payload); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("WriteFrame issued %d writes, want 1", w.writes)
	}
	want := []byte{byte(len(payload)), 0, 0, 0, byte(FrameTuple)}
	want = append(want, payload...)
	if !bytes.Equal(w.buf.Bytes(), want) {
		t.Fatalf("frame bytes %x, want %x", w.buf.Bytes(), want)
	}
}

// TestAppendFrameMatchesWriteFrame: the append-based encoder used by the
// coalescing send queues must produce byte-identical frames.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	appended, err := AppendFrame([]byte("prefix"), FrameResult, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[len("prefix"):], buf.Bytes()) {
		t.Fatalf("AppendFrame %x != WriteFrame %x", appended[len("prefix"):], buf.Bytes())
	}
	if _, err := AppendFrame(nil, FrameTuple, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized append: err = %v", err)
	}
}

// TestReadFrameZeroLengthNil: control frames (ping/pong/start/stop)
// carry no payload and must not allocate one.
func TestReadFrameZeroLengthNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePong, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != FramePong {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	if payload != nil {
		t.Fatalf("zero-length frame returned non-nil payload %v", payload)
	}
}

// TestReadFrameEmptyAllocs is the allocation regression test for the
// zero-length path: reading a control frame must not allocate at all.
func TestReadFrameEmptyAllocs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePing, nil); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		if _, _, err := ReadFrame(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("zero-length ReadFrame allocates %.1f/op, want 0", allocs)
	}
}

// TestReadFrameBufAllocs: the pooled read path must be allocation-free
// at steady state even for payload-bearing frames.
func TestReadFrameBufAllocs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameTuple, make([]byte, 6*1024)); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	// Prime the pool outside the measured window.
	r.Reset(frame)
	if _, b, err := ReadFrameBuf(r); err != nil {
		t.Fatal(err)
	} else {
		b.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		_, b, err := ReadFrameBuf(r)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled ReadFrameBuf allocates %.1f/op, want 0", allocs)
	}
}

// TestWriteFrameAllocs: the single-write encoder must be allocation-free
// at steady state (pooled scratch buffer).
func TestWriteFrameAllocs(t *testing.T) {
	payload := make([]byte, 6*1024)
	if err := WriteFrame(io.Discard, FrameTuple, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, FrameTuple, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteFrame allocates %.1f/op, want 0", allocs)
	}
}

// TestReadFrameBufRoundTrip checks payload fidelity and the zero-length
// nil-Buf contract, including that Release on a nil Buf is safe.
func TestReadFrameBufRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("pooled payload")
	if err := WriteFrame(&buf, FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameStop, nil); err != nil {
		t.Fatal(err)
	}
	typ, b, err := ReadFrameBuf(&buf)
	if err != nil || typ != FrameResult {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	if !bytes.Equal(b.B, payload) {
		t.Fatalf("payload %q", b.B)
	}
	b.Release()
	typ, b, err = ReadFrameBuf(&buf)
	if err != nil || typ != FrameStop {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	if b != nil {
		t.Fatalf("zero-length frame returned buffer %v", b)
	}
	b.Release() // nil-safe by contract
}

// TestResultBinaryMeta pins the binary fast path: AppendResult sets the
// high bit on the meta length and DecodeResult restores every field.
func TestResultBinaryMeta(t *testing.T) {
	meta := ResultMeta{TupleID: 1 << 40, Attempt: 3, EmitNanos: -7, ProcNanos: 12345, Dropped: true}
	payload := AppendResult(nil, meta, []byte{9, 8, 7})
	got, tupleBytes, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta %+v, want %+v", got, meta)
	}
	if !bytes.Equal(tupleBytes, []byte{9, 8, 7}) {
		t.Fatalf("tuple bytes %v", tupleBytes)
	}
	if payload[3]&0x80 == 0 {
		t.Fatal("binary meta marker bit not set")
	}
	// Truncated binary meta is rejected, not sliced out of bounds.
	if _, _, err := DecodeResult(payload[:10]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated binary meta: err = %v", err)
	}
}

// TestResultDropReasons: every reason code survives the binary meta
// round trip, and the reason bits stay compatible in both directions
// with pre-reason peers (which used only bit 0 of the flags byte).
func TestResultDropReasons(t *testing.T) {
	for _, reason := range []DropReason{DropNone, DropError, DropPanic, DropDeadline, DropFiltered} {
		meta := ResultMeta{
			TupleID: 7, EmitNanos: 9,
			Dropped: reason != DropNone && reason != DropFiltered,
			Reason:  reason,
		}
		payload := AppendResult(nil, meta, nil)
		got, _, err := DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != meta {
			t.Fatalf("reason %v: meta %+v, want %+v", reason, got, meta)
		}
		// An old decoder masks bit 0 only: Dropped must sit in bit 0
		// regardless of the reason bits.
		flags := payload[4+binaryMetaSize-1]
		if (flags&1 != 0) != meta.Dropped {
			t.Fatalf("reason %v: dropped bit %08b", reason, flags)
		}
	}
	// A pre-reason encoder writes flags ∈ {0, 1}; those must decode as
	// DropNone, never as a phantom reason.
	legacy := AppendResult(nil, ResultMeta{TupleID: 1, Dropped: true}, nil)
	legacy[4+binaryMetaSize-1] = 1
	got, _, err := DecodeResult(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dropped || got.Reason != DropNone {
		t.Fatalf("legacy flags: %+v", got)
	}
	if DropPanic.String() != "panic" || DropReason(7).String() != "reason(7)" {
		t.Fatalf("DropReason.String: %q %q", DropPanic, DropReason(7))
	}
}

// TestResultJSONFallback: payloads from the original JSON meta encoding
// (clear high bit) still decode, so mixed-version captures and fuzz
// corpora remain valid.
func TestResultJSONFallback(t *testing.T) {
	meta := ResultMeta{TupleID: 42, EmitNanos: 100, ProcNanos: 5}
	mb, err := EncodeJSON(meta)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 0, 4+len(mb)+2)
	payload = append(payload, byte(len(mb)), 0, 0, 0)
	payload = append(payload, mb...)
	payload = append(payload, 0xAA, 0xBB)
	got, tupleBytes, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta %+v, want %+v", got, meta)
	}
	if !bytes.Equal(tupleBytes, []byte{0xAA, 0xBB}) {
		t.Fatalf("tuple bytes %v", tupleBytes)
	}
}

// TestResultBatchRoundTrip: N results in, the same N out, in order,
// through a framed write/read cycle.
func TestResultBatchRoundTrip(t *testing.T) {
	var batch ResultBatch
	if got := batch.Payload(); got != nil {
		t.Fatalf("empty batch payload %v", got)
	}
	want := []ResultMeta{
		{TupleID: 1, EmitNanos: 10, ProcNanos: 1},
		{TupleID: 2, EmitNanos: 20, ProcNanos: 2, Dropped: true},
		{TupleID: 3, Attempt: 2, EmitNanos: 30, ProcNanos: 3},
	}
	bodies := [][]byte{[]byte("result-1"), nil, []byte("result-3")}
	for i, m := range want {
		batch.Add(m, bodies[i])
	}
	if batch.Count() != len(want) {
		t.Fatalf("count %d", batch.Count())
	}

	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResultBatch, batch.Payload()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != FrameResultBatch {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	var i int
	err = DecodeResultBatch(payload, func(entry []byte) error {
		meta, tupleBytes, err := DecodeResult(entry)
		if err != nil {
			return err
		}
		if meta != want[i] {
			t.Fatalf("entry %d meta %+v, want %+v", i, meta, want[i])
		}
		if !bytes.Equal(tupleBytes, bodies[i]) {
			t.Fatalf("entry %d tuple bytes %v, want %v", i, tupleBytes, bodies[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("decoded %d entries, want %d", i, len(want))
	}

	// Reset keeps the buffer but empties the batch.
	batch.Reset()
	if batch.Count() != 0 || batch.Payload() != nil {
		t.Fatal("Reset did not empty the batch")
	}
	batch.Add(want[0], nil)
	if batch.Count() != 1 {
		t.Fatal("batch unusable after Reset")
	}
}

// TestDecodeResultBatchErrors rejects malformed batch payloads instead
// of panicking or silently truncating.
func TestDecodeResultBatchErrors(t *testing.T) {
	nop := func([]byte) error { return nil }
	if err := DecodeResultBatch([]byte{1, 2}, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short payload: err = %v", err)
	}
	// Claims one entry but has no entry header.
	if err := DecodeResultBatch([]byte{1, 0, 0, 0}, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("missing entry: err = %v", err)
	}
	// Entry length overruns the payload.
	if err := DecodeResultBatch([]byte{1, 0, 0, 0, 0xff, 0, 0, 0}, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overrun entry: err = %v", err)
	}
	// Trailing garbage after the declared entries.
	var batch ResultBatch
	batch.Add(ResultMeta{TupleID: 1}, nil)
	bad := append(append([]byte{}, batch.Payload()...), 0xEE)
	if err := DecodeResultBatch(bad, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes: err = %v", err)
	}
	// Errors from the callback propagate.
	sentinel := errors.New("stop")
	if err := DecodeResultBatch(batch.Payload(), func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error: err = %v", err)
	}
}

// TestFrameResultBatchType: the new frame type is named and accepted by
// the reader's type validation.
func TestFrameResultBatchType(t *testing.T) {
	if FrameResultBatch.String() != "resultBatch" {
		t.Fatalf("String() = %q", FrameResultBatch.String())
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResultBatch, []byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	typ, _, err := ReadFrame(&buf)
	if err != nil || typ != FrameResultBatch {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	// One past the last known type is still rejected.
	bad := []byte{0, 0, 0, 0, byte(FrameTupleBatch) + 1}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown type: err = %v", err)
	}
}

// TestTupleBatchRoundTrip: N tuples in, the same N out, in order,
// through a framed write/read cycle, and each entry is an exact
// sub-slice (the tuple decoder rejects trailing bytes).
func TestTupleBatchRoundTrip(t *testing.T) {
	var batch TupleBatch
	if got := batch.Payload(); got != nil {
		t.Fatalf("empty batch payload %v", got)
	}
	bodies := [][]byte{[]byte("tuple-1"), nil, []byte("tuple-three")}
	for _, b := range bodies {
		batch.Add(b)
	}
	if batch.Count() != len(bodies) {
		t.Fatalf("count %d", batch.Count())
	}

	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameTupleBatch, batch.Payload()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != FrameTupleBatch {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	var i int
	err = DecodeTupleBatch(payload, func(entry []byte) error {
		if !bytes.Equal(entry, bodies[i]) {
			t.Fatalf("entry %d = %q, want %q", i, entry, bodies[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(bodies) {
		t.Fatalf("decoded %d entries, want %d", i, len(bodies))
	}
	if n, err := TupleBatchCount(payload); err != nil || n != len(bodies) {
		t.Fatalf("TupleBatchCount = %d, %v", n, err)
	}

	// Reset keeps the buffer but empties the batch.
	batch.Reset()
	if batch.Count() != 0 || batch.Payload() != nil {
		t.Fatal("Reset did not empty the batch")
	}
	batch.Add(bodies[0])
	if batch.Count() != 1 {
		t.Fatal("batch unusable after Reset")
	}
}

// TestTupleBatchBeginEnd: the in-place marshal path (Begin/Append/End)
// produces the same layout as Add, and Cancel abandons a reserved entry
// without corrupting the batch.
func TestTupleBatchBeginEnd(t *testing.T) {
	var direct, staged TupleBatch
	direct.Add([]byte("abc"))
	direct.Add([]byte("defgh"))

	start := staged.Begin()
	if err := staged.Append(func(dst []byte) ([]byte, error) {
		return append(dst, "abc"...), nil
	}); err != nil {
		t.Fatal(err)
	}
	staged.End(start)
	// A cancelled entry leaves no trace.
	start = staged.Begin()
	staged.Cancel(start)
	start = staged.Begin()
	if err := staged.Append(func(dst []byte) ([]byte, error) {
		return append(dst, "defgh"...), nil
	}); err != nil {
		t.Fatal(err)
	}
	staged.End(start)

	if !bytes.Equal(direct.Payload(), staged.Payload()) {
		t.Fatalf("staged payload %x != direct %x", staged.Payload(), direct.Payload())
	}
}

// TestDecodeTupleBatchErrors rejects malformed batch payloads instead
// of panicking or silently truncating.
func TestDecodeTupleBatchErrors(t *testing.T) {
	nop := func([]byte) error { return nil }
	if err := DecodeTupleBatch([]byte{1, 2}, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short payload: err = %v", err)
	}
	if err := DecodeTupleBatch([]byte{1, 0, 0, 0}, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("missing entry: err = %v", err)
	}
	if err := DecodeTupleBatch([]byte{1, 0, 0, 0, 0xff, 0, 0, 0}, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overrun entry: err = %v", err)
	}
	var batch TupleBatch
	batch.Add([]byte{1})
	bad := append(append([]byte{}, batch.Payload()...), 0xEE)
	if err := DecodeTupleBatch(bad, nop); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes: err = %v", err)
	}
	sentinel := errors.New("stop")
	if err := DecodeTupleBatch(batch.Payload(), func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error: err = %v", err)
	}
	if _, err := TupleBatchCount([]byte{1}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short count: err = %v", err)
	}
	if FrameTupleBatch.String() != "tupleBatch" {
		t.Fatalf("String() = %q", FrameTupleBatch.String())
	}
}
