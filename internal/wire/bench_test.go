package wire

import (
	"bytes"
	"io"
	"testing"
)

// BenchmarkWriteFrame measures the per-frame encode+write cost of the
// framing layer against a no-op writer.
func BenchmarkWriteFrame(b *testing.B) {
	payload := make([]byte, 6*1024) // a facerec frame
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, FrameTuple, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrame measures the per-frame decode cost, including the
// payload buffer the caller receives.
func BenchmarkReadFrame(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameTuple, make([]byte, 6*1024)); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, _, err := ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrameEmpty measures the control-frame path (pings, pongs,
// start/stop): zero-length payloads should not allocate.
func BenchmarkReadFrameEmpty(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePing, nil); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, _, err := ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}
