package wire

import (
	"bytes"
	"testing"
)

// FuzzRepCodec throws arbitrary bytes at the replication payload
// decoders. The replication link crosses machines, so the decoders must
// never panic on hostile input, and any payload they accept must survive
// a re-encode / re-decode round trip unchanged.
func FuzzRepCodec(f *testing.F) {
	f.Add(AppendRepCheckpoint(nil, RepCheckpoint{Epoch: 3, Generation: 7,
		Data: []byte(`{"version":1,"epoch":3}`)}))
	f.Add(AppendRepRecords(nil, RepRecords{Seg: 2, Seq: 41,
		Data: []byte{9, 0, 0, 0, 2, 'p', 'a', 'y', 'l', 'o', 'a', 'd', '!'}}))
	f.Add(AppendRepSeq(nil, 12345))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		if ck, err := DecodeRepCheckpoint(data); err == nil {
			enc := AppendRepCheckpoint(nil, ck)
			if !bytes.Equal(enc, data) {
				t.Fatalf("repCheckpoint round trip changed payload: %x -> %x", data, enc)
			}
			ck2, err := DecodeRepCheckpoint(enc)
			if err != nil || ck2.Epoch != ck.Epoch || ck2.Generation != ck.Generation ||
				!bytes.Equal(ck2.Data, ck.Data) {
				t.Fatalf("repCheckpoint re-decode mismatch: %+v vs %+v (%v)", ck, ck2, err)
			}
		}
		if rr, err := DecodeRepRecords(data); err == nil {
			enc := AppendRepRecords(nil, rr)
			if !bytes.Equal(enc, data) {
				t.Fatalf("repRecords round trip changed payload: %x -> %x", data, enc)
			}
		}
		if seq, err := DecodeRepSeq(data); err == nil {
			if !bytes.Equal(AppendRepSeq(nil, seq), data) {
				t.Fatalf("repSeq round trip changed payload: %x", data)
			}
		}
	})
}
