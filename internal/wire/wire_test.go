package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := WriteFrame(&buf, FrameTuple, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameTuple || string(got) != string(payload) {
		t.Fatalf("typ=%v payload=%q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameStart, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameStart || len(got) != 0 {
		t.Fatalf("typ=%v len=%d", typ, len(got))
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, FrameTuple, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		_, p, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	err := WriteFrame(io.Discard, FrameTuple, make([]byte, MaxFrameSize+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// A corrupt length prefix is rejected before allocation.
	bad := []byte{0xff, 0xff, 0xff, 0xff, byte(FrameTuple)}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameUnknownType(t *testing.T) {
	bad := []byte{0, 0, 0, 0, 200}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameTuple, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFrameTypeString(t *testing.T) {
	for ft := FrameHello; ft <= FrameRepPing; ft++ {
		if strings.Contains(ft.String(), "frame(") {
			t.Errorf("type %d unnamed", ft)
		}
	}
	if FrameType(99).String() != "frame(99)" {
		t.Error("unknown type formatting")
	}
}

func TestControlJSON(t *testing.T) {
	h := Hello{DeviceID: "B", App: "facerec", SpeedFactor: 2}
	b, err := EncodeJSON(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Hello
	if err := DecodeJSON(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v", got)
	}
	if err := DecodeJSON([]byte("{bad"), &got); err == nil {
		t.Fatal("bad json accepted")
	}
}

func TestResultEncoding(t *testing.T) {
	meta := ResultMeta{TupleID: 77, Attempt: 2, EmitNanos: 123456789, ProcNanos: 42}
	tupleBytes := []byte{1, 2, 3, 4}
	payload, err := EncodeResult(meta, tupleBytes)
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, gotTuple, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v", gotMeta)
	}
	if string(gotTuple) != string(tupleBytes) {
		t.Fatalf("tuple bytes %v", gotTuple)
	}
}

// TestResultAckOnly covers the empty-tuple form: a drop notice keeps its
// meta (including the Dropped flag) and carries zero tuple bytes.
func TestResultAckOnly(t *testing.T) {
	meta := ResultMeta{TupleID: 9, Attempt: 1, EmitNanos: 5, ProcNanos: 3, Dropped: true}
	payload, err := EncodeResult(meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, gotTuple, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v", gotMeta)
	}
	if len(gotTuple) != 0 {
		t.Fatalf("ack-only frame carried %d tuple bytes", len(gotTuple))
	}
}

// TestPingPongRoundTrip frames a liveness probe and its echo: the pong
// payload must carry the ping's sequence and timestamp back unchanged.
func TestPingPongRoundTrip(t *testing.T) {
	ping := Ping{Seq: 42, SentNanos: 987654321}
	pb, err := EncodeJSON(ping)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePing, pb); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != FramePing {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	// The worker echoes the payload verbatim under FramePong.
	if err := WriteFrame(&buf, FramePong, payload); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = ReadFrame(&buf)
	if err != nil || typ != FramePong {
		t.Fatalf("typ=%v err=%v", typ, err)
	}
	var got Ping
	if err := DecodeJSON(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != ping {
		t.Fatalf("echo %+v, want %+v", got, ping)
	}
}

func TestStatsJSON(t *testing.T) {
	st := Stats{DeviceID: "B", Processed: 10, Dropped: 2, QueueLen: 1, Reconnects: 3, UptimeMS: 99}
	b, err := EncodeJSON(st)
	if err != nil {
		t.Fatal(err)
	}
	var got Stats
	if err := DecodeJSON(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("got %+v", got)
	}
}

func TestResultDecodingErrors(t *testing.T) {
	if _, _, err := DecodeResult([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := DecodeResult([]byte{0xff, 0, 0, 0}); err == nil {
		t.Fatal("oversized meta length accepted")
	}
}

// TestFrameRoundTripProperty fuzzes payloads through the framing.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, typSeed uint8) bool {
		typ := FrameType(typSeed%uint8(FramePong)) + FrameHello
		if typ > FramePong {
			typ = FramePong
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			return false
		}
		gotTyp, got, err := ReadFrame(&buf)
		if err != nil || gotTyp != typ || len(got) != len(payload) {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
