// Replication frame payloads. A hot-standby master tails the primary's
// write-ahead journal over one duplex connection: the standby opens with
// a FrameRepHello, the primary answers with a FrameRepCheckpoint base
// image, then streams FrameRepRecords batches (raw journal bytes, per
// segment) interleaved with FrameRepPing probes. The standby reports its
// applied watermark with FrameRepAck frames, from which the primary
// derives replication lag.
//
// Record and checkpoint payloads are binary (length-delimited fields in
// little-endian), not JSON: the records stream carries the journal's own
// on-disk bytes verbatim, so wrapping them in JSON would force a copy and
// an escape pass on the hot flush path.
package wire

import (
	"encoding/binary"
	"fmt"
)

// RepHello opens a replication session (FrameRepHello payload, JSON).
type RepHello struct {
	// StandbyID names the standby instance (for /statusz and logs).
	StandbyID string `json:"standbyId"`
	// App must match the primary's application; a standby for the wrong
	// app is refused.
	App string `json:"app"`
}

// RepCheckpoint is the decoded form of a FrameRepCheckpoint payload: the
// primary's current checkpoint image plus the (epoch, generation) pair
// the image was cut at. Journal segments rotated at the same instant are
// empty, so Data is a complete state base: every later FrameRepRecords
// byte applies strictly on top of it.
type RepCheckpoint struct {
	Epoch      uint64
	Generation uint64
	// Data is the checkpoint JSON exactly as the primary persists it
	// (the payload of its on-disk checkpoint record).
	Data []byte
}

// RepRecords is the decoded form of a FrameRepRecords payload: one
// flushed batch of raw journal record bytes for one segment.
type RepRecords struct {
	// Seg is the journal segment index the bytes belong to.
	Seg uint32
	// Seq is the primary's flush-batch watermark: a monotone index
	// assigned per flushed batch in stream order, so "applied ≤ Seq"
	// means every earlier batch is in the mirror too. The standby echoes
	// the highest applied watermark in FrameRepAck.
	Seq uint64
	// Data holds encoded journal records, byte-identical to what the
	// primary appended to its own segment file.
	Data []byte
}

// AppendRepCheckpoint appends an encoded FrameRepCheckpoint payload:
// u64 epoch | u64 generation | checkpoint bytes.
func AppendRepCheckpoint(dst []byte, ck RepCheckpoint) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, ck.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, ck.Generation)
	return append(dst, ck.Data...)
}

// DecodeRepCheckpoint splits a FrameRepCheckpoint payload. Data aliases
// the input.
func DecodeRepCheckpoint(payload []byte) (RepCheckpoint, error) {
	if len(payload) < 16 {
		return RepCheckpoint{}, fmt.Errorf("%w: short repCheckpoint", ErrBadFrame)
	}
	return RepCheckpoint{
		Epoch:      binary.LittleEndian.Uint64(payload[0:8]),
		Generation: binary.LittleEndian.Uint64(payload[8:16]),
		Data:       payload[16:],
	}, nil
}

// AppendRepRecords appends an encoded FrameRepRecords payload:
// u32 seg | u64 seq | raw journal bytes.
func AppendRepRecords(dst []byte, rr RepRecords) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, rr.Seg)
	dst = binary.LittleEndian.AppendUint64(dst, rr.Seq)
	return append(dst, rr.Data...)
}

// DecodeRepRecords splits a FrameRepRecords payload. Data aliases the
// input.
func DecodeRepRecords(payload []byte) (RepRecords, error) {
	if len(payload) < 12 {
		return RepRecords{}, fmt.Errorf("%w: short repRecords", ErrBadFrame)
	}
	return RepRecords{
		Seg:  binary.LittleEndian.Uint32(payload[0:4]),
		Seq:  binary.LittleEndian.Uint64(payload[4:12]),
		Data: payload[12:],
	}, nil
}

// AppendRepSeq appends the u64 payload shared by FrameRepAck (applied
// watermark) and FrameRepPing (primary's current flush watermark).
func AppendRepSeq(dst []byte, seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// DecodeRepSeq decodes a FrameRepAck / FrameRepPing payload.
func DecodeRepSeq(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: repSeq payload is %d bytes", ErrBadFrame, len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}
