// Package wire defines the framing protocol Swing's live runtime speaks
// between the master and worker devices: length-prefixed frames with a
// type byte, carrying either JSON control messages (hello, deploy,
// start/stop) or binary data tuples and acknowledgments.
//
// The protocol is deliberately small: one duplex TCP connection per worker
// carries deployment control, the downstream tuple stream, and the
// upstream result/ACK stream. TCP's own flow control provides the
// backpressure that the paper's resource management reacts to.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// FrameType distinguishes frame payloads.
type FrameType uint8

// Frame types.
const (
	// FrameHello is the worker's first message: identity + capabilities.
	FrameHello FrameType = iota + 1
	// FrameDeploy tells the worker which function units to activate.
	FrameDeploy
	// FrameStart begins stream processing.
	FrameStart
	// FrameStop ends processing; the connection closes afterwards.
	FrameStop
	// FrameTuple carries one serialized data tuple downstream.
	FrameTuple
	// FrameResult carries a final result tuple upstream; it doubles as
	// the ACK of §V-B, echoing the emit timestamp and reporting the
	// worker's processing delay.
	FrameResult
	// FrameStats carries periodic worker-side statistics.
	FrameStats
	// FramePing is the master's liveness probe; the worker echoes the
	// payload back in a FramePong. A hung worker whose TCP link is still
	// up stops echoing, which is how the failure detector tells "slow"
	// from "gone" without waiting for the connection to break.
	FramePing
	// FramePong is the worker's echo of a FramePing payload.
	FramePong
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameDeploy:
		return "deploy"
	case FrameStart:
		return "start"
	case FrameStop:
		return "stop"
	case FrameTuple:
		return "tuple"
	case FrameResult:
		return "result"
	case FrameStats:
		return "stats"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// MaxFrameSize bounds a frame payload (16 MiB), protecting against
// corrupt length prefixes.
const MaxFrameSize = 16 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// WriteFrame writes one frame: u32 little-endian payload length, type
// byte, payload. Callers serialize concurrent writers externally.
func WriteFrame(w io.Writer, typ FrameType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(typ)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	typ := FrameType(hdr[4])
	if typ < FrameHello || typ > FramePong {
		return 0, nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, hdr[4])
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("read frame payload: %w", err)
	}
	return typ, payload, nil
}

// Hello is the worker's registration message.
type Hello struct {
	// DeviceID names the worker device (unique in the swarm).
	DeviceID string `json:"deviceId"`
	// App is the application name the worker installed; it must match
	// the master's (the paper's workflow installs the same app
	// everywhere).
	App string `json:"app"`
	// SpeedFactor optionally declares an artificial slowdown for
	// heterogeneity experiments on homogeneous hosts (1 = native).
	SpeedFactor float64 `json:"speedFactor,omitempty"`
	// Epoch is the last master incarnation this worker was joined to
	// (0 = never joined). A reconnecting worker echoes it so a restarted
	// master can tell a re-adoption from a fresh join.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Deploy assigns function units to the worker.
type Deploy struct {
	// Units lists unit IDs to activate, in pipeline order.
	Units []string `json:"units"`
	// ReportEveryMillis sets the stats reporting period.
	ReportEveryMillis int64 `json:"reportEveryMillis,omitempty"`
	// Epoch is the master's incarnation number (1 for a fresh master,
	// incremented on each crash-recovery restart). Workers remember it and
	// echo it in their next Hello; a change tells a reconnecting worker it
	// is being re-adopted by a new incarnation.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ResultMeta prefixes a FrameResult payload (before the tuple bytes).
//
// A FrameResult with no tuple bytes after the meta is an ack-only frame:
// the worker consumed the input tuple (a stage filtered it out, or a
// processor failed and Dropped is set) and produced no result. Ack-only
// frames keep the master's in-flight tracker and latency estimates fresh
// even when the pipeline emits nothing.
type ResultMeta struct {
	// TupleID echoes the input tuple's ID so the master can release the
	// matching in-flight (un-acked) entry.
	TupleID uint64 `json:"tupleId"`
	// Attempt echoes the input tuple's transmission attempt counter.
	Attempt uint8 `json:"attempt,omitempty"`
	// EmitNanos echoes the timestamp the master attached when it
	// dispatched the tuple (for latency estimation, §V-B).
	EmitNanos int64 `json:"emitNanos"`
	// ProcNanos is the worker's measured pure processing time.
	ProcNanos int64 `json:"procNanos"`
	// Dropped marks an ack-only frame caused by a processor error; the
	// master counts these so silently-failing workers stay visible.
	Dropped bool `json:"dropped,omitempty"`
}

// Stats is the worker's periodic report.
type Stats struct {
	DeviceID  string `json:"deviceId"`
	Processed int64  `json:"processed"`
	// Dropped counts tuples discarded by processor errors on this worker
	// (cumulative over the worker's lifetime, across reconnects).
	Dropped  int64 `json:"dropped,omitempty"`
	QueueLen int   `json:"queueLen"`
	// Reconnects counts how many times this worker has rejoined the
	// master after a broken link, so the master can explain suspect/dead
	// transitions on a flapping device.
	Reconnects int64 `json:"reconnects,omitempty"`
	UptimeMS   int64 `json:"uptimeMillis"`
}

// Ping is the payload of a FramePing, echoed verbatim in the FramePong.
type Ping struct {
	// Seq numbers the master's pings per connection.
	Seq uint64 `json:"seq"`
	// SentNanos is the master's send timestamp, for RTT measurement.
	SentNanos int64 `json:"sentNanos"`
}

// EncodeJSON marshals a control message for a frame payload.
func EncodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return b, nil
}

// DecodeJSON unmarshals a control payload.
func DecodeJSON(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// EncodeResult builds a FrameResult payload: u32 meta length, JSON meta,
// tuple bytes.
func EncodeResult(meta ResultMeta, tupleBytes []byte) ([]byte, error) {
	mb, err := EncodeJSON(meta)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 4+len(mb)+len(tupleBytes))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(mb)))
	out = append(out, mb...)
	out = append(out, tupleBytes...)
	return out, nil
}

// DecodeResult splits a FrameResult payload.
func DecodeResult(payload []byte) (ResultMeta, []byte, error) {
	if len(payload) < 4 {
		return ResultMeta{}, nil, fmt.Errorf("%w: short result", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(payload[:4])
	if int(n) > len(payload)-4 {
		return ResultMeta{}, nil, fmt.Errorf("%w: result meta length %d", ErrBadFrame, n)
	}
	var meta ResultMeta
	if err := DecodeJSON(payload[4:4+n], &meta); err != nil {
		return ResultMeta{}, nil, err
	}
	return meta, payload[4+n:], nil
}
