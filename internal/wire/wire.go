// Package wire defines the framing protocol Swing's live runtime speaks
// between the master and worker devices: length-prefixed frames with a
// type byte, carrying either JSON control messages (hello, deploy,
// start/stop) or binary data tuples and acknowledgments.
//
// The protocol is deliberately small: one duplex TCP connection per worker
// carries deployment control, the downstream tuple stream, and the
// upstream result/ACK stream. TCP's own flow control provides the
// backpressure that the paper's resource management reacts to.
//
// # Buffer ownership
//
// The hot-path entry points hand out pooled buffers with explicit
// release semantics:
//
//   - ReadFrameBuf returns the payload inside a *Buf borrowed from the
//     pool. The caller owns it until it calls Release; after Release the
//     payload bytes must not be touched (the buffer will be overwritten
//     by a future frame). Copy anything that outlives the handler.
//   - GetBuf / (*Buf).Release follow the same rule for callers that
//     assemble outbound frames with AppendFrame or AppendResult.
//   - WriteFrame borrows and releases internally; its payload argument
//     is never retained.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// FrameType distinguishes frame payloads.
type FrameType uint8

// Frame types.
const (
	// FrameHello is the worker's first message: identity + capabilities.
	FrameHello FrameType = iota + 1
	// FrameDeploy tells the worker which function units to activate.
	FrameDeploy
	// FrameStart begins stream processing.
	FrameStart
	// FrameStop ends processing; the connection closes afterwards.
	FrameStop
	// FrameTuple carries one serialized data tuple downstream.
	FrameTuple
	// FrameResult carries a final result tuple upstream; it doubles as
	// the ACK of §V-B, echoing the emit timestamp and reporting the
	// worker's processing delay.
	FrameResult
	// FrameStats carries periodic worker-side statistics.
	FrameStats
	// FramePing is the master's liveness probe; the worker echoes the
	// payload back in a FramePong. A hung worker whose TCP link is still
	// up stops echoing, which is how the failure detector tells "slow"
	// from "gone" without waiting for the connection to break.
	FramePing
	// FramePong is the worker's echo of a FramePing payload.
	FramePong
	// FrameResultBatch carries many FrameResult payloads in one frame:
	// u32 count, then count × (u32 length, result payload). Workers use
	// it to batch acks/results on a short linger so one upstream write
	// amortizes over many tuples.
	FrameResultBatch
	// FrameRepHello opens a replication session: the standby identifies
	// itself to the primary (JSON RepHello). The primary answers with a
	// FrameRepCheckpoint snapshot, then streams FrameRepRecords.
	FrameRepHello
	// FrameRepCheckpoint carries a full checkpoint image (the same JSON
	// the master persists on disk) plus its (epoch, generation) header so
	// the standby can reset its mirror to a known-consistent base.
	FrameRepCheckpoint
	// FrameRepRecords carries a batch of raw journal record bytes for one
	// segment, exactly as flushed to the primary's disk, plus the journal
	// sequence watermark after the batch.
	FrameRepRecords
	// FrameRepAck is the standby's applied-watermark report; the primary
	// derives replication lag from it.
	FrameRepAck
	// FrameRepPing is the primary's liveness probe on the replication
	// link, carrying its current journal sequence; the standby answers
	// with a FrameRepAck and uses ping silence to arm takeover.
	FrameRepPing
	// FrameTupleBatch carries many FrameTuple payloads in one frame —
	// the downstream mirror of FrameResultBatch: u32 count, then count ×
	// (u32 length, marshaled tuple). The master uses it to dispatch a
	// whole SubmitBatch bound for one worker as a single write.
	FrameTupleBatch
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameDeploy:
		return "deploy"
	case FrameStart:
		return "start"
	case FrameStop:
		return "stop"
	case FrameTuple:
		return "tuple"
	case FrameResult:
		return "result"
	case FrameStats:
		return "stats"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameResultBatch:
		return "resultBatch"
	case FrameRepHello:
		return "repHello"
	case FrameRepCheckpoint:
		return "repCheckpoint"
	case FrameRepRecords:
		return "repRecords"
	case FrameRepAck:
		return "repAck"
	case FrameRepPing:
		return "repPing"
	case FrameTupleBatch:
		return "tupleBatch"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// MaxFrameSize bounds a frame payload (16 MiB), protecting against
// corrupt length prefixes.
const MaxFrameSize = 16 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// Buf is a pooled payload buffer. Get one with GetBuf (or via
// ReadFrameBuf) and return it with Release when the bytes are no longer
// needed. B may be re-sliced/appended freely while owned.
type Buf struct {
	B []byte
}

// maxPooledBuf caps the capacity a buffer may have and still return to
// the pool; a rare 16 MiB frame should not pin 16 MiB per pool slot
// forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 4096)} }}

// GetBuf returns a pooled buffer with length n (contents undefined).
func GetBuf(n int) *Buf {
	b := bufPool.Get().(*Buf)
	if cap(b.B) < n {
		b.B = make([]byte, n)
	} else {
		b.B = b.B[:n]
	}
	return b
}

// Release returns the buffer to the pool. Safe on nil. The caller must
// not use b.B after Release.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if cap(b.B) > maxPooledBuf {
		return // let the GC take oversized buffers
	}
	bufPool.Put(b)
}

// AppendFrame appends one encoded frame — u32 little-endian payload
// length, type byte, payload — to dst and returns the extended slice.
// The byte layout is identical to WriteFrame's output, so appended
// frames may be concatenated and flushed in a single write.
func AppendFrame(dst []byte, typ FrameType, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrameSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, byte(typ))
	return append(dst, payload...), nil
}

// WriteFrame writes one frame: u32 little-endian payload length, type
// byte, payload. Header and payload are coalesced into a single Write
// call, so frames are never torn across writes and small frames are not
// split into two segments. Callers serialize concurrent writers
// externally.
func WriteFrame(w io.Writer, typ FrameType, payload []byte) error {
	buf := GetBuf(0)
	b, err := AppendFrame(buf.B, typ, payload)
	if err != nil {
		buf.Release()
		return err
	}
	buf.B = b
	_, err = w.Write(b)
	buf.Release()
	if err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame. The payload is
// freshly allocated (nil for zero-length frames) and owned by the
// caller; hot paths should prefer ReadFrameBuf.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	// The header goes through a pooled buffer rather than a stack array:
	// a [5]byte sliced into an io.Reader interface escapes, costing one
	// allocation per frame.
	hb := GetBuf(5)
	defer hb.Release()
	if _, err := io.ReadFull(r, hb.B); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hb.B[:4])
	typ, err := checkHeader(hb.B[4], n)
	if err != nil {
		return 0, nil, err
	}
	if n == 0 {
		return typ, nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("read frame payload: %w", err)
	}
	return typ, payload, nil
}

// ReadFrameBuf reads one frame into a pooled buffer. The returned *Buf
// (nil for zero-length frames) holds the payload in B; the caller must
// Release it once the payload has been consumed and must not retain
// sub-slices of it past the Release.
func ReadFrameBuf(r io.Reader) (FrameType, *Buf, error) {
	// One pooled buffer serves both the header read and, grown in
	// place, the payload read — the whole frame costs zero allocations
	// at steady state.
	buf := GetBuf(5)
	if _, err := io.ReadFull(r, buf.B); err != nil {
		buf.Release()
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(buf.B[:4])
	typ, err := checkHeader(buf.B[4], n)
	if err != nil {
		buf.Release()
		return 0, nil, err
	}
	if n == 0 {
		buf.Release()
		return typ, nil, nil
	}
	if cap(buf.B) < int(n) {
		buf.B = make([]byte, n)
	} else {
		buf.B = buf.B[:n]
	}
	if _, err := io.ReadFull(r, buf.B); err != nil {
		buf.Release()
		return 0, nil, fmt.Errorf("read frame payload: %w", err)
	}
	return typ, buf, nil
}

func checkHeader(rawType byte, n uint32) (FrameType, error) {
	if n > MaxFrameSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	typ := FrameType(rawType)
	if typ < FrameHello || typ > FrameTupleBatch {
		return 0, fmt.Errorf("%w: unknown type %d", ErrBadFrame, rawType)
	}
	return typ, nil
}

// Hello is the worker's registration message.
type Hello struct {
	// DeviceID names the worker device (unique in the swarm).
	DeviceID string `json:"deviceId"`
	// App is the application name the worker installed; it must match
	// the master's (the paper's workflow installs the same app
	// everywhere).
	App string `json:"app"`
	// SpeedFactor optionally declares an artificial slowdown for
	// heterogeneity experiments on homogeneous hosts (1 = native).
	SpeedFactor float64 `json:"speedFactor,omitempty"`
	// Epoch is the last master incarnation this worker was joined to
	// (0 = never joined). A reconnecting worker echoes it so a restarted
	// master can tell a re-adoption from a fresh join.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Deploy assigns function units to the worker.
type Deploy struct {
	// Units lists unit IDs to activate, in pipeline order.
	Units []string `json:"units"`
	// ReportEveryMillis sets the stats reporting period.
	ReportEveryMillis int64 `json:"reportEveryMillis,omitempty"`
	// Epoch is the master's incarnation number (1 for a fresh master,
	// incremented on each crash-recovery restart). Workers remember it and
	// echo it in their next Hello; a change tells a reconnecting worker it
	// is being re-adopted by a new incarnation.
	Epoch uint64 `json:"epoch,omitempty"`
	// Parallelism sets the worker's processor-pool width (how many
	// tuples it may process concurrently). 0 means the worker picks its
	// default (GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// AckLingerMicros is the worker's result/ack batching window in
	// microseconds: completed results may wait up to this long to share
	// a FrameResultBatch with their successors. 0 disables lingering
	// (results still batch opportunistically when they are already
	// queued behind each other).
	AckLingerMicros int64 `json:"ackLingerMicros,omitempty"`
	// OpDeadlineMillis arms the worker's per-tuple watchdog: an operator
	// chain that has not returned within this budget is abandoned and the
	// tuple reported as a DropDeadline notice. 0 disables the watchdog
	// (and pre-watchdog workers ignore the field).
	OpDeadlineMillis int64 `json:"opDeadlineMillis,omitempty"`
}

// DropReason classifies why a worker consumed a tuple without producing
// a result. It rides in spare bits of the binary ResultMeta flags byte
// (and a JSON field in the legacy encoding), so old encoders simply
// produce DropNone and old decoders ignore the bits.
type DropReason uint8

// Drop reasons.
const (
	// DropNone: not dropped, or a legacy encoding that carried no reason.
	DropNone DropReason = iota
	// DropError: a processor returned an error for this tuple.
	DropError
	// DropPanic: a processor panicked; the worker's sandbox recovered and
	// the operator chain was rebuilt.
	DropPanic
	// DropDeadline: the per-tuple processing deadline expired before the
	// operator chain returned (the watchdog abandoned the attempt).
	DropDeadline
	// DropFiltered: a stage legitimately emitted nothing. Reported on
	// ack-only frames with Dropped unset — it is accounting, not failure.
	DropFiltered
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropError:
		return "error"
	case DropPanic:
		return "panic"
	case DropDeadline:
		return "deadline"
	case DropFiltered:
		return "filtered"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// ResultMeta prefixes a FrameResult payload (before the tuple bytes).
//
// A FrameResult with no tuple bytes after the meta is an ack-only frame:
// the worker consumed the input tuple (a stage filtered it out, or a
// processor failed and Dropped is set) and produced no result. Ack-only
// frames keep the master's in-flight tracker and latency estimates fresh
// even when the pipeline emits nothing.
type ResultMeta struct {
	// TupleID echoes the input tuple's ID so the master can release the
	// matching in-flight (un-acked) entry.
	TupleID uint64 `json:"tupleId"`
	// Attempt echoes the input tuple's transmission attempt counter.
	Attempt uint8 `json:"attempt,omitempty"`
	// EmitNanos echoes the timestamp the master attached when it
	// dispatched the tuple (for latency estimation, §V-B).
	EmitNanos int64 `json:"emitNanos"`
	// ProcNanos is the worker's measured pure processing time.
	ProcNanos int64 `json:"procNanos"`
	// Dropped marks an ack-only frame caused by a processor failure; the
	// master counts these so silently-failing workers stay visible.
	Dropped bool `json:"dropped,omitempty"`
	// Reason classifies the drop (or marks a filtered tuple). DropNone on
	// successful results and on frames from pre-reason workers.
	Reason DropReason `json:"reason,omitempty"`
}

// Stats is the worker's periodic report.
type Stats struct {
	DeviceID  string `json:"deviceId"`
	Processed int64  `json:"processed"`
	// Dropped counts tuples discarded by processor errors on this worker
	// (cumulative over the worker's lifetime, across reconnects).
	Dropped  int64 `json:"dropped,omitempty"`
	QueueLen int   `json:"queueLen"`
	// Reconnects counts how many times this worker has rejoined the
	// master after a broken link, so the master can explain suspect/dead
	// transitions on a flapping device.
	Reconnects int64 `json:"reconnects,omitempty"`
	// Panics counts operator panics the sandbox recovered on this worker.
	Panics int64 `json:"panics,omitempty"`
	// Deadlined counts tuples abandoned by the per-tuple watchdog.
	Deadlined int64 `json:"deadlined,omitempty"`
	UptimeMS  int64 `json:"uptimeMillis"`
}

// Ping is the payload of a FramePing, echoed verbatim in the FramePong.
type Ping struct {
	// Seq numbers the master's pings per connection.
	Seq uint64 `json:"seq"`
	// SentNanos is the master's send timestamp, for RTT measurement.
	SentNanos int64 `json:"sentNanos"`
}

// EncodeJSON marshals a control message for a frame payload.
func EncodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	return b, nil
}

// DecodeJSON unmarshals a control payload.
func DecodeJSON(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// Result payload encoding. The payload opens with a u32 meta length; a
// set high bit marks the fixed-width binary meta written by AppendResult
// (the hot path, allocation-free), a clear high bit a JSON meta (the
// original encoding, still accepted on decode). Tuple bytes follow the
// meta either way.
// The flags byte packs Dropped in bit 0 and the DropReason in bits 1-3.
// Reason bits were spare (always zero) before reasons existed, so both
// directions stay compatible: an old decoder masks bit 0 only, an old
// encoder yields DropNone.
const (
	binaryMetaFlag = 1 << 31
	binaryMetaSize = 8 + 1 + 8 + 8 + 1 // id, attempt, emit, proc, flags

	metaFlagDropped    = 1 << 0
	metaReasonShift    = 1
	metaReasonMask     = 0x7
	maxEncodableReason = DropReason(metaReasonMask)
)

// AppendResult appends one encoded result payload (binary meta + tuple
// bytes) to dst and returns the extended slice.
func AppendResult(dst []byte, meta ResultMeta, tupleBytes []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, binaryMetaFlag|binaryMetaSize)
	dst = binary.LittleEndian.AppendUint64(dst, meta.TupleID)
	dst = append(dst, meta.Attempt)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(meta.EmitNanos))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(meta.ProcNanos))
	var flags byte
	if meta.Dropped {
		flags = metaFlagDropped
	}
	if meta.Reason <= maxEncodableReason {
		flags |= byte(meta.Reason) << metaReasonShift
	}
	dst = append(dst, flags)
	return append(dst, tupleBytes...)
}

// EncodeResult builds a FrameResult payload: u32 meta length, meta,
// tuple bytes.
func EncodeResult(meta ResultMeta, tupleBytes []byte) ([]byte, error) {
	out := make([]byte, 0, 4+binaryMetaSize+len(tupleBytes))
	return AppendResult(out, meta, tupleBytes), nil
}

// DecodeResult splits a FrameResult payload. The returned tuple bytes
// alias the input payload.
func DecodeResult(payload []byte) (ResultMeta, []byte, error) {
	if len(payload) < 4 {
		return ResultMeta{}, nil, fmt.Errorf("%w: short result", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(payload[:4])
	if n&binaryMetaFlag != 0 {
		if n&^uint32(binaryMetaFlag) != binaryMetaSize || len(payload) < 4+binaryMetaSize {
			return ResultMeta{}, nil, fmt.Errorf("%w: bad binary result meta", ErrBadFrame)
		}
		b := payload[4:]
		meta := ResultMeta{
			TupleID:   binary.LittleEndian.Uint64(b[0:8]),
			Attempt:   b[8],
			EmitNanos: int64(binary.LittleEndian.Uint64(b[9:17])),
			ProcNanos: int64(binary.LittleEndian.Uint64(b[17:25])),
			Dropped:   b[25]&metaFlagDropped != 0,
			Reason:    DropReason(b[25]>>metaReasonShift) & metaReasonMask,
		}
		return meta, payload[4+binaryMetaSize:], nil
	}
	if int64(n) > int64(len(payload)-4) {
		return ResultMeta{}, nil, fmt.Errorf("%w: result meta length %d", ErrBadFrame, n)
	}
	var meta ResultMeta
	if err := DecodeJSON(payload[4:4+n], &meta); err != nil {
		return ResultMeta{}, nil, err
	}
	return meta, payload[4+n:], nil
}

// ResultBatch accumulates result payloads for one FrameResultBatch
// frame. The zero value is ready to use; Reset after each flush keeps
// the underlying buffer for reuse. Layout: u32 count, then count ×
// (u32 entry length, result payload).
type ResultBatch struct {
	buf   []byte
	count uint32
}

// Add appends one result to the batch.
func (b *ResultBatch) Add(meta ResultMeta, tupleBytes []byte) {
	if len(b.buf) == 0 {
		b.buf = append(b.buf, 0, 0, 0, 0) // count, patched in Payload
	}
	start := len(b.buf)
	b.buf = append(b.buf, 0, 0, 0, 0) // entry length, patched below
	b.buf = AppendResult(b.buf, meta, tupleBytes)
	binary.LittleEndian.PutUint32(b.buf[start:], uint32(len(b.buf)-start-4))
	b.count++
}

// Count reports how many results the batch holds.
func (b *ResultBatch) Count() int { return int(b.count) }

// Size reports the encoded payload size in bytes.
func (b *ResultBatch) Size() int { return len(b.buf) }

// Payload finalizes the count prefix and returns the frame payload
// (nil for an empty batch). The slice aliases the batch's buffer and is
// invalidated by the next Add or Reset.
func (b *ResultBatch) Payload() []byte {
	if b.count == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(b.buf[:4], b.count)
	return b.buf
}

// Reset empties the batch, keeping the buffer capacity.
func (b *ResultBatch) Reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// DecodeResultBatch walks a FrameResultBatch payload, invoking fn with
// each entry's result payload (decode with DecodeResult). Entries alias
// the input. Decoding stops at the first error from fn.
func DecodeResultBatch(payload []byte, fn func(entry []byte) error) error {
	if len(payload) < 4 {
		return fmt.Errorf("%w: short result batch", ErrBadFrame)
	}
	count := binary.LittleEndian.Uint32(payload[:4])
	rest := payload[4:]
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return fmt.Errorf("%w: result batch truncated at entry %d", ErrBadFrame, i)
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if uint64(n) > uint64(len(rest)-4) {
			return fmt.Errorf("%w: result batch entry %d length %d", ErrBadFrame, i, n)
		}
		if err := fn(rest[4 : 4+n]); err != nil {
			return err
		}
		rest = rest[4+n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after result batch", ErrBadFrame, len(rest))
	}
	return nil
}

// TupleBatch accumulates marshaled tuples for one FrameTupleBatch frame
// — the downstream mirror of ResultBatch. The zero value is ready to
// use; Reset after each flush keeps the underlying buffer for reuse.
// Layout: u32 count, then count × (u32 entry length, tuple bytes).
//
// AppendEntry is split into Begin/End so callers can marshal a tuple
// directly into the batch buffer (no intermediate copy): Begin reserves
// the entry length, the caller appends via Append, End patches it.
type TupleBatch struct {
	buf   []byte
	count uint32
}

// Add appends one pre-marshaled tuple to the batch.
func (b *TupleBatch) Add(tupleBytes []byte) {
	start := b.Begin()
	b.buf = append(b.buf, tupleBytes...)
	b.End(start)
}

// Begin reserves an entry header and returns its offset for End. The
// caller appends the tuple bytes with Append before calling End.
func (b *TupleBatch) Begin() int {
	if len(b.buf) == 0 {
		b.buf = append(b.buf, 0, 0, 0, 0) // count, patched in Payload
	}
	start := len(b.buf)
	b.buf = append(b.buf, 0, 0, 0, 0) // entry length, patched in End
	return start
}

// Append extends the current entry via fn, which appends the tuple's
// encoding to dst and returns the extended slice (tuple.AppendMarshal's
// shape). Must sit between Begin and End.
func (b *TupleBatch) Append(fn func(dst []byte) ([]byte, error)) error {
	grown, err := fn(b.buf)
	if err != nil {
		return err
	}
	b.buf = grown
	return nil
}

// End patches the entry length reserved by Begin and counts the entry.
func (b *TupleBatch) End(start int) {
	binary.LittleEndian.PutUint32(b.buf[start:], uint32(len(b.buf)-start-4))
	b.count++
}

// Cancel abandons the entry reserved by Begin (e.g. a marshal error),
// truncating the buffer back to the entry start.
func (b *TupleBatch) Cancel(start int) {
	b.buf = b.buf[:start]
}

// SetBuf points the batch at an external backing buffer (typically a
// pooled frame buffer from GetBuf), resetting any accumulated entries.
// Payload then aliases that buffer — or its reallocation, which the
// caller recovers via Payload — so a submit path can build the frame
// directly in pool-managed memory.
func (b *TupleBatch) SetBuf(buf []byte) {
	b.buf = buf[:0]
	b.count = 0
}

// Count reports how many tuples the batch holds.
func (b *TupleBatch) Count() int { return int(b.count) }

// Size reports the encoded payload size in bytes.
func (b *TupleBatch) Size() int { return len(b.buf) }

// Payload finalizes the count prefix and returns the frame payload
// (nil for an empty batch). The slice aliases the batch's buffer and is
// invalidated by the next Add or Reset.
func (b *TupleBatch) Payload() []byte {
	if b.count == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(b.buf[:4], b.count)
	return b.buf
}

// Reset empties the batch, keeping the buffer capacity.
func (b *TupleBatch) Reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// DecodeTupleBatch walks a FrameTupleBatch payload, invoking fn with
// each entry's tuple bytes. Entries alias the input and are exact
// sub-slices (no trailing bytes), so they decode directly with
// tuple.UnmarshalShared against the one frame buffer. Decoding stops at
// the first error from fn.
func DecodeTupleBatch(payload []byte, fn func(entry []byte) error) error {
	if len(payload) < 4 {
		return fmt.Errorf("%w: short tuple batch", ErrBadFrame)
	}
	count := binary.LittleEndian.Uint32(payload[:4])
	rest := payload[4:]
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return fmt.Errorf("%w: tuple batch truncated at entry %d", ErrBadFrame, i)
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if uint64(n) > uint64(len(rest)-4) {
			return fmt.Errorf("%w: tuple batch entry %d length %d", ErrBadFrame, i, n)
		}
		if err := fn(rest[4 : 4+n]); err != nil {
			return err
		}
		rest = rest[4+n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after tuple batch", ErrBadFrame, len(rest))
	}
	return nil
}

// TupleBatchCount reads the count prefix of a FrameTupleBatch payload
// without walking the entries (transport-side subframe accounting).
func TupleBatchCount(payload []byte) (int, error) {
	if len(payload) < 4 {
		return 0, fmt.Errorf("%w: short tuple batch", ErrBadFrame)
	}
	return int(binary.LittleEndian.Uint32(payload[:4])), nil
}
