package core

import (
	"testing"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/graph"
	"github.com/swingframework/swing/internal/routing"
)

// TestDelayComponentsSumBelowLatency: for every delivered frame, the
// decomposed components cannot exceed the end-to-end latency (the
// remainder is source-backlog wait).
func TestDelayComponentsSumBelowLatency(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 3, 30*time.Second)
	cfg.KeepFrameRecords = true
	res := mustRun(t, cfg)
	if len(res.Frames) == 0 {
		t.Fatal("no frames")
	}
	for _, f := range res.Frames {
		sum := f.Transmission + f.Queuing + f.Processing
		if sum > f.Latency+time.Millisecond {
			t.Fatalf("frame %d: components %v exceed latency %v", f.Seq, sum, f.Latency)
		}
		if f.Processing <= 0 {
			t.Fatalf("frame %d: no processing time", f.Seq)
		}
		if f.SinkAt < f.BornAt {
			t.Fatalf("frame %d: arrived before birth", f.Seq)
		}
	}
}

// TestThroughputSeriesCoversRun: the timeline has one sample per
// SampleInterval across the whole run.
func TestThroughputSeriesCoversRun(t *testing.T) {
	app := faceApp(t)
	res := mustRun(t, TestbedConfig(app, routing.LRS, 3, 30*time.Second))
	if got := res.Throughput.Len(); got != 30 {
		t.Fatalf("%d throughput samples for a 30 s run", got)
	}
	for _, id := range device.WorkerIDs() {
		if res.SourceInput[id].Len() != 30 {
			t.Fatalf("device %s input series has %d samples", id, res.SourceInput[id].Len())
		}
	}
}

// TestSourceBacklogShedding: an overloaded swarm sheds frames at the
// source ring buffer rather than growing latency without bound.
func TestSourceBacklogShedding(t *testing.T) {
	app := faceApp(t)
	cfg := Config{
		Seed:         1,
		App:          app,
		Policy:       routing.LRS,
		Duration:     60 * time.Second,
		SourceDevice: "A",
		Workers:      []string{"E"}, // ~2 FPS capacity vs 24 offered
		Profiles:     device.TestbedProfiles(),
	}
	res := mustRun(t, cfg)
	if res.DroppedAtSource == 0 {
		t.Fatal("overloaded source shed nothing")
	}
	// Latency stays bounded by the ring buffer (5 s) plus queueing caps.
	maxLatency := time.Duration(res.Latency.Max() * float64(time.Millisecond))
	bound := 5*time.Second + time.Duration(2*(48+16))*500*time.Millisecond
	if maxLatency > bound {
		t.Fatalf("max latency %v despite bounded buffers", maxLatency)
	}
	// Conservation still holds.
	if res.Delivered+res.DroppedAtSource > res.Generated {
		t.Fatal("accounting overflow")
	}
}

// TestCrossChainingStillMeetsTarget: the generalized any-to-any
// deployment also sustains the face-recognition target under LRS.
func TestCrossChainingStillMeetsTarget(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 9, 60*time.Second)
	cfg.CrossChaining = true
	res := mustRun(t, cfg)
	if !res.MeetsTarget(24, 0.15) {
		t.Fatalf("cross-chaining throughput %v", res.ThroughputFPS)
	}
}

// TestVoiceAllPolicies: the voice workload runs under every policy and
// preserves the L* > P*/RR ordering.
func TestVoiceAllPolicies(t *testing.T) {
	app := voiceApp(t)
	thr := map[routing.PolicyKind]float64{}
	for _, p := range routing.Policies() {
		res := mustRun(t, TestbedConfig(app, p, 42, 120*time.Second))
		thr[p] = res.ThroughputFPS
	}
	if thr[routing.LRS] < 2*thr[routing.RR] || thr[routing.LR] < 2*thr[routing.RR] {
		t.Fatalf("voice orderings broken: %v", thr)
	}
	if thr[routing.LRS] < thr[routing.PRS] {
		t.Fatalf("voice LRS %v below PRS %v", thr[routing.LRS], thr[routing.PRS])
	}
}

// TestCustomAppOnSwarm: a user-composed app (not one of the paper's two)
// runs on the simulated swarm through the same machinery.
func TestCustomAppOnSwarm(t *testing.T) {
	g, err := graph.NewBuilder("objdetect").
		Source("lidar").
		Operator("segment", graph.WithWork(0.3), graph.WithOutputScale(0.5)).
		Operator("classify", graph.WithWork(0.5), graph.WithOutputScale(0.02)).
		Sink("hud").
		Chain("lidar", "segment", "classify", "hud").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &apps.App{Graph: g, FrameBytes: 12000, TargetFPS: 10, TotalWork: 0.8}
	cfg := TestbedConfig(app, routing.LRS, 4, 30*time.Second)
	res := mustRun(t, cfg)
	if !res.MeetsTarget(10, 0.1) {
		t.Fatalf("custom app throughput %v, want ~10", res.ThroughputFPS)
	}
}

// TestTestbedConfigShape: the canonical testbed config matches the
// paper's §VI-B setup.
func TestTestbedConfigShape(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 1, time.Minute)
	if cfg.SourceDevice != "A" {
		t.Fatalf("source = %q", cfg.SourceDevice)
	}
	if len(cfg.Workers) != 8 {
		t.Fatalf("%d workers", len(cfg.Workers))
	}
	for _, weak := range []string{"B", "C", "D"} {
		m, ok := cfg.Mobility[weak]
		if !ok {
			t.Fatalf("%s not placed at a weak spot", weak)
		}
		if m.RSSIAt(0) > -70 {
			t.Fatalf("%s signal %v not weak", weak, m.RSSIAt(0))
		}
	}
}

// TestHigherInputNeedsMoreWorkers: LRS selection grows with the input
// rate (the energy-proportionality claim behind Worker Selection).
func TestHigherInputNeedsMoreWorkers(t *testing.T) {
	app := faceApp(t)
	activeWorkers := func(fps float64) int {
		cfg := TestbedConfig(app, routing.LRS, 6, 60*time.Second)
		cfg.InputFPS = fps
		res := mustRun(t, cfg)
		n := 0
		for _, id := range device.WorkerIDs() {
			if res.Devices[id].SourceInputFPS > 0.5 {
				n++
			}
		}
		return n
	}
	low, high := activeWorkers(6), activeWorkers(24)
	if low >= high {
		t.Fatalf("active workers: %d at 6 FPS vs %d at 24 FPS", low, high)
	}
	if low > 3 {
		t.Fatalf("6 FPS engaged %d workers; one fast device suffices", low)
	}
}
