// Package core implements the Swing swarm: the distributed execution of an
// application dataflow graph across a set of heterogeneous mobile devices,
// with per-upstream LRS resource management (paper §IV, §V).
//
// The package drives the shared routing logic (internal/routing) on top of
// a deterministic discrete-event model of the testbed: device compute
// (internal/device), wireless links and mobility (internal/netem), and the
// paper's runtime mechanics — per-link send queues with TCP-like
// backpressure, shared-radio airtime, ACK-based latency feedback, worker
// join/leave and the sink-side reorder buffer. Every experiment in
// internal/experiments is a configuration of this simulator.
package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/swingframework/swing/internal/apps"
	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/netem"
	"github.com/swingframework/swing/internal/routing"
)

// ScriptAction is a scripted membership change during a run.
type ScriptAction uint8

// Script actions.
const (
	// ActionJoin adds a worker to the swarm at the given time (§VI-C
	// "Joining").
	ActionJoin ScriptAction = iota + 1
	// ActionLeave abruptly terminates a worker (§VI-C "Leaving"):
	// frames queued on or in flight to the device are lost.
	ActionLeave
)

// ScriptEvent schedules one membership change.
type ScriptEvent struct {
	At     time.Duration
	Action ScriptAction
	Device string
}

// Config parameterizes one swarm run.
type Config struct {
	// Seed drives all simulation randomness; equal seeds reproduce runs
	// exactly.
	Seed int64
	// App is the application under test.
	App *apps.App
	// Policy selects the resource-management algorithm.
	Policy routing.PolicyKind
	// Routing optionally overrides routing parameters; zero value means
	// routing.DefaultConfig(Policy).
	Routing *routing.Config
	// Duration is the measured run length (virtual time).
	Duration time.Duration

	// SourceDevice hosts the source unit and acts as master (paper:
	// device A). It also hosts the sink unless SinkDevice is set.
	SourceDevice string
	// SinkDevice hosts the sink unit; defaults to SourceDevice.
	SinkDevice string
	// Workers host the operator units. Each worker runs an instance of
	// every operator unit (the paper's deployment: every device installs
	// the whole app and the master activates units).
	Workers []string

	// Profiles maps device IDs to capability/power profiles; it must
	// cover SourceDevice, SinkDevice and all Workers.
	Profiles map[string]device.Profile
	// Mobility maps device IDs to RSSI traces; devices default to
	// netem.Static(netem.RSSIGood).
	Mobility map[string]netem.Mobility
	// BackgroundLoad maps device IDs to a background CPU load fraction
	// in [0, 0.95] from other apps (Figure 2 middle).
	BackgroundLoad map[string]float64

	// InputFPS overrides the app's target input rate when positive.
	InputFPS float64

	// QueueCap bounds each unit instance's input queue in tuples
	// (receive-window analog). Zero selects the default (48).
	QueueCap int
	// OutboxCap bounds each per-link send queue in tuples (socket-buffer
	// analog). Zero selects the default (16).
	OutboxCap int
	// SourceBacklogCap bounds the source's frame backlog: the camera's
	// ring buffer. When the swarm cannot keep up, newly sensed frames
	// are shed at the full buffer, bounding end-to-end latency the way a
	// real sensing pipeline does. Zero selects the default (120 frames,
	// 5 s at 24 FPS); Figure 1 overrides it with a large value to show
	// unbounded delay growth.
	SourceBacklogCap int

	// ReorderBuffer is the sink reorder buffer timespan; the paper sizes
	// it to 1 s of source frames (§VI-B "Tuple Order"). Zero selects 1 s.
	ReorderBuffer time.Duration

	// CrossChaining lets every operator instance route to all instances
	// of its downstream unit across devices. The default (false) keeps
	// operator→operator edges on-device — each worker hosts a vertical
	// slice of the pipeline, as in the paper's Figure 3 deployment — so
	// the source's routing decision selects the device for the whole
	// chain.
	CrossChaining bool

	// ThermalFactor scales sustained-load slowdown: a device at
	// utilisation u processes (1+ThermalFactor·u)x slower, modeling
	// mobile SoC throttling. Negative disables; zero selects 0.5.
	ThermalFactor float64
	// ProcNoiseSigma is the sigma of the log-normal processing-time
	// jitter. Negative disables; zero selects 0.20.
	ProcNoiseSigma float64

	// LeaveDetectDelay is how long upstreams keep routing to a departed
	// device before the broken connection is detected (frames sent in
	// that window are lost, §VI-C "Leaving"). Zero selects 500 ms.
	LeaveDetectDelay time.Duration

	// Script lists membership changes during the run.
	Script []ScriptEvent

	// SampleInterval is the metrics sampling period. Zero selects 1 s.
	SampleInterval time.Duration

	// KeepFrameRecords retains per-frame delivery records (needed by the
	// Figure 1/8 harnesses; costs memory on long runs).
	KeepFrameRecords bool
}

// Defaults applied by Run.
const (
	defaultQueueCap         = 48
	defaultOutboxCap        = 16
	defaultSourceBacklogCap = 120
	defaultReorderBuffer    = time.Second
	defaultThermalFactor    = 0.5
	defaultProcNoiseSigma   = 0.20
	defaultLeaveDetect      = 500 * time.Millisecond
	defaultSampleInterval   = time.Second
)

// withDefaults returns a copy of c with zero values replaced by defaults.
func (c Config) withDefaults() Config {
	if c.SinkDevice == "" {
		c.SinkDevice = c.SourceDevice
	}
	if c.QueueCap == 0 {
		c.QueueCap = defaultQueueCap
	}
	if c.OutboxCap == 0 {
		c.OutboxCap = defaultOutboxCap
	}
	if c.SourceBacklogCap == 0 {
		c.SourceBacklogCap = defaultSourceBacklogCap
	}
	if c.ReorderBuffer == 0 {
		c.ReorderBuffer = defaultReorderBuffer
	}
	if c.ThermalFactor == 0 {
		c.ThermalFactor = defaultThermalFactor // see defaults above
	} else if c.ThermalFactor < 0 {
		c.ThermalFactor = 0
	}
	if c.ProcNoiseSigma == 0 {
		c.ProcNoiseSigma = defaultProcNoiseSigma
	} else if c.ProcNoiseSigma < 0 {
		c.ProcNoiseSigma = 0
	}
	if c.LeaveDetectDelay == 0 {
		c.LeaveDetectDelay = defaultLeaveDetect
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = defaultSampleInterval
	}
	if c.InputFPS == 0 && c.App != nil {
		c.InputFPS = c.App.TargetFPS
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c Config) Validate() error {
	if c.App == nil {
		return errors.New("core: nil app")
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("core: invalid policy %d", c.Policy)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("core: non-positive duration %v", c.Duration)
	}
	if c.SourceDevice == "" {
		return errors.New("core: no source device")
	}
	if len(c.Workers) == 0 && len(c.Script) == 0 {
		return errors.New("core: no workers")
	}
	if c.InputFPS <= 0 {
		return fmt.Errorf("core: non-positive input rate %v", c.InputFPS)
	}
	need := append([]string{c.SourceDevice, c.SinkDevice}, c.Workers...)
	for _, ev := range c.Script {
		if ev.Device == "" || ev.Action < ActionJoin || ev.Action > ActionLeave {
			return fmt.Errorf("core: invalid script event %+v", ev)
		}
		need = append(need, ev.Device)
	}
	for _, id := range need {
		if _, ok := c.Profiles[id]; !ok {
			return fmt.Errorf("core: no profile for device %q", id)
		}
	}
	for id, bg := range c.BackgroundLoad {
		if bg < 0 || bg > 0.95 {
			return fmt.Errorf("core: background load %v for %q outside [0, 0.95]", bg, id)
		}
	}
	if err := c.App.Graph.Validate(); err != nil {
		return fmt.Errorf("core: invalid app graph: %w", err)
	}
	if _, err := c.App.Graph.Path(); err != nil {
		// The swarm executes one result per sensed frame: sequence
		// numbers drive the sink reorder buffer and the frame
		// accounting. Fan-out graphs would emit several results per
		// frame, so they are rejected here rather than silently
		// double-counted. (The graph API itself supports DAGs for
		// future multi-sink deployments.)
		return fmt.Errorf("core: only linear pipelines are supported: %w", err)
	}
	return nil
}

// routingConfig resolves the effective routing configuration.
func (c Config) routingConfig() routing.Config {
	if c.Routing != nil {
		rc := *c.Routing
		rc.Policy = c.Policy
		return rc
	}
	return routing.DefaultConfig(c.Policy)
}

// TestbedConfig returns the paper's §VI-B baseline configuration: app on
// the nine-device testbed, A as source/master/sink, workers B..I, with
// B, C and D placed at weak-signal locations.
func TestbedConfig(app *apps.App, policy routing.PolicyKind, seed int64, duration time.Duration) Config {
	return Config{
		Seed:         seed,
		App:          app,
		Policy:       policy,
		Duration:     duration,
		SourceDevice: "A",
		Workers:      device.WorkerIDs(),
		Profiles:     device.TestbedProfiles(),
		Mobility: map[string]netem.Mobility{
			"B": netem.Static(netem.RSSIBad),
			"C": netem.Static(netem.RSSIBad),
			"D": netem.Static(netem.RSSIBad),
		},
	}
}
