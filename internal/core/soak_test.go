package core

import (
	"testing"
	"time"

	"github.com/swingframework/swing/internal/routing"
)

// TestPaperDurationRun executes the paper's actual experiment length — a
// ten-minute run (14400 frames at 24 FPS) — and checks the headline holds
// at full scale, not just on shortened test horizons.
func TestPaperDurationRun(t *testing.T) {
	if testing.Short() {
		t.Skip("10-minute simulated run in -short mode")
	}
	app := faceApp(t)
	lrs := mustRun(t, TestbedConfig(app, routing.LRS, 42, 10*time.Minute))
	rr := mustRun(t, TestbedConfig(app, routing.RR, 42, 10*time.Minute))

	if lrs.Generated != 14400 {
		t.Fatalf("generated %d frames, want 14400", lrs.Generated)
	}
	if !lrs.MeetsTarget(24, 0.05) {
		t.Fatalf("LRS throughput %v over 10 minutes", lrs.ThroughputFPS)
	}
	gain := lrs.ThroughputFPS / rr.ThroughputFPS
	if gain < 2 || gain > 4 {
		t.Fatalf("LRS/RR gain %.2fx at full length; paper reports 2.7x", gain)
	}
	if lrs.Latency.Mean() > 1500 {
		t.Fatalf("LRS steady-state latency %v ms", lrs.Latency.Mean())
	}
}

// BenchmarkSwarmSimulation measures simulator speed: simulated seconds of
// the full nine-device testbed per wall-clock second.
func BenchmarkSwarmSimulation(b *testing.B) {
	app, err := newFaceApp()
	if err != nil {
		b.Fatal(err)
	}
	const simDur = 60 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(TestbedConfig(app, routing.LRS, int64(i+1), simDur)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(simDur.Seconds()/perOp.Seconds(), "sim-s/real-s")
}

// BenchmarkSwarmSimulationRR benches the congested (worst-case event
// volume) policy.
func BenchmarkSwarmSimulationRR(b *testing.B) {
	app, err := newFaceApp()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(TestbedConfig(app, routing.RR, int64(i+1), 60*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}
