package core

import (
	"time"

	"github.com/swingframework/swing/internal/metrics"
)

// DeviceStats aggregates one device's run statistics (the per-device
// quantities of Figures 5 and 6).
type DeviceStats struct {
	// Device is the device ID.
	Device string `json:"device"`
	// CPUUtil is the mean CPU utilisation in [0, 1], including
	// background load and the framework overhead.
	CPUUtil float64 `json:"cpuUtil"`
	// SourceInputFPS is the mean rate of tuples routed from the source
	// to this device (Figure 5 right).
	SourceInputFPS float64 `json:"sourceInputFps"`
	// TxBytes is the total bytes transmitted by this device's radio.
	TxBytes int64 `json:"txBytes"`
	// CPUPowerW / WiFiPowerW are mean app-attributable (dynamic) power
	// draws estimated by the paper's utilisation model (Figure 6).
	CPUPowerW  float64 `json:"cpuPowerW"`
	WiFiPowerW float64 `json:"wifiPowerW"`
	// EnergyJ is the total dynamic energy across CPU and Wi-Fi.
	EnergyJ float64 `json:"energyJoules"`
	// Processed counts tuples this device finished processing.
	Processed int64 `json:"processed"`
	// PresentFor is how long the device was part of the swarm.
	PresentFor time.Duration `json:"presentForNanos"`
}

// TotalPowerW is the device's mean total dynamic power.
func (d DeviceStats) TotalPowerW() float64 { return d.CPUPowerW + d.WiFiPowerW }

// FrameStat records one delivered frame end to end (Figures 1 and 8).
type FrameStat struct {
	Seq    uint64        `json:"seq"`
	BornAt time.Duration `json:"bornAtNanos"`
	SinkAt time.Duration `json:"sinkAtNanos"`
	// PlayAt is the reorder-buffer playback instant; zero if the frame
	// was skipped by the reorder buffer.
	PlayAt time.Duration `json:"playAtNanos"`
	// Latency is SinkAt − BornAt.
	Latency time.Duration `json:"latencyNanos"`
	// Transmission, Queuing and Processing decompose the end-to-end
	// delay (Figure 2): time on links (including send-queue wait), time
	// waiting in worker input queues, and compute time.
	Transmission time.Duration `json:"transmissionNanos"`
	Queuing      time.Duration `json:"queuingNanos"`
	Processing   time.Duration `json:"processingNanos"`
	// Worker is the device that performed the first operator stage.
	Worker string `json:"worker"`
}

// Result aggregates everything an experiment harness needs from one run.
type Result struct {
	App    string `json:"app"`
	Policy string `json:"policy"`
	// Duration is the simulated run length.
	Duration time.Duration `json:"durationNanos"`

	// Generated counts frames produced by the source; Delivered counts
	// frames that reached the sink; DroppedAtSource counts frames shed
	// from the source backlog; LostOnLeave counts frames lost to device
	// departures; SkippedByReorder counts frames the reorder buffer gave
	// up waiting for.
	Generated        int64 `json:"generated"`
	Delivered        int64 `json:"delivered"`
	DroppedAtSource  int64 `json:"droppedAtSource"`
	LostOnLeave      int64 `json:"lostOnLeave"`
	SkippedByReorder int64 `json:"skippedByReorder"`

	// ThroughputFPS is Delivered / Duration: the paper's "average system
	// throughput" (Figure 4 top).
	ThroughputFPS float64 `json:"throughputFps"`
	// Latency summarizes per-frame end-to-end delay in milliseconds
	// (Figure 4 bottom: min, max, mean, variance).
	Latency metrics.Summary `json:"latencyMs"`
	// Transmission, Queuing, Processing summarize the per-frame delay
	// decomposition in milliseconds (Figure 2).
	Transmission metrics.Summary `json:"transmissionMs"`
	Queuing      metrics.Summary `json:"queuingMs"`
	Processing   metrics.Summary `json:"processingMs"`

	// Devices holds per-device statistics keyed by device ID.
	Devices map[string]*DeviceStats `json:"devices"`

	// AggregatePowerW is the swarm-wide mean dynamic power (the number
	// atop each Figure 6 group).
	AggregatePowerW float64 `json:"aggregatePowerW"`
	// FPSPerWatt is ThroughputFPS / AggregatePowerW (Figure 7).
	FPSPerWatt float64 `json:"fpsPerWatt"`

	// Throughput is the 1s-window sink throughput over time (Figures 9
	// and 10 top).
	Throughput *metrics.Series `json:"throughput"`
	// SourceInput maps device ID to its over-time input rate from the
	// source (Figure 10 bottom).
	SourceInput map[string]*metrics.Series `json:"sourceInput"`

	// Frames holds per-frame records when Config.KeepFrameRecords is
	// set, ordered by sink arrival.
	Frames []FrameStat `json:"frames,omitempty"`
}

// MeetsTarget reports whether mean throughput reached the target rate
// within the tolerance fraction (e.g. 0.05 for 5%).
func (r *Result) MeetsTarget(targetFPS, tolerance float64) bool {
	return r.ThroughputFPS >= targetFPS*(1-tolerance)
}
