package core

import (
	"testing"
	"time"

	"github.com/swingframework/swing/internal/device"
	"github.com/swingframework/swing/internal/routing"
)

// TestMassLeave: most of the swarm departs at once; the system sheds load
// at the source but keeps delivering on the survivors.
func TestMassLeave(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 13, 90*time.Second)
	for _, id := range []string{"C", "D", "E", "F", "G", "I"} {
		cfg.Script = append(cfg.Script, ScriptEvent{
			At: 45 * time.Second, Action: ActionLeave, Device: id,
		})
	}
	res := mustRun(t, cfg)
	after := res.Throughput.MeanBetween(55*time.Second, 90*time.Second)
	if after <= 5 {
		t.Fatalf("post-mass-leave throughput %v; B+H sustain more", after)
	}
	before := res.Throughput.MeanBetween(30*time.Second, 45*time.Second)
	if after >= before {
		t.Fatalf("throughput did not drop after losing 6 of 8 workers (%v -> %v)", before, after)
	}
	if res.LostOnLeave == 0 {
		t.Fatal("mass leave lost nothing")
	}
}

// TestAllWorkersLeaveThenRejoin: the swarm empties entirely, frames are
// shed, then a worker joins and service resumes.
func TestAllWorkersLeaveThenRejoin(t *testing.T) {
	app := faceApp(t)
	cfg := Config{
		Seed:         3,
		App:          app,
		Policy:       routing.LRS,
		Duration:     90 * time.Second,
		SourceDevice: "A",
		Workers:      []string{"G"},
		Profiles:     device.TestbedProfiles(),
		InputFPS:     10,
		Script: []ScriptEvent{
			{At: 30 * time.Second, Action: ActionLeave, Device: "G"},
			{At: 60 * time.Second, Action: ActionJoin, Device: "H"},
		},
	}
	res := mustRun(t, cfg)
	gap := res.Throughput.MeanBetween(40*time.Second, 60*time.Second)
	if gap > 1 {
		t.Fatalf("throughput %v during empty-swarm window", gap)
	}
	resumed := res.Throughput.MeanBetween(70*time.Second, 90*time.Second)
	if resumed < 8 {
		t.Fatalf("post-rejoin throughput %v, want ~10", resumed)
	}
	// Frames sensed during the outage were shed at the source buffer or
	// lost with G, not silently leaked.
	if res.DroppedAtSource+res.LostOnLeave == 0 {
		t.Fatal("no frames shed during the outage")
	}
}

// TestChurn: repeated join/leave cycles do not wedge routing state.
func TestChurn(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 5, 120*time.Second)
	cfg.Workers = []string{"G", "H"}
	for i := 0; i < 4; i++ {
		base := time.Duration(20+20*i) * time.Second
		cfg.Script = append(cfg.Script,
			ScriptEvent{At: base, Action: ActionJoin, Device: "I"},
			ScriptEvent{At: base + 10*time.Second, Action: ActionLeave, Device: "I"},
		)
	}
	res := mustRun(t, cfg)
	if res.Delivered == 0 {
		t.Fatal("churn wedged the swarm")
	}
	end := res.Throughput.MeanBetween(110*time.Second, 120*time.Second)
	if end < 10 {
		t.Fatalf("end-of-run throughput %v after churn", end)
	}
	// I's stats survive multiple join/leave cycles.
	if res.Devices["I"].PresentFor > 50*time.Second || res.Devices["I"].PresentFor < 20*time.Second {
		t.Fatalf("I present for %v, want ~40s over 4 cycles", res.Devices["I"].PresentFor)
	}
}

// TestLeaveOfAbsentDeviceIsNoop: scripting a leave for a device that
// already left (or never joined) must not corrupt state.
func TestLeaveOfAbsentDeviceIsNoop(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 5, 40*time.Second)
	cfg.Workers = []string{"G", "H"}
	cfg.Script = []ScriptEvent{
		{At: 10 * time.Second, Action: ActionLeave, Device: "G"},
		{At: 12 * time.Second, Action: ActionLeave, Device: "G"}, // double leave
	}
	res := mustRun(t, cfg)
	after := res.Throughput.MeanBetween(20*time.Second, 40*time.Second)
	if after < 8 {
		t.Fatalf("H-only throughput %v", after)
	}
}

// TestRejoinAfterLeave: the same device leaves and later rejoins; routing
// state must be rebuilt cleanly.
func TestRejoinAfterLeave(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 5, 90*time.Second)
	cfg.Workers = []string{"B", "G", "H"}
	cfg.Script = []ScriptEvent{
		{At: 30 * time.Second, Action: ActionLeave, Device: "G"},
		{At: 60 * time.Second, Action: ActionJoin, Device: "G"},
	}
	res := mustRun(t, cfg)
	gGone := res.SourceInput["G"].MeanBetween(40*time.Second, 60*time.Second)
	if gGone > 0.01 {
		t.Fatalf("G received %v FPS while absent", gGone)
	}
	gBack := res.SourceInput["G"].MeanBetween(70*time.Second, 90*time.Second)
	if gBack < 1 {
		t.Fatalf("G received %v FPS after rejoining", gBack)
	}
}

// TestStragglerIsolation: one device with crushing background load must
// not drag LRS below target.
func TestStragglerIsolation(t *testing.T) {
	app := faceApp(t)
	cfg := TestbedConfig(app, routing.LRS, 17, 90*time.Second)
	cfg.BackgroundLoad = map[string]float64{"H": 0.95} // cripple the fastest
	res := mustRun(t, cfg)
	if !res.MeetsTarget(24, 0.08) {
		t.Fatalf("LRS throughput %v with crippled H", res.ThroughputFPS)
	}
	// The crippled device receives little traffic despite its nominal
	// speed.
	if res.Devices["H"].SourceInputFPS > 2 {
		t.Fatalf("crippled H still receives %v FPS", res.Devices["H"].SourceInputFPS)
	}
}

// TestZeroWorkUnits: an app whose operators declare no compute cost flows
// tuples at line rate.
func TestZeroWorkUnits(t *testing.T) {
	app := faceApp(t)
	// Hand-build a config against a pass-through app.
	g := app.Graph
	_ = g
	cfg := TestbedConfig(app, routing.LRS, 1, 10*time.Second)
	cfg.Workers = []string{"H"}
	cfg.InputFPS = 2
	res := mustRun(t, cfg)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestSeedSweepInvariants runs several seeds and checks structural
// invariants hold for each (a cheap property-based harness over the whole
// simulator).
func TestSeedSweepInvariants(t *testing.T) {
	app := faceApp(t)
	for seed := int64(1); seed <= 8; seed++ {
		res := mustRun(t, TestbedConfig(app, routing.LRS, seed, 30*time.Second))
		if res.Delivered <= 0 {
			t.Fatalf("seed %d: delivered %d", seed, res.Delivered)
		}
		if res.Delivered+res.DroppedAtSource+res.LostOnLeave > res.Generated {
			t.Fatalf("seed %d: frame accounting overflow", seed)
		}
		if res.Latency.Min() < 0 || res.Latency.Max() < res.Latency.Mean() {
			t.Fatalf("seed %d: latency stats inconsistent", seed)
		}
		if res.AggregatePowerW < 0 {
			t.Fatalf("seed %d: negative power", seed)
		}
		for id, d := range res.Devices {
			if d.SourceInputFPS < 0 || d.CPUUtil < 0 || d.CPUUtil > 1 {
				t.Fatalf("seed %d: device %s stats out of range", seed, id)
			}
		}
	}
}
